"""Golden regression fixtures: frozen flow metrics for the three testbenches.

Each ``tb{1,2,3}.json`` freezes the key metrics of one scaled paper
testbench run end to end — wirelength, area, delay, crossbar/synapse
counts, recognition rate — with an explicit per-metric tolerance.  The
tolerances absorb benign numeric variation (BLAS reduction order, scipy
eigensolver updates) while catching silent structural drift in clustering,
placement or routing cost.

Refresh intentionally with ``pytest tests/golden --update-golden`` and
commit the diff; the EXPERIMENTS.md policy note explains when that is
legitimate.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core import AutoNCS
from repro.experiments.testbenches import build_testbench, scaled_testbench

GOLDEN_DIR = Path(__file__).parent

#: Frozen run parameters — changing any of these invalidates the fixtures.
DIMENSION = 120
NETWORK_SEED = 31
FLOW_SEED = 17
PROBE_SEED = 7

#: Per-metric tolerances.  Counts get small absolute slack; continuous
#: physical metrics get relative slack; the recognition rate is a small
#: Monte-Carlo estimate, so it gets the widest absolute band.
TOLERANCES = {
    "connections": {"atol": 0},
    "crossbars": {"atol": 2},
    "synapses": {"atol": 40},
    "wirelength_um": {"rtol": 0.15},
    "area_um2": {"rtol": 0.15},
    "delay_ns": {"rtol": 0.15},
    "recognition_rate": {"atol": 0.08},
}


def _measure(index: int) -> dict:
    tb = build_testbench(scaled_testbench(index, DIMENSION), rng=NETWORK_SEED)
    flow = AutoNCS().run(tb.network, rng=FLOW_SEED, verify=True)
    summary = flow.design.summary()
    return {
        "connections": tb.network.num_connections,
        "crossbars": flow.mapping.num_crossbars,
        "synapses": flow.mapping.num_synapses,
        "wirelength_um": summary["wirelength_um"],
        "area_um2": summary["area_um2"],
        "delay_ns": summary["delay_ns"],
        "recognition_rate": tb.recognition_rate(
            rng=PROBE_SEED, trials_per_pattern=2
        ),
    }


def _golden_path(index: int) -> Path:
    return GOLDEN_DIR / f"tb{index}.json"


@pytest.mark.parametrize("index", [1, 2, 3])
def test_testbench_metrics_match_golden(index, update_golden):
    measured = _measure(index)
    path = _golden_path(index)
    if update_golden:
        payload = {
            "testbench": index,
            "dimension": DIMENSION,
            "network_seed": NETWORK_SEED,
            "flow_seed": FLOW_SEED,
            "probe_seed": PROBE_SEED,
            "metrics": {
                name: {"value": value, **TOLERANCES[name]}
                for name, value in measured.items()
            },
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"golden fixture rewritten: {path.name}")
    assert path.exists(), (
        f"{path} is missing — generate it with "
        "`pytest tests/golden --update-golden`"
    )
    golden = json.loads(path.read_text())
    assert golden["dimension"] == DIMENSION and golden["flow_seed"] == FLOW_SEED
    failures = []
    for name, spec in golden["metrics"].items():
        expected = spec["value"]
        actual = measured[name]
        atol = spec.get("atol", 0.0)
        rtol = spec.get("rtol", 0.0)
        bound = atol + rtol * abs(expected)
        if abs(actual - expected) > bound:
            failures.append(
                f"{name}: measured {actual!r}, golden {expected!r} "
                f"(tolerance ±{bound:g})"
            )
    assert not failures, (
        f"tb{index} drifted from its golden fixture:\n  " + "\n  ".join(failures)
        + "\n(if the drift is intentional, refresh with --update-golden)"
    )
