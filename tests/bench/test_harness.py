"""Tests for the perf harness (:mod:`repro.bench`).

The suites run at a deliberately tiny dimension here — the point is the
harness machinery (schema round-trip, regression gate, CLI), not the
benchmark numbers themselves.
"""

import copy
import json

import pytest

from repro.bench import (
    BASELINE_FILES,
    DEFAULT_THRESHOLD_PCT,
    SCHEMA_VERSION,
    SUITES,
    compare_to_baseline,
    kernel_gate_failures,
    load_suite_json,
    main,
    metric_gate,
    run_suite,
    suite_result_from_dict,
    write_suite_json,
)
from repro.physical.routing.kernel import interpreted_kernel

DIM = 16  # smallest practical scaled testbench


@pytest.fixture(scope="module")
def routing_suite():
    # kernel="python" keeps the record list identical whether or not the
    # optional numba dependency is installed; the kernel records have
    # their own tests below.
    return run_suite(
        "routing", fast=True, dimension=DIM, testbenches=(1,), kernel="python"
    )


class TestSuiteRun:
    def test_covers_both_algorithms(self, routing_suite):
        names = [record.name for record in routing_suite.benchmarks]
        assert names == ["tb1.ordered", "tb1.negotiated"]

    def test_records_carry_qor_and_counters(self, routing_suite):
        for record in routing_suite.benchmarks:
            assert record.wall_seconds >= 0.0
            assert "wirelength_um" in record.qor
            assert "overflow_wires" in record.qor
            assert record.counters.get("routing.heap_pushes", 0) > 0
            assert "routing.ripup_retries" in record.counters

    def test_flow_suite_runs(self):
        result = run_suite("flow", fast=True, dimension=DIM)
        assert [r.name for r in result.benchmarks] == [
            "flow.tb1.ordered",
            "flow.tb1.negotiated",
            "chaos.null",
            "chaos.transient",
        ]
        for record in result.benchmarks[:2]:
            assert record.qor["area_um2"] > 0

    def test_chaos_records_pin_resilience_accounting(self):
        result = run_suite("flow", fast=True, dimension=DIM)
        by_name = {record.name: record for record in result.benchmarks}
        null = by_name["chaos.null"]
        # The null-plan contract: a resilient runner with chaos off must
        # not retry, inject or fail anything.
        assert null.qor["retries"] == 0.0
        assert null.qor["faults_injected"] == 0.0
        assert null.qor["failures"] == 0.0
        transient = by_name["chaos.transient"]
        # Injected flakes all recover, and recovery replays the same
        # values (the checksum matches the fault-free grid bitwise).
        assert transient.qor["faults_injected"] > 0
        assert transient.qor["retries"] == transient.qor["faults_injected"]
        assert transient.qor["failures"] == 0.0
        assert transient.qor["checksum"] == null.qor["checksum"]

    def test_clustering_suite_runs_and_pins_verification(self):
        # The committed profile is 50k neurons; the harness test only
        # exercises the machinery, so override the dimension down.
        result = run_suite("clustering", dimension=96)
        assert result.mode == "scale"
        assert [r.name for r in result.benchmarks] == [
            "scale.generate",
            "scale.cluster",
            "scale.map",
            "scale.verify",
        ]
        by_name = {record.name: record for record in result.benchmarks}
        assert by_name["scale.generate"].qor["connections"] > 0
        assert by_name["scale.map"].qor["netlist_cells"] > 0
        # The invariants the gate pins: verification must stay clean.
        assert by_name["scale.verify"].qor["failed_checks"] == 0.0
        assert by_name["scale.verify"].qor["violations"] == 0.0

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError, match="unknown bench suite"):
            run_suite("placement")

    def test_kernel_records_land_side_by_side(self):
        # interpreted_kernel() makes the kernel "available" even on
        # minimal installs, so this covers the numba CI leg's shape.
        with interpreted_kernel():
            result = run_suite(
                "routing", fast=True, dimension=DIM, testbenches=(1,),
                kernel="auto",
            )
        names = [record.name for record in result.benchmarks]
        assert names == [
            "tb1.ordered",
            "tb1.ordered.kernel",
            "tb1.negotiated",
            "tb1.negotiated.kernel",
        ]
        by_name = {record.name: record for record in result.benchmarks}
        for algorithm in ("ordered", "negotiated"):
            kernel = by_name[f"tb1.{algorithm}.kernel"]
            reference = by_name[f"tb1.{algorithm}"]
            assert "kernel" in kernel.tags
            assert kernel.qor["speedup_vs_python"] > 0
            # The parity contract: every shared QoR metric bit-identical.
            for metric, value in reference.qor.items():
                assert kernel.qor[metric] == value
        # The uncompiled kernel cannot hit the 5x floor, and the gate
        # must say so (the parity half stays clean).
        failures = kernel_gate_failures(result)
        assert all("floor" in failure for failure in failures)
        assert kernel_gate_failures(result, floor=0.0) == []

    def test_kernel_python_suite_has_no_kernel_records(self, routing_suite):
        assert all("kernel" not in r.tags for r in routing_suite.benchmarks)
        assert kernel_gate_failures(routing_suite) == []

    def test_every_suite_has_a_baseline_file(self):
        assert set(BASELINE_FILES) == set(SUITES)
        assert BASELINE_FILES["service"] == "BENCH_service.json"
        assert BASELINE_FILES["clustering"] == "BENCH_clustering.json"


class TestMetricGate:
    def test_throughput_metrics_never_gate(self):
        assert metric_gate("throughput_rps") == "never"
        assert metric_gate("requests_per_second") == "never"

    def test_wall_clock_metrics_gate_only_on_time_threshold(self):
        assert metric_gate("p50_latency_seconds") == "time"
        assert metric_gate("p99_latency_seconds") == "time"

    def test_deterministic_metrics_always_gate(self):
        assert metric_gate("requests") == "always"
        assert metric_gate("miss_ratio") == "always"
        assert metric_gate("wirelength_um") == "always"

    def test_speedup_metrics_never_gate(self):
        # Higher-is-better: gating it as lower-is-better would punish
        # kernel improvements.  The floor gate handles the minimum.
        assert metric_gate("speedup_vs_python") == "never"

    def test_gate_policy_applied_by_comparison(self, routing_suite):
        baseline = copy.deepcopy(routing_suite)
        record = baseline.benchmarks[0]
        candidate = copy.deepcopy(routing_suite)
        # A throughput drop and a latency spike, both machine noise.
        record.qor["throughput_rps"] = 1000.0
        candidate.benchmarks[0].qor["throughput_rps"] = 10.0
        record.qor["p99_latency_seconds"] = 0.001
        candidate.benchmarks[0].qor["p99_latency_seconds"] = 1.0
        assert compare_to_baseline(candidate, baseline) == []
        # The latency spike does gate once a time threshold is given;
        # the throughput drop still never does.
        failures = compare_to_baseline(
            candidate, baseline, time_threshold_pct=50.0
        )
        assert failures
        assert all("latency" in f for f in failures)


class TestSchema:
    def test_round_trip(self, routing_suite, tmp_path):
        path = tmp_path / BASELINE_FILES["routing"]
        write_suite_json(routing_suite, path)
        loaded = load_suite_json(path)
        assert loaded.to_dict() == routing_suite.to_dict()
        assert json.loads(path.read_text())["schema_version"] == SCHEMA_VERSION

    def test_version_mismatch_rejected(self, routing_suite):
        payload = routing_suite.to_dict()
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema_version"):
            suite_result_from_dict(payload)

    def test_missing_field_rejected(self, routing_suite):
        payload = routing_suite.to_dict()
        del payload["dimension"]
        with pytest.raises(ValueError, match="dimension"):
            suite_result_from_dict(payload)


class TestRegressionGate:
    def test_self_comparison_passes(self, routing_suite):
        assert compare_to_baseline(routing_suite, routing_suite) == []

    def test_qor_regression_detected(self, routing_suite):
        baseline = copy.deepcopy(routing_suite)
        # Pretend the baseline was much better than the candidate.
        scale = 1.0 + 2 * DEFAULT_THRESHOLD_PCT / 100.0
        for record in baseline.benchmarks:
            record.qor["wirelength_um"] /= scale
        failures = compare_to_baseline(routing_suite, baseline)
        assert failures
        assert all("wirelength_um" in f for f in failures)

    def test_counter_regression_detected(self, routing_suite):
        baseline = copy.deepcopy(routing_suite)
        for record in baseline.benchmarks:
            record.counters["routing.heap_pushes"] /= 10.0
        assert compare_to_baseline(routing_suite, baseline)

    def test_within_threshold_passes(self, routing_suite):
        baseline = copy.deepcopy(routing_suite)
        for record in baseline.benchmarks:
            record.qor["wirelength_um"] /= 1.0 + DEFAULT_THRESHOLD_PCT / 300.0
        assert compare_to_baseline(routing_suite, baseline) == []

    def test_mode_mismatch_detected(self, routing_suite):
        baseline = copy.deepcopy(routing_suite)
        baseline.mode = "full"
        failures = compare_to_baseline(routing_suite, baseline)
        assert failures and "parameters" in failures[0]

    def test_missing_benchmark_detected(self, routing_suite):
        candidate = copy.deepcopy(routing_suite)
        candidate.benchmarks = candidate.benchmarks[:1]
        failures = compare_to_baseline(candidate, routing_suite)
        assert any("disappeared" in f for f in failures)

    def test_skip_tags_tolerate_missing_kernel_records(self, routing_suite):
        # A baseline regenerated on a numba machine carries .kernel
        # records; a minimal install cannot reproduce them and must
        # skip rather than fail them.
        baseline = copy.deepcopy(routing_suite)
        extra = copy.deepcopy(baseline.benchmarks[0])
        extra.name += ".kernel"
        extra.tags = extra.tags + ["kernel"]
        baseline.benchmarks.append(extra)
        failures = compare_to_baseline(routing_suite, baseline)
        assert any("disappeared" in f for f in failures)
        assert compare_to_baseline(
            routing_suite, baseline, skip_tags=("kernel",)
        ) == []

    def test_wall_time_not_gated_by_default(self, routing_suite):
        baseline = copy.deepcopy(routing_suite)
        for record in baseline.benchmarks:
            record.wall_seconds /= 1000.0
        assert compare_to_baseline(routing_suite, baseline) == []
        assert compare_to_baseline(
            routing_suite, baseline, time_threshold_pct=50.0
        )


class TestCli:
    ARGS = ["--suites", "routing", "--fast",
            "--dimension", str(DIM), "--testbenches", "1"]

    def test_write_then_check_round_trips(self, tmp_path, capsys):
        base = ["--baseline-dir", str(tmp_path)] + self.ARGS
        assert main(base) == 0
        assert (tmp_path / BASELINE_FILES["routing"]).exists()
        assert main(base + ["--check"]) == 0
        out = capsys.readouterr().out
        assert "OK routing" in out

    def test_check_without_baseline_fails(self, tmp_path, capsys):
        assert main(["--baseline-dir", str(tmp_path), "--check"] + self.ARGS) == 1
        assert "no baseline" in capsys.readouterr().out

    def test_check_detects_doctored_baseline(self, tmp_path, capsys):
        base = ["--baseline-dir", str(tmp_path)] + self.ARGS
        assert main(base) == 0
        path = tmp_path / BASELINE_FILES["routing"]
        payload = json.loads(path.read_text())
        for record in payload["benchmarks"]:
            record["qor"]["wirelength_um"] /= 10.0
        path.write_text(json.dumps(payload))
        assert main(base + ["--check"]) == 1
        assert "regressed" in capsys.readouterr().out

    def test_check_and_update_are_exclusive(self, tmp_path, capsys):
        status = main(
            ["--baseline-dir", str(tmp_path), "--check", "--update-baseline"]
            + self.ARGS
        )
        assert status == 2

    def test_update_baseline_writes(self, tmp_path):
        assert main(
            ["--baseline-dir", str(tmp_path), "--update-baseline"] + self.ARGS
        ) == 0
        assert load_suite_json(tmp_path / BASELINE_FILES["routing"]).mode == "fast"
