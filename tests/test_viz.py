"""Tests for the dependency-free visualization module."""

import numpy as np
import pytest

from repro.networks import block_diagonal_network
from repro.physical.layout import Placement
from repro.viz import (
    ascii_heatmap,
    ascii_layout,
    ascii_matrix,
    congestion_to_svg,
    layout_to_svg,
    matrix_to_svg,
    save_svg,
)


@pytest.fixture(scope="module")
def network():
    return block_diagonal_network([10, 8], within_density=0.8,
                                  between_density=0.05, rng=0)


@pytest.fixture(scope="module")
def placement():
    return Placement(
        x=np.array([5.0, 20.0, 35.0]),
        y=np.array([5.0, 20.0, 5.0]),
        widths=np.array([8.0, 4.0, 1.0]),
        heights=np.array([8.0, 4.0, 1.0]),
    )


class TestMatrixSvg:
    def test_valid_svg(self, network):
        svg = matrix_to_svg(network, size_px=120)
        assert svg.startswith("<?xml")
        assert svg.rstrip().endswith("</svg>")
        assert svg.count("<rect") >= network.num_connections

    def test_cluster_overlays(self, network):
        svg = matrix_to_svg(network, clusters=[range(10), range(10, 18)])
        assert svg.count('stroke="#d62728"') == 2

    def test_title(self, network):
        svg = matrix_to_svg(network, title="hello")
        assert "hello" in svg

    def test_empty_matrix(self):
        svg = matrix_to_svg(np.zeros((0, 0)))
        assert "</svg>" in svg


class TestLayoutSvg:
    def test_colors_by_kind(self, placement):
        svg = layout_to_svg(placement, ["crossbar", "neuron", "synapse"])
        assert "#1f77b4" in svg  # crossbar blue
        assert "#2ca02c" in svg  # neuron green
        assert "#d62728" in svg  # synapse red

    def test_kind_length_checked(self, placement):
        with pytest.raises(ValueError):
            layout_to_svg(placement, ["neuron"])


class TestCongestionSvg:
    def test_renders(self):
        svg = congestion_to_svg(np.arange(12.0).reshape(3, 4), size_px=60)
        assert svg.count("<rect") >= 12

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            congestion_to_svg(np.zeros(5))

    def test_all_zero_map(self):
        svg = congestion_to_svg(np.zeros((2, 2)))
        assert "</svg>" in svg


class TestSaveSvg:
    def test_roundtrip(self, tmp_path, network):
        path = tmp_path / "m.svg"
        save_svg(matrix_to_svg(network), path)
        assert path.read_text().startswith("<?xml")


class TestAscii:
    def test_matrix_shades_structure(self, network):
        art = ascii_matrix(network, width=18)
        lines = art.split("\n")
        assert len(lines) == 18
        # the dense blocks appear as non-space characters
        assert any(ch != " " for ch in art)

    def test_matrix_empty(self):
        assert ascii_matrix(np.zeros((0, 0))) == ""

    def test_layout_symbols(self, placement):
        art = ascii_layout(placement, ["crossbar", "neuron", "synapse"])
        assert "#" in art and "." in art and "+" in art

    def test_layout_validates(self, placement):
        with pytest.raises(ValueError):
            ascii_layout(placement, ["neuron"])

    def test_heatmap(self):
        art = ascii_heatmap(np.eye(4), columns=8, rows=4)
        assert len(art.split("\n")) == 4

    def test_heatmap_empty(self):
        assert ascii_heatmap(np.zeros((0, 0))) == ""
