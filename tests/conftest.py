"""Shared fixtures: small, fast networks, pre-run flows, hypothesis profiles."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

from repro.clustering import iterative_spectral_clustering
from repro.mapping import autoncs_mapping, fullcro_mapping, fullcro_utilization
from repro.networks import block_diagonal_network, random_sparse_network

# Hypothesis profiles: "dev" (default) explores freely; "ci" is fully
# deterministic — derandomized, database-free — so a CI failure reproduces
# locally with HYPOTHESIS_PROFILE=ci and nothing depends on cached example
# state.  Select with the HYPOTHESIS_PROFILE environment variable.
settings.register_profile("dev", deadline=None)
settings.register_profile(
    "ci", deadline=None, derandomize=True, database=None, print_blob=True
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the golden regression fixtures under tests/golden/ "
        "with freshly measured metrics instead of comparing against them",
    )


@pytest.fixture(scope="session")
def update_golden(request):
    """True when the run should refresh golden fixtures, not assert them."""
    return request.config.getoption("--update-golden")


@pytest.fixture(scope="session")
def block_network():
    """A 75-neuron planted-block network — clusters are easy to find."""
    return block_diagonal_network([30, 25, 20], within_density=0.8,
                                  between_density=0.01, rng=1)


@pytest.fixture(scope="session")
def sparse_network():
    """A 60-neuron uniform sparse network — the unstructured stress case."""
    return random_sparse_network(60, density=0.08, rng=2)


@pytest.fixture(scope="session")
def small_isc(block_network):
    """An ISC run on the block network (session-cached: it is deterministic)."""
    threshold = fullcro_utilization(block_network, 64)
    return iterative_spectral_clustering(
        block_network, utilization_threshold=threshold, rng=0
    )


@pytest.fixture(scope="session")
def small_mapping(small_isc):
    """The AutoNCS mapping of the cached ISC run."""
    return autoncs_mapping(small_isc)


@pytest.fixture(scope="session")
def small_fullcro(block_network):
    """The FullCro mapping of the block network."""
    return fullcro_mapping(block_network)


@pytest.fixture()
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(1234)
