"""Failure-injection and stress tests across subsystems.

These verify graceful behaviour at the edges: saturated routing grids,
degenerate networks, hostile clustering inputs, and overloaded Hopfield
storage.
"""

import numpy as np
import pytest

import repro.core.autoncs as autoncs_module
from repro.clustering import (
    greedy_cluster_size_prediction,
    iterative_spectral_clustering,
)
from repro.core import AutoNCS, StageError
from repro.core.config import fast_config
from repro.hardware.simulation import CrossbarSimulator, NonIdealityModel
from repro.mapping import autoncs_mapping, fullcro_mapping
from repro.networks import ConnectionMatrix, random_sparse_network
from repro.networks.hopfield import HopfieldNetwork, recognition_rate
from repro.networks.patterns import qr_like_patterns
from repro.physical.layout import Placement
from repro.physical.routing.router import RoutingConfig, route
from repro.reliability import repair_mapping, sample_defect_map


class TestRoutingUnderStress:
    def test_capacity_one_still_routes_everything(self):
        net = random_sparse_network(30, 0.15, rng=0)
        mapping = fullcro_mapping(net)
        netlist = mapping.netlist
        rng = np.random.default_rng(1)
        placement = Placement(
            x=rng.random(netlist.num_cells) * 30,  # tiny region -> congestion
            y=rng.random(netlist.num_cells) * 30,
            widths=netlist.widths(),
            heights=netlist.heights(),
        )
        config = RoutingConfig(capacity_per_bin=1, max_relax_rounds=2)
        result = route(netlist, placement, config=config)
        assert len(result.wires) == netlist.num_wires  # never-fail guarantee
        # congestion is reported, not hidden
        assert result.grid.max_congestion() >= 1.0

    def test_all_cells_in_one_bin(self):
        net = random_sparse_network(12, 0.3, rng=2)
        mapping = fullcro_mapping(net)
        netlist = mapping.netlist
        placement = Placement(
            x=np.full(netlist.num_cells, 5.0),
            y=np.full(netlist.num_cells, 5.0),
            widths=netlist.widths(),
            heights=netlist.heights(),
        )
        result = route(netlist, placement, config=RoutingConfig(bin_um=50.0))
        # every wire is intra-bin: zero routed grid length
        assert result.total_wirelength_um == pytest.approx(0.0)


class TestClusteringDegenerateInputs:
    def test_fully_connected_network(self):
        m = np.ones((20, 20), dtype=np.uint8)
        np.fill_diagonal(m, 0)
        net = ConnectionMatrix(m)
        result = greedy_cluster_size_prediction(net, 8, rng=0)
        assert result.max_size() <= 8

    def test_single_neuron(self):
        net = ConnectionMatrix(np.zeros((1, 1)))
        result = greedy_cluster_size_prediction(net, 4, rng=0)
        assert result.k == 1

    def test_two_neuron_ring(self):
        net = ConnectionMatrix(np.array([[0, 1], [1, 0]]))
        isc = iterative_spectral_clustering(net, utilization_threshold=0.0,
                                            max_iterations=3, rng=0)
        isc.validate()

    def test_star_network(self):
        # one hub connected to everything: resists clean partitioning
        n = 40
        m = np.zeros((n, n), dtype=np.uint8)
        m[0, 1:] = 1
        m[1:, 0] = 1
        net = ConnectionMatrix(m)
        isc = iterative_spectral_clustering(net, utilization_threshold=0.001,
                                            max_iterations=10, rng=0)
        isc.validate()

    def test_disconnected_components(self):
        m = np.zeros((30, 30), dtype=np.uint8)
        m[:10, :10] = 1
        m[20:, 20:] = 1
        np.fill_diagonal(m, 0)
        net = ConnectionMatrix(m)
        result = greedy_cluster_size_prediction(net, 12, rng=0)
        assert result.max_size() <= 12


class TestHopfieldOverload:
    def test_over_capacity_degrades_not_crashes(self):
        # 40 patterns in 60 neurons: way past Hopfield capacity
        patterns = qr_like_patterns(40, 60, rng=0)
        network = HopfieldNetwork.train(patterns)
        rate = recognition_rate(network, trials_per_pattern=1, rng=0)
        assert 0.0 <= rate <= 1.0  # degraded recall, defined behaviour

    def test_extreme_sparsity_keeps_symmetry(self):
        patterns = qr_like_patterns(5, 100, rng=1)
        sparse = HopfieldNetwork.train(patterns).sparsify(0.995)
        assert np.allclose(sparse.weights, sparse.weights.T)
        assert sparse.sparsity >= 0.99


class TestAnalogWorstCase:
    def test_all_devices_stuck_off(self):
        sim = CrossbarSimulator(
            np.ones((8, 8)),
            model=NonIdealityModel(stuck_off_probability=1.0),
            rng=0,
        )
        outputs = sim.compute(np.ones(8))
        # only the off-leakage remains
        assert np.all(outputs < 0.01 * 8)

    def test_extreme_ir_drop_attenuates_far_corner(self):
        model = NonIdealityModel(ir_drop_coefficient=1.0)
        sim = CrossbarSimulator(np.ones((16, 16)), model=model, rng=0)
        near = np.zeros(16)
        near[0] = 1.0
        far = np.zeros(16)
        far[15] = 1.0
        near_out = sim.compute(near)
        far_out = sim.compute(far)
        assert far_out[15] < near_out[0]


class TestMappingConsistencyUnderStress:
    def test_dense_network_maps_completely(self):
        m = np.ones((70, 70), dtype=np.uint8)
        np.fill_diagonal(m, 0)
        net = ConnectionMatrix(m)
        isc = iterative_spectral_clustering(net, utilization_threshold=0.01,
                                            max_iterations=20, rng=0)
        mapping = autoncs_mapping(isc)
        mapping.validate()

    def test_empty_network_maps_to_nothing(self):
        net = ConnectionMatrix(np.zeros((25, 25)))
        isc = iterative_spectral_clustering(net, utilization_threshold=0.01, rng=0)
        mapping = autoncs_mapping(isc)
        assert mapping.num_crossbars == 0
        assert mapping.num_synapses == 0
        # neurons still exist as cells
        assert mapping.netlist.num_cells == 25


class TestRepairWorstCase:
    def test_every_cell_dead_demotes_every_cluster(self):
        # 100 % stuck-off cells and no spares: rebinding cannot help, so the
        # repair pass must demote every cluster to discrete synapses and
        # still produce a valid (crossbar-free) mapping.
        net = random_sparse_network(50, 0.1, rng=4)
        isc = iterative_spectral_clustering(net, utilization_threshold=0.2, rng=4)
        mapping = autoncs_mapping(isc)
        assert mapping.num_crossbars > 0
        defect_map = sample_defect_map(mapping, 1.0, rng=4)
        repaired, report = repair_mapping(mapping, defect_map)
        repaired.validate()
        assert repaired.num_crossbars == 0
        assert report.clusters_demoted == mapping.num_crossbars
        assert repaired.num_synapses == net.num_connections


class TestPipelineStageFailure:
    def test_dead_placers_raise_stage_error_naming_placement(self, monkeypatch):
        # Both the analytical placer and its annealing fallback blow up: the
        # flow must surface a StageError carrying the failing stage name.
        def broken(netlist, **kwargs):
            raise RuntimeError("synthetic placement failure")

        monkeypatch.setattr(autoncs_module, "place", broken)
        monkeypatch.setattr(autoncs_module, "anneal_place", broken)
        net = random_sparse_network(40, 0.1, rng=6)
        with pytest.raises(StageError) as excinfo:
            AutoNCS(fast_config()).run(net, rng=6)
        assert excinfo.value.stage == "placement"
        assert "mapping" in excinfo.value.partial
