"""Snapshot + contract tests for the stable public API (``repro.api``).

The facade is the supported surface: ``repro.map_network``,
``repro.compare``, ``repro.verify``.  These tests pin its names,
keyword-only signatures, return types, the deprecation shims at the old
deep-import locations, and the facade/submodule coexistence trick
(``repro.verify`` is simultaneously a callable and an importable
package).
"""

from __future__ import annotations

import inspect
import warnings

import pytest

import repro
import repro.api
from repro.core import AutoNcsResult, ComparisonReport
from repro.networks import random_sparse_network
from repro.verify.report import VerificationReport


@pytest.fixture(scope="module")
def network():
    return random_sparse_network(48, 0.08, rng=11, name="api-net")


# ---------------------------------------------------------------- snapshot
#: The supported top-level surface.  Additions are fine; removals or
#: renames are an API break and must bump the major version.
PUBLIC_API = {
    # facade
    "map_network", "compare", "verify", "load_network", "FlowOptions",
    # flow objects
    "AutoNCS", "AutoNcsConfig", "AutoNcsResult", "ComparisonReport",
    "fast_config",
    # observability
    "MetricsSnapshot", "Recorder", "get_recorder", "recording",
    "set_recorder", "write_chrome_trace", "write_metrics_text",
    "__version__",
}


def test_public_api_snapshot():
    assert PUBLIC_API <= set(repro.__all__) | {"__version__"}
    for name in PUBLIC_API:
        assert hasattr(repro, name), f"repro.{name} missing"


def test_api_module_all():
    assert set(repro.api.__all__) == {
        "FlowOptions",
        "compare",
        "load_network",
        "map_network",
        "verify",
    }


def test_version_is_semver():
    major, minor, patch = repro.__version__.split(".")
    assert all(part.isdigit() for part in (major, minor, patch))


# ------------------------------------------------------- keyword-only args
@pytest.mark.parametrize("name", ["map_network", "compare", "verify"])
def test_facade_config_args_are_keyword_only(name):
    fn = getattr(repro.api, name)
    params = inspect.signature(fn).parameters
    positional = [
        p for p in params.values()
        if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
    ]
    assert len(positional) == 1, f"{name} must take exactly one positional arg"
    for p in params.values():
        if p.name != positional[0].name:
            assert p.kind == p.KEYWORD_ONLY, f"{name}({p.name}) must be keyword-only"
            assert p.default is not p.empty, f"{name}({p.name}) must have a default"


def test_top_level_names_are_the_api_functions():
    assert repro.map_network is repro.api.map_network
    assert repro.compare is repro.api.compare
    assert repro.verify is repro.api.verify


# ---------------------------------------------------------------- behaviour
def test_map_network_returns_result(network):
    from repro.core.config import fast_config

    result = repro.map_network(network, config=fast_config(), seed=3)
    assert isinstance(result, AutoNcsResult)
    assert result.design.cost.wirelength_um > 0


def test_verify_facade_on_network(network):
    from repro.core.config import fast_config

    report = repro.verify(
        network, config=fast_config(), seed=3, checks=["coverage", "hardware"]
    )
    assert isinstance(report, VerificationReport)
    assert report.passed


def test_verify_facade_rejects_unknown_target():
    with pytest.raises(TypeError):
        repro.verify(object())


def test_compare_facade_serial_matches_class(network):
    from repro.core import AutoNCS
    from repro.core.config import fast_config

    via_facade = repro.compare(network, config=fast_config(), seed=5)
    via_class = AutoNCS(fast_config()).compare(network, rng=5)
    assert isinstance(via_facade, ComparisonReport)
    assert via_facade.rows() == via_class.rows()


# ----------------------------------------------------- facade vs submodule
def test_verify_submodule_still_importable():
    import repro.verify as verify_pkg  # the package, via sys.modules

    # The attribute on the repro package is the facade function...
    assert callable(repro.verify)
    assert repro.verify is repro.api.verify
    # ...but `import repro.verify` and `from repro.verify import X` still
    # reach the subpackage (sys.modules wins for import statements).
    from repro.verify import verify_flow, verify_mapping  # noqa: F401

    assert hasattr(verify_pkg, "verify_flow") or callable(verify_pkg)


# ---------------------------------------------------------- deprecation shims
@pytest.mark.parametrize("name", ["map_network", "compare", "verify"])
def test_core_shims_warn_and_delegate(name, network):
    import repro.core

    shim = getattr(repro.core, name)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        try:
            shim(object())  # wrong type: delegate raises like the facade
        except Exception:
            pass
    assert any(issubclass(w.category, DeprecationWarning) for w in caught)
    assert any("repro.api" in str(w.message) for w in caught)


# -------------------------------------------------- result-object surface
def test_result_objects_have_uniform_surface(network):
    from repro.core.config import fast_config

    result = repro.map_network(network, config=fast_config(), seed=3)
    report = repro.compare(network, config=fast_config(), seed=3)
    verification = repro.verify(result, checks=["coverage", "hardware"])
    for obj in (result, report, verification):
        data = obj.to_dict()
        assert isinstance(data, dict) and data
        table = obj.format_table()
        assert isinstance(table, str) and table


def test_mapping_result_surface(network):
    from repro.core.config import fast_config

    result = repro.map_network(network, config=fast_config(), seed=3)
    data = result.mapping.to_dict()
    assert data["netlist_cells"] > 0
    assert result.mapping.format_table().startswith("mapping ")
