"""End-to-end instrumentation tests: real flows under a real recorder.

These are the acceptance tests for the tentpole: a full ``AutoNCS``
run/compare must produce spans for every flow stage and the headline
counters, a sweep through the :mod:`repro.runtime` engine must fold
worker metrics back into the driver, and the whole thing must stay
silent when no recorder is installed.
"""

from __future__ import annotations

import pytest

from repro.core import AutoNCS
from repro.core.config import fast_config
from repro.networks import random_sparse_network
from repro.observability import (
    get_recorder,
    read_chrome_trace,
    recording,
    write_chrome_trace,
)

FLOW_STAGES = ("flow.cluster", "flow.map", "flow.place", "flow.route", "flow.evaluate")


@pytest.fixture(scope="module")
def network():
    return random_sparse_network(56, 0.07, rng=9, name="obs-net")


@pytest.fixture(scope="module")
def recorded_compare(network):
    with recording() as recorder:
        report = AutoNCS(fast_config()).compare(network, rng=4)
    return recorder, report


class TestFlowTracing:
    def test_every_flow_stage_has_a_span(self, recorded_compare):
        recorder, _report = recorded_compare
        names = {span.name for span in recorder.tracer.spans}
        for stage in FLOW_STAGES:
            assert stage in names, f"missing span {stage}"
        assert "flow.run" in names and "flow.run_baseline" in names
        assert "flow.compare" in names

    def test_span_hierarchy(self, recorded_compare):
        recorder, _report = recorded_compare
        run = recorder.tracer.named("flow.run")[0]
        assert run.parent == "flow.compare"
        assert run.attributes["network"] == "obs-net"
        for stage in ("flow.cluster", "flow.map"):
            assert recorder.tracer.named(stage)[0].parent == "flow.run"

    def test_headline_counters_recorded(self, recorded_compare):
        recorder, _report = recorded_compare
        snapshot = recorder.snapshot()
        assert snapshot.get("flow.runs") == 1
        assert snapshot.get("flow.baseline_runs") == 1
        assert snapshot.get("isc.runs") == 1
        assert snapshot.get("placement.wa_evals", 0) > 0
        assert snapshot.get("routing.wires_routed", 0) > 0
        assert snapshot.get("routing.ripup_retries") is not None
        assert snapshot.get("routing.heap_pushes", 0) > 0

    def test_trace_round_trip_through_full_run(self, recorded_compare, tmp_path):
        recorder, _report = recorded_compare
        path = write_chrome_trace(recorder.tracer.spans, tmp_path / "flow.jsonl")
        events = read_chrome_trace(path)
        names = {e["name"] for e in events}
        for stage in FLOW_STAGES:
            assert stage in names
        assert len(events) == len(recorder.tracer.spans)

    def test_flow_quiet_without_recorder(self, network):
        assert not get_recorder().enabled
        AutoNCS(fast_config()).run(network, rng=4)
        assert get_recorder().tracer.spans == []
        assert get_recorder().snapshot().empty


class TestRuntimeInstrumentation:
    def test_sweep_folds_worker_metrics(self, tmp_path):
        from repro.runtime import ArtifactCache, Runner, SweepSpec

        spec = SweepSpec(
            sizes=(24, 32), densities=(0.1,), seed=7, kind="autoncs",
            config=fast_config(),
        )
        cache = ArtifactCache(tmp_path / "cache")
        with recording() as recorder:
            Runner(n_jobs=2, cache=cache).run_sweep(spec)
        snapshot = recorder.snapshot()
        assert snapshot.get("runner.jobs_executed") == 2
        assert snapshot.get("cache.stores", 0) > 0
        # worker-side flow counters folded back into the driver
        assert snapshot.get("flow.runs") == 2
        assert snapshot.get("placement.wa_evals", 0) > 0
        # one runner.job span per executed job, absorbed with worker pids
        jobs = recorder.tracer.named("runner.job")
        assert len(jobs) == 2
        assert recorder.tracer.named("runner.sweep")

    def test_cached_rerun_counts_hits(self, tmp_path):
        from repro.runtime import ArtifactCache, Runner, SweepSpec

        spec = SweepSpec(
            sizes=(24,), densities=(0.1,), seed=7, kind="autoncs",
            config=fast_config(),
        )
        cache = ArtifactCache(tmp_path / "cache")
        Runner(n_jobs=1, cache=cache).run_sweep(spec)  # warm, unrecorded
        with recording() as recorder:
            Runner(n_jobs=1, cache=cache).run_sweep(spec)
        snapshot = recorder.snapshot()
        assert snapshot.get("cache.hits") == 1
        # The gauge is the cache *instance's* running rate: the warm run's
        # miss stays in the denominator (1 miss + 1 hit = 0.5).
        assert snapshot.get("cache.hit_rate") == 0.5
        assert snapshot.get("runner.jobs_cached") == 1

    def test_yield_eval_instrumented(self):
        from repro.experiments.testbenches import build_testbench, scaled_testbench
        from repro.reliability.yield_eval import evaluate_yield

        instance = build_testbench(scaled_testbench(1, 24), rng=5)
        result = AutoNCS(fast_config()).run(instance.network, rng=5)
        with recording() as recorder:
            evaluate_yield(
                instance.hopfield,
                result.mapping,
                defect_rates=(0.2,),
                samples=2,
                rng=5,
            )
        snapshot = recorder.snapshot()
        assert snapshot.get("reliability.yield_trials", 0) > 0
        assert recorder.tracer.named("reliability.evaluate_yield")
