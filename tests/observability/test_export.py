"""Exporter tests: Chrome trace round-trip, metrics text, QoR table."""

from __future__ import annotations

import json

from repro.observability import (
    Recorder,
    chrome_trace_events,
    format_qor_table,
    read_chrome_trace,
    write_chrome_trace,
    write_metrics_text,
)


def _recorded() -> Recorder:
    recorder = Recorder()
    with recorder.span("flow.run", network="tb1"):
        with recorder.span("flow.route", wires=9) as span:
            span.annotate(overflow=0)
    recorder.count("routing.ripup_retries", 2)
    recorder.gauge("cache.hit_rate", 0.75)
    recorder.observe_many("routing.path_bins", [3.0, 5.0])
    return recorder


class TestChromeTrace:
    def test_events_shape(self):
        events = chrome_trace_events(_recorded().tracer.spans)
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] > 0 and event["dur"] >= 0
            assert event["cat"] == event["name"].split(".")[0]
        by_name = {e["name"]: e for e in events}
        assert by_name["flow.route"]["args"]["parent"] == "flow.run"
        assert by_name["flow.route"]["args"]["overflow"] == 0
        # sorted by start time: parent opens before child
        assert events[0]["name"] == "flow.run"

    def test_file_is_valid_json_and_one_event_per_line(self, tmp_path):
        path = write_chrome_trace(_recorded().tracer.spans, tmp_path / "t.jsonl")
        text = path.read_text()
        events = json.loads(text)  # loadable as a whole (Perfetto)
        assert len(events) == 2
        # one event per line between the brackets (greppable)
        body = text.strip().splitlines()[1:-1]
        assert len(body) == 2
        for line in body:
            json.loads(line.rstrip(","))

    def test_read_round_trip(self, tmp_path):
        recorder = _recorded()
        path = write_chrome_trace(recorder.tracer.spans, tmp_path / "t.jsonl")
        events = read_chrome_trace(path)
        assert {e["name"] for e in events} == {"flow.run", "flow.route"}

    def test_non_json_attributes_are_stringified(self, tmp_path):
        recorder = Recorder()
        with recorder.span("s", obj=object(), seq=(1, 2)):
            pass
        path = write_chrome_trace(recorder.tracer.spans, tmp_path / "t.jsonl")
        (event,) = read_chrome_trace(path)
        assert isinstance(event["args"]["obj"], str)
        assert event["args"]["seq"] == [1, 2]

    def test_accepts_exported_dicts(self):
        exported = _recorded().tracer.export()
        assert len(chrome_trace_events(exported)) == 2


class TestMetricsText:
    def test_write_with_header(self, tmp_path):
        snapshot = _recorded().snapshot()
        path = write_metrics_text(snapshot, tmp_path / "m.txt", header="run 1")
        text = path.read_text()
        assert text.startswith("run 1\n")
        assert "routing.ripup_retries" in text
        assert "cache.hit_rate" in text
        assert "routing.path_bins" in text


class TestQorTable:
    def test_groups_by_stage_prefix(self):
        table = format_qor_table(
            _recorded().snapshot(), stage_seconds={"routing": 1.25}
        )
        assert "QoR summary" in table
        assert "routing" in table and "(1.250 s)" in table
        assert "artifact cache" in table
        assert "routing.ripup_retries" in table

    def test_empty_snapshot(self):
        table = format_qor_table(Recorder().snapshot())
        assert "no metrics recorded" in table
