"""Unit tests for spans, the tracer, and the recorder scoping protocol."""

from __future__ import annotations

import os

from repro.observability import (
    NULL_RECORDER,
    Recorder,
    get_recorder,
    recording,
    set_recorder,
)
from repro.observability.spans import Span, Tracer, traced


class TestTracer:
    def test_nesting_records_parent_and_depth(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner", wires=3):
                pass
        inner, outer = tracer.spans
        assert (inner.name, inner.parent, inner.depth) == ("inner", "outer", 1)
        assert (outer.name, outer.parent, outer.depth) == ("outer", None, 0)
        assert inner.attributes == {"wires": 3}
        assert inner.duration is not None and inner.duration >= 0
        assert outer.duration >= inner.duration
        assert inner.pid == os.getpid()

    def test_span_completes_on_exception(self):
        tracer = Tracer()
        try:
            with tracer.span("failing"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert tracer.named("failing")[0].duration is not None

    def test_annotate_mid_span(self):
        tracer = Tracer()
        with tracer.span("s") as span:
            span.annotate(found=7)
        assert tracer.spans[0].attributes["found"] == 7

    def test_event_is_instantaneous(self):
        tracer = Tracer()
        with tracer.span("outer"):
            event = tracer.event("tick", phase=2)
        assert event.duration == 0.0
        assert event.parent == "outer"

    def test_export_absorb_round_trip(self):
        source, sink = Tracer(), Tracer()
        with source.span("job", index=4):
            pass
        sink.absorb(source.export())
        span = sink.named("job")[0]
        assert isinstance(span, Span)
        assert span.attributes == {"index": 4}

    def test_span_dict_round_trip(self):
        with Tracer().span("x", a=1) as span:
            pass
        assert Span.from_dict(span.to_dict()) == span


class TestRecorderScoping:
    def test_default_is_null_recorder(self):
        recorder = get_recorder()
        assert recorder is NULL_RECORDER
        assert not recorder.enabled

    def test_null_recorder_records_nothing(self):
        null = NULL_RECORDER
        with null.span("anything") as span:
            span.annotate(ignored=True)
        null.count("c")
        null.gauge("g", 1.0)
        null.observe("h", 1.0)
        assert null.tracer.spans == []
        assert null.snapshot().empty

    def test_recording_installs_and_restores(self):
        assert get_recorder() is NULL_RECORDER
        with recording() as recorder:
            assert get_recorder() is recorder
            assert recorder.enabled
            recorder.count("n", 2)
        assert get_recorder() is NULL_RECORDER
        assert recorder.snapshot().get("n") == 2

    def test_recording_restores_on_exception(self):
        try:
            with recording():
                raise ValueError("boom")
        except ValueError:
            pass
        assert get_recorder() is NULL_RECORDER

    def test_set_recorder_returns_previous(self):
        mine = Recorder()
        previous = set_recorder(mine)
        try:
            assert get_recorder() is mine
        finally:
            assert set_recorder(previous) is mine
        assert get_recorder() is previous

    def test_recorder_absorb_worker_state(self):
        worker = Recorder()
        with worker.span("runner.job", index=1):
            worker.count("routing.ripup_retries", 3)
        driver = Recorder()
        driver.count("routing.ripup_retries", 1)
        driver.absorb(worker.export_state())
        assert driver.snapshot().get("routing.ripup_retries") == 4
        assert driver.tracer.named("runner.job")

    def test_traced_decorator_uses_current_recorder(self):
        @traced("demo.fn")
        def fn(x):
            return x + 1

        with recording() as recorder:
            assert fn(1) == 2
        assert recorder.tracer.named("demo.fn")
        assert fn(1) == 2  # no-op outside a recording scope
