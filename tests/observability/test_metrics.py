"""Unit tests for the typed metric instruments and the registry."""

from __future__ import annotations

import pickle

import pytest

from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
)


class TestInstruments:
    def test_counter_increments(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_counter_rejects_negative(self):
        c = Counter("x")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_last_write_wins(self):
        g = Gauge("x")
        g.set(3.5)
        g.set(1.25)
        assert g.value == 1.25

    def test_histogram_summary(self):
        h = Histogram("x")
        h.observe_many([1.0, 2.0, 3.0])
        h.observe(10.0)
        summary = h.summary()
        assert summary["count"] == 4
        assert summary["min"] == 1.0
        assert summary["max"] == 10.0
        assert summary["total"] == pytest.approx(16.0)
        assert summary["mean"] == pytest.approx(4.0)


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_snapshot_is_immutable_read(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(2)
        snap = reg.snapshot()
        reg.counter("a").inc(10)
        assert snap.get("a") == 2
        assert reg.snapshot().get("a") == 12

    def test_absorb_folds_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc(2)
        b.counter("n").inc(3)
        a.gauge("g").set(1.0)
        b.gauge("g").set(9.0)
        a.histogram("h").observe_many([1.0, 2.0])
        b.histogram("h").observe_many([3.0, 5.0])
        a.absorb(b.snapshot())
        snap = a.snapshot()
        assert snap.get("n") == 5
        assert snap.get("g") == 9.0  # last write wins
        h = snap.histograms["h"]
        assert h["count"] == 4
        assert h["total"] == pytest.approx(11.0)
        assert h["min"] == 1.0 and h["max"] == 5.0


class TestSnapshot:
    def _snapshot(self) -> MetricsSnapshot:
        reg = MetricsRegistry()
        reg.counter("routing.ripup_retries").inc(7)
        reg.gauge("cache.hit_rate").set(0.5)
        reg.histogram("isc.crossbar_size").observe(64.0)
        return reg.snapshot()

    def test_round_trips_through_pickle(self):
        snap = self._snapshot()
        clone = pickle.loads(pickle.dumps(snap))
        assert clone.to_dict() == snap.to_dict()

    def test_to_dict_and_format_table(self):
        snap = self._snapshot()
        data = snap.to_dict()
        assert data["counters"]["routing.ripup_retries"] == 7
        table = snap.format_table()
        assert "routing.ripup_retries" in table
        assert "cache.hit_rate" in table

    def test_empty(self):
        assert MetricsSnapshot().empty
        assert not self._snapshot().empty

    def test_merge(self):
        merged = self._snapshot().merge(self._snapshot())
        assert merged.get("routing.ripup_retries") == 14
        assert merged.histograms["isc.crossbar_size"]["count"] == 2
