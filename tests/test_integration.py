"""End-to-end integration tests across all subsystems."""

import numpy as np
import pytest

from repro.core import AutoNCS
from repro.core.config import AutoNcsConfig, fast_config
from repro.hardware.simulation import HybridNcsSimulator, NonIdealityModel
from repro.networks import block_diagonal_network, ldpc_network
from repro.networks.hopfield import HopfieldNetwork
from repro.networks.patterns import corrupt_pattern, qr_like_patterns
from repro.physical.placement.placer import PlacementConfig
from repro.physical.routing.router import RoutingConfig


@pytest.fixture(scope="module")
def flow():
    return AutoNCS(fast_config())


class TestFullPipeline:
    def test_hopfield_to_silicon(self, flow):
        """The complete paper story on a miniature testbench."""
        patterns = qr_like_patterns(5, 120, rng=0)
        hopfield = HopfieldNetwork.train(patterns).sparsify(0.9).stabilize(max_epochs=20)
        network = hopfield.connection_matrix()
        result = flow.run(network, rng=0)
        baseline = flow.run_baseline(network, rng=0)
        # hybrid design implements every connection
        result.mapping.validate()
        # both designs produce positive physical metrics
        for design in (result.design, baseline):
            assert design.cost.wirelength_um > 0
            assert design.cost.area_um2 > 0
        # AutoNCS uses smaller crossbars -> lower average delay
        assert result.design.cost.average_delay_ns <= baseline.cost.average_delay_ns

    def test_recall_survives_hardware_mapping(self, flow):
        patterns = qr_like_patterns(3, 100, rng=1)
        hopfield = HopfieldNetwork.train(patterns).sparsify(0.88).stabilize(max_epochs=20)
        network = hopfield.connection_matrix()
        isc = flow.cluster(network, rng=1)
        simulator = HybridNcsSimulator(
            isc,
            signed_weights=hopfield.weights,
            model=NonIdealityModel(variation_sigma=0.03),
            rng=1,
        )
        rng = np.random.default_rng(2)
        hits = 0
        for pattern in hopfield.patterns:
            probe = corrupt_pattern(pattern, 0.05, rng=rng)
            recalled = simulator.recall(probe)
            agreement = float(np.mean(recalled == pattern))
            hits += max(agreement, 1.0 - agreement) >= 0.85
        assert hits >= 2  # at least 2 of 3 patterns survive analog mapping

    def test_ldpc_gets_utilization_boost(self, flow):
        network = ldpc_network(48, 3, 6, rng=2)
        result = flow.run(network, rng=2)
        baseline = flow.run_baseline(network, rng=2)
        assert (
            result.mapping.average_utilization
            >= baseline.mapping.average_utilization
        )

    def test_custom_technology_flows_through(self):
        from repro.hardware.technology import Technology

        tech = Technology(feature_size_nm=45.0, neuron_area_um2=25.0)
        config = AutoNcsConfig(
            technology=tech,
            placement=PlacementConfig(max_lambda_stages=3, cg_iterations_per_stage=10),
            routing=RoutingConfig(max_relax_rounds=2),
            max_isc_iterations=5,
        )
        flow = AutoNCS(config)
        network = block_diagonal_network([20, 16], rng=3)
        result = flow.run(network, rng=3)
        neuron_cells = [
            c for c in result.mapping.netlist.cells if c.kind.value == "neuron"
        ]
        assert neuron_cells[0].area == pytest.approx(25.0)

    def test_cost_reduction_on_scattered_blocks(self, flow):
        # Needs to span several max-size tiles for the baseline to hurt.
        blocks = block_diagonal_network([34, 32, 30, 28, 26], within_density=0.45,
                                        between_density=0.015, rng=4)
        order = np.random.default_rng(4).permutation(blocks.size)
        network = blocks.permuted(order)
        report = flow.compare(network, rng=4)
        # under the fast test config the area and delay wins are robust;
        # the composite-cost headline is asserted by the Table 1 benchmark
        # with the full-effort configuration.
        assert report.area_reduction > 0
        assert report.delay_reduction > 0

    def test_determinism_of_full_flow(self, flow):
        network = block_diagonal_network([18, 15], rng=5)
        a = flow.run(network, rng=11)
        b = flow.run(network, rng=11)
        assert a.design.cost.wirelength_um == pytest.approx(
            b.design.cost.wirelength_um
        )
        assert a.isc.outlier_ratio == pytest.approx(b.isc.outlier_ratio)
