"""Smoke tests for the figure drivers (on small networks for speed)."""

import numpy as np
import pytest

from repro.core.config import fast_config
from repro.experiments.ablations import (
    ablate_library_range,
    ablate_partial_selection,
    ablate_preference_definition,
    format_ablation,
)
from repro.experiments.figures import (
    figure3,
    figure4,
    figure5,
    figure6,
    isc_analysis,
)
from repro.networks import block_diagonal_network


@pytest.fixture(scope="module")
def network():
    blocks = block_diagonal_network([22, 20, 18, 16], within_density=0.55,
                                    between_density=0.03, rng=11)
    order = np.random.default_rng(11).permutation(blocks.size)
    return blocks.permuted(order)


class TestFigure3:
    def test_fields(self, network):
        result = figure3(network, rng=0, max_size=32)
        assert result.n == network.size
        assert result.k == int(np.ceil(network.size / 32))
        assert 0.0 <= result.outlier_ratio <= 1.0
        assert sum(result.cluster_sizes) == network.size
        assert sorted(result.permutation.tolist()) == list(range(network.size))


class TestFigure4:
    def test_both_capped(self, network):
        result = figure4(network, max_size=24, rng=0)
        assert result.gcp_max_cluster <= 24
        assert result.traversing_max_cluster <= 24
        assert result.gcp_runtime_ms > 0
        assert result.traversing_runtime_ms > 0
        assert result.speedup == pytest.approx(
            result.traversing_runtime_ms / result.gcp_runtime_ms
        )


class TestFigure5:
    def test_outliers_shrink_between_rounds(self, network):
        result = figure5(network, max_size=32, rng=0)
        assert result.round2_outliers <= result.round1_outliers
        assert result.round1_outlier_ratio <= 1.0


class TestFigure6:
    def test_series_matches_iterations(self, network):
        result = figure6(network, rng=0)
        assert len(result.outlier_ratio_series) == result.iterations
        if result.outlier_ratio_series:
            assert result.final_outlier_ratio == pytest.approx(
                result.outlier_ratio_series[-1]
            )


class TestIscAnalysis:
    def test_panels(self, network):
        result = isc_analysis(network, label="unit", rng=0)
        assert result.iterations >= 1
        assert len(result.outlier_ratio_series) == result.iterations
        assert len(result.normalized_utilization_series) == result.iterations
        assert result.fanin_fanout_sum.shape == (network.size,)
        # panel (d) series are sorted ascending
        assert np.all(np.diff(result.fanin_fanout_sum) >= -1e-12)
        assert result.average_sum_vs_baseline > 0
        assert result.clustered_ratio == pytest.approx(1 - result.final_outlier_ratio)


class TestAblations:
    def test_partial_selection_variants(self, network):
        points = ablate_partial_selection(network, rng=0)
        assert len(points) == 3
        assert all(0 <= p.outlier_ratio <= 1 for p in points)

    def test_preference_variants(self, network):
        points = ablate_preference_definition(network, rng=0)
        assert {p.label for p in points} == {
            "CP = m^2/s^3 (paper)",
            "CP = u = m/s^2",
            "CP = m",
        }

    def test_library_variants(self, network):
        points = ablate_library_range(network, rng=0)
        assert len(points) == 3

    def test_format(self, network):
        points = ablate_partial_selection(network, rng=0)
        text = format_ablation(points)
        assert "configuration" in text
        assert points[0].label in text


class TestFigure10Fast:
    def test_small_custom_run(self, network):
        # figure10 on a real testbench is benchmark territory; validate the
        # machinery through the same code path with a tiny config instead.
        from repro.core.autoncs import AutoNCS
        from repro.experiments.figures import _snapshot

        flow = AutoNCS(fast_config())
        design = flow.run_baseline(network, rng=0)
        snapshot = _snapshot(design, "FullCro")
        assert snapshot.congestion.ndim == 2
        assert snapshot.peak_congestion >= 0
        assert 0 <= snapshot.center_congestion_ratio() < 50
        assert snapshot.cell_x.shape == snapshot.cell_y.shape
