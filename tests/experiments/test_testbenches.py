"""Tests for the paper testbench construction."""

import pytest

from repro.experiments.testbenches import (
    TESTBENCHES,
    Testbench,
    build_testbench,
    build_testbench_network,
    get_testbench,
)


class TestDescriptors:
    def test_paper_parameters(self):
        assert [(tb.num_patterns, tb.dimension) for tb in TESTBENCHES] == [
            (15, 300),
            (20, 400),
            (30, 500),
        ]
        assert [tb.target_sparsity for tb in TESTBENCHES] == [0.9447, 0.9359, 0.9439]

    def test_lookup(self):
        assert get_testbench(2).dimension == 400
        with pytest.raises(ValueError):
            get_testbench(4)

    def test_label(self):
        assert get_testbench(1).label == "TB1 (M=15, N=300)"


class TestBuild:
    @pytest.fixture(scope="class")
    def instance(self):
        return build_testbench(1, rng=42)

    def test_network_size(self, instance):
        assert instance.network.size == 300

    def test_exact_sparsity(self, instance):
        assert instance.network.sparsity == pytest.approx(0.9447, abs=1e-4)

    def test_recognition_above_paper_bar(self, instance):
        assert instance.recognition_rate(rng=0, trials_per_pattern=2) > 0.9

    def test_network_symmetric(self, instance):
        assert instance.network.is_symmetric()

    def test_reproducible(self):
        a = build_testbench(1, rng=7)
        b = build_testbench(1, rng=7)
        assert a.network == b.network

    def test_accepts_descriptor(self):
        descriptor = Testbench(index=9, num_patterns=5, dimension=80,
                               target_sparsity=0.9)
        instance = build_testbench(descriptor, rng=0)
        assert instance.network.size == 80

    def test_build_network_shortcut(self):
        net = build_testbench_network(
            Testbench(index=8, num_patterns=4, dimension=60, target_sparsity=0.85),
            rng=0,
        )
        assert net.size == 60
