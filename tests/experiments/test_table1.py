"""Tests for the Table 1 machinery (fast config, reduced testbenches)."""

import pytest

from repro.core.config import fast_config
from repro.experiments.table1 import (
    PAPER_AVERAGE_REDUCTIONS,
    PAPER_TABLE1,
    Table1Result,
    run_table1,
)
from repro.experiments.testbenches import Testbench


class TestPaperConstants:
    def test_reference_values_complete(self):
        assert set(PAPER_TABLE1) == {1, 2, 3}
        for entry in PAPER_TABLE1.values():
            assert set(entry) == {"AutoNCS", "FullCro", "reduction"}

    def test_fullcro_delay_constant(self):
        for entry in PAPER_TABLE1.values():
            assert entry["FullCro"]["delay_ns"] == 1.95

    def test_average_reductions(self):
        assert PAPER_AVERAGE_REDUCTIONS["wirelength"] == pytest.approx(47.80)


class TestRunTable1:
    @pytest.fixture(scope="class")
    def result(self):
        # a miniature stand-in testbench keeps this a unit test; the real
        # Table 1 runs in benchmarks/bench_table1.py
        mini = Testbench(index=7, num_patterns=6, dimension=120, target_sparsity=0.90)
        return run_table1(testbenches=[mini], config=fast_config(), rng=5)

    def test_one_report_per_testbench(self, result):
        assert isinstance(result, Table1Result)
        assert len(result.reports) == 1
        assert result.reports[0].label.startswith("TB7")

    def test_averages_keys(self, result):
        assert set(result.averages) == {"wirelength", "area", "delay"}

    def test_format_contains_paper_line(self, result):
        text = result.format_table()
        assert "Average reductions (paper)" in text
        assert "AutoNCS" in text
