"""Ablation studies: each variant runs, stays internally consistent, and
the table renderer reports every configuration."""

from __future__ import annotations

import pytest

from repro.experiments.ablations import (
    AblationPoint,
    ablate_library_range,
    ablate_partial_selection,
    ablate_preference_definition,
    format_ablation,
)
from repro.verify import verify_mapping


def _check_points(points, expected_labels):
    assert [p.label for p in points] == expected_labels
    for p in points:
        assert isinstance(p, AblationPoint)
        assert p.iterations >= 1
        assert p.crossbars >= 0 and p.synapses >= 0
        assert 0.0 <= p.outlier_ratio <= 1.0
        assert 0.0 <= p.average_utilization <= 1.0
        assert p.average_fanin_fanout >= 0.0


def test_partial_selection_variants(block_network):
    points = ablate_partial_selection(block_network, rng=5)
    _check_points(points, [
        "top-25% CP (paper)",
        "top-50% CP",
        "all clusters (no partial selection)",
    ])


def test_preference_definition_variants(block_network):
    points = ablate_preference_definition(block_network, rng=5)
    _check_points(points, [
        "CP = m^2/s^3 (paper)",
        "CP = u = m/s^2",
        "CP = m",
    ])


def test_library_range_variants(block_network):
    points = ablate_library_range(block_network, rng=5)
    _check_points(points, [
        "16..64 step 4 (paper)",
        "only 64",
        "8..64 step 8",
    ])


def test_ablations_are_deterministic(block_network):
    first = ablate_partial_selection(block_network, rng=9)
    second = ablate_partial_selection(block_network, rng=9)
    assert first == second


@pytest.mark.parametrize("quantile", [0.75, 0.5, 1e-9])
def test_ablation_mappings_pass_verifier(block_network, quantile):
    """Every ablated clustering still yields a legal, complete mapping.

    Reconstructs the mapping exactly as the ablation driver does and runs
    it through the independent coverage + hardware checks.
    """
    from repro.clustering.isc import (
        DEFAULT_CROSSBAR_SIZES,
        iterative_spectral_clustering,
    )
    from repro.clustering.preference import crossbar_preference
    from repro.mapping.autoncs_mapping import autoncs_mapping
    from repro.mapping.fullcro import fullcro_utilization

    threshold = fullcro_utilization(block_network, 64)
    isc = iterative_spectral_clustering(
        block_network,
        sizes=DEFAULT_CROSSBAR_SIZES,
        utilization_threshold=threshold,
        selection_quantile=quantile,
        preference=crossbar_preference,
        rng=3,
    )
    mapping = autoncs_mapping(isc)
    report = verify_mapping(mapping, checks=("coverage", "hardware"))
    assert report.passed, report.format()


def test_format_ablation_lists_every_configuration(block_network):
    points = ablate_library_range(block_network, rng=5)
    table = format_ablation(points)
    lines = table.splitlines()
    assert len(lines) == 1 + len(points)
    assert "configuration" in lines[0] and "avg util" in lines[0]
    for p in points:
        assert any(p.label in line for line in lines[1:])
