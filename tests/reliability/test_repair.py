"""Tests for the fault-aware repair pass (re-bind, demote, drop)."""

import pytest

from repro.reliability import repair_mapping, sample_defect_map
from repro.reliability.defects import DefectMap, DefectRates, InstanceDefects


def _pristine_pool(mapping, spares=0, spare_size=None):
    sizes = [instance.size for instance in mapping.instances]
    if spares:
        spare_size = spare_size or max(sizes)
        sizes += [spare_size] * spares
    return DefectMap(
        rates=DefectRates(),
        instances=[InstanceDefects.pristine(s) for s in sizes],
    )


class TestRepairNoDefects:
    def test_pristine_pool_is_a_no_op(self, small_mapping):
        defect_map = _pristine_pool(small_mapping)
        repaired, report = repair_mapping(small_mapping, defect_map)
        repaired.validate()
        assert report.connections_lost_before == 0
        assert report.connections_recovered == 0
        assert report.synapses_added == 0
        assert report.clusters_rebound == 0
        assert repaired.num_crossbars == small_mapping.num_crossbars
        assert repaired.num_synapses == small_mapping.num_synapses
        assert report.binding == tuple(range(small_mapping.num_crossbars))

    def test_requires_a_defect_map(self, small_mapping):
        small_mapping.metadata.pop("defect_map", None)
        with pytest.raises(ValueError, match="defect map"):
            repair_mapping(small_mapping)

    def test_pool_must_cover_all_instances(self, small_mapping):
        defect_map = _pristine_pool(small_mapping)
        defect_map.instances.pop()
        with pytest.raises(ValueError, match="covers"):
            repair_mapping(small_mapping, defect_map)


class TestRebinding:
    def test_dead_instance_rebinds_onto_pristine_spare(self, small_mapping):
        defect_map = _pristine_pool(small_mapping, spares=1)
        dead = defect_map.instances[0]
        dead.dead_rows[:] = True  # instance 0's crossbar is a brick
        repaired, report = repair_mapping(small_mapping, defect_map)
        repaired.validate()
        # every connection survives: the cluster moved to the spare
        assert report.connections_lost_before > 0
        assert report.connections_lost_after_rebinding == 0
        assert report.synapses_added == 0
        assert report.clusters_rebound >= 1
        assert report.spares_used == 1
        assert report.binding[0] == small_mapping.num_crossbars  # the spare slot

    def test_repaired_defect_map_follows_the_binding(self, small_mapping):
        defect_map = _pristine_pool(small_mapping, spares=1)
        defect_map.instances[0].dead_rows[:] = True
        repaired, report = repair_mapping(small_mapping, defect_map)
        attached = repaired.metadata["defect_map"]
        binding = repaired.metadata["physical_binding"]
        assert len(attached.instances) == repaired.num_crossbars
        for k, p in enumerate(binding):
            assert attached.instances[k] is defect_map.instances[p]

    def test_sampled_defects_end_to_end(self, small_mapping):
        defect_map = sample_defect_map(
            small_mapping, 0.15, rng=5, spare_instances=2
        )
        repaired, report = repair_mapping(small_mapping, defect_map)
        repaired.validate()
        assert report.connections_lost_after_rebinding <= report.connections_lost_before
        assert report.synapses_added == report.connections_lost_after_rebinding
        assert repaired.num_synapses == small_mapping.num_synapses + report.synapses_added
        assert report.area_after_um2 == repaired.netlist.total_cell_area
        assert repaired.name.endswith("+repair")


class TestDemotion:
    def test_everything_dead_demotes_all_clusters(self, small_mapping):
        defect_map = _pristine_pool(small_mapping)
        for defects in defect_map.instances:
            defects.dead_rows[:] = True
        repaired, report = repair_mapping(small_mapping, defect_map)
        repaired.validate()
        assert repaired.num_crossbars == 0
        assert report.clusters_demoted == small_mapping.num_crossbars
        assert report.synapses_added == sum(
            len(i.connections) for i in small_mapping.instances
        )
        # all network connections now live on discrete synapses
        assert repaired.num_synapses == small_mapping.network.num_connections

    def test_report_summary_keys(self, small_mapping):
        defect_map = sample_defect_map(small_mapping, 0.1, rng=9)
        _, report = repair_mapping(small_mapping, defect_map)
        summary = report.summary()
        assert {"lost_before", "recovered", "synapses_added",
                "clusters_demoted", "area_delta_um2"} <= set(summary)
        assert summary["recovered"] == report.connections_recovered

    def test_max_passes_validated(self, small_mapping):
        defect_map = _pristine_pool(small_mapping)
        with pytest.raises(ValueError, match="max_passes"):
            repair_mapping(small_mapping, defect_map, max_passes=0)
