"""Tests for defect-rate configuration and defect-map sampling."""

import numpy as np
import pytest

from repro.mapping.netlist import CrossbarInstance
from repro.reliability import (
    DefectMap,
    DefectRates,
    count_lost_connections,
    local_cells,
    lost_connections,
    sample_defect_map,
    sample_instance_defects,
)
from repro.reliability.defects import InstanceDefects


class TestDefectRates:
    def test_defaults_are_defect_free(self):
        rates = DefectRates()
        assert not rates.any_defects

    def test_nonzero_rate_flags_defects(self):
        assert DefectRates(cell_stuck_off=0.01).any_defects
        assert DefectRates(row_line=0.01).any_defects

    @pytest.mark.parametrize("field", ["cell_stuck_off", "cell_stuck_on",
                                       "row_line", "col_line"])
    def test_rates_must_be_probabilities(self, field):
        with pytest.raises(ValueError):
            DefectRates(**{field: -0.1})
        with pytest.raises(ValueError):
            DefectRates(**{field: 1.5})

    def test_stuck_rates_cannot_exceed_one_combined(self):
        with pytest.raises(ValueError):
            DefectRates(cell_stuck_off=0.7, cell_stuck_on=0.6)

    def test_coerce_scalar_is_stuck_off(self):
        rates = DefectRates.coerce(0.05)
        assert rates.cell_stuck_off == pytest.approx(0.05)
        assert rates.cell_stuck_on == 0.0

    def test_coerce_passthrough(self):
        rates = DefectRates(row_line=0.1)
        assert DefectRates.coerce(rates) is rates


class TestInstanceDefects:
    def test_pristine_has_no_dead_cells(self):
        defects = InstanceDefects.pristine(8)
        assert defects.num_dead_cells == 0
        assert not defects.fully_defective

    def test_dead_mask_combines_cells_and_lines(self):
        defects = InstanceDefects.pristine(4)
        defects.stuck_off[0, 0] = True
        defects.dead_rows[2] = True
        defects.dead_cols[3] = True
        mask = defects.dead_mask()
        assert mask[0, 0] and mask[2].all() and mask[:, 3].all()
        # 1 stuck cell + row line (4) + col line (4) - overlap (1)
        assert defects.num_dead_cells == 8

    def test_stuck_both_ways_rejected(self):
        stuck = np.ones((2, 2), dtype=bool)
        with pytest.raises(ValueError, match="stuck-off and stuck-on"):
            InstanceDefects(size=2, stuck_off=stuck, stuck_on=stuck,
                            dead_rows=np.zeros(2, bool), dead_cols=np.zeros(2, bool))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            InstanceDefects(size=3, stuck_off=np.zeros((2, 2), bool),
                            stuck_on=np.zeros((3, 3), bool),
                            dead_rows=np.zeros(3, bool), dead_cols=np.zeros(3, bool))

    def test_fully_defective_via_lines(self):
        defects = InstanceDefects.pristine(4)
        defects.dead_rows[:] = True
        assert defects.fully_defective


class TestSampling:
    def test_zero_rates_sample_pristine(self):
        defects = sample_instance_defects(16, DefectRates(), rng=0)
        assert defects.num_dead_cells == 0

    def test_seeded_sampling_is_deterministic(self):
        rates = DefectRates(cell_stuck_off=0.2, cell_stuck_on=0.05,
                            row_line=0.1, col_line=0.1)
        a = sample_instance_defects(32, rates, rng=7)
        b = sample_instance_defects(32, rates, rng=7)
        assert np.array_equal(a.stuck_off, b.stuck_off)
        assert np.array_equal(a.stuck_on, b.stuck_on)
        assert np.array_equal(a.dead_rows, b.dead_rows)
        assert np.array_equal(a.dead_cols, b.dead_cols)

    def test_certain_stuck_off_kills_every_cell(self):
        defects = sample_instance_defects(8, DefectRates(cell_stuck_off=1.0), rng=0)
        assert defects.fully_defective

    def test_stuck_masks_are_exclusive(self):
        rates = DefectRates(cell_stuck_off=0.5, cell_stuck_on=0.5)
        defects = sample_instance_defects(64, rates, rng=3)
        assert not np.any(defects.stuck_off & defects.stuck_on)


@pytest.fixture()
def instance():
    # cluster {3, 5} on a 4x4 crossbar, both directed connections present
    return CrossbarInstance(rows=(3, 5), cols=(3, 5), size=4,
                            connections=((3, 5), (5, 3)))


class TestLostConnections:
    def test_local_cells_follow_membership_order(self, instance):
        rows_local, cols_local = local_cells(instance)
        assert rows_local.tolist() == [0, 1]  # 3 -> 0, 5 -> 1
        assert cols_local.tolist() == [1, 0]

    def test_pristine_loses_nothing(self, instance):
        defects = InstanceDefects.pristine(4)
        assert lost_connections(instance, defects) == []
        assert count_lost_connections(instance, defects) == 0

    def test_stuck_cell_loses_exactly_its_connection(self, instance):
        defects = InstanceDefects.pristine(4)
        defects.stuck_off[0, 1] = True  # local cell of connection (3, 5)
        assert lost_connections(instance, defects) == [(3, 5)]
        assert count_lost_connections(instance, defects) == 1

    def test_dead_row_loses_all_connections_of_that_neuron(self, instance):
        defects = InstanceDefects.pristine(4)
        defects.dead_rows[0] = True  # neuron 3's row
        assert lost_connections(instance, defects) == [(3, 5)]

    def test_undersized_crossbar_is_infeasible(self, instance):
        defects = InstanceDefects.pristine(1)
        with pytest.raises(ValueError, match="cannot host"):
            lost_connections(instance, defects)
        # fast path returns the infeasible sentinel instead of raising
        assert count_lost_connections(instance, defects) == len(instance.connections) + 1


class TestDefectMapSampling:
    def test_one_entry_per_instance(self, small_mapping):
        defect_map = sample_defect_map(small_mapping, 0.1, rng=0)
        assert defect_map.num_instances == small_mapping.num_crossbars
        for defects, instance in zip(defect_map.instances, small_mapping.instances):
            assert defects.size == instance.size

    def test_spares_extend_the_pool(self, small_mapping):
        defect_map = sample_defect_map(small_mapping, 0.1, rng=0, spare_instances=3)
        assert defect_map.num_instances == small_mapping.num_crossbars + 3
        largest = max(i.size for i in small_mapping.instances)
        assert all(d.size == largest for d in defect_map.instances[-3:])
        assert defect_map.metadata["spare_instances"] == 3

    def test_spare_size_must_be_in_library(self, small_mapping):
        with pytest.raises(ValueError, match="library"):
            sample_defect_map(small_mapping, 0.1, rng=0,
                              spare_instances=1, spare_size=7)

    def test_attach_and_subset(self, small_mapping):
        defect_map = sample_defect_map(small_mapping, 0.2, rng=1)
        defect_map.attach(small_mapping)
        assert small_mapping.metadata["defect_map"] is defect_map
        sub = defect_map.subset([0])
        assert sub.num_instances == 1
        assert sub.instances[0] is defect_map.instances[0]

    def test_zero_rate_pool_is_pristine(self, small_mapping):
        defect_map = sample_defect_map(small_mapping, 0.0, rng=2)
        assert defect_map.dead_cell_fraction() == 0.0
        assert not defect_map.rates.any_defects

    def test_negative_spares_rejected(self, small_mapping):
        with pytest.raises(ValueError, match="spare_instances"):
            sample_defect_map(small_mapping, 0.1, spare_instances=-1)


def test_empty_defect_map_fraction():
    assert DefectMap(rates=DefectRates(), instances=[]).dead_cell_fraction() == 0.0
