"""Tests for Monte-Carlo yield evaluation (the acceptance criterion lives here)."""

import pytest

from repro.clustering import iterative_spectral_clustering
from repro.experiments.reliability import run_reliability_experiment
from repro.experiments.testbenches import build_testbench, scaled_testbench
from repro.hardware.simulation import HybridNcsSimulator
from repro.mapping import autoncs_mapping, fullcro_utilization
from repro.reliability import evaluate_yield, hardware_recognition_rate


@pytest.fixture(scope="module")
def tb1_small():
    """A scaled-down testbench 1 with its ISC mapping (module-cached)."""
    bench = scaled_testbench(1, 120)
    instance = build_testbench(bench, rng=11)
    threshold = fullcro_utilization(instance.network, 64)
    isc = iterative_spectral_clustering(
        instance.network, utilization_threshold=threshold, rng=11
    )
    return instance, autoncs_mapping(isc)


class TestHardwareRecognitionRate:
    def test_ideal_hardware_matches_software_recall(self, tb1_small):
        instance, mapping = tb1_small
        simulator = HybridNcsSimulator(mapping, signed_weights=instance.hopfield.weights)
        rate = hardware_recognition_rate(
            simulator, instance.hopfield.patterns, rng=0
        )
        assert rate == pytest.approx(instance.recognition_rate(rng=0), abs=0.15)
        assert rate >= 0.9  # the paper's testbench bar

    def test_validation(self, tb1_small):
        instance, mapping = tb1_small
        simulator = HybridNcsSimulator(mapping, signed_weights=instance.hopfield.weights)
        with pytest.raises(ValueError):
            hardware_recognition_rate(simulator, instance.hopfield.patterns,
                                      trials_per_pattern=0)
        with pytest.raises(ValueError):
            hardware_recognition_rate(simulator, instance.hopfield.patterns,
                                      flip_fraction=1.5)


class TestEvaluateYield:
    def test_repair_strictly_improves_yield(self, tb1_small):
        # The acceptance criterion: at a nonzero defect rate the repaired
        # designs achieve strictly higher functional yield than unrepaired.
        instance, mapping = tb1_small
        curve = evaluate_yield(
            instance.hopfield,
            mapping,
            defect_rates=(0.0, 0.45),
            samples=6,
            spare_instances=2,
            rng=42,
        )
        clean, faulty = curve.points
        assert clean.functional_yield_unrepaired == 1.0
        assert clean.functional_yield_repaired == 1.0
        assert clean.yield_gain == 0.0
        assert faulty.functional_yield_repaired > faulty.functional_yield_unrepaired
        assert faulty.yield_gain > 0.0
        assert faulty.mean_connections_recovered > 0.0

    def test_zero_rate_chip_is_ideal(self, tb1_small):
        instance, mapping = tb1_small
        curve = evaluate_yield(
            instance.hopfield, mapping, defect_rates=(0.0,), samples=2, rng=1
        )
        point = curve.points[0]
        assert point.functional_yield_unrepaired == 1.0
        assert point.mean_synapses_added == 0.0

    def test_seeded_runs_are_deterministic(self, tb1_small):
        instance, mapping = tb1_small
        kwargs = dict(defect_rates=(0.3,), samples=3, spare_instances=1)
        a = evaluate_yield(instance.hopfield, mapping, rng=5, **kwargs)
        b = evaluate_yield(instance.hopfield, mapping, rng=5, **kwargs)
        assert a.points[0] == b.points[0]

    def test_format_table_lists_every_rate(self, tb1_small):
        instance, mapping = tb1_small
        curve = evaluate_yield(
            instance.hopfield, mapping, defect_rates=(0.0, 0.25), samples=2, rng=3
        )
        table = curve.format_table()
        assert "yield(raw)" in table and "yield(rep)" in table
        assert "0.250" in table

    def test_size_mismatch_rejected(self, tb1_small):
        instance, mapping = tb1_small
        other = build_testbench(scaled_testbench(1, 60), rng=0)
        with pytest.raises(ValueError, match="neurons"):
            evaluate_yield(other.hopfield, mapping, defect_rates=(0.1,), rng=0)

    def test_empty_rates_rejected(self, tb1_small):
        instance, mapping = tb1_small
        with pytest.raises(ValueError, match="defect_rates"):
            evaluate_yield(instance.hopfield, mapping, defect_rates=(), rng=0)


class TestReliabilityExperiment:
    def test_experiment_wires_the_pieces_together(self):
        result = run_reliability_experiment(
            testbench=1,
            dimension=80,
            defect_rates=(0.0, 0.3),
            samples=3,
            spare_instances=1,
            rng=4,
        )
        assert result.dimension == 80
        assert result.num_crossbars > 0
        assert len(result.curve.points) == 2
        assert "TB1" in result.format()
        assert result.metadata["spare_instances"] == 1

    def test_bad_dimension_rejected(self):
        with pytest.raises(ValueError, match="dimension"):
            run_reliability_experiment(testbench=1, dimension=4, rng=0)
