"""Tests for the FullCro brute-force baseline."""

import numpy as np
import pytest

from repro.hardware.library import CrossbarLibrary
from repro.mapping.fullcro import fullcro_instances, fullcro_mapping, fullcro_utilization
from repro.networks import ConnectionMatrix, random_sparse_network


class TestFullcroInstances:
    def test_all_max_size(self, block_network):
        instances = fullcro_instances(block_network, 64)
        assert all(inst.size == 64 for inst in instances)

    def test_covers_every_connection(self, block_network):
        instances = fullcro_instances(block_network, 64)
        covered = sum(inst.utilized_connections for inst in instances)
        assert covered == block_network.num_connections

    def test_skips_empty_blocks(self):
        # connections only inside the first 10 neurons -> one block
        m = np.zeros((130, 130), dtype=np.uint8)
        m[:10, :10] = 1
        np.fill_diagonal(m, 0)
        net = ConnectionMatrix(m)
        instances = fullcro_instances(net, 64)
        assert len(instances) == 1

    def test_active_pins_only(self):
        m = np.zeros((4, 4), dtype=np.uint8)
        m[0, 1] = 1
        net = ConnectionMatrix(m)
        (inst,) = fullcro_instances(net, 64)
        assert inst.rows == (0,)
        assert inst.cols == (1,)

    def test_rejects_bad_size(self, block_network):
        with pytest.raises(ValueError):
            fullcro_instances(block_network, 0)


class TestFullcroUtilization:
    def test_matches_mean(self, block_network):
        instances = fullcro_instances(block_network, 64)
        expected = float(np.mean([i.utilization for i in instances]))
        assert fullcro_utilization(block_network, 64) == pytest.approx(expected)

    def test_empty_network(self):
        net = ConnectionMatrix(np.zeros((10, 10)))
        assert fullcro_utilization(net, 64) == 0.0

    def test_dense_small_network_high(self):
        m = np.ones((8, 8), dtype=np.uint8)
        np.fill_diagonal(m, 0)
        net = ConnectionMatrix(m)
        assert fullcro_utilization(net, 8) == pytest.approx(56 / 64)


class TestFullcroMapping:
    def test_valid_and_complete(self, small_fullcro):
        small_fullcro.validate()
        assert small_fullcro.num_synapses == 0
        assert small_fullcro.clustered_connection_ratio == 1.0

    def test_netlist_built(self, small_fullcro):
        assert small_fullcro.netlist.num_cells >= small_fullcro.network.size

    def test_histogram_only_max(self, small_fullcro):
        histogram = small_fullcro.crossbar_size_histogram()
        assert set(histogram) == {64}

    def test_summary_fields(self, small_fullcro):
        summary = small_fullcro.summary()
        assert summary["design"] == "FullCro"
        assert summary["synapses"] == 0

    def test_custom_library(self):
        net = random_sparse_network(40, 0.1, rng=0)
        library = CrossbarLibrary(sizes=(8, 16))
        mapping = fullcro_mapping(net, library=library)
        assert all(inst.size == 16 for inst in mapping.instances)
