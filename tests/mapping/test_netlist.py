"""Tests for cells, wires, netlist building and fanin/fanout accounting."""

import numpy as np
import pytest

from repro.hardware.library import CrossbarLibrary
from repro.mapping.netlist import (
    Cell,
    CellKind,
    CrossbarInstance,
    Netlist,
    Wire,
    build_netlist,
    fanin_fanout_breakdown,
)


@pytest.fixture(scope="module")
def library():
    return CrossbarLibrary()


class TestCrossbarInstance:
    def test_utilization(self):
        inst = CrossbarInstance(rows=(0, 1), cols=(2, 3), size=16,
                               connections=((0, 2), (1, 3)))
        assert inst.utilized_connections == 2
        assert inst.utilization == pytest.approx(2 / 256)

    def test_rejects_too_many_rows(self):
        with pytest.raises(ValueError, match="exceed"):
            CrossbarInstance(rows=tuple(range(17)), cols=(0,), size=16, connections=())

    def test_rejects_duplicate_rows(self):
        with pytest.raises(ValueError, match="unique"):
            CrossbarInstance(rows=(0, 0), cols=(1,), size=16, connections=())

    def test_rejects_connection_outside(self):
        with pytest.raises(ValueError, match="outside"):
            CrossbarInstance(rows=(0,), cols=(1,), size=16, connections=((0, 2),))

    def test_rejects_duplicate_connection(self):
        with pytest.raises(ValueError, match="duplicate"):
            CrossbarInstance(rows=(0,), cols=(1,), size=16,
                             connections=((0, 1), (0, 1)))


class TestCellAndWire:
    def test_cell_area(self):
        cell = Cell(name="c", kind=CellKind.NEURON, width=2.0, height=3.0)
        assert cell.area == 6.0

    def test_cell_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            Cell(name="c", kind=CellKind.NEURON, width=0.0, height=1.0)

    def test_wire_rejects_self_loop(self):
        with pytest.raises(ValueError, match="itself"):
            Wire(source=1, target=1)

    def test_wire_rejects_bad_weight(self):
        with pytest.raises(ValueError):
            Wire(source=0, target=1, weight=0.0)

    def test_netlist_rejects_dangling_wire(self):
        cells = [Cell(name="a", kind=CellKind.NEURON, width=1, height=1)]
        with pytest.raises(ValueError, match="outside"):
            Netlist(cells=cells, wires=[Wire(source=0, target=5)])


class TestBuildNetlist:
    def test_cell_layout(self, library):
        inst = CrossbarInstance(rows=(0, 1), cols=(0, 1), size=16,
                               connections=((0, 1),))
        netlist = build_netlist(4, [inst], [(2, 3)], library)
        # 4 neurons + 1 crossbar + 1 synapse
        assert netlist.num_cells == 6
        kinds = [c.kind for c in netlist.cells]
        assert kinds[:4] == [CellKind.NEURON] * 4
        assert kinds[4] == CellKind.CROSSBAR
        assert kinds[5] == CellKind.SYNAPSE

    def test_wire_counts(self, library):
        inst = CrossbarInstance(rows=(0, 1), cols=(0, 1), size=16,
                               connections=((0, 1),))
        netlist = build_netlist(4, [inst], [(2, 3)], library)
        # 2 row wires + 2 col wires + 2 synapse wires
        assert netlist.num_wires == 6

    def test_wire_weights_scale_with_crossbar_delay(self, library):
        small = CrossbarInstance(rows=(0,), cols=(0,), size=16, connections=())
        large = CrossbarInstance(rows=(1,), cols=(1,), size=64, connections=())
        netlist = build_netlist(2, [small, large], [], library)
        weights = {w.name: w.weight for w in netlist.wires}
        assert weights["n1->x1"] > weights["n0->x0"]

    def test_crossbar_cell_dimensions(self, library):
        inst = CrossbarInstance(rows=(0,), cols=(0,), size=32, connections=())
        netlist = build_netlist(1, [inst], [], library)
        crossbar_cell = netlist.cells[1]
        assert crossbar_cell.width == pytest.approx(library.spec(32).side_um)
        assert crossbar_cell.intrinsic_delay_ns == pytest.approx(library.spec(32).delay_ns)

    def test_rejects_bad_synapse_endpoint(self, library):
        with pytest.raises(ValueError, match="outside"):
            build_netlist(3, [], [(0, 9)], library)

    def test_rejects_zero_neurons(self, library):
        with pytest.raises(ValueError):
            build_netlist(0, [], [], library)

    def test_total_cell_area_positive(self, library):
        netlist = build_netlist(3, [], [(0, 1)], library)
        assert netlist.total_cell_area > 0

    def test_wire_endpoints_arrays(self, library):
        netlist = build_netlist(3, [], [(0, 1), (1, 2)], library)
        sources, targets, weights = netlist.wire_endpoints()
        assert sources.shape == targets.shape == weights.shape == (4,)


class TestFaninFanoutBreakdown:
    def test_counts(self):
        inst = CrossbarInstance(rows=(0, 1), cols=(1, 2), size=16,
                               connections=((0, 1),))
        breakdown = fanin_fanout_breakdown(4, [inst], [(3, 0)])
        # neuron 0: 1 crossbar row + 1 synapse = crossbar 1, synapse 1
        # neuron 1: row + col = 2 crossbar
        # neuron 2: 1 col
        # neuron 3: 1 synapse
        np.testing.assert_array_equal(breakdown.crossbar, [1, 2, 1, 0])
        np.testing.assert_array_equal(breakdown.synapse, [1, 0, 0, 1])
        np.testing.assert_array_equal(breakdown.total, [2, 2, 1, 1])
        assert breakdown.average_total == pytest.approx(1.5)
