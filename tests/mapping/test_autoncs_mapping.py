"""Tests for the AutoNCS hybrid mapping."""

import pytest

from repro.hardware.library import CrossbarLibrary
from repro.mapping.autoncs_mapping import autoncs_mapping


class TestAutoncsMapping:
    def test_valid(self, small_mapping):
        small_mapping.validate()

    def test_synapses_match_outliers(self, small_isc, small_mapping):
        assert small_mapping.num_synapses == len(small_isc.outliers)

    def test_crossbars_match_assignments(self, small_isc, small_mapping):
        assert small_mapping.num_crossbars == len(small_isc.crossbars)

    def test_instances_square_clusters(self, small_mapping):
        for inst in small_mapping.instances:
            assert inst.rows == inst.cols

    def test_utilization_better_than_baseline(self, small_mapping, small_fullcro):
        assert small_mapping.average_utilization > small_fullcro.average_utilization

    def test_summary_has_histogram(self, small_mapping):
        summary = small_mapping.summary()
        assert sum(summary["size_histogram"].values()) == small_mapping.num_crossbars

    def test_rejects_incompatible_library(self, small_isc):
        placed_sizes = {a.size for a in small_isc.crossbars}
        if not placed_sizes:
            pytest.skip("no crossbars placed")
        # a library missing the placed sizes must be rejected
        bad = CrossbarLibrary(sizes=(128,))
        with pytest.raises(ValueError, match="library"):
            autoncs_mapping(small_isc, library=bad)

    def test_metadata_carries_isc_stats(self, small_isc, small_mapping):
        assert small_mapping.metadata["isc_iterations"] == small_isc.iterations
        assert small_mapping.metadata["outlier_ratio"] == pytest.approx(
            small_isc.outlier_ratio
        )

    def test_fanin_fanout_total_positive(self, small_mapping):
        breakdown = small_mapping.fanin_fanout()
        assert breakdown.total.sum() > 0
