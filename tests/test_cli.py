"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.networks import random_sparse_network
from repro.networks.io import save_network_npz


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.neurons == 160
        assert args.seed == 42

    def test_testbench_index_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["testbench", "4"])


class TestCommands:
    def test_cluster_on_small_network(self, capsys):
        code = main(["cluster", "--neurons", "60", "--density", "0.08", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "crossbars:" in out
        assert "discrete synapses:" in out

    def test_compare_fast(self, capsys):
        code = main([
            "compare", "--fast", "--neurons", "70", "--density", "0.08", "--seed", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "AutoNCS" in out and "FullCro" in out

    def test_cluster_loads_saved_network(self, tmp_path, capsys):
        net = random_sparse_network(50, 0.1, rng=3, name="saved")
        path = tmp_path / "net.npz"
        save_network_npz(net, path)
        code = main(["cluster", "--load", str(path), "--seed", "3"])
        assert code == 0
        assert "saved" in capsys.readouterr().out

    def test_render(self, tmp_path, capsys):
        net = random_sparse_network(40, 0.1, rng=4, name="r")
        src = tmp_path / "net.npz"
        out = tmp_path / "net.svg"
        save_network_npz(net, src)
        code = main(["render", str(src), "--output", str(out)])
        assert code == 0
        assert out.read_text().startswith("<?xml")

    def test_render_clustered(self, tmp_path):
        rng = np.random.default_rng(5)
        net = random_sparse_network(40, 0.12, rng=rng, name="rc")
        src = tmp_path / "net.npz"
        out = tmp_path / "net.svg"
        save_network_npz(net, src)
        code = main(["render", str(src), "--output", str(out), "--clustered"])
        assert code == 0
        assert "svg" in out.read_text()
