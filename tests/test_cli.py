"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.networks import random_sparse_network
from repro.networks.io import save_network_npz


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.neurons == 160
        assert args.seed == 42

    def test_testbench_index_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["testbench", "4"])

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.jobs == 1
        assert args.kind == "compare"
        assert args.cache_dir == ".repro-cache"
        assert not args.no_cache

    def test_sweep_kind_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--kind", "explode"])

    def test_reliability_jobs_flag(self):
        args = build_parser().parse_args(["reliability", "--jobs", "3"])
        assert args.jobs == 3

    def test_compare_testbench_accepts_tb_prefix(self):
        assert build_parser().parse_args(["compare", "--testbench", "tb1"]).testbench == 1
        assert build_parser().parse_args(["compare", "--testbench", "2"]).testbench == 2

    def test_compare_testbench_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--testbench", "tb9"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--testbench", "nope"])

    def test_observability_flags_default_off(self):
        for command in ("compare", "verify"):
            args = build_parser().parse_args([command])
            assert args.trace is None and args.metrics is None

    def test_kernel_flag_parsed_and_validated(self):
        for command in ("compare", "verify"):
            assert build_parser().parse_args([command]).kernel is None
            args = build_parser().parse_args([command, "--kernel", "python"])
            assert args.kernel == "python"
            with pytest.raises(SystemExit):
                build_parser().parse_args([command, "--kernel", "fortran"])

    def test_bench_kernel_flag(self):
        args = build_parser().parse_args(["bench"])
        assert args.kernel == "auto"
        args = build_parser().parse_args(["bench", "--kernel", "numba"])
        assert args.kernel == "numba"


class TestCommands:
    def test_cluster_on_small_network(self, capsys):
        code = main(["cluster", "--neurons", "60", "--density", "0.08", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "crossbars:" in out
        assert "discrete synapses:" in out

    def test_compare_fast(self, capsys):
        code = main([
            "compare", "--fast", "--neurons", "70", "--density", "0.08", "--seed", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "AutoNCS" in out and "FullCro" in out

    def test_compare_kernel_python_matches_default(self, capsys):
        # Explicit --kernel python must reproduce the default run
        # exactly (the default is "auto", and auto either falls back
        # to python or dispatches to the bit-identical kernel).
        base = ["compare", "--fast", "--neurons", "60", "--density", "0.08",
                "--seed", "2"]

        def qor_lines(text):
            # drop the stage-seconds block: wall times differ run to run
            return [line for line in text.splitlines()
                    if not line.startswith(("stage seconds", "  "))]

        assert main(base) == 0
        default_out = qor_lines(capsys.readouterr().out)
        assert main(base + ["--kernel", "python"]) == 0
        assert qor_lines(capsys.readouterr().out) == default_out

    def test_cluster_loads_saved_network(self, tmp_path, capsys):
        net = random_sparse_network(50, 0.1, rng=3, name="saved")
        path = tmp_path / "net.npz"
        save_network_npz(net, path)
        code = main(["cluster", "--load", str(path), "--seed", "3"])
        assert code == 0
        assert "saved" in capsys.readouterr().out

    def test_render(self, tmp_path, capsys):
        net = random_sparse_network(40, 0.1, rng=4, name="r")
        src = tmp_path / "net.npz"
        out = tmp_path / "net.svg"
        save_network_npz(net, src)
        code = main(["render", str(src), "--output", str(out)])
        assert code == 0
        assert out.read_text().startswith("<?xml")

    def test_render_clustered(self, tmp_path):
        rng = np.random.default_rng(5)
        net = random_sparse_network(40, 0.12, rng=rng, name="rc")
        src = tmp_path / "net.npz"
        out = tmp_path / "net.svg"
        save_network_npz(net, src)
        code = main(["render", str(src), "--output", str(out), "--clustered"])
        assert code == 0
        assert "svg" in out.read_text()

    def test_render_missing_network_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["render", str(tmp_path / "nope.npz")])

    def test_reliability_end_to_end(self, capsys):
        code = main([
            "reliability", "--dimension", "60", "--samples", "2",
            "--rates", "0.0", "0.3", "--seed", "9",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "reliability experiment" in out
        assert "yield(raw)" in out and "yield(rep)" in out
        # one table row per swept rate
        assert "0.000" in out and "0.300" in out

    def test_reliability_jobs_match_serial(self, capsys):
        argv = ["reliability", "--dimension", "60", "--samples", "2",
                "--rates", "0.0", "0.3", "--seed", "9"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_compare_jobs_match_serial(self, capsys):
        argv = ["compare", "--fast", "--neurons", "48",
                "--density", "0.08", "--seed", "2"]

        def cost_lines(text):
            # drop the stage-seconds block: wall times differ run to run
            return [line for line in text.splitlines()
                    if not line.startswith(("stage seconds", "  "))]

        assert main(argv) == 0
        serial = cost_lines(capsys.readouterr().out)
        assert main(argv + ["--jobs", "2"]) == 0
        parallel = cost_lines(capsys.readouterr().out)
        assert parallel == serial


class TestObservability:
    """The acceptance path: compare on a testbench with trace + metrics."""

    def test_compare_testbench_trace_and_metrics(self, tmp_path, capsys):
        import json

        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.txt"
        code = main([
            "compare", "--testbench", "tb1", "--dimension", "48", "--fast",
            "--trace", str(trace), "--metrics", str(metrics),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert f"trace written to {trace}" in out
        assert f"metrics written to {metrics}" in out

        events = json.loads(trace.read_text())  # Perfetto-loadable
        names = {event["name"] for event in events}
        for stage in ("flow.cluster", "flow.map", "flow.place",
                      "flow.route", "flow.evaluate"):
            assert stage in names, f"missing {stage} span"
        assert all(event["ph"] == "X" for event in events)

        dump = metrics.read_text()
        assert "routing.ripup_retries" in dump
        assert "placement.wa_evals" in dump
        assert "cache.hit_rate" in dump

    def test_verify_with_metrics(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.txt"
        code = main([
            "verify", "--neurons", "48", "--density", "0.08", "--seed", "3",
            "--fast", "--checks", "coverage", "hardware",
            "--metrics", str(metrics),
        ])
        assert code == 0
        assert "PASS" in capsys.readouterr().out
        assert "isc.runs" in metrics.read_text()

    def test_no_flags_leaves_null_recorder(self, capsys):
        from repro.observability import NULL_RECORDER, get_recorder

        code = main(["compare", "--fast", "--neurons", "48",
                     "--density", "0.08", "--seed", "2"])
        assert code == 0
        assert get_recorder() is NULL_RECORDER
        assert NULL_RECORDER.tracer.spans == []


class TestSweepCommand:
    ARGS = ["sweep", "--sizes", "30", "40", "--densities", "0.08",
            "--fast", "--seed", "11"]

    def test_end_to_end_with_cache_and_trace(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        trace = tmp_path / "trace.jsonl"
        code = main(self.ARGS + ["--cache-dir", str(cache_dir),
                                 "--trace", str(trace)])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 cell(s): 2 executed, 0 cache hit(s)" in out
        assert trace.exists() and trace.read_text().count("\n") >= 4

        # warm rerun: everything served from the cache
        code = main(self.ARGS + ["--cache-dir", str(cache_dir)])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 cell(s): 0 executed, 2 cache hit(s)" in out

    def test_no_cache_always_executes(self, tmp_path, capsys):
        for _ in range(2):
            code = main(self.ARGS + ["--no-cache"])
            assert code == 0
            assert "2 executed, 0 cache hit(s)" in capsys.readouterr().out

    def test_clear_cache(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert main(self.ARGS + ["--cache-dir", str(cache_dir)]) == 0
        capsys.readouterr()
        code = main(self.ARGS + ["--cache-dir", str(cache_dir), "--clear-cache"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cleared 2 cached artifact(s)" in out
        assert "2 executed" in out

    def test_deterministic_across_jobs(self, tmp_path, capsys):
        def table(extra):
            assert main(self.ARGS + ["--no-cache"] + extra) == 0
            out = capsys.readouterr().out
            # keep the grid rows; timing columns are stripped per row
            rows = [line.split()[:5] for line in out.splitlines()
                    if line.strip().startswith(("30", "40"))]
            assert rows
            return rows

        assert table([]) == table(["--jobs", "4"])

    def test_chaos_transient_recovers_identically(self, tmp_path, capsys):
        def table(extra):
            assert main(self.ARGS + ["--no-cache"] + extra) == 0
            out = capsys.readouterr().out
            rows = [line.split()[:5] for line in out.splitlines()
                    if line.strip().startswith(("30", "40"))]
            assert rows
            return rows

        clean = table([])
        chaotic = table(["--chaos", "transient@job.run:until=1",
                         "--retries", "3"])
        assert clean == chaotic

    def test_resume_flag_requires_cache(self, capsys):
        code = main(self.ARGS + ["--no-cache", "--resume"])
        assert code == 2
        assert "--resume" in capsys.readouterr().err

    def test_resume_serves_finished_cells(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        journal = tmp_path / "journal.jsonl"
        base = ["sweep", "--densities", "0.08", "--fast", "--seed", "11",
                "--cache-dir", str(cache_dir), "--journal", str(journal)]
        # "killed" run: only the first cell completed
        assert main(base + ["--sizes", "30"]) == 0
        capsys.readouterr()
        assert journal.exists()
        code = main(base + ["--sizes", "30", "40", "--resume"])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 cell(s): 1 executed, 1 cache hit(s)" in out

    def test_persistent_chaos_reports_failure_exit_one(self, capsys):
        code = main(self.ARGS + ["--no-cache", "--chaos", "error@job.run",
                                 "--retries", "2"])
        assert code == 1
        captured = capsys.readouterr()
        assert "FAILED" in captured.out
        assert "ChaosError" in captured.err
