"""JobRequest validation, dedup keys and the job-record lifecycle."""

from __future__ import annotations

import pytest

from repro.runtime.jobs import Job, SweepSpec
from repro.service.jobs import BadRequestError, JobRecord, JobRequest


class TestFromDict:
    def test_minimal_map_request(self):
        request = JobRequest.from_dict({"kind": "map"})
        assert request.kind == "map"
        assert request.neurons == 64
        assert request.fast is True

    def test_rejects_non_object_payload(self):
        with pytest.raises(BadRequestError):
            JobRequest.from_dict([1, 2, 3])

    def test_rejects_unknown_kind(self):
        with pytest.raises(BadRequestError, match="'kind'"):
            JobRequest.from_dict({"kind": "route"})

    def test_rejects_non_numeric_fields(self):
        with pytest.raises(BadRequestError, match="'neurons'"):
            JobRequest.from_dict({"kind": "map", "neurons": "many"})

    def test_rejects_out_of_range_density(self):
        with pytest.raises(BadRequestError, match="'density'"):
            JobRequest.from_dict({"kind": "map", "density": 2.0})

    def test_rejects_unknown_router(self):
        with pytest.raises(BadRequestError, match="'router'"):
            JobRequest.from_dict({"kind": "map", "router": "quantum"})

    def test_rejects_oversized_sweep_grid(self):
        with pytest.raises(BadRequestError, match="grid too large"):
            JobRequest.from_dict(
                {"kind": "sweep", "sizes": list(range(2, 60)),
                 "densities": [0.1] * 10}
            )

    def test_sweep_defaults(self):
        request = JobRequest.from_dict({"kind": "sweep"})
        assert request.sweep_kind == "compare"
        assert request.sizes and request.densities

    def test_to_dict_round_trips(self):
        request = JobRequest.from_dict(
            {"kind": "verify", "neurons": 32, "density": 0.1, "seed": 7}
        )
        assert JobRequest.from_dict(request.to_dict()) == request


class TestMaterialize:
    def test_single_kind_materializes_a_runtime_job(self):
        work, key = JobRequest.from_dict(
            {"kind": "map", "neurons": 24, "density": 0.2}
        ).materialize()
        assert isinstance(work, Job)
        assert work.kind == "autoncs"
        assert work.cacheable

    def test_verify_maps_to_the_verify_flow_executor(self):
        work, _key = JobRequest.from_dict(
            {"kind": "verify", "neurons": 24, "density": 0.2}
        ).materialize()
        assert work.kind == "verify_flow"

    def test_sweep_materializes_a_sweep_spec(self):
        work, key = JobRequest.from_dict(
            {"kind": "sweep", "sizes": [16, 20], "densities": [0.2]}
        ).materialize()
        assert isinstance(work, SweepSpec)
        assert len(work) == 2 and key

    def test_identical_requests_share_a_key(self):
        payload = {"kind": "map", "neurons": 24, "density": 0.2, "seed": 3}
        _work_a, key_a = JobRequest.from_dict(payload).materialize()
        _work_b, key_b = JobRequest.from_dict(dict(payload)).materialize()
        assert key_a == key_b

    def test_key_separates_every_identity_component(self):
        base = {"kind": "map", "neurons": 24, "density": 0.2, "seed": 3}
        _w, key = JobRequest.from_dict(base).materialize()
        for variant in (
            {**base, "kind": "verify"},
            {**base, "seed": 4},
            {**base, "neurons": 26},
            {**base, "network_seed": 9},
            {**base, "fast": False},
            {**base, "router": "negotiated"},
        ):
            _w, other = JobRequest.from_dict(variant).materialize()
            assert other != key, f"variant {variant} collided"

    def test_priority_does_not_change_the_key(self):
        base = {"kind": "map", "neurons": 24, "density": 0.2}
        _w, key_a = JobRequest.from_dict(base).materialize()
        _w, key_b = JobRequest.from_dict({**base, "priority": 9}).materialize()
        assert key_a == key_b


class TestJobRecord:
    def test_lifecycle_flags(self):
        record = JobRecord(job_id="j1", key="k", request=JobRequest(kind="map"))
        assert record.state == "queued"
        assert not record.terminal
        assert record.latency_seconds is None
        record.state = "done"
        record.finished = record.created + 1.5
        assert record.terminal
        assert record.latency_seconds == pytest.approx(1.5)

    def test_to_dict_is_json_compatible(self):
        import json

        record = JobRecord(job_id="j1", key="k", request=JobRequest(kind="map"))
        payload = json.loads(json.dumps(record.to_dict()))
        assert payload["job_id"] == "j1"
        assert payload["kind"] == "map"
        assert payload["request"]["neurons"] == 64
