"""The HTTP transport and client against a live in-process server."""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.service import ServiceConfig, ServiceServer
from repro.service.client import ServiceClient, ServiceError

MAP_REQUEST = {"kind": "map", "neurons": 24, "density": 0.2}


@pytest.fixture()
def server(tmp_path):
    config = ServiceConfig(workers=2, cache_dir=tmp_path / "cache")
    with ServiceServer(config, port=0) as live:
        yield live


@pytest.fixture()
def client(server):
    return ServiceClient(server.url)


@pytest.fixture()
def parked_server(tmp_path):
    """A server whose jobs never drain (zero workers): queue inspection."""
    config = ServiceConfig(workers=0, max_queue=2, cache_dir=tmp_path / "cache")
    with ServiceServer(config, port=0) as live:
        yield live


class TestEndpoints:
    def test_healthz(self, client):
        assert client.healthy()

    def test_submit_wait_returns_the_result(self, client):
        done = client.submit(MAP_REQUEST, wait=True)
        assert done["state"] == "done"
        assert done["coalesced"] is False
        assert done["result"]["neurons"] == 24
        assert done["latency_seconds"] >= 0

    def test_identical_submission_coalesces_over_http(self, client):
        first = client.submit(MAP_REQUEST, wait=True)
        second = client.submit(dict(MAP_REQUEST), wait=True)
        assert second["coalesced"] is True
        assert second["job_id"] == first["job_id"]

    def test_status_and_result_roundtrip(self, client):
        done = client.submit(MAP_REQUEST, wait=True)
        status = client.status(done["job_id"])
        assert status["state"] == "done"
        assert status["kind"] == "map"
        result = client.result(done["job_id"])
        assert result["result"]["neurons"] == 24

    def test_events_stream_covers_the_job(self, client):
        done = client.submit(MAP_REQUEST, wait=True)
        events = list(client.events(done["job_id"]))
        kinds = [event["event"] for event in events]
        assert kinds[0] == "sweep_started"
        assert kinds[-1] == "sweep_finished"

    def test_jobs_listing(self, client):
        client.submit(MAP_REQUEST, wait=True)
        jobs = client.jobs()
        assert len(jobs) == 1 and jobs[0]["kind"] == "map"

    def test_stats_reports_the_serving_mix(self, client):
        client.submit(MAP_REQUEST, wait=True)
        client.submit(MAP_REQUEST, wait=True)
        stats = client.stats()
        assert stats["counters"]["requests"] == 2
        assert stats["cache_hit_ratio"] == pytest.approx(0.5)
        assert stats["cache"]["entries"] == 1


class TestErrors:
    def test_bad_request_is_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"kind": "route"})
        assert excinfo.value.status == 400
        assert "'kind'" in excinfo.value.message

    def test_invalid_json_is_400(self, server):
        request = urllib.request.Request(
            server.url + "/jobs", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.status("missing")
        assert excinfo.value.status == 404

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404

    def test_queue_full_is_429_with_retry_after(self, parked_server):
        client = ServiceClient(parked_server.url)
        client.submit({**MAP_REQUEST, "seed": 1})
        client.submit({**MAP_REQUEST, "seed": 2})
        with pytest.raises(ServiceError) as excinfo:
            client.submit({**MAP_REQUEST, "seed": 3})
        error = excinfo.value
        assert error.status == 429 and error.queue_full
        assert error.retry_after_seconds and error.retry_after_seconds > 0

    def test_result_before_terminal_is_409(self, parked_server):
        client = ServiceClient(parked_server.url)
        queued = client.submit(MAP_REQUEST)
        assert queued["job"]["state"] == "queued"
        with pytest.raises(ServiceError) as excinfo:
            client.result(queued["job"]["job_id"])
        assert excinfo.value.status == 409

    def test_cancel_over_http(self, parked_server):
        client = ServiceClient(parked_server.url)
        queued = client.submit(MAP_REQUEST)
        job_id = queued["job"]["job_id"]
        cancelled = client.cancel(job_id)
        assert cancelled["cancelled"] is True
        assert cancelled["job"]["state"] == "cancelled"
        # Cancelling again is a no-op, reported as such.
        assert client.cancel(job_id)["cancelled"] is False


class TestCliServe:
    def test_serve_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve", "--port", "0", "--workers", "1"])
        assert args.func.__name__ == "_cmd_serve"
        assert args.max_queue == 64
        assert args.cache_dir == ".repro-cache"

    def test_responses_are_json(self, server):
        with urllib.request.urlopen(server.url + "/healthz") as response:
            assert response.headers["Content-Type"] == "application/json"
            assert json.loads(response.read()) == {"ok": True}
