"""MappingService engine: dedup, queueing, workers, cancel, metrics."""

from __future__ import annotations

import threading

import pytest

from repro.runtime.jobs import Job
from repro.service import (
    JobQueue,
    JobRequest,
    MappingService,
    QueueFullError,
    ServiceConfig,
)
from repro.service.metrics import ServiceMetrics, percentile


def make_service(tmp_path, workers=1, **overrides):
    config = ServiceConfig(
        workers=workers, cache_dir=tmp_path / "cache", **overrides
    )
    return MappingService(config)


MAP_REQUEST = {"kind": "map", "neurons": 24, "density": 0.2}


class TestDedup:
    def test_identical_in_flight_submissions_coalesce(self, tmp_path):
        # The satellite contract: two identical submissions while the
        # job is queued return the SAME job id, and the pipeline runs
        # exactly once — proven by the artifact cache holding exactly
        # one stored result.
        service = make_service(tmp_path, workers=1)
        request = JobRequest.from_dict(MAP_REQUEST)
        first, coalesced_first = service.submit(request)
        second, coalesced_second = service.submit(
            JobRequest.from_dict(dict(MAP_REQUEST))
        )
        assert not coalesced_first and coalesced_second
        assert first.job_id == second.job_id
        assert first.submissions == 2
        assert service.metrics.counter("dedup_coalesced") == 1

        service.start()
        try:
            record = service.wait(first.job_id, timeout=120)
        finally:
            service.stop()
        assert record.state == "done"
        assert len(service.cache) == 1  # stored once: one execution
        assert service.metrics.counter("jobs_executed") == 1

    def test_completed_record_serves_later_submissions(self, tmp_path):
        service = make_service(tmp_path, workers=1)
        service.start()
        try:
            first, _ = service.submit(JobRequest.from_dict(MAP_REQUEST))
            service.wait(first.job_id, timeout=120)
            again, coalesced = service.submit(JobRequest.from_dict(MAP_REQUEST))
        finally:
            service.stop()
        assert coalesced and again.job_id == first.job_id
        assert service.metrics.counter("cache_hits") >= 1

    def test_restarted_service_serves_from_the_artifact_cache(self, tmp_path):
        first_service = make_service(tmp_path, workers=1)
        first_service.start()
        try:
            record, _ = first_service.submit(JobRequest.from_dict(MAP_REQUEST))
            first_service.wait(record.job_id, timeout=120)
        finally:
            first_service.stop()

        # A cold process: no retained records, but the shared cache
        # serves the result without re-running the flow.
        second_service = make_service(tmp_path, workers=1)
        second_service.start()
        try:
            fresh, coalesced = second_service.submit(
                JobRequest.from_dict(MAP_REQUEST)
            )
            done = second_service.wait(fresh.job_id, timeout=120)
        finally:
            second_service.stop()
        assert not coalesced  # new record...
        assert done.state == "done" and done.cache_hit  # ...but no execution
        assert second_service.metrics.counter("jobs_executed") == 0

    def test_distinct_requests_do_not_coalesce(self, tmp_path):
        service = make_service(tmp_path, workers=1)
        first, _ = service.submit(JobRequest.from_dict(MAP_REQUEST))
        second, coalesced = service.submit(
            JobRequest.from_dict({**MAP_REQUEST, "seed": 7})
        )
        assert not coalesced and first.job_id != second.job_id


class TestBackpressureAndCancel:
    def test_queue_full_rejects_with_retry_hint(self, tmp_path):
        service = make_service(tmp_path, workers=1, max_queue=2)
        service.submit(JobRequest.from_dict(MAP_REQUEST))
        service.submit(JobRequest.from_dict({**MAP_REQUEST, "seed": 1}))
        with pytest.raises(QueueFullError) as excinfo:
            service.submit(JobRequest.from_dict({**MAP_REQUEST, "seed": 2}))
        assert excinfo.value.depth == 2
        assert excinfo.value.retry_after_seconds > 0
        assert service.metrics.counter("queue_rejections") == 1
        # The rejected submission left no record behind.
        assert len(service.jobs()) == 2

    def test_cancel_queued_job_frees_its_key(self, tmp_path):
        service = make_service(tmp_path, workers=1)
        record, _ = service.submit(JobRequest.from_dict(MAP_REQUEST))
        assert service.cancel(record.job_id)
        assert record.state == "cancelled"
        assert service.wait(record.job_id, timeout=1).terminal
        # A cancelled record does not satisfy new submissions.
        fresh, coalesced = service.submit(JobRequest.from_dict(MAP_REQUEST))
        assert not coalesced and fresh.job_id != record.job_id

    def test_cancel_unknown_or_terminal_is_false(self, tmp_path):
        service = make_service(tmp_path, workers=1)
        assert not service.cancel("nope")
        record, _ = service.submit(JobRequest.from_dict(MAP_REQUEST))
        service.cancel(record.job_id)
        assert not service.cancel(record.job_id)


class TestExecution:
    def test_sweep_request_runs_the_grid(self, tmp_path):
        service = make_service(tmp_path, workers=1)
        service.start()
        try:
            record, _ = service.submit(
                JobRequest.from_dict(
                    {"kind": "sweep", "sizes": [16, 20], "densities": [0.2]}
                )
            )
            done = service.wait(record.job_id, timeout=240)
        finally:
            service.stop()
        assert done.state == "done"
        payload = service.result_payload(done)
        assert payload["result"]["kind"] == "sweep"
        assert len(payload["result"]["cells"]) == 2
        assert len(service.cache) == 2  # one artifact per grid cell

    def test_verify_request_returns_a_report(self, tmp_path):
        service = make_service(tmp_path, workers=1)
        service.start()
        try:
            record, _ = service.submit(
                JobRequest.from_dict({**MAP_REQUEST, "kind": "verify"})
            )
            done = service.wait(record.job_id, timeout=120)
        finally:
            service.stop()
        assert done.state == "done"
        assert service.result_payload(done)["result"]["passed"] is True

    def test_job_events_trace_is_written_and_tailable(self, tmp_path):
        from repro.runtime import tail_trace

        service = make_service(tmp_path, workers=1)
        service.start()
        try:
            record, _ = service.submit(JobRequest.from_dict(MAP_REQUEST))
            service.wait(record.job_id, timeout=120)
        finally:
            service.stop()
        events, _offset = tail_trace(record.events_path)
        kinds = [event["event"] for event in events]
        assert kinds[0] == "sweep_started"
        assert "job_finished" in kinds
        assert kinds[-1] == "sweep_finished"

    def test_failed_job_is_recorded_not_raised(self, tmp_path, monkeypatch):
        request = JobRequest.from_dict(MAP_REQUEST)
        _work, key = request.materialize()
        poison = Job(kind="no-such-executor", label="boom", payload={}, seed=1)
        monkeypatch.setattr(
            JobRequest, "materialize", lambda self: (poison, key)
        )
        service = make_service(tmp_path, workers=1)
        service.start()
        try:
            record, _ = service.submit(request)
            done = service.wait(record.job_id, timeout=60)
        finally:
            service.stop()
        assert done.state == "failed"
        assert "no-such-executor" in done.error
        assert service.metrics.counter("failed") == 1
        # A failed record does not satisfy new submissions.
        monkeypatch.undo()
        fresh, coalesced = service.submit(JobRequest.from_dict(MAP_REQUEST))
        assert not coalesced and fresh.job_id != record.job_id

    def test_priority_orders_the_queue(self, tmp_path):
        # Submit while the workers are down, then start: the
        # high-priority job must run first.
        service = make_service(tmp_path, workers=1)
        low, _ = service.submit(
            JobRequest.from_dict({**MAP_REQUEST, "seed": 1, "priority": 0})
        )
        high, _ = service.submit(
            JobRequest.from_dict({**MAP_REQUEST, "seed": 2, "priority": 5})
        )
        service.start()
        try:
            service.wait(low.job_id, timeout=120)
            service.wait(high.job_id, timeout=120)
        finally:
            service.stop()
        assert high.started <= low.started

    def test_stats_snapshot_shape(self, tmp_path):
        service = make_service(tmp_path, workers=1)
        service.start()
        try:
            record, _ = service.submit(JobRequest.from_dict(MAP_REQUEST))
            service.wait(record.job_id, timeout=120)
        finally:
            service.stop()
        stats = service.stats()
        assert stats["queue_depth"] == 0
        assert stats["counters"]["completed"] == 1
        assert stats["latency"]["count"] == 1
        assert stats["latency"]["p99_seconds"] >= stats["latency"]["p50_seconds"] >= 0
        assert stats["cache"]["entries"] == 1


class TestJobQueue:
    def test_priority_then_fifo_order(self):
        queue = JobQueue(max_depth=8)
        queue.put("a", priority=0)
        queue.put("b", priority=5)
        queue.put("c", priority=0)
        queue.put("d", priority=5)
        order = [queue.get(timeout=0.1) for _ in range(4)]
        assert order == ["b", "d", "a", "c"]

    def test_put_beyond_capacity_raises(self):
        queue = JobQueue(max_depth=1)
        queue.put("a")
        with pytest.raises(QueueFullError):
            queue.put("b")

    def test_removed_ids_are_skipped_and_free_capacity(self):
        queue = JobQueue(max_depth=2)
        queue.put("a")
        queue.put("b")
        queue.remove("a")
        assert queue.depth == 1
        queue.put("c")  # capacity freed by the lazy removal
        assert queue.get(timeout=0.1) == "b"
        assert queue.get(timeout=0.1) == "c"
        assert queue.get(timeout=0.05) is None

    def test_get_wakes_on_concurrent_put(self):
        queue = JobQueue(max_depth=2)
        got = []

        def consume():
            got.append(queue.get(timeout=5.0))

        thread = threading.Thread(target=consume)
        thread.start()
        queue.put("late")
        thread.join(timeout=5.0)
        assert got == ["late"]

    def test_rejects_silly_depth(self):
        with pytest.raises(ValueError):
            JobQueue(max_depth=0)


class TestServiceMetrics:
    def test_percentile_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == pytest.approx(2.5)
        assert percentile([], 50) == 0.0
        assert percentile([7.0], 99) == 7.0

    def test_snapshot_hit_ratio(self):
        metrics = ServiceMetrics()
        metrics.count("requests", 10)
        metrics.count("cache_hits", 6)
        metrics.count("dedup_coalesced", 3)
        metrics.observe_latency(0.1)
        metrics.observe_latency(0.3)
        snapshot = metrics.snapshot(queue_depth=2, in_flight=1)
        assert snapshot["cache_hit_ratio"] == pytest.approx(0.9)
        assert snapshot["queue_depth"] == 2
        assert snapshot["latency"]["count"] == 2
        assert snapshot["latency"]["max_seconds"] == pytest.approx(0.3)

    def test_config_validation(self, tmp_path):
        with pytest.raises(ValueError):
            ServiceConfig(workers=-1)
        with pytest.raises(ValueError):
            ServiceConfig(keep_records=0)
