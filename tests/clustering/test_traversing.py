"""Tests for the traversing baseline."""

import pytest

from repro.clustering.traversing import traversing_clustering
from repro.networks import random_sparse_network


class TestTraversing:
    def test_respects_limit(self, block_network):
        result = traversing_clustering(block_network, 20, rng=0)
        assert result.max_size() <= 20

    def test_partition_complete(self, block_network):
        result = traversing_clustering(block_network, 20, rng=0)
        covered = sorted(m for c in result.clusters for m in c.members)
        assert covered == list(range(block_network.size))

    def test_metadata_attempts(self, block_network):
        result = traversing_clustering(block_network, 20, rng=0)
        assert result.method == "traversing"
        assert result.metadata["attempts"] >= 1
        assert result.metadata["final_k"] >= block_network.size // 20

    def test_limit_one(self):
        net = random_sparse_network(10, 0.3, rng=0)
        result = traversing_clustering(net, 1, rng=0)
        assert result.max_size() == 1

    def test_rejects_bad_limit(self, block_network):
        with pytest.raises(ValueError):
            traversing_clustering(block_network, 0)

    def test_without_embedding_reuse(self):
        net = random_sparse_network(20, 0.2, rng=1)
        result = traversing_clustering(net, 8, rng=0, reuse_embedding=False)
        assert result.max_size() <= 8
