"""Tests for ISC (Algorithm 3) — the core AutoNCS clustering loop."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.isc import (
    CrossbarAssignment,
    iterative_spectral_clustering,
    single_pass_clusters,
)
from repro.mapping import fullcro_utilization
from repro.networks import ConnectionMatrix, block_diagonal_network, random_sparse_network


class TestCrossbarAssignment:
    def test_properties(self):
        a = CrossbarAssignment(
            members=(0, 1, 2), size=16, connections=((0, 1), (1, 2)), iteration=1
        )
        assert a.utilized_connections == 2
        assert a.utilization == pytest.approx(2 / 256)
        assert a.preference == pytest.approx(4 / 16**3)

    def test_rejects_oversized_cluster(self):
        with pytest.raises(ValueError, match="cannot fit"):
            CrossbarAssignment(members=tuple(range(20)), size=16, connections=(), iteration=1)

    def test_rejects_foreign_connection(self):
        with pytest.raises(ValueError, match="outside"):
            CrossbarAssignment(members=(0, 1), size=16, connections=((0, 5),), iteration=1)


class TestIscOnStructuredNetwork:
    def test_low_outliers_on_blocks(self, small_isc, block_network):
        assert small_isc.outlier_ratio < 0.1
        assert small_isc.iterations >= 1
        assert len(small_isc.crossbars) >= 1

    def test_invariant_coverage(self, small_isc):
        # validate() asserts crossbars + outliers == network exactly.
        small_isc.validate()

    def test_records_consistent(self, small_isc):
        total = small_isc.network.num_connections
        clustered = sum(r.connections_clustered for r in small_isc.records)
        assert clustered + len(small_isc.outliers) == total

    def test_outlier_series_monotone(self, small_isc):
        series = [r.outlier_ratio_after for r in small_isc.records]
        assert all(b <= a + 1e-12 for a, b in zip(series, series[1:]))

    def test_crossbars_within_library(self, small_isc):
        for assignment in small_isc.crossbars:
            assert assignment.size in small_isc.sizes
            assert len(assignment.members) <= assignment.size

    def test_histogram_counts(self, small_isc):
        histogram = small_isc.crossbar_size_histogram()
        assert sum(histogram.values()) == len(small_isc.crossbars)


class TestIscControls:
    def test_high_threshold_stops_early(self, block_network):
        isc = iterative_spectral_clustering(
            block_network, utilization_threshold=0.99, rng=0
        )
        assert isc.iterations <= 2

    def test_max_iterations_respected(self, sparse_network):
        isc = iterative_spectral_clustering(
            sparse_network, utilization_threshold=0.0, max_iterations=3, rng=0
        )
        assert isc.iterations <= 3

    def test_selection_quantile_affects_placement_rate(self, block_network):
        greedy = iterative_spectral_clustering(
            block_network, utilization_threshold=0.0, selection_quantile=1e-9,
            max_iterations=2, rng=0,
        )
        picky = iterative_spectral_clustering(
            block_network, utilization_threshold=0.0, selection_quantile=0.75,
            max_iterations=2, rng=0,
        )
        if greedy.records and picky.records:
            assert greedy.records[0].crossbars_placed >= picky.records[0].crossbars_placed

    def test_custom_preference_function(self, block_network):
        isc = iterative_spectral_clustering(
            block_network,
            utilization_threshold=0.01,
            preference=lambda m, s: float(m),
            rng=0,
        )
        isc.validate()

    def test_empty_network(self):
        empty = ConnectionMatrix(np.zeros((20, 20)))
        isc = iterative_spectral_clustering(empty, utilization_threshold=0.01, rng=0)
        assert isc.iterations == 0
        assert isc.outliers == []
        assert isc.outlier_ratio == 0.0

    def test_rejects_bad_quantile(self, block_network):
        with pytest.raises(ValueError):
            iterative_spectral_clustering(block_network, selection_quantile=0.0)

    def test_rejects_bad_sizes(self, block_network):
        with pytest.raises(ValueError):
            iterative_spectral_clustering(block_network, sizes=())

    def test_rejects_non_network(self):
        with pytest.raises(TypeError):
            iterative_spectral_clustering(np.zeros((5, 5)))

    def test_rejects_bad_max_iterations(self, block_network):
        with pytest.raises(ValueError):
            iterative_spectral_clustering(block_network, max_iterations=0)


class TestSinglePass:
    def test_clusters_have_connections(self, block_network):
        clusters = single_pass_clusters(block_network, 30, rng=0)
        for cluster in clusters:
            assert block_network.connections_within(cluster.members) > 0

    def test_respects_size(self, block_network):
        clusters = single_pass_clusters(block_network, 25, rng=0)
        assert all(c.size <= 25 for c in clusters)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_property_isc_conserves_connections(seed):
    """The core invariant: every connection lands exactly once."""
    net = block_diagonal_network([12, 10, 8], within_density=0.7,
                                 between_density=0.05, rng=seed)
    threshold = fullcro_utilization(net, 64)
    isc = iterative_spectral_clustering(net, utilization_threshold=threshold, rng=seed)
    isc.validate()
    implemented = sum(x.utilized_connections for x in isc.crossbars) + len(isc.outliers)
    assert implemented == net.num_connections


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10**6), density=st.floats(0.02, 0.2))
def test_property_isc_random_networks(seed, density):
    net = random_sparse_network(40, density, rng=seed)
    isc = iterative_spectral_clustering(
        net, utilization_threshold=0.05, max_iterations=5, rng=seed
    )
    isc.validate()
    assert 0.0 <= isc.outlier_ratio <= 1.0
