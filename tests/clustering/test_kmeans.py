"""Tests for the k-means implementation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.kmeans import kmeans, kmeans_plus_plus_centroids


def two_blobs(rng, n=30, separation=10.0):
    a = rng.normal(0.0, 0.5, size=(n, 2))
    b = rng.normal(separation, 0.5, size=(n, 2))
    return np.vstack([a, b])


class TestKmeansPlusPlus:
    def test_shape(self, rng):
        points = rng.random((20, 3))
        centroids = kmeans_plus_plus_centroids(points, 4, rng=rng)
        assert centroids.shape == (4, 3)

    def test_centroids_are_points(self, rng):
        points = rng.random((15, 2))
        centroids = kmeans_plus_plus_centroids(points, 3, rng=rng)
        for c in centroids:
            assert any(np.allclose(c, p) for p in points)

    def test_identical_points_ok(self, rng):
        points = np.ones((10, 2))
        centroids = kmeans_plus_plus_centroids(points, 3, rng=rng)
        assert centroids.shape == (3, 2)

    def test_rejects_k_too_large(self, rng):
        with pytest.raises(ValueError):
            kmeans_plus_plus_centroids(rng.random((3, 2)), 5, rng=rng)

    def test_rejects_k_zero(self, rng):
        with pytest.raises(ValueError):
            kmeans_plus_plus_centroids(rng.random((3, 2)), 0, rng=rng)


class TestKmeans:
    def test_separates_blobs(self, rng):
        points = two_blobs(rng)
        result = kmeans(points, 2, rng=rng)
        labels = result.labels
        # first 30 points all one label, last 30 all the other
        assert len(set(labels[:30])) == 1
        assert len(set(labels[30:])) == 1
        assert labels[0] != labels[-1]

    def test_result_fields(self, rng):
        points = two_blobs(rng)
        result = kmeans(points, 2, rng=rng)
        assert result.k == 2
        assert result.centroids.shape == (2, 2)
        assert result.inertia >= 0.0
        assert result.n_iterations >= 1

    def test_explicit_initial_centroids(self, rng):
        points = two_blobs(rng)
        init = np.array([[0.0, 0.0], [10.0, 10.0]])
        result = kmeans(points, 2, initial_centroids=init, rng=rng)
        assert np.all(result.labels[:30] == 0)
        assert np.all(result.labels[30:] == 1)

    def test_wrong_initial_shape_rejected(self, rng):
        with pytest.raises(ValueError, match="shape"):
            kmeans(rng.random((10, 2)), 2, initial_centroids=np.zeros((3, 2)), rng=rng)

    def test_k_equals_n(self, rng):
        points = rng.random((5, 2))
        result = kmeans(points, 5, rng=rng)
        assert sorted(np.bincount(result.labels, minlength=5)) == [1, 1, 1, 1, 1]

    def test_k_one(self, rng):
        points = rng.random((10, 2))
        result = kmeans(points, 1, rng=rng)
        assert np.all(result.labels == 0)
        np.testing.assert_allclose(result.centroids[0], points.mean(axis=0))

    def test_rejects_bad_k(self, rng):
        with pytest.raises(ValueError):
            kmeans(rng.random((5, 2)), 0)
        with pytest.raises(ValueError):
            kmeans(rng.random((5, 2)), 6)

    def test_rejects_1d_points(self):
        with pytest.raises(ValueError):
            kmeans(np.ones(5), 2)

    def test_no_repair_leaves_empty_clusters(self, rng):
        # two tight blobs, k=5 without repair: some clusters may stay empty
        points = two_blobs(rng)
        result = kmeans(points, 5, rng=rng, repair_empty=False)
        counts = np.bincount(result.labels, minlength=5)
        assert counts.sum() == points.shape[0]

    def test_repair_fills_clusters_on_spread_data(self, rng):
        points = rng.random((50, 2)) * 100
        result = kmeans(points, 5, rng=rng, repair_empty=True)
        counts = np.bincount(result.labels, minlength=5)
        assert np.all(counts > 0)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(5, 40),
    k=st.integers(1, 5),
    d=st.integers(1, 4),
    seed=st.integers(0, 10**6),
)
def test_property_labels_valid_and_inertia_finite(n, k, d, seed):
    rng = np.random.default_rng(seed)
    k = min(k, n)
    points = rng.random((n, d))
    result = kmeans(points, k, rng=rng)
    assert result.labels.shape == (n,)
    assert result.labels.min() >= 0
    assert result.labels.max() < k
    assert np.isfinite(result.inertia)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_property_inertia_not_worse_than_random_assignment(seed):
    rng = np.random.default_rng(seed)
    points = rng.random((30, 2))
    result = kmeans(points, 3, rng=rng)
    random_labels = rng.integers(0, 3, size=30)
    random_inertia = 0.0
    for j in range(3):
        members = points[random_labels == j]
        if members.size:
            random_inertia += float(np.sum((members - members.mean(axis=0)) ** 2))
    assert result.inertia <= random_inertia + 1e-9
