"""Tests for cluster containers."""

import numpy as np
import pytest

from repro.clustering.result import Cluster, ClusteringResult, clusters_from_labels


class TestCluster:
    def test_members_sorted_unique(self):
        cluster = Cluster((3, 1, 2))
        assert cluster.members == (1, 2, 3)
        assert cluster.size == 3

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="unique"):
            Cluster((1, 1, 2))

    def test_contains_and_iter(self):
        cluster = Cluster((5, 7))
        assert 5 in cluster
        assert 6 not in cluster
        assert list(cluster) == [5, 7]
        assert len(cluster) == 2


class TestClusteringResult:
    def test_valid_partition(self):
        result = ClusteringResult(
            clusters=[Cluster((0, 1)), Cluster((2,))], n=3, method="msc"
        )
        assert result.k == 2
        assert result.sizes() == [2, 1]
        assert result.max_size() == 2

    def test_rejects_overlap(self):
        with pytest.raises(ValueError, match="overlap"):
            ClusteringResult(clusters=[Cluster((0, 1)), Cluster((1, 2))], n=3)

    def test_rejects_incomplete_cover(self):
        with pytest.raises(ValueError, match="cover"):
            ClusteringResult(clusters=[Cluster((0,))], n=3)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            ClusteringResult(clusters=[Cluster((0, 5))], n=2)

    def test_labels_roundtrip(self):
        result = ClusteringResult(
            clusters=[Cluster((0, 2)), Cluster((1, 3))], n=4
        )
        labels = result.labels()
        assert labels[0] == labels[2]
        assert labels[1] == labels[3]
        assert labels[0] != labels[1]

    def test_permutation_groups_clusters(self):
        result = ClusteringResult(clusters=[Cluster((0, 2)), Cluster((1,))], n=3)
        np.testing.assert_array_equal(result.permutation(), [0, 2, 1])


class TestClustersFromLabels:
    def test_basic(self):
        clusters = clusters_from_labels([0, 1, 0, 2])
        assert [c.members for c in clusters] == [(0, 2), (1,), (3,)]

    def test_skips_missing_labels(self):
        clusters = clusters_from_labels([5, 5, 9])
        assert len(clusters) == 2

    def test_empty(self):
        assert clusters_from_labels([]) == []
