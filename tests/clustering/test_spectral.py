"""Tests for MSC (Algorithm 1) and the spectral embedding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.spectral import modified_spectral_clustering, spectral_embedding
from repro.networks import ConnectionMatrix, random_sparse_network


class TestSpectralEmbedding:
    def test_full_basis_shape(self, block_network):
        basis, values = spectral_embedding(block_network, k=None)
        n = block_network.size
        assert basis.shape == (n, n)
        assert values.shape == (n,)

    def test_partial_basis(self, block_network):
        basis, values = spectral_embedding(block_network, k=5)
        assert basis.shape == (block_network.size, 5)

    def test_eigenvalues_ascending(self, block_network):
        _, values = spectral_embedding(block_network, k=None)
        assert np.all(np.diff(values) >= -1e-9)

    def test_smallest_eigenvalue_near_zero(self, block_network):
        # The constant vector is in the kernel of L for a connected graph.
        _, values = spectral_embedding(block_network, k=1)
        assert values[0] == pytest.approx(0.0, abs=1e-6)

    def test_number_of_near_zero_eigenvalues_counts_components(self):
        # Two disconnected cliques -> two ~zero generalized eigenvalues.
        m = np.zeros((6, 6), dtype=int)
        m[:3, :3] = 1
        m[3:, 3:] = 1
        np.fill_diagonal(m, 0)
        _, values = spectral_embedding(ConnectionMatrix(m), k=3)
        assert values[0] == pytest.approx(0.0, abs=1e-8)
        assert values[1] == pytest.approx(0.0, abs=1e-8)
        assert values[2] > 1e-6

    def test_isolated_nodes_handled(self):
        m = np.zeros((5, 5), dtype=int)
        m[0, 1] = m[1, 0] = 1
        basis, _ = spectral_embedding(ConnectionMatrix(m), k=2)
        assert np.all(np.isfinite(basis))

    def test_rejects_bad_k(self, block_network):
        with pytest.raises(ValueError):
            spectral_embedding(block_network, k=0)
        with pytest.raises(ValueError):
            spectral_embedding(block_network, k=block_network.size + 1)

    def test_accepts_raw_matrix(self):
        w = np.array([[0.0, 1.0], [1.0, 0.0]])
        basis, _ = spectral_embedding(w, k=1)
        assert basis.shape == (2, 1)

    def test_rejects_non_square_similarity(self):
        with pytest.raises(ValueError):
            spectral_embedding(np.zeros((2, 3)), k=1)


class TestMsc:
    def test_recovers_planted_blocks(self, block_network):
        result = modified_spectral_clustering(block_network, 3, rng=0)
        assert result.k == 3
        assert sorted(result.sizes()) == [20, 25, 30]
        clusters = [c.members for c in result.clusters]
        assert block_network.outlier_ratio(clusters) < 0.1

    def test_metadata(self, block_network):
        result = modified_spectral_clustering(block_network, 3, rng=0)
        assert result.method == "msc"
        assert result.metadata["requested_k"] == 3

    def test_partition_complete(self, sparse_network):
        result = modified_spectral_clustering(sparse_network, 4, rng=0)
        covered = sorted(m for c in result.clusters for m in c.members)
        assert covered == list(range(sparse_network.size))

    def test_k_one_single_cluster(self, sparse_network):
        result = modified_spectral_clustering(sparse_network, 1, rng=0)
        assert result.k == 1
        assert result.clusters[0].size == sparse_network.size

    def test_rejects_bad_k(self, sparse_network):
        with pytest.raises(ValueError):
            modified_spectral_clustering(sparse_network, 0)

    def test_directed_network_symmetrized(self):
        net = random_sparse_network(40, 0.1, symmetric=False, rng=3)
        result = modified_spectral_clustering(net, 3, rng=0)
        assert result.k <= 3  # empty clusters may collapse


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10**6), k=st.integers(1, 6))
def test_property_msc_always_partitions(seed, k):
    net = random_sparse_network(30, 0.1, rng=seed)
    result = modified_spectral_clustering(net, k, rng=seed)
    covered = sorted(m for c in result.clusters for m in c.members)
    assert covered == list(range(30))


class TestEigensolverEquivalence:
    """The sparse (eigsh) path must match the dense (eigh) path at the
    cutover: same eigenvalues, same invariant subspace, same D-norm."""

    @pytest.fixture(scope="class")
    def cutover_similarity(self):
        from scipy import sparse as sp

        from repro.clustering.spectral import DENSE_EIGENSOLVER_CUTOFF, _similarity

        n = DENSE_EIGENSOLVER_CUTOFF + 176  # just past the dense routing
        net = random_sparse_network(n, 0.008, rng=13)
        w = _similarity(net)
        assert sp.issparse(w)  # the large sparse network stays sparse
        return w

    def test_eigsh_matches_eigh_at_cutover(self, cutover_similarity):
        from repro.clustering.spectral import _dense_embedding, _sparse_embedding

        w = cutover_similarity
        k = 12
        sparse_vecs, sparse_vals = _sparse_embedding(w, k)
        dense_vecs, dense_vals = _dense_embedding(w.toarray(), k)
        np.testing.assert_allclose(sparse_vals, dense_vals, atol=1e-9)
        # Eigenvectors are only defined up to rotation within degenerate
        # groups: compare the D-orthogonal projectors instead of columns.
        degrees = np.maximum(np.asarray(w.sum(axis=1)).ravel(), 1e-9)
        for vecs in (sparse_vecs, dense_vecs):
            gram = vecs.T @ (vecs * degrees[:, None])
            np.testing.assert_allclose(gram, np.eye(k), atol=1e-8)
        scaled_sparse = sparse_vecs * np.sqrt(degrees)[:, None]
        scaled_dense = dense_vecs * np.sqrt(degrees)[:, None]
        projector_gap = np.linalg.norm(
            scaled_sparse @ scaled_sparse.T - scaled_dense @ scaled_dense.T
        )
        assert projector_gap < 1e-6

    def test_routing_uses_sparse_solver_past_cutover(self, cutover_similarity):
        # The public entry point must agree with the dense answer too.
        from repro.clustering.spectral import _dense_embedding

        w = cutover_similarity
        basis, values = spectral_embedding(w, k=6)
        _, dense_values = _dense_embedding(w.toarray(), 6)
        assert basis.shape == (w.shape[0], 6)
        np.testing.assert_allclose(values, dense_values, atol=1e-9)

    def test_small_networks_stay_on_the_exact_solver(self, block_network):
        # tb1–tb3 sizes are far below the cutoff: bit-identical goldens
        # require the historical eigh path, not an iterative solve.
        from repro.clustering.spectral import DENSE_EIGENSOLVER_CUTOFF

        assert block_network.size <= DENSE_EIGENSOLVER_CUTOFF
