"""Tests for the tiered clustering pass (:mod:`repro.clustering.hierarchical`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import (
    DEFAULT_TIER_SIZE,
    cluster_hierarchical,
    coarse_partition,
    iterative_spectral_clustering,
)
from repro.core.autoncs import AutoNCS
from repro.core.config import AutoNcsConfig
from repro.mapping import autoncs_mapping
from repro.networks import block_diagonal_network, scale_free_network


@pytest.fixture(scope="module")
def tiered_network():
    """Planted blocks, big enough to split into several tiers of 32."""
    return block_diagonal_network(
        [24, 20, 22, 18, 24], within_density=0.6, between_density=0.01, rng=5
    )


class TestCoarsePartition:
    def test_partitions_all_neurons(self, tiered_network):
        result = coarse_partition(tiered_network, tier_size=32, rng=0)
        covered = sorted(m for c in result.clusters for m in c.members)
        assert covered == list(range(tiered_network.size))
        assert result.method == "coarse"

    def test_respects_tier_size(self, tiered_network):
        result = coarse_partition(tiered_network, tier_size=32, rng=0)
        assert all(c.size <= 32 for c in result.clusters)
        assert len(result.clusters) >= tiered_network.size // 32

    def test_single_tier_when_network_fits(self, tiered_network):
        result = coarse_partition(tiered_network, tier_size=10_000, rng=0)
        assert len(result.clusters) == 1

    def test_rejects_bad_tier_size(self, tiered_network):
        with pytest.raises(ValueError, match="tier_size"):
            coarse_partition(tiered_network, tier_size=0)

    def test_deterministic(self, tiered_network):
        a = coarse_partition(tiered_network, tier_size=32, rng=3)
        b = coarse_partition(tiered_network, tier_size=32, rng=3)
        assert [c.members for c in a.clusters] == [c.members for c in b.clusters]


class TestClusterHierarchical:
    def test_small_network_delegates_to_flat_isc(self, tiered_network):
        tiered = cluster_hierarchical(tiered_network, rng=0)  # size < tier_size
        flat = iterative_spectral_clustering(tiered_network, rng=0)
        assert [
            (a.members, a.size) for a in tiered.crossbars
        ] == [(a.members, a.size) for a in flat.crossbars]
        assert tiered.outliers == flat.outliers

    def test_tiered_result_validates(self, tiered_network):
        result = cluster_hierarchical(tiered_network, tier_size=32, rng=0)
        result.validate()  # every connection is crossbar xor outlier
        assert result.metadata["method"] == "hierarchical"
        assert result.metadata["tiers"] > 1
        assert result.crossbars

    def test_outlier_ratio_bounded_below_by_cut_ratio(self, tiered_network):
        result = cluster_hierarchical(tiered_network, tier_size=32, rng=0)
        assert result.outlier_ratio >= result.metadata["cut_ratio"] - 1e-12

    def test_deterministic(self, tiered_network):
        a = cluster_hierarchical(tiered_network, tier_size=32, rng=7)
        b = cluster_hierarchical(tiered_network, tier_size=32, rng=7)
        assert [(x.members, x.size) for x in a.crossbars] == [
            (x.members, x.size) for x in b.crossbars
        ]
        assert a.outliers == b.outliers

    def test_maps_downstream_unchanged(self, tiered_network):
        result = cluster_hierarchical(tiered_network, tier_size=32, rng=0)
        mapping = autoncs_mapping(result)
        mapping.validate()
        assert mapping.num_crossbars == len(result.crossbars)
        assert mapping.num_synapses == len(result.outliers)

    def test_scale_free_sparse_backend(self):
        # The stress topology, on the sparse backend end to end.
        net = scale_free_network(200, rng=11)
        assert net.backend in ("dense", "sparse")
        result = cluster_hierarchical(net, tier_size=64, rng=1)
        result.validate()
        assert result.metadata["tiers"] > 1

    def test_rejects_non_connection_matrix(self):
        with pytest.raises(TypeError, match="ConnectionMatrix"):
            cluster_hierarchical(np.zeros((4, 4)))


class TestConfigRouting:
    def test_default_tier_size_exported(self):
        assert DEFAULT_TIER_SIZE == 1024

    def test_clustering_for_resolves(self):
        config = AutoNcsConfig()
        assert config.clustering_for(100) == "isc"
        assert config.clustering_for(config.hierarchical_threshold + 1) == "hierarchical"

    def test_explicit_modes_override_auto(self):
        assert AutoNcsConfig(clustering="isc").clustering_for(10**6) == "isc"
        assert AutoNcsConfig(clustering="hierarchical").clustering_for(10) == "hierarchical"

    def test_invalid_clustering_rejected(self):
        with pytest.raises(ValueError, match="clustering"):
            AutoNcsConfig(clustering="magic")

    def test_autoncs_cluster_routes_hierarchical(self, tiered_network):
        config = AutoNcsConfig(clustering="hierarchical", tier_size=32)
        result = AutoNCS(config).cluster(tiered_network, rng=0)
        assert result.metadata["method"] == "hierarchical"
        result.validate()
