"""Tests for the modularity-clustering baseline."""

import numpy as np
import pytest

from repro.clustering.modularity import modularity_clustering
from repro.networks import ConnectionMatrix, block_diagonal_network


class TestModularityClustering:
    def test_partition_complete(self, block_network):
        result = modularity_clustering(block_network, 64, rng=0)
        covered = sorted(m for c in result.clusters for m in c.members)
        assert covered == list(range(block_network.size))
        assert result.method == "modularity"

    def test_size_cap(self, block_network):
        result = modularity_clustering(block_network, 12, rng=0)
        assert result.max_size() <= 12

    def test_finds_planted_blocks(self):
        net = block_diagonal_network([20, 18, 16], within_density=0.8,
                                     between_density=0.01, rng=2)
        result = modularity_clustering(net, 64, rng=0)
        clusters = [c.members for c in result.clusters]
        assert net.outlier_ratio(clusters) < 0.15

    def test_empty_graph_chunks(self):
        net = ConnectionMatrix(np.zeros((10, 10)))
        result = modularity_clustering(net, 4, rng=0)
        assert result.max_size() <= 4
        assert result.k >= 3

    def test_rejects_bad_size(self, block_network):
        with pytest.raises(ValueError):
            modularity_clustering(block_network, 0)

    def test_comparable_to_gcp_on_blocks(self, block_network):
        from repro.clustering.gcp import greedy_cluster_size_prediction

        modularity = modularity_clustering(block_network, 32, rng=0)
        gcp = greedy_cluster_size_prediction(block_network, 32, rng=0)
        mod_out = block_network.outlier_ratio([c.members for c in modularity.clusters])
        gcp_out = block_network.outlier_ratio([c.members for c in gcp.clusters])
        # both find most of the planted structure
        assert mod_out < 0.6
        assert gcp_out < 0.6
