"""Tests for GCP (Algorithm 2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.gcp import greedy_cluster_size_prediction
from repro.networks import block_diagonal_network, random_sparse_network


class TestSizeCap:
    @pytest.mark.parametrize("max_size", [8, 16, 25])
    def test_respects_limit(self, block_network, max_size):
        result = greedy_cluster_size_prediction(block_network, max_size, rng=0)
        assert result.max_size() <= max_size

    def test_limit_one_gives_singletons(self):
        net = random_sparse_network(12, 0.3, rng=0)
        result = greedy_cluster_size_prediction(net, 1, rng=0)
        assert result.max_size() == 1
        assert result.k == 12

    def test_huge_limit_unconstrained(self, block_network):
        result = greedy_cluster_size_prediction(block_network, 1000, rng=0)
        assert result.max_size() <= block_network.size

    def test_rejects_bad_limit(self, block_network):
        with pytest.raises(ValueError):
            greedy_cluster_size_prediction(block_network, 0)


class TestQuality:
    def test_partition_complete(self, block_network):
        result = greedy_cluster_size_prediction(block_network, 20, rng=0)
        covered = sorted(m for c in result.clusters for m in c.members)
        assert covered == list(range(block_network.size))

    def test_method_and_metadata(self, block_network):
        result = greedy_cluster_size_prediction(block_network, 20, rng=0)
        assert result.method == "gcp"
        assert result.metadata["max_size"] == 20
        assert result.metadata["final_k"] == result.k

    def test_finds_block_structure_when_blocks_fit(self):
        net = block_diagonal_network([15, 15, 15], within_density=0.9,
                                     between_density=0.0, rng=4)
        result = greedy_cluster_size_prediction(net, 16, rng=0)
        clusters = [c.members for c in result.clusters]
        assert net.outlier_ratio(clusters) < 0.25

    def test_balance_merges_fragments(self, sparse_network):
        balanced = greedy_cluster_size_prediction(sparse_network, 30, rng=0, balance=True)
        raw = greedy_cluster_size_prediction(sparse_network, 30, rng=0, balance=False)
        assert balanced.k <= raw.k

    def test_balance_never_violates_cap(self, sparse_network):
        result = greedy_cluster_size_prediction(sparse_network, 13, rng=0, balance=True)
        assert result.max_size() <= 13


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 10**6),
    max_size=st.integers(3, 30),
    density=st.floats(0.02, 0.3),
)
def test_property_gcp_cap_and_cover(seed, max_size, density):
    net = random_sparse_network(35, density, rng=seed)
    result = greedy_cluster_size_prediction(net, max_size, rng=seed)
    assert result.max_size() <= max_size
    covered = sorted(m for c in result.clusters for m in c.members)
    assert covered == list(range(35))
