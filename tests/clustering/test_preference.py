"""Tests for the crossbar preference CP (paper Sec. 3.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.preference import (
    crossbar_preference,
    crossbar_utilization,
    minimum_satisfiable_size,
)


class TestCrossbarPreference:
    def test_formula(self):
        # CP = m^2 / s^3
        assert crossbar_preference(8, 4) == pytest.approx(64 / 64)
        assert crossbar_preference(3, 2) == pytest.approx(9 / 8)

    def test_zero_connections(self):
        assert crossbar_preference(0, 16) == 0.0

    def test_full_crossbar(self):
        # m = s^2 -> CP = s^4/s^3 = s
        assert crossbar_preference(16, 4) == pytest.approx(4.0)

    def test_rejects_overflow(self):
        with pytest.raises(ValueError, match="capacity"):
            crossbar_preference(17, 4)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            crossbar_preference(-1, 4)

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            crossbar_preference(1, 0)


class TestPaperCriteria:
    """The two monotonicity criteria of Sec. 3.1."""

    @settings(max_examples=30, deadline=None)
    @given(s=st.integers(2, 64), m=st.integers(0, 100))
    def test_criterion_a_increases_with_m(self, s, m):
        m = min(m, s * s - 1)
        assert crossbar_preference(m + 1, s) > crossbar_preference(m, s)

    @settings(max_examples=30, deadline=None)
    @given(s=st.integers(2, 63), m=st.integers(1, 16))
    def test_criterion_b_decreases_with_s(self, s, m):
        m = min(m, s * s)
        assert crossbar_preference(m, s + 1) < crossbar_preference(m, s)


class TestUtilization:
    def test_formula(self):
        assert crossbar_utilization(8, 4) == pytest.approx(0.5)

    def test_bounds(self):
        assert crossbar_utilization(0, 4) == 0.0
        assert crossbar_utilization(16, 4) == 1.0

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            crossbar_utilization(17, 4)


class TestMinimumSatisfiable:
    SIZES = tuple(range(16, 65, 4))

    def test_exact_fit(self):
        assert minimum_satisfiable_size(16, self.SIZES) == 16

    def test_rounds_up(self):
        assert minimum_satisfiable_size(17, self.SIZES) == 20

    def test_small_cluster_gets_smallest(self):
        assert minimum_satisfiable_size(3, self.SIZES) == 16

    def test_too_large_returns_none(self):
        assert minimum_satisfiable_size(65, self.SIZES) is None

    def test_zero_cluster(self):
        assert minimum_satisfiable_size(0, self.SIZES) == 16

    def test_unsorted_sizes_ok(self):
        assert minimum_satisfiable_size(30, (64, 16, 32)) == 32

    def test_rejects_empty_sizes(self):
        with pytest.raises(ValueError):
            minimum_satisfiable_size(3, ())

    def test_rejects_negative_cluster(self):
        with pytest.raises(ValueError):
            minimum_satisfiable_size(-1, self.SIZES)
