"""Unit and property tests for ConnectionMatrix."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.networks import ConnectionMatrix, random_sparse_network


def simple_matrix():
    return ConnectionMatrix(
        np.array(
            [
                [0, 1, 0, 0],
                [1, 0, 1, 0],
                [0, 0, 0, 1],
                [1, 0, 0, 0],
            ]
        ),
        name="simple",
    )


class TestConstruction:
    def test_basic_properties(self):
        net = simple_matrix()
        assert net.size == 4
        assert net.num_connections == 5
        assert net.sparsity == pytest.approx(1 - 5 / 16)
        assert net.density == pytest.approx(5 / 16)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            ConnectionMatrix(np.zeros((2, 3)))

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            ConnectionMatrix(np.full((3, 3), 2))

    def test_input_copied(self):
        raw = np.zeros((3, 3), dtype=np.uint8)
        net = ConnectionMatrix(raw)
        raw[0, 1] = 1
        assert net.num_connections == 0

    def test_matrix_view_readonly(self):
        net = simple_matrix()
        with pytest.raises(ValueError):
            net.matrix[0, 0] = 1

    def test_equality(self):
        assert simple_matrix() == simple_matrix()
        other = ConnectionMatrix(np.zeros((4, 4)))
        assert simple_matrix() != other

    def test_repr_mentions_name(self):
        assert "simple" in repr(simple_matrix())

    def test_copy_renames(self):
        net = simple_matrix().copy(name="renamed")
        assert net.name == "renamed"
        assert net == simple_matrix()


class TestSymmetry:
    def test_asymmetric_detected(self):
        assert not simple_matrix().is_symmetric()

    def test_symmetric_detected(self):
        m = np.array([[0, 1], [1, 0]])
        assert ConnectionMatrix(m).is_symmetric()

    def test_symmetrized_max(self):
        net = simple_matrix()
        sym = net.symmetrized()
        assert sym[0, 3] == 1.0  # only 3->0 existed
        assert np.array_equal(sym, sym.T)


class TestClusterOperations:
    def test_connections_within(self):
        net = simple_matrix()
        assert net.connections_within([0, 1]) == 2  # 0->1 and 1->0
        assert net.connections_within([2]) == 0
        assert net.connections_within([]) == 0

    def test_outlier_count(self):
        net = simple_matrix()
        assert net.outlier_count([[0, 1]]) == 3
        assert net.outlier_ratio([[0, 1]]) == pytest.approx(3 / 5)

    def test_outlier_ratio_empty_network(self):
        net = ConnectionMatrix(np.zeros((3, 3)))
        assert net.outlier_ratio([[0, 1, 2]]) == 0.0

    def test_remove_cluster(self):
        net = simple_matrix()
        reduced = net.remove_cluster([0, 1])
        assert reduced.num_connections == 3
        assert reduced.connections_within([0, 1]) == 0
        # original untouched
        assert net.num_connections == 5

    def test_remove_clusters_multiple(self):
        net = simple_matrix()
        reduced = net.remove_clusters([[0, 1], [2, 3]])
        assert reduced.connections_within([0, 1]) == 0
        assert reduced.connections_within([2, 3]) == 0

    def test_submatrix_default_cols(self):
        net = simple_matrix()
        block = net.submatrix([0, 1])
        assert block.shape == (2, 2)
        assert block[0, 1] == 1

    def test_submatrix_rect(self):
        net = simple_matrix()
        block = net.submatrix([0], [1, 2, 3])
        assert block.shape == (1, 3)

    def test_index_out_of_range(self):
        with pytest.raises(IndexError):
            simple_matrix().connections_within([0, 9])

    def test_connection_list_roundtrip(self):
        net = simple_matrix()
        pairs = net.connection_list()
        assert len(pairs) == net.num_connections
        rebuilt = np.zeros((4, 4), dtype=np.uint8)
        for i, j in pairs:
            rebuilt[i, j] = 1
        assert np.array_equal(rebuilt, net.matrix)


class TestPermutation:
    def test_permuted_preserves_connection_count(self):
        net = simple_matrix()
        permuted = net.permuted([3, 2, 1, 0])
        assert permuted.num_connections == net.num_connections

    def test_permutation_validates(self):
        with pytest.raises(ValueError):
            simple_matrix().permuted([0, 0, 1, 2])

    def test_identity_permutation(self):
        net = simple_matrix()
        assert net.permuted([0, 1, 2, 3]) == net


@settings(max_examples=25, deadline=None)
@given(n=st.integers(4, 30), density=st.floats(0.0, 0.5), seed=st.integers(0, 10**6))
def test_property_remove_clusters_conserves(n, density, seed):
    """Within + outliers always partition the connection set."""
    net = random_sparse_network(n, density, rng=seed)
    half = list(range(n // 2))
    within = net.connections_within(half)
    remaining = net.remove_cluster(half)
    assert remaining.num_connections == net.num_connections - within


@settings(max_examples=25, deadline=None)
@given(n=st.integers(2, 25), seed=st.integers(0, 10**6))
def test_property_sparsity_bounds(n, seed):
    net = random_sparse_network(n, 0.3, rng=seed)
    assert 0.0 <= net.sparsity <= 1.0
    assert net.num_connections == int(net.matrix.sum())
