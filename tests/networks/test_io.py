"""Tests for network save/load round trips."""

import numpy as np
import pytest

from repro.networks import random_sparse_network
from repro.networks.connection_matrix import ConnectionMatrix
from repro.networks.io import (
    load_network_edgelist,
    load_network_npz,
    save_network_edgelist,
    save_network_npz,
)


@pytest.fixture()
def net():
    return random_sparse_network(25, 0.15, rng=0, name="roundtrip")


class TestNpz:
    def test_roundtrip(self, net, tmp_path):
        path = tmp_path / "net.npz"
        save_network_npz(net, path)
        loaded = load_network_npz(path)
        assert loaded == net
        assert loaded.name == "roundtrip"

    def test_rejects_foreign_npz(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, other=np.zeros(3))
        with pytest.raises(ValueError, match="matrix"):
            load_network_npz(path)


class TestEdgelist:
    def test_roundtrip(self, net, tmp_path):
        path = tmp_path / "net.edges"
        save_network_edgelist(net, path)
        loaded = load_network_edgelist(path)
        assert loaded == net
        assert loaded.name == "roundtrip"

    def test_empty_network(self, tmp_path):
        empty = ConnectionMatrix(np.zeros((5, 5)), name="empty")
        path = tmp_path / "empty.edges"
        save_network_edgelist(empty, path)
        loaded = load_network_edgelist(path)
        assert loaded.size == 5
        assert loaded.num_connections == 0

    def test_infers_size_without_header(self, tmp_path):
        path = tmp_path / "raw.edges"
        path.write_text("0 1\n2 0\n")
        loaded = load_network_edgelist(path)
        assert loaded.size == 3
        assert loaded.num_connections == 2
