"""Tests for network metrics."""

import numpy as np
import pytest

from repro.networks import ConnectionMatrix
from repro.networks.metrics import degree_statistics, fanin_fanout, network_sparsity


@pytest.fixture()
def net():
    return ConnectionMatrix(
        np.array(
            [
                [0, 1, 1],
                [0, 0, 0],
                [1, 0, 0],
            ]
        )
    )


class TestFaninFanout:
    def test_values(self, net):
        # neuron 0: fanout 2 (0->1, 0->2), fanin 1 (2->0) => 3
        # neuron 1: fanout 0, fanin 1 => 1
        # neuron 2: fanout 1, fanin 1 => 2
        np.testing.assert_array_equal(fanin_fanout(net), [3, 1, 2])

    def test_total_equals_twice_connections(self, net):
        assert fanin_fanout(net).sum() == 2 * net.num_connections


class TestDegreeStatistics:
    def test_means(self, net):
        stats = degree_statistics(net)
        assert stats.mean_fanout == pytest.approx(1.0)
        assert stats.mean_fanin == pytest.approx(1.0)
        assert stats.mean_fanin_fanout == pytest.approx(2.0)

    def test_extremes(self, net):
        stats = degree_statistics(net)
        assert stats.max_fanin_fanout == 3
        assert stats.min_fanin_fanout == 1

    def test_isolated(self):
        net = ConnectionMatrix(np.zeros((4, 4)))
        stats = degree_statistics(net)
        assert stats.isolated_neurons == 4
        assert stats.mean_fanin_fanout == 0.0

    def test_as_dict_keys(self, net):
        d = degree_statistics(net).as_dict()
        assert set(d) == {
            "mean_fanin",
            "mean_fanout",
            "mean_fanin_fanout",
            "max_fanin_fanout",
            "min_fanin_fanout",
            "isolated_neurons",
        }


def test_network_sparsity_matches_property(net):
    assert network_sparsity(net) == net.sparsity
