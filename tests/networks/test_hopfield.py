"""Tests for the sparse Hopfield substrate."""

import numpy as np
import pytest

from repro.networks.hopfield import HopfieldNetwork, recognition_rate
from repro.networks.patterns import corrupt_pattern, qr_like_patterns


@pytest.fixture(scope="module")
def trained():
    patterns = qr_like_patterns(5, 120, rng=0)
    return HopfieldNetwork.train(patterns)


class TestTraining:
    def test_weights_symmetric_zero_diagonal(self, trained):
        assert np.allclose(trained.weights, trained.weights.T)
        assert np.all(np.diag(trained.weights) == 0)

    def test_sizes(self, trained):
        assert trained.size == 120
        assert trained.num_patterns == 5

    def test_rejects_non_pm1(self):
        with pytest.raises(ValueError, match="±1"):
            HopfieldNetwork.train(np.zeros((3, 10)))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            HopfieldNetwork.train(np.ones(10))

    def test_constructor_rejects_asymmetric(self):
        w = np.array([[0.0, 1.0], [0.5, 0.0]])
        with pytest.raises(ValueError, match="symmetric"):
            HopfieldNetwork(w, np.ones((1, 2)))

    def test_constructor_rejects_nonzero_diagonal(self):
        w = np.eye(3)
        with pytest.raises(ValueError, match="diagonal"):
            HopfieldNetwork(w, np.ones((1, 3)))

    def test_constructor_rejects_pattern_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            HopfieldNetwork(np.zeros((4, 4)), np.ones((2, 5)))


class TestSparsify:
    def test_exact_sparsity(self, trained):
        sparse = trained.sparsify(0.9)
        assert sparse.sparsity == pytest.approx(0.9, abs=2 / trained.size**2)

    def test_stays_symmetric(self, trained):
        sparse = trained.sparsify(0.95)
        assert np.allclose(sparse.weights, sparse.weights.T)

    def test_keeps_strongest(self, trained):
        sparse = trained.sparsify(0.9)
        kept = np.abs(trained.weights[sparse.weights != 0])
        dropped_mask = (sparse.weights == 0) & (trained.weights != 0)
        dropped = np.abs(trained.weights[dropped_mask])
        if kept.size and dropped.size:
            assert kept.min() >= dropped.max() - 1e-12

    def test_sparsify_zero_keeps_everything(self, trained):
        full = trained.sparsify(0.0)
        np.testing.assert_allclose(full.weights, trained.weights)

    def test_rejects_bad_target(self, trained):
        with pytest.raises(ValueError):
            trained.sparsify(1.5)

    def test_original_untouched(self, trained):
        before = trained.weights.copy()
        trained.sparsify(0.99)
        np.testing.assert_array_equal(trained.weights, before)


class TestRecall:
    def test_stored_pattern_stable_when_underloaded(self):
        patterns = qr_like_patterns(2, 100, rng=1)
        net = HopfieldNetwork.train(patterns)
        recalled = net.recall(patterns[0])
        agreement = np.mean(recalled == patterns[0])
        assert max(agreement, 1 - agreement) > 0.95

    def test_recovers_from_corruption(self):
        patterns = qr_like_patterns(2, 100, rng=1)
        net = HopfieldNetwork.train(patterns)
        probe = corrupt_pattern(patterns[0], 0.1, rng=0)
        recalled = net.recall(probe)
        agreement = np.mean(recalled == patterns[0])
        assert max(agreement, 1 - agreement) > 0.9

    def test_asynchronous_mode(self):
        patterns = qr_like_patterns(2, 80, rng=2)
        net = HopfieldNetwork.train(patterns)
        recalled = net.recall(patterns[1], mode="asynchronous", rng=0)
        agreement = np.mean(recalled == patterns[1])
        assert max(agreement, 1 - agreement) > 0.9

    def test_rejects_bad_mode(self, trained):
        with pytest.raises(ValueError, match="mode"):
            trained.recall(trained.patterns[0], mode="turbo")

    def test_rejects_bad_probe_shape(self, trained):
        with pytest.raises(ValueError):
            trained.recall(np.ones(3))

    def test_energy_decreases_under_recall(self):
        patterns = qr_like_patterns(3, 80, rng=3)
        net = HopfieldNetwork.train(patterns)
        probe = corrupt_pattern(patterns[0], 0.2, rng=0)
        start = net.energy(probe)
        end = net.energy(net.recall(probe))
        assert end <= start + 1e-9


class TestStabilize:
    def test_preserves_topology(self):
        patterns = qr_like_patterns(8, 150, rng=4)
        sparse = HopfieldNetwork.train(patterns).sparsify(0.9)
        stable = sparse.stabilize(max_epochs=10)
        np.testing.assert_array_equal(stable.weights != 0, sparse.weights != 0)

    def test_improves_or_keeps_stability(self):
        patterns = qr_like_patterns(10, 150, rng=5)
        sparse = HopfieldNetwork.train(patterns).sparsify(0.93)
        before = recognition_rate(sparse, flip_fraction=0.0, trials_per_pattern=1, rng=0)
        stable = sparse.stabilize()
        after = recognition_rate(stable, flip_fraction=0.0, trials_per_pattern=1, rng=0)
        assert after >= before - 1e-9

    def test_stays_symmetric(self):
        patterns = qr_like_patterns(5, 100, rng=6)
        stable = HopfieldNetwork.train(patterns).sparsify(0.9).stabilize(max_epochs=5)
        assert np.allclose(stable.weights, stable.weights.T)

    def test_rejects_bad_epochs(self, trained):
        with pytest.raises(ValueError):
            trained.stabilize(max_epochs=0)


class TestRecognitionRate:
    def test_perfect_for_easy_network(self):
        patterns = qr_like_patterns(2, 120, rng=7)
        net = HopfieldNetwork.train(patterns)
        assert recognition_rate(net, flip_fraction=0.05, trials_per_pattern=2, rng=0) == 1.0

    def test_bounds(self):
        patterns = qr_like_patterns(4, 60, rng=8)
        net = HopfieldNetwork.train(patterns)
        rate = recognition_rate(net, trials_per_pattern=1, rng=0)
        assert 0.0 <= rate <= 1.0

    def test_rejects_zero_trials(self, trained):
        with pytest.raises(ValueError):
            recognition_rate(trained, trials_per_pattern=0)

    def test_connection_matrix_binary(self, trained):
        net = trained.sparsify(0.9).connection_matrix()
        assert net.size == trained.size
        assert net.is_symmetric()
