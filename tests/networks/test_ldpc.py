"""Tests for the LDPC network builder."""

import numpy as np
import pytest

from repro.networks.ldpc import ldpc_network, regular_parity_check_matrix


class TestParityCheckMatrix:
    def test_shape(self):
        h = regular_parity_check_matrix(24, 3, 6, rng=0)
        assert h.shape == (12, 24)

    def test_column_weight(self):
        h = regular_parity_check_matrix(24, 3, 6, rng=0)
        np.testing.assert_array_equal(h.sum(axis=0), np.full(24, 3))

    def test_row_weight(self):
        h = regular_parity_check_matrix(24, 3, 6, rng=0)
        np.testing.assert_array_equal(h.sum(axis=1), np.full(12, 6))

    def test_binary(self):
        h = regular_parity_check_matrix(36, 2, 6, rng=1)
        assert set(np.unique(h)).issubset({0, 1})

    def test_rejects_indivisible(self):
        with pytest.raises(ValueError, match="divide"):
            regular_parity_check_matrix(25, 3, 6)

    def test_reproducible(self):
        a = regular_parity_check_matrix(24, 3, 6, rng=3)
        b = regular_parity_check_matrix(24, 3, 6, rng=3)
        np.testing.assert_array_equal(a, b)


class TestLdpcNetwork:
    def test_size_is_vars_plus_checks(self):
        net = ldpc_network(24, 3, 6, rng=0)
        assert net.size == 24 + 12

    def test_symmetric_bipartite(self):
        net = ldpc_network(24, 3, 6, rng=0)
        assert net.is_symmetric()
        # no variable-variable or check-check edges
        assert net.submatrix(range(24)).sum() == 0
        assert net.submatrix(range(24, 36)).sum() == 0

    def test_high_sparsity(self):
        net = ldpc_network(120, 3, 6, rng=0)
        assert net.sparsity > 0.95

    def test_connection_count(self):
        net = ldpc_network(24, 3, 6, rng=0)
        # 24 vars x 3 checks each, both directions
        assert net.num_connections == 24 * 3 * 2
