"""Tests for the synthetic network generators."""

import numpy as np
import pytest

from repro.networks import (
    block_diagonal_network,
    distance_decay_network,
    random_sparse_network,
    scale_free_network,
)


class TestRandomSparse:
    def test_density_approximate(self):
        net = random_sparse_network(200, 0.1, rng=0)
        assert 0.05 < net.density < 0.2

    def test_zero_diagonal(self):
        net = random_sparse_network(50, 0.5, rng=0)
        assert np.all(np.diag(net.matrix) == 0)

    def test_symmetric_by_default(self):
        assert random_sparse_network(40, 0.2, rng=1).is_symmetric()

    def test_asymmetric_option(self):
        net = random_sparse_network(60, 0.3, symmetric=False, rng=1)
        assert not net.is_symmetric()

    def test_reproducible(self):
        assert random_sparse_network(30, 0.2, rng=5) == random_sparse_network(30, 0.2, rng=5)

    def test_rejects_bad_density(self):
        with pytest.raises(ValueError):
            random_sparse_network(10, 1.5)

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            random_sparse_network(0, 0.5)


class TestBlockDiagonal:
    def test_size_is_sum(self):
        net = block_diagonal_network([10, 20, 30], rng=0)
        assert net.size == 60

    def test_blocks_denser_than_background(self):
        net = block_diagonal_network([25, 25], within_density=0.8,
                                     between_density=0.02, rng=0)
        block = net.submatrix(range(25))
        off = net.submatrix(range(25), range(25, 50))
        assert block.mean() > 5 * off.mean()

    def test_symmetric(self):
        assert block_diagonal_network([10, 15], rng=3).is_symmetric()

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            block_diagonal_network([])

    def test_rejects_nonpositive_block(self):
        with pytest.raises(ValueError):
            block_diagonal_network([10, 0])


class TestDistanceDecay:
    def test_local_denser_than_distant(self):
        net = distance_decay_network(100, scale=5.0, rng=0)
        m = net.matrix
        near = np.mean([m[i, i + 1] for i in range(99)])
        far = np.mean([m[i, (i + 50) % 100] for i in range(100)])
        assert near > far

    def test_symmetric(self):
        assert distance_decay_network(40, rng=1).is_symmetric()

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            distance_decay_network(20, scale=0)


class TestScaleFree:
    def test_size(self):
        assert scale_free_network(50, rng=0).size == 50

    def test_hub_exists(self):
        net = scale_free_network(100, attachment=2, rng=0)
        degrees = net.matrix.sum(axis=1)
        assert degrees.max() > 3 * degrees.mean()

    def test_symmetric(self):
        assert scale_free_network(30, rng=2).is_symmetric()

    def test_rejects_attachment_too_large(self):
        with pytest.raises(ValueError):
            scale_free_network(5, attachment=5)

    def test_reproducible(self):
        assert scale_free_network(30, rng=7) == scale_free_network(30, rng=7)
