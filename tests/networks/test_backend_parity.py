"""Dense-vs-sparse backend parity for :class:`ConnectionMatrix`.

The sparse-first redesign promises that the backend is an implementation
detail: every operation, digest and downstream flow result is identical
whether a network lives as a dense ``ndarray`` or a ``csr_array``.  These
property tests hold that promise under random inputs.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering import iterative_spectral_clustering
from repro.mapping import autoncs_mapping
from repro.networks import ConnectionMatrix, random_sparse_network


def _random_pair(seed: int, n: int, density: float):
    """The same random network materialized on both backends."""
    rng = np.random.default_rng(seed)
    matrix = (rng.random((n, n)) < density).astype(np.uint8)
    np.fill_diagonal(matrix, 0)
    dense = ConnectionMatrix.from_dense(matrix, name="parity", backend="dense")
    sparse = ConnectionMatrix.from_dense(matrix, name="parity", backend="sparse")
    assert dense.backend == "dense" and sparse.backend == "sparse"
    return dense, sparse


common = given(
    seed=st.integers(0, 10**6),
    n=st.integers(2, 40),
    density=st.floats(0.0, 0.4),
)


@settings(max_examples=25, deadline=None)
@common
def test_digest_and_equality_backend_independent(seed, n, density):
    dense, sparse = _random_pair(seed, n, density)
    assert dense.digest() == sparse.digest()
    assert dense == sparse
    assert dense.num_connections == sparse.num_connections
    assert dense.density == sparse.density
    assert dense.is_symmetric() == sparse.is_symmetric()


@settings(max_examples=25, deadline=None)
@common
def test_views_and_degrees_match(seed, n, density):
    dense, sparse = _random_pair(seed, n, density)
    np.testing.assert_array_equal(dense.matrix, sparse.matrix)
    np.testing.assert_array_equal(dense.out_degrees(), sparse.out_degrees())
    np.testing.assert_array_equal(dense.in_degrees(), sparse.in_degrees())
    assert dense.connection_list() == sparse.connection_list()
    d_rows, d_cols = dense.connection_arrays()
    s_rows, s_cols = sparse.connection_arrays()
    np.testing.assert_array_equal(d_rows, s_rows)
    np.testing.assert_array_equal(d_cols, s_cols)


@settings(max_examples=25, deadline=None)
@common
def test_cluster_operations_match(seed, n, density):
    dense, sparse = _random_pair(seed, n, density)
    rng = np.random.default_rng(seed + 1)
    members = np.sort(rng.choice(n, size=max(1, n // 3), replace=False))
    rest = np.setdiff1d(np.arange(n), members)
    assert dense.connections_within(members) == sparse.connections_within(members)
    np.testing.assert_array_equal(
        dense.submatrix(members), sparse.submatrix(members)
    )
    if rest.size:
        np.testing.assert_array_equal(
            dense.submatrix(members, rest), sparse.submatrix(members, rest)
        )
        clusters = [members.tolist(), rest.tolist()]
        np.testing.assert_array_equal(
            dense.connections_within_many(clusters),
            sparse.connections_within_many(clusters),
        )
    assert (
        dense.remove_cluster(members.tolist()).digest()
        == sparse.remove_cluster(members.tolist()).digest()
    )


@settings(max_examples=25, deadline=None)
@common
def test_permuted_and_similarity_match(seed, n, density):
    dense, sparse = _random_pair(seed, n, density)
    order = np.random.default_rng(seed + 2).permutation(n)
    assert dense.permuted(order).digest() == sparse.permuted(order).digest()
    d_sim = np.asarray(dense.similarity(), dtype=float)
    s_sim = sparse.similarity()
    s_sim = s_sim.toarray() if hasattr(s_sim, "toarray") else np.asarray(s_sim)
    np.testing.assert_allclose(d_sim, s_sim.astype(float))


@settings(max_examples=25, deadline=None)
@common
def test_with_backend_round_trip(seed, n, density):
    dense, sparse = _random_pair(seed, n, density)
    assert dense.with_backend("sparse").digest() == dense.digest()
    assert sparse.with_backend("dense").digest() == sparse.digest()
    assert dense.with_backend("sparse").backend == "sparse"
    assert sparse.with_backend("dense").backend == "dense"


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_from_edges_matches_from_dense(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 30))
    matrix = (rng.random((n, n)) < 0.2).astype(np.uint8)
    np.fill_diagonal(matrix, 0)
    rows, cols = np.nonzero(matrix)
    via_dense = ConnectionMatrix.from_dense(matrix)
    via_arrays = ConnectionMatrix.from_edges(n, (rows, cols))
    via_pairs = ConnectionMatrix.from_edges(n, list(zip(rows, cols)))
    assert via_dense.digest() == via_arrays.digest() == via_pairs.digest()


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_clustering_and_mapping_backend_independent(seed):
    """The whole ISC → mapping pipeline is backend-blind for a fixed seed."""
    net = random_sparse_network(36, 0.12, rng=seed)
    dense = net.with_backend("dense")
    sparse = net.with_backend("sparse")
    isc_dense = iterative_spectral_clustering(
        dense, utilization_threshold=0.02, max_iterations=5, rng=seed
    )
    isc_sparse = iterative_spectral_clustering(
        sparse, utilization_threshold=0.02, max_iterations=5, rng=seed
    )
    assert [
        (a.members, a.size, a.connections) for a in isc_dense.crossbars
    ] == [(a.members, a.size, a.connections) for a in isc_sparse.crossbars]
    assert isc_dense.outliers == isc_sparse.outliers
    map_dense = autoncs_mapping(isc_dense)
    map_sparse = autoncs_mapping(isc_sparse)
    map_dense.validate()
    map_sparse.validate()
    assert map_dense.num_crossbars == map_sparse.num_crossbars
    assert map_dense.num_synapses == map_sparse.num_synapses
