"""Tests for the QR-like pattern generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.networks.patterns import corrupt_pattern, qr_like_pattern, qr_like_patterns


class TestSinglePattern:
    def test_shape_and_values(self):
        p = qr_like_pattern(300, rng=0)
        assert p.shape == (300,)
        assert set(np.unique(p)).issubset({-1, 1})

    def test_reproducible(self):
        np.testing.assert_array_equal(qr_like_pattern(100, rng=5), qr_like_pattern(100, rng=5))

    def test_varies_with_seed(self):
        assert not np.array_equal(qr_like_pattern(100, rng=1), qr_like_pattern(100, rng=2))

    def test_balanced_fill(self):
        p = qr_like_pattern(900, rng=0, fill=0.5)
        assert abs(float(np.mean(p))) < 0.3

    def test_rejects_bad_fill(self):
        with pytest.raises(ValueError):
            qr_like_pattern(100, fill=1.0)

    def test_rejects_bad_dimension(self):
        with pytest.raises(ValueError):
            qr_like_pattern(0)

    def test_rejects_bad_noise(self):
        with pytest.raises(ValueError):
            qr_like_pattern(100, module_noise=0.6)

    def test_module_structure_correlates_neighbours(self):
        # With zero noise, pixels inside a module are identical: adjacent
        # in-row pixels agree far more often than module size would by chance.
        p = qr_like_pattern(900, rng=3, module_size=3, module_noise=0.0)
        grid = p.reshape(30, 30)
        agreement = np.mean(grid[:, :-1] == grid[:, 1:])
        assert agreement > 0.6


class TestPatternSet:
    def test_shape(self):
        ps = qr_like_patterns(5, 200, rng=0)
        assert ps.shape == (5, 200)

    def test_all_distinct(self):
        ps = qr_like_patterns(10, 150, rng=0)
        assert len({p.tobytes() for p in ps}) == 10

    def test_impossible_request_raises(self):
        # dimension 1 admits only 2 distinct patterns
        with pytest.raises(RuntimeError):
            qr_like_patterns(5, 1, rng=0)

    def test_rejects_zero_count(self):
        with pytest.raises(ValueError):
            qr_like_patterns(0, 100)


class TestCorruptPattern:
    def test_exact_flip_count(self):
        p = qr_like_pattern(200, rng=0)
        corrupted = corrupt_pattern(p, 0.1, rng=1)
        assert int(np.sum(corrupted != p)) == 20

    def test_zero_flip_identity(self):
        p = qr_like_pattern(50, rng=0)
        np.testing.assert_array_equal(corrupt_pattern(p, 0.0, rng=1), p)

    def test_full_flip_inverts(self):
        p = qr_like_pattern(50, rng=0)
        np.testing.assert_array_equal(corrupt_pattern(p, 1.0, rng=1), -p)

    def test_original_untouched(self):
        p = qr_like_pattern(50, rng=0)
        copy = p.copy()
        corrupt_pattern(p, 0.5, rng=1)
        np.testing.assert_array_equal(p, copy)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            corrupt_pattern(np.ones(10), 1.5)


@settings(max_examples=20, deadline=None)
@given(dimension=st.integers(4, 400), seed=st.integers(0, 10**6))
def test_property_always_pm_one(dimension, seed):
    p = qr_like_pattern(dimension, rng=seed)
    assert p.shape == (dimension,)
    assert np.all(np.abs(p) == 1)
