"""Tests for the AutoNCS pipeline driver and reports."""

import numpy as np
import pytest

from repro.core import AutoNCS
from repro.core.config import fast_config
from repro.core.report import average_reductions, reduction_percent
from repro.networks import block_diagonal_network


@pytest.fixture(scope="module")
def network():
    # Must be well beyond one max-size crossbar (the paper's regime):
    # FullCro is near-optimal for networks that fit a single 64x64 tile.
    blocks = block_diagonal_network([32, 30, 28, 26, 24], within_density=0.5,
                                    between_density=0.015, rng=9)
    order = np.random.default_rng(9).permutation(blocks.size)
    return blocks.permuted(order)


@pytest.fixture(scope="module")
def flow():
    return AutoNCS(fast_config())


@pytest.fixture(scope="module")
def comparison(flow, network):
    return flow.compare(network, label="unit", rng=3)


class TestAutoNcsFlow:
    def test_run_produces_complete_result(self, flow, network):
        result = flow.run(network, rng=3)
        result.mapping.validate()
        assert result.design.cost.wirelength_um > 0
        assert result.design.cost.area_um2 > 0
        assert result.design.cost.average_delay_ns > 0

    def test_summary_fields(self, flow, network):
        result = flow.run(network, rng=3)
        summary = result.summary()
        assert summary["design"] == "AutoNCS"
        assert "isc_iterations" in summary
        assert "wirelength_um" in summary

    def test_baseline_all_max_crossbars(self, flow, network):
        baseline = flow.run_baseline(network, rng=3)
        histogram = baseline.mapping.crossbar_size_histogram()
        assert set(histogram) == {flow.library.max_size}

    def test_default_threshold_is_fullcro(self, flow, network):
        from repro.mapping import fullcro_utilization

        isc = flow.cluster(network, rng=3)
        expected = fullcro_utilization(network, flow.library.max_size)
        assert isc.utilization_threshold == pytest.approx(expected)

    def test_compare_improves_on_baseline(self, comparison):
        # Under the reduced-effort test config the robust paper claims are
        # delay (smaller crossbars) and area (less wasted silicon); the
        # wirelength headline needs the full-effort config and the real
        # testbench sizes — asserted by the Table 1 benchmark instead.
        assert comparison.delay_reduction > 0
        assert comparison.area_reduction > 0


class TestComparisonReport:
    def test_reduction_percent(self):
        assert reduction_percent(50.0, 100.0) == pytest.approx(50.0)
        assert reduction_percent(100.0, 50.0) == pytest.approx(-100.0)
        assert reduction_percent(1.0, 0.0) == 0.0

    def test_rows_structure(self, comparison):
        rows = comparison.rows()
        assert len(rows) == 3
        assert rows[0]["design"] == "AutoNCS"
        assert rows[1]["design"] == "FullCro"
        assert rows[2]["design"] == "Reduc. (%)"

    def test_format_table_contains_values(self, comparison):
        text = comparison.format_table()
        assert "AutoNCS" in text and "FullCro" in text and "%" in text

    def test_average_reductions(self, comparison):
        averages = average_reductions([comparison, comparison])
        assert averages["delay"] == pytest.approx(comparison.delay_reduction)

    def test_average_reductions_empty(self):
        assert average_reductions([]) == {"wirelength": 0.0, "area": 0.0, "delay": 0.0}
