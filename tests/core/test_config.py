"""Tests for the pipeline configuration."""

import pytest

from repro.core.config import AutoNcsConfig, fast_config
from repro.physical.cost import CostWeights


class TestAutoNcsConfig:
    def test_defaults_match_paper(self):
        config = AutoNcsConfig()
        assert config.crossbar_sizes == tuple(range(16, 65, 4))
        assert config.selection_quantile == 0.75
        assert config.utilization_threshold is None  # -> FullCro baseline
        assert config.cost_weights == CostWeights(1.0, 1.0, 1.0)

    def test_sizes_sorted_and_validated(self):
        config = AutoNcsConfig(crossbar_sizes=(64, 16, 32))
        assert config.crossbar_sizes == (16, 32, 64)

    def test_rejects_empty_sizes(self):
        with pytest.raises(ValueError):
            AutoNcsConfig(crossbar_sizes=())

    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            AutoNcsConfig(selection_quantile=1.0)

    def test_rejects_negative_threshold(self):
        with pytest.raises(ValueError):
            AutoNcsConfig(utilization_threshold=-0.1)

    def test_rejects_bad_iterations(self):
        with pytest.raises(ValueError):
            AutoNcsConfig(max_isc_iterations=0)

    def test_fast_config_reduced_budgets(self):
        config = fast_config()
        assert config.max_isc_iterations <= 10
        assert config.placement.max_lambda_stages <= 5
