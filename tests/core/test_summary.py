"""Tests for the design-summary datasheet."""

import pytest

from repro.core import AutoNCS, summarize_design
from repro.core.config import fast_config
from repro.networks import block_diagonal_network


@pytest.fixture(scope="module")
def design():
    network = block_diagonal_network([24, 20, 16], within_density=0.5,
                                     between_density=0.02, rng=3)
    flow = AutoNCS(fast_config())
    return flow.run(network, rng=3).design


class TestSummarizeDesign:
    def test_contains_all_sections(self, design):
        text = summarize_design(design).format()
        for token in (
            "design",
            "crossbars",
            "wirelength L",
            "area A",
            "avg wire delay T",
            "delay distribution",
            "read energy",
            "programming",
        ):
            assert token in text

    def test_delay_stats_consistent_with_cost(self, design):
        summary = summarize_design(design)
        assert summary.delays.mean_ns == pytest.approx(
            design.cost.average_delay_ns, rel=1e-9
        )
        assert summary.delays.max_ns >= summary.delays.mean_ns

    def test_energy_wirelength_coupled(self, design):
        summary = summarize_design(design)
        assert summary.energy.wire_energy_pj > 0.0

    def test_device_accounting(self, design):
        summary = summarize_design(design)
        mapping = design.mapping
        expected_utilized = (
            sum(i.utilized_connections for i in mapping.instances)
            + mapping.num_synapses
        )
        assert summary.energy.utilized_devices == expected_utilized
