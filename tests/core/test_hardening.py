"""Tests for the hardened AutoNCS pipeline: StageError, fallbacks, diagnostics."""

import numpy as np
import pytest

import repro.core.autoncs as autoncs_module
from repro.core import AutoNCS, StageError
from repro.core.config import fast_config
from repro.networks import ConnectionMatrix, random_sparse_network
from repro.physical.placement.placer import place as real_place
from repro.physical.routing.router import route as real_route
from repro.utils.rng import spawn_rng


@pytest.fixture(scope="module")
def network():
    return random_sparse_network(60, density=0.08, rng=2)


@pytest.fixture()
def flow():
    return AutoNCS(fast_config())


class TestStageError:
    def test_carries_stage_and_partial(self):
        err = StageError("mapping", "boom", partial={"isc": "partial-result"})
        assert err.stage == "mapping"
        assert err.partial == {"isc": "partial-result"}
        assert "AutoNCS stage 'mapping' failed: boom" in str(err)

    def test_partial_defaults_empty(self):
        assert StageError("cost", "x").partial == {}


class TestEmptyNetworkFailsFast:
    def test_run_names_the_stage(self, flow):
        empty = ConnectionMatrix(np.zeros((20, 20)), name="hollow")
        with pytest.raises(ValueError, match="stage 'isc'.*'hollow'.*empty"):
            flow.run(empty, rng=0)

    def test_cluster_names_the_stage(self, flow):
        empty = ConnectionMatrix(np.zeros((10, 10)))
        with pytest.raises(ValueError, match="stage 'isc'"):
            flow.cluster(empty, rng=0)

    def test_wrong_type_is_a_type_error(self, flow):
        with pytest.raises(TypeError, match="ConnectionMatrix"):
            flow.run(np.zeros((10, 10)), rng=0)


class TestDiagnostics:
    def test_stage_timings_recorded(self, flow, network):
        result = flow.run(network, rng=3)
        seconds = result.metadata["stage_seconds"]
        assert {"isc", "mapping", "placement", "routing", "cost"} <= set(seconds)
        assert all(value >= 0.0 for value in seconds.values())

    def test_healthy_run_has_no_fallbacks(self, flow, network):
        result = flow.run(network, rng=3)
        assert result.metadata["fallbacks"] == []

    def test_design_carries_the_same_diagnostics(self, flow, network):
        result = flow.run(network, rng=3)
        assert result.design.metadata["diagnostics"] is result.metadata


class TestPlacementFallback:
    def test_divergent_placer_falls_back_to_annealing(self, flow, network, monkeypatch):
        # Acceptance criterion: a pathological analytical placement (all-NaN
        # coordinates) must not kill the flow — the annealing fallback runs
        # and the event is recorded in the result metadata.
        def nan_place(netlist, **kwargs):
            placement = real_place(netlist, **kwargs)
            placement.x[:] = np.nan
            return placement

        monkeypatch.setattr(autoncs_module, "place", nan_place)
        result = flow.run(network, rng=3)
        assert np.all(np.isfinite(result.design.placement.x))
        fallbacks = result.metadata["fallbacks"]
        assert len(fallbacks) == 1
        assert fallbacks[0]["stage"] == "placement"
        assert fallbacks[0]["action"] == "annealing_placer"
        assert "non-finite" in fallbacks[0]["reason"]
        assert "placement_fallback" in result.metadata["stage_seconds"]

    def test_raising_placer_falls_back_too(self, flow, network, monkeypatch):
        def broken_place(netlist, **kwargs):
            raise RuntimeError("synthetic divergence")

        monkeypatch.setattr(autoncs_module, "place", broken_place)
        result = flow.run(network, rng=3)
        fallbacks = result.metadata["fallbacks"]
        assert fallbacks[0]["stage"] == "placement"
        assert "synthetic divergence" in fallbacks[0]["reason"]


class TestRoutingRetry:
    def test_first_failure_retries_with_relaxed_capacity(self, flow, network, monkeypatch):
        calls = {"n": 0}

        def flaky_route(netlist, placement, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("synthetic congestion blow-up")
            return real_route(netlist, placement, **kwargs)

        monkeypatch.setattr(autoncs_module, "route", flaky_route)
        result = flow.run(network, rng=3)
        assert calls["n"] == 2
        fallbacks = result.metadata["fallbacks"]
        assert len(fallbacks) == 1
        assert fallbacks[0]["stage"] == "routing"
        assert fallbacks[0]["action"] == "relaxed_capacity_retry"
        assert "routing_retry" in result.metadata["stage_seconds"]

    def test_persistent_failure_raises_stage_error(self, flow, network, monkeypatch):
        def dead_route(netlist, placement, **kwargs):
            raise RuntimeError("unroutable")

        monkeypatch.setattr(autoncs_module, "route", dead_route)
        with pytest.raises(StageError) as excinfo:
            flow.run(network, rng=3)
        assert excinfo.value.stage == "routing"
        assert "mapping" in excinfo.value.partial


class TestCompareRngDecoupling:
    def test_baseline_reproducible_in_isolation(self, flow, network):
        # compare() spawns one child generator per flow, so the FullCro side
        # can be replayed alone from the same parent seed.
        report = flow.compare(network, rng=5)
        _, fullcro_rng = spawn_rng(5, 2)
        alone = flow.run_baseline(network, rng=fullcro_rng)
        assert alone.cost.wirelength_um == pytest.approx(report.fullcro.cost.wirelength_um)
        assert alone.cost.area_um2 == pytest.approx(report.fullcro.cost.area_um2)

    def test_compare_is_deterministic(self, flow, network):
        a = flow.compare(network, rng=8)
        b = flow.compare(network, rng=8)
        assert a.autoncs.cost.wirelength_um == pytest.approx(b.autoncs.cost.wirelength_um)
        assert a.fullcro.cost.wirelength_um == pytest.approx(b.fullcro.cost.wirelength_um)
