"""Tests for the nonlinear conjugate-gradient optimizer."""

import numpy as np
import pytest

from repro.physical.placement.optimizer import conjugate_gradient


def quadratic(center):
    center = np.asarray(center, dtype=float)

    def objective(z):
        diff = z - center
        return float(diff @ diff), 2.0 * diff

    return objective


class TestConjugateGradient:
    def test_solves_quadratic(self):
        result = conjugate_gradient(quadratic([3.0, -2.0]), np.zeros(2),
                                    max_iterations=200)
        np.testing.assert_allclose(result.z, [3.0, -2.0], atol=1e-3)
        assert result.converged

    def test_rosenbrock_descends(self):
        def rosenbrock(z):
            a, b = z
            value = (1 - a) ** 2 + 100 * (b - a * a) ** 2
            grad = np.array([
                -2 * (1 - a) - 400 * a * (b - a * a),
                200 * (b - a * a),
            ])
            return float(value), grad

        start = np.array([-1.0, 1.0])
        start_value, _ = rosenbrock(start)
        result = conjugate_gradient(rosenbrock, start, max_iterations=300)
        assert result.value < start_value / 10

    def test_monotone_decrease(self):
        values = []

        def tracked(z):
            value, grad = quadratic([5.0])(z)
            values.append(value)
            return value, grad

        conjugate_gradient(tracked, np.zeros(1), max_iterations=50)
        # line-search evaluations may jitter, but accepted values decrease:
        # final must be far below initial
        assert values[-1] <= values[0]

    def test_already_converged(self):
        result = conjugate_gradient(quadratic([0.0]), np.zeros(1))
        assert result.converged
        assert result.value == pytest.approx(0.0, abs=1e-12)

    def test_high_dimensional(self):
        rng = np.random.default_rng(0)
        center = rng.random(100)
        result = conjugate_gradient(quadratic(center), np.zeros(100),
                                    max_iterations=300)
        np.testing.assert_allclose(result.z, center, atol=1e-2)

    def test_iteration_budget_respected(self):
        result = conjugate_gradient(quadratic([100.0]), np.zeros(1), max_iterations=3)
        assert result.iterations <= 3

    def test_rejects_bad_budget(self):
        with pytest.raises(ValueError):
            conjugate_gradient(quadratic([1.0]), np.zeros(1), max_iterations=0)

    def test_never_increases_value(self):
        def objective(z):
            return float(np.sum(np.cos(z) + 0.01 * z * z)), -np.sin(z) + 0.02 * z

        start = np.full(5, 2.0)
        start_value, _ = objective(start)
        result = conjugate_gradient(objective, start, max_iterations=100)
        assert result.value <= start_value + 1e-12
