"""Tests for placement legalization."""

import numpy as np
import pytest

from repro.physical.placement.density import true_overlap
from repro.physical.placement.legalize import legalize, push_apart, row_pack


class TestPushApart:
    def test_separates_two_stacked_cells(self):
        x = np.array([0.0, 0.1])
        y = np.array([0.0, 0.0])
        dims = np.array([4.0, 4.0])
        nx, ny, ratio = push_apart(x, y, dims, dims, tolerance_ratio=1e-9, rng=0)
        assert ratio < 1e-6
        assert true_overlap(nx, ny, dims, dims) < 1e-4

    def test_no_overlap_noop(self):
        x = np.array([0.0, 100.0])
        y = np.array([0.0, 0.0])
        dims = np.array([2.0, 2.0])
        nx, ny, ratio = push_apart(x, y, dims, dims, rng=0)
        np.testing.assert_allclose(nx, x)
        assert ratio == 0.0

    def test_big_cell_moves_less(self):
        x = np.array([0.0, 1.0])
        y = np.array([0.0, 0.0])
        widths = np.array([20.0, 2.0])
        heights = np.array([20.0, 2.0])
        nx, _, _ = push_apart(x, y, widths, heights, max_passes=500, rng=0)
        assert abs(nx[0] - 0.0) < abs(nx[1] - 1.0)

    def test_identical_centers_resolved(self):
        x = np.zeros(3)
        y = np.zeros(3)
        dims = np.ones(3) * 3.0
        nx, ny, ratio = push_apart(x, y, dims, dims, max_passes=500, rng=0)
        assert ratio < 0.05

    def test_many_cells_converges(self, rng):
        n = 60
        x = rng.random(n) * 10
        y = rng.random(n) * 10
        dims = rng.uniform(1.0, 3.0, n)
        nx, ny, ratio = push_apart(x, y, dims, dims, max_passes=500, rng=0)
        assert ratio < 0.01


class TestRowPack:
    def test_guaranteed_legal(self, rng):
        n = 40
        x = rng.random(n)
        y = rng.random(n)
        widths = rng.uniform(1, 10, n)
        heights = rng.uniform(1, 10, n)
        nx, ny = row_pack(x, y, widths, heights)
        assert true_overlap(nx, ny, widths, heights) < 1e-9

    def test_empty(self):
        nx, ny = row_pack(np.zeros(0), np.zeros(0), np.zeros(0), np.zeros(0))
        assert nx.size == 0

    def test_rejects_bad_aspect(self):
        with pytest.raises(ValueError):
            row_pack(np.zeros(2), np.zeros(2), np.ones(2), np.ones(2), aspect_target=0)

    def test_wide_cell_fits(self):
        widths = np.array([50.0, 1.0, 1.0])
        heights = np.ones(3)
        nx, ny = row_pack(np.zeros(3), np.zeros(3), widths, heights)
        assert true_overlap(nx, ny, widths, heights) < 1e-9


class TestLegalize:
    def test_returns_info(self, rng):
        n = 30
        x = rng.random(n) * 5
        y = rng.random(n) * 5
        dims = rng.uniform(1, 2, n)
        nx, ny, info = legalize(x, y, dims, dims, rng=0)
        assert info["method"] in ("push_apart", "row_pack")
        assert info["overlap_ratio"] < 0.01

    def test_falls_back_to_row_pack_when_stuck(self, rng):
        # pathological: everything at one point with 2 passes only
        n = 50
        x = np.zeros(n)
        y = np.zeros(n)
        dims = np.ones(n) * 5
        nx, ny, info = legalize(x, y, dims, dims, max_passes=2, rng=0)
        assert info["method"] == "row_pack"
        assert true_overlap(nx, ny, dims, dims) < 1e-9
