"""Tests for the routing grid, maze router and routing driver."""

import numpy as np
import pytest

from repro.hardware.library import CrossbarLibrary
from repro.mapping.netlist import build_netlist
from repro.physical.layout import Placement
from repro.physical.routing.grid import RoutingGrid
from repro.physical.routing.maze import maze_route
from repro.physical.routing.router import RoutingConfig, _routing_order, route


def make_grid(nx_um=40.0, ny_um=40.0, bin_um=4.0, capacity=2):
    return RoutingGrid(origin=(0.0, 0.0), width=nx_um, height=ny_um,
                       bin_um=bin_um, capacity=capacity)


class TestRoutingGrid:
    def test_dimensions(self):
        grid = make_grid()
        assert grid.nx == 10 and grid.ny == 10
        assert grid.horizontal_capacity.shape == (9, 10)
        assert grid.vertical_capacity.shape == (10, 9)

    def test_bin_of_clamps(self):
        grid = make_grid()
        assert grid.bin_of(-5.0, -5.0) == (0, 0)
        assert grid.bin_of(1000.0, 1000.0) == (9, 9)
        assert grid.bin_of(6.0, 10.0) == (1, 2)

    def test_bin_center(self):
        grid = make_grid()
        assert grid.bin_center((0, 0)) == (2.0, 2.0)

    def test_edge_between(self):
        grid = make_grid()
        assert grid.edge_between((0, 0), (1, 0)) == ("h", 0, 0)
        assert grid.edge_between((3, 4), (3, 3)) == ("v", 3, 3)
        with pytest.raises(ValueError):
            grid.edge_between((0, 0), (2, 0))

    def test_usage_bookkeeping(self):
        grid = make_grid()
        path = [(0, 0), (1, 0), (1, 1)]
        grid.add_usage(path)
        assert grid.edge_usage(("h", 0, 0)) == 1
        assert grid.edge_usage(("v", 1, 0)) == 1
        grid.add_usage(path, amount=-1)
        assert grid.edge_usage(("h", 0, 0)) == 0

    def test_relax_capacity(self):
        grid = make_grid(capacity=2)
        grid.relax_capacity(3)
        assert grid.edge_capacity(("h", 0, 0)) == 5
        assert grid.base_capacity == 2

    def test_path_length(self):
        grid = make_grid(bin_um=4.0)
        assert grid.path_length_um([(0, 0), (1, 0), (2, 0)]) == pytest.approx(8.0)

    def test_congestion_map_shape(self):
        grid = make_grid()
        grid.add_usage([(0, 0), (1, 0)])
        cmap = grid.congestion_map()
        assert cmap.shape == (10, 10)
        assert cmap[0, 0] == 1 and cmap[1, 0] == 1

    def test_overflow_count(self):
        grid = make_grid(capacity=1)
        grid.add_usage([(0, 0), (1, 0)])
        grid.add_usage([(0, 0), (1, 0)])
        assert grid.overflowed_edges() == 1
        assert grid.max_congestion() == pytest.approx(2.0)


class TestMazeRoute:
    def test_straight_path(self):
        grid = make_grid()
        path = maze_route(grid, (0, 0), (5, 0))
        assert path[0] == (0, 0) and path[-1] == (5, 0)
        assert len(path) == 6  # monotone straight line

    def test_same_bin(self):
        grid = make_grid()
        path = maze_route(grid, (3, 3), (3, 3))
        assert path == [(3, 3)]

    def test_detours_around_congestion(self):
        grid = make_grid(capacity=1)
        # saturate the direct horizontal corridor at y=0
        for bx in range(9):
            grid.add_usage([(bx, 0), (bx + 1, 0)])
        path = maze_route(grid, (0, 0), (9, 0))
        assert path is not None
        # must leave row 0 somewhere
        assert any(b[1] != 0 for b in path)

    def test_blocked_fails_without_overflow(self):
        grid = RoutingGrid((0, 0), 12.0, 4.0, 4.0, capacity=1)  # 3x1 grid
        grid.add_usage([(0, 0), (1, 0)])  # saturate the only edge
        assert maze_route(grid, (0, 0), (2, 0)) is None

    def test_blocked_succeeds_with_overflow(self):
        grid = RoutingGrid((0, 0), 12.0, 4.0, 4.0, capacity=1)
        grid.add_usage([(0, 0), (1, 0)])
        path = maze_route(grid, (0, 0), (2, 0), allow_overflow=True)
        assert path == [(0, 0), (1, 0), (2, 0)]

    def test_window_fallback_to_full_grid(self):
        grid = make_grid(capacity=1)
        # wall of saturated vertical edges around the window
        for bx in range(0, 7):
            grid.add_usage([(bx, 4), (bx, 5)])
        path = maze_route(grid, (2, 2), (2, 7), window_margin=1)
        assert path is not None


class TestRouteDriver:
    @pytest.fixture()
    def placed_design(self):
        library = CrossbarLibrary()
        netlist = build_netlist(6, [], [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)], library)
        n = netlist.num_cells
        rng = np.random.default_rng(0)
        placement = Placement(
            x=rng.random(n) * 60,
            y=rng.random(n) * 60,
            widths=netlist.widths(),
            heights=netlist.heights(),
        )
        return netlist, placement

    def test_all_wires_routed(self, placed_design):
        netlist, placement = placed_design
        result = route(netlist, placement)
        assert len(result.wires) == netlist.num_wires
        assert result.total_wirelength_um >= 0.0

    def test_lengths_ordered_by_wire_index(self, placed_design):
        netlist, placement = placed_design
        result = route(netlist, placement)
        assert result.lengths.shape == (netlist.num_wires,)

    def test_congestion_map_available(self, placed_design):
        netlist, placement = placed_design
        result = route(netlist, placement)
        assert result.congestion_map().ndim == 2

    def test_tight_capacity_relaxes(self, placed_design):
        netlist, placement = placed_design
        config = RoutingConfig(capacity_per_bin=1, bin_um=30.0, max_relax_rounds=4)
        result = route(netlist, placement, config=config)
        assert len(result.wires) == netlist.num_wires

    def test_mismatched_placement_rejected(self, placed_design):
        netlist, _ = placed_design
        bad = Placement(x=np.zeros(2), y=np.zeros(2), widths=np.ones(2), heights=np.ones(2))
        with pytest.raises(ValueError, match="cells"):
            route(netlist, bad)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RoutingConfig(window_margin_bins=-1)
        with pytest.raises(ValueError):
            RoutingConfig(relax_increment=0)

    def test_coarsening_scales_grid_and_capacity(self, placed_design):
        # A die wider than max_grid_bins bins triggers the coarsening
        # branch: θ grows, capacity rescales with the merge factor.
        netlist, placement = placed_design
        config = RoutingConfig(bin_um=2.0, max_grid_bins=8, capacity_per_bin=2)
        result = route(netlist, placement, config=config)
        grid = result.grid
        assert grid.bin_um > config.bin_um
        # The routed region is the bounding box + 1 margin bin per side.
        assert grid.nx <= config.max_grid_bins + 2
        assert grid.ny <= config.max_grid_bins + 2
        # span ≈ 60 µm over 8 bins of 2 µm → scale ≈ 3.75, capacity 2 → 8ish
        assert grid.base_capacity > config.capacity_per_bin
        assert len(result.wires) == netlist.num_wires

    def test_coarsening_capacity_rounds_to_at_least_one(self, placed_design):
        # int(round(capacity * scale)) at scale ≈ 1: capacity 1 must
        # survive the rescale as 1, never drop to 0.
        netlist, placement = placed_design
        span = max(
            placement.x.max() - placement.x.min(),
            placement.y.max() - placement.y.min(),
        )
        bins = 16
        # bin_um chosen so span/bin_um is barely above max_grid_bins.
        bin_um = span / (bins + 0.05)
        config = RoutingConfig(bin_um=bin_um, max_grid_bins=bins, capacity_per_bin=1)
        result = route(netlist, placement, config=config)
        assert result.grid.base_capacity == 1
        assert len(result.wires) == netlist.num_wires

    def test_never_fail_overflow_pass(self):
        # Zero relax rounds + capacity 1 on a single shared corridor: the
        # final allow-overflow pass must still route everything and report
        # the overflowed wires.
        library = CrossbarLibrary()
        pairs = [(i, i + 6) for i in range(6)]
        netlist = build_netlist(12, [], pairs, library)
        x = np.concatenate([np.full(6, 2.0), np.full(6, 58.0), np.full(6, 30.0)])
        y = np.full(netlist.num_cells, 2.0)
        placement = Placement(
            x=x, y=y, widths=netlist.widths(), heights=netlist.heights()
        )
        config = RoutingConfig(
            capacity_per_bin=1, bin_um=10.0, max_relax_rounds=0
        )
        result = route(netlist, placement, config=config)
        assert len(result.wires) == netlist.num_wires
        assert result.relax_rounds == 0
        assert result.overflow_wires > 0
        assert sum(1 for w in result.wires if w.overflowed) == result.overflow_wires

    def test_routing_order_dtype_invariant(self, placed_design):
        # The order golden fixtures depend on must not change with the
        # placement's floating dtype (float32 platforms vs float64).
        netlist, placement = placed_design
        p32 = Placement(
            x=placement.x.astype(np.float32),
            y=placement.y.astype(np.float32),
            widths=placement.widths,
            heights=placement.heights,
        )
        assert _routing_order(netlist, placement) == _routing_order(netlist, p32)

    def test_routing_order_empty_netlist(self):
        library = CrossbarLibrary()
        netlist = build_netlist(3, [], [], library)
        placement = Placement(
            x=np.zeros(3), y=np.zeros(3),
            widths=netlist.widths(), heights=netlist.heights(),
        )
        assert _routing_order(netlist, placement) == []

    def test_routing_order_weight_tiebreak(self):
        # Two wires whose closest pins are equidistant from the gravity
        # center: the heavier wire routes first.
        library = CrossbarLibrary()
        netlist = build_netlist(4, [], [(0, 1), (2, 3)], library)
        n = netlist.num_cells
        x = np.linspace(0.0, 30.0, n)
        placement = Placement(
            x=x, y=np.zeros(n),
            widths=netlist.widths(), heights=netlist.heights(),
        )
        order = _routing_order(netlist, placement)
        assert sorted(order) == list(range(netlist.num_wires))

    def test_routed_length_at_least_manhattan_bins(self, placed_design):
        netlist, placement = placed_design
        result = route(netlist, placement)
        grid = result.grid
        for routed in result.wires:
            wire = netlist.wires[routed.wire_index]
            start = grid.bin_of(placement.x[wire.source], placement.y[wire.source])
            goal = grid.bin_of(placement.x[wire.target], placement.y[wire.target])
            manhattan = (abs(start[0] - goal[0]) + abs(start[1] - goal[1])) * grid.bin_um
            if start != goal:
                assert routed.length_um >= manhattan - 1e-9
