"""Negotiated-congestion router tests: shared invariants, QoR, mutations.

Three layers:

* **Invariants** every routing result must satisfy regardless of the
  algorithm (contiguous on-grid paths, pin bins respected, recorded
  lengths consistent, usage counters equal to an independent replay of
  the committed paths) — parametrized over ``ordered`` and
  ``negotiated`` so both stay honest.
* **QoR comparison** on the three scaled paper testbenches at the golden
  dimension/seeds: negotiated wirelength and overflow must never be
  worse than ordered.
* **Mutation tests** proving the independent verifier actually catches
  the failure modes a broken negotiation would produce (stale usage
  bookkeeping after a rip-up without reroute, tampered paths, hidden
  overflow).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.autoncs import AutoNCS
from repro.core.config import fast_config
from repro.experiments.testbenches import build_testbench, scaled_testbench
from repro.hardware.library import CrossbarLibrary
from repro.mapping.autoncs_mapping import autoncs_mapping
from repro.mapping.netlist import build_netlist
from repro.physical.layout import Placement
from repro.physical.placement.placer import place
from repro.physical.routing.router import (
    ROUTING_ALGORITHMS,
    RoutingConfig,
    RoutingResult,
    route,
)
from repro.verify.checks import check_physical

# Golden-fixture scale and seeds (tests/golden/test_golden.py) — the QoR
# comparison below is pinned to the same deterministic designs.
DIMENSION = 120
NETWORK_SEED = 31
FLOW_SEED = 17


# ----------------------------------------------------------------------
# Shared invariants
# ----------------------------------------------------------------------
def assert_routing_invariants(netlist, placement, result: RoutingResult) -> None:
    """Every property a sound routing result must have, any algorithm."""
    grid = result.grid
    # Exactly one route per wire.
    indices = sorted(w.wire_index for w in result.wires)
    assert indices == list(range(netlist.num_wires))
    replay_h = np.zeros_like(grid.horizontal_usage)
    replay_v = np.zeros_like(grid.vertical_usage)
    for routed in result.wires:
        wire = netlist.wires[routed.wire_index]
        sx, sy = placement.x[wire.source], placement.y[wire.source]
        tx, ty = placement.x[wire.target], placement.y[wire.target]
        start = grid.bin_of(float(sx), float(sy))
        goal = grid.bin_of(float(tx), float(ty))
        path = routed.path
        assert path, "empty path"
        if len(path) == 1:
            assert path[0] == start == goal
            expected = abs(sx - tx) + abs(sy - ty)
        else:
            assert path[0] == start and path[-1] == goal
            for a, b in zip(path, path[1:]):
                # Contiguous, axis-aligned, on-grid steps.
                assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1
                assert 0 <= b[0] < grid.nx and 0 <= b[1] < grid.ny
                if a[1] == b[1]:
                    replay_h[min(a[0], b[0]), a[1]] += 1
                else:
                    replay_v[a[0], min(a[1], b[1])] += 1
            expected = grid.path_length_um(path)
            # Wirelength lower bound: Manhattan distance between pin bins.
            manhattan = (abs(start[0] - goal[0]) + abs(start[1] - goal[1])) * grid.bin_um
            assert routed.length_um >= manhattan - 1e-9
        assert routed.length_um == pytest.approx(expected)
    # The grid's usage counters must equal the independent replay — any
    # rip-up that forgot to reroute (or vice versa) breaks this.
    np.testing.assert_array_equal(replay_h, grid.horizontal_usage)
    np.testing.assert_array_equal(replay_v, grid.vertical_usage)


def _chain_design(n_cells=8, span=70.0, seed=0):
    library = CrossbarLibrary()
    pairs = [(i, i + 1) for i in range(n_cells - 1)]
    netlist = build_netlist(n_cells, [], pairs, library)
    rng = np.random.default_rng(seed)
    placement = Placement(
        x=rng.random(netlist.num_cells) * span,
        y=rng.random(netlist.num_cells) * span,
        widths=netlist.widths(),
        heights=netlist.heights(),
    )
    return netlist, placement


@pytest.mark.parametrize("algorithm", ROUTING_ALGORITHMS)
class TestSharedInvariants:
    def test_random_chain(self, algorithm):
        netlist, placement = _chain_design()
        result = route(netlist, placement, config=RoutingConfig(algorithm=algorithm))
        assert result.algorithm == algorithm
        assert_routing_invariants(netlist, placement, result)

    def test_tight_capacity(self, algorithm):
        netlist, placement = _chain_design(n_cells=10, span=50.0, seed=3)
        config = RoutingConfig(algorithm=algorithm, capacity_per_bin=1, bin_um=20.0)
        result = route(netlist, placement, config=config)
        assert_routing_invariants(netlist, placement, result)

    def test_result_reports_algorithm_counters(self, algorithm):
        netlist, placement = _chain_design(seed=5)
        result = route(netlist, placement, config=RoutingConfig(algorithm=algorithm))
        if algorithm == "negotiated":
            assert result.relax_rounds == 0
            assert result.ripup_iterations >= 0
        else:
            assert result.ripup_iterations == 0


class TestNegotiatedSpecifics:
    def test_converges_without_congestion(self):
        netlist, placement = _chain_design(seed=1)
        result = route(
            netlist, placement, config=RoutingConfig(algorithm="negotiated")
        )
        assert result.overflow_wires == 0
        assert result.ripups == 0 and result.ripup_iterations == 0

    def test_ripups_fire_under_contention(self):
        # Funnel every wire through one flat corridor: unit capacity with
        # ten parallel left-to-right connections forces negotiation.
        library = CrossbarLibrary()
        pairs = [(i, i + 10) for i in range(10)]
        netlist = build_netlist(20, [], pairs, library)
        # Cells: 20 neurons then one synapse cell per pair, all on one row.
        x = np.concatenate([np.full(10, 5.0), np.full(10, 95.0), np.full(10, 50.0)])
        y = np.full(netlist.num_cells, 5.0)
        placement = Placement(
            x=x, y=y, widths=netlist.widths(), heights=netlist.heights()
        )
        config = RoutingConfig(
            algorithm="negotiated", capacity_per_bin=1, bin_um=10.0
        )
        result = route(netlist, placement, config=config)
        assert_routing_invariants(netlist, placement, result)
        assert result.ripup_iterations > 0

    def test_zero_iterations_is_first_pass_only(self):
        netlist, placement = _chain_design(seed=2)
        config = RoutingConfig(algorithm="negotiated", max_ripup_iterations=0)
        result = route(netlist, placement, config=config)
        assert result.ripup_iterations == 0
        assert_routing_invariants(netlist, placement, result)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="algorithm"):
            RoutingConfig(algorithm="steiner")
        with pytest.raises(ValueError):
            RoutingConfig(present_weight=0.0)
        with pytest.raises(ValueError):
            RoutingConfig(present_growth=0.5)
        with pytest.raises(ValueError):
            RoutingConfig(history_increment=-1.0)
        with pytest.raises(ValueError):
            RoutingConfig(max_ripup_iterations=-1)


# ----------------------------------------------------------------------
# QoR on the scaled paper testbenches (golden scale and seeds)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def placed_testbenches():
    """tb1–tb3 clustered, mapped and placed once at the golden scale.

    The flow's own seeding (``AutoNCS.run`` with the golden flow seed)
    is reproduced stage by stage so these are exactly the golden designs.
    """
    designs = {}
    flow = AutoNCS()
    for index in (1, 2, 3):
        tb = build_testbench(scaled_testbench(index, DIMENSION), rng=NETWORK_SEED)
        isc = flow.cluster(tb.network, rng=np.random.default_rng(FLOW_SEED))
        mapping = autoncs_mapping(isc, library=flow.library)
        placement = place(
            mapping.netlist,
            technology=flow.config.technology,
            rng=np.random.default_rng(FLOW_SEED),
        )
        designs[index] = (mapping.netlist, placement, flow.config.technology)
    return designs


@pytest.mark.parametrize("index", (1, 2, 3))
def test_negotiated_never_worse_than_ordered(placed_testbenches, index):
    netlist, placement, technology = placed_testbenches[index]
    results = {
        algorithm: route(
            netlist,
            placement,
            technology=technology,
            config=RoutingConfig(algorithm=algorithm),
        )
        for algorithm in ROUTING_ALGORITHMS
    }
    for result in results.values():
        assert_routing_invariants(netlist, placement, result)
    negotiated, ordered = results["negotiated"], results["ordered"]
    assert negotiated.overflow_wires <= ordered.overflow_wires
    assert negotiated.total_wirelength_um <= ordered.total_wirelength_um + 1e-6


# ----------------------------------------------------------------------
# Property tests: random placements, both algorithms
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n_cells=st.integers(min_value=2, max_value=12),
    algorithm=st.sampled_from(ROUTING_ALGORITHMS),
)
def test_invariants_hold_for_random_placements(seed, n_cells, algorithm):
    library = CrossbarLibrary()
    rng = np.random.default_rng(seed)
    pairs = [
        (int(a), int(b))
        for a, b in rng.integers(0, n_cells, size=(n_cells, 2))
        if a != b
    ]
    netlist = build_netlist(n_cells, [], pairs, library)
    placement = Placement(
        x=rng.random(netlist.num_cells) * 80,
        y=rng.random(netlist.num_cells) * 80,
        widths=netlist.widths(),
        heights=netlist.heights(),
    )
    result = route(netlist, placement, config=RoutingConfig(algorithm=algorithm))
    assert_routing_invariants(netlist, placement, result)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_both_algorithms_agree_on_uncongested_wirelength(seed):
    # With capacity to spare, both algorithms find shortest paths — total
    # wirelength must agree exactly (paths may differ, lengths cannot).
    netlist, placement = _chain_design(n_cells=6, seed=seed)
    config = {"capacity_per_bin": 64}
    lengths = {
        algorithm: route(
            netlist,
            placement,
            config=RoutingConfig(algorithm=algorithm, **config),
        ).total_wirelength_um
        for algorithm in ROUTING_ALGORITHMS
    }
    assert lengths["negotiated"] == pytest.approx(lengths["ordered"])


# ----------------------------------------------------------------------
# Mutation tests: a broken negotiation must not pass the verifier
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def negotiated_design():
    """A small end-to-end negotiated design the verifier accepts."""
    tb = build_testbench(scaled_testbench(1, 40), rng=NETWORK_SEED)
    config = fast_config()
    config.routing = RoutingConfig(algorithm="negotiated")
    result = AutoNCS(config).run(tb.network, rng=FLOW_SEED)
    return result.design


def _multi_bin_wire(routing):
    return next(w for w in routing.wires if len(w.path) > 1)


def test_untampered_design_passes(negotiated_design):
    design = negotiated_design
    report = check_physical(design.mapping, design.placement, design.routing)
    assert report.passed, report.violations


def test_ripup_without_reroute_is_detected(negotiated_design):
    # A rip-up that forgets to reroute leaves the grid counters stale
    # relative to the committed paths — the replay check must fire.
    design = negotiated_design
    routing = design.routing
    victim = _multi_bin_wire(routing)
    routing.grid.add_usage(victim.path, amount=-1)
    try:
        report = check_physical(design.mapping, design.placement, routing)
        assert not report.passed
        assert any("usage counters" in v.message for v in report.violations)
    finally:
        routing.grid.add_usage(victim.path)


def test_tampered_path_is_detected(negotiated_design):
    design = negotiated_design
    routing = design.routing
    victim = _multi_bin_wire(routing)
    original = list(victim.path)
    victim.path = [original[0], original[-1]] if len(original) > 2 else [
        original[0],
        (original[0][0] + 2, original[0][1]),
    ]
    try:
        report = check_physical(design.mapping, design.placement, routing)
        assert not report.passed
    finally:
        victim.path = original


def test_hidden_overflow_is_detected():
    # Force real overflow, then pretend there was none: the verifier must
    # flag over-capacity edges paired with overflow_wires == 0.
    netlist, placement = _chain_design(n_cells=10, span=50.0, seed=3)
    config = RoutingConfig(
        algorithm="negotiated",
        capacity_per_bin=1,
        bin_um=25.0,
        max_ripup_iterations=2,
    )
    result = route(netlist, placement, config=config)
    over = int(
        np.count_nonzero(result.grid.horizontal_usage > result.grid.horizontal_capacity)
        + np.count_nonzero(result.grid.vertical_usage > result.grid.vertical_capacity)
    )
    if over == 0:
        pytest.skip("design did not overflow — nothing to hide")
    assert result.overflow_wires > 0
    result.overflow_wires = 0
    # check_physical needs a mapping; reuse the raw check via a stand-in.
    from repro.verify.checks import _check_routing

    class _Mapping:
        pass

    mapping = _Mapping()
    mapping.netlist = netlist
    violations = []
    _check_routing(mapping, placement, result, violations)
    assert any("overflow" in v.message for v in violations)
