"""Tests for layout containers and congestion-map helpers."""

import numpy as np
import pytest

from repro.physical.layout import Placement, PhysicalDesign, congestion_map


class TestPlacementGeometry:
    def test_bounding_box(self):
        placement = Placement(
            x=np.array([0.0, 10.0]),
            y=np.array([0.0, 5.0]),
            widths=np.array([2.0, 4.0]),
            heights=np.array([2.0, 2.0]),
        )
        assert placement.bounding_box() == (-1.0, -1.0, 12.0, 6.0)
        assert placement.area == pytest.approx(13.0 * 7.0)

    def test_hpwl(self):
        placement = Placement(
            x=np.array([0.0, 3.0]),
            y=np.array([0.0, 4.0]),
            widths=np.ones(2),
            heights=np.ones(2),
        )
        assert placement.hpwl(np.array([0]), np.array([1])) == pytest.approx(7.0)

    def test_overlap_ratio_scale(self):
        placement = Placement(
            x=np.array([0.0, 10.0]),
            y=np.array([0.0, 0.0]),
            widths=np.array([4.0, 4.0]),
            heights=np.array([4.0, 4.0]),
        )
        assert placement.overlap_ratio() == 0.0
        # inflating the cells 4x makes them 16 wide -> they overlap
        assert placement.overlap_ratio(scale=4.0) > 0.0


class TestCongestionMapHelper:
    def test_combines_usages(self):
        class FakeRouting:
            horizontal_usage = np.ones((2, 3))
            vertical_usage = np.ones((3, 2))

        combined = congestion_map(FakeRouting())
        assert combined.shape == (3, 3)
        assert combined[0, 0] == 2.0

    def test_none_without_usage(self):
        assert congestion_map(object()) is None


class TestPhysicalDesign:
    def test_summary(self):
        class FakeCost:
            wirelength_um = 10.0
            area_um2 = 20.0
            average_delay_ns = 1.5
            total = 31.5

        class FakeMapping:
            name = "X"

        design = PhysicalDesign(
            mapping=FakeMapping(), placement=None, routing=None, cost=FakeCost()
        )
        summary = design.summary()
        assert summary["design"] == "X"
        assert summary["wirelength_um"] == 10.0
        assert summary["cost"] == 31.5
