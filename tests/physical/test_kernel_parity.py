"""Differential parity suite: compiled routing kernel vs the python reference.

The contract (DESIGN.md "Routing kernel parity"): the kernel must produce
**bit-identical** paths, edge usage, counters and wirelength on every
input.  These tests enforce it three ways:

* the paper testbenches tb1–tb3, clustered/mapped/placed exactly as the
  bench harness does, routed with both algorithms;
* hypothesis property tests over random grids, capacities, preloaded
  usage ("obstruction maps") and wire lists at the batch-kernel level;
* the same checks against the *compiled* kernel when Numba is installed
  (skipped cleanly otherwise).

Where Numba is absent the suite drives the uncompiled kernel through
:func:`~repro.physical.routing.kernel.interpreted_kernel` — the factory
builds both variants from the same source, so the interpreted run
exercises exactly the code the jit compiles.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observability import Recorder, recording
from repro.physical.routing.grid import RoutingGrid
from repro.physical.routing.kernel import (
    NUMBA_AVAILABLE,
    KernelUnavailableError,
    interpreted_kernel,
    kernel_available,
    resolve_kernel,
    route_wires_kernel,
)
from repro.physical.routing.maze import MazeWorkspace, maze_route
from repro.physical.routing.router import RoutingConfig, route

#: Counters that legitimately differ between engines (batch bookkeeping;
#: the python path memoizes heuristics the kernel computes inline).
ENGINE_SPECIFIC = {
    "routing.kernel_batches",
    "routing.kernel_wires",
    "routing.heuristic_builds",
    "routing.heuristic_hits",
}


def _placed_testbench(index, dimension=16, seed=42):
    """Cluster, map and place one scaled testbench (bench-harness recipe)."""
    from repro.core.autoncs import AutoNCS
    from repro.experiments.testbenches import build_testbench, scaled_testbench
    from repro.mapping.autoncs_mapping import autoncs_mapping
    from repro.physical.placement.placer import place

    flow = AutoNCS()
    instance = build_testbench(scaled_testbench(index, dimension), rng=seed)
    isc = flow.cluster(instance.network, rng=np.random.default_rng(seed))
    mapping = autoncs_mapping(isc, library=flow.library)
    placement = place(
        mapping.netlist,
        technology=flow.config.technology,
        rng=np.random.default_rng(seed),
    )
    return mapping.netlist, placement, flow.config.technology


@pytest.fixture(scope="module", params=(1, 2, 3))
def testbench_case(request):
    return _placed_testbench(request.param)


def _route_recorded(netlist, placement, technology, config):
    recorder = Recorder()
    with recording(recorder):
        result = route(netlist, placement, technology=technology, config=config)
    counters = {
        name: value
        for name, value in recorder.snapshot().counters.items()
        if name.startswith("routing.") and name not in ENGINE_SPECIFIC
    }
    return result, counters


def assert_bit_identical(ref, ker, ref_counters=None, ker_counters=None):
    """Paths, lengths, overflow flags, usage and stats must match exactly."""
    assert len(ref.wires) == len(ker.wires)
    for a, b in zip(ref.wires, ker.wires):
        assert a.wire_index == b.wire_index
        assert a.path == b.path
        assert a.length_um == b.length_um  # bitwise: no approx
        assert a.overflowed == b.overflowed
    assert np.array_equal(ref.grid.horizontal_usage, ker.grid.horizontal_usage)
    assert np.array_equal(ref.grid.vertical_usage, ker.grid.vertical_usage)
    assert ref.total_wirelength_um == ker.total_wirelength_um
    assert ref.overflow_wires == ker.overflow_wires
    assert ref.relax_rounds == ker.relax_rounds
    assert ref.ripup_iterations == ker.ripup_iterations
    assert ref.ripups == ker.ripups
    if ref_counters is not None:
        assert ref_counters == ker_counters


class TestTestbenchParity:
    """tb1–tb3 through the full driver, both algorithms, both engines."""

    @pytest.mark.parametrize("algorithm", ("ordered", "negotiated"))
    def test_interpreted_kernel_matches_reference(self, testbench_case, algorithm):
        netlist, placement, technology = testbench_case
        ref, ref_counters = _route_recorded(
            netlist, placement, technology,
            RoutingConfig(algorithm=algorithm, kernel="python"),
        )
        with interpreted_kernel():
            ker, ker_counters = _route_recorded(
                netlist, placement, technology,
                RoutingConfig(algorithm=algorithm, kernel="numba"),
            )
        assert_bit_identical(ref, ker, ref_counters, ker_counters)

    @pytest.mark.skipif(not NUMBA_AVAILABLE, reason="numba not installed")
    @pytest.mark.parametrize("algorithm", ("ordered", "negotiated"))
    def test_compiled_kernel_matches_reference(self, testbench_case, algorithm):
        netlist, placement, technology = testbench_case
        ref, ref_counters = _route_recorded(
            netlist, placement, technology,
            RoutingConfig(algorithm=algorithm, kernel="python"),
        )
        ker, ker_counters = _route_recorded(
            netlist, placement, technology,
            RoutingConfig(algorithm=algorithm, kernel="numba"),
        )
        assert_bit_identical(ref, ker, ref_counters, ker_counters)

    @pytest.mark.parametrize("algorithm", ("ordered", "negotiated"))
    def test_congested_parity(self, testbench_case, algorithm):
        # capacity 1 forces relax rounds / rip-up iterations / the
        # overflow pass — the paths where batching could drift.
        netlist, placement, technology = testbench_case
        config = dict(
            algorithm=algorithm, capacity_per_bin=1, congestion_weight=4.0
        )
        ref, ref_counters = _route_recorded(
            netlist, placement, technology,
            RoutingConfig(kernel="python", **config),
        )
        with interpreted_kernel():
            ker, ker_counters = _route_recorded(
                netlist, placement, technology,
                RoutingConfig(kernel="numba", **config),
            )
        assert_bit_identical(ref, ker, ref_counters, ker_counters)


# ----------------------------------------------------------------------
# Batch-kernel level property tests (random grids/capacities/obstructions)
# ----------------------------------------------------------------------
@st.composite
def routing_scenarios(draw):
    """One random routing scenario: grid, preloaded usage, wire list."""
    nx = draw(st.integers(min_value=2, max_value=9))
    ny = draw(st.integers(min_value=1, max_value=9))
    capacity = draw(st.integers(min_value=1, max_value=3))
    bin_um = draw(st.sampled_from((2.0, 5.0, 10.0)))
    grid = RoutingGrid(
        origin=(0.0, 0.0),
        width=nx * bin_um,
        height=ny * bin_um,
        bin_um=bin_um,
        capacity=capacity,
    )
    # Obstruction map: preload random edges up to (or past) capacity so
    # blocked/congested branches are exercised.
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    grid.horizontal_usage += rng.integers(
        0, capacity + 1, size=grid.horizontal_usage.shape
    )
    grid.vertical_usage += rng.integers(
        0, capacity + 1, size=grid.vertical_usage.shape
    )
    n_wires = draw(st.integers(min_value=1, max_value=8))
    pairs = []
    for _ in range(n_wires):
        s = (int(rng.integers(0, grid.nx)), int(rng.integers(0, grid.ny)))
        g = (int(rng.integers(0, grid.nx)), int(rng.integers(0, grid.ny)))
        if s != g:
            pairs.append((s, g))
    window = draw(st.integers(min_value=0, max_value=4))
    return grid, pairs, window


def _reference_batch(grid, workspace, pairs, *, window, allow_overflow=False,
                     present_weight=None):
    """The per-wire reference loop route_wires_kernel must reproduce.

    Returns ``(paths, overflow_flags)`` — the flag is the driver's
    after-commit :func:`_path_overflows` check, evaluated per wire right
    after its own commit (later wires never flip earlier flags).
    """
    from repro.physical.routing.router import _path_overflows

    paths = []
    flags = []
    for s, g in pairs:
        path = maze_route(
            grid, s, g,
            window_margin=window,
            congestion_weight=2.0,
            allow_overflow=allow_overflow,
            workspace=workspace,
            present_weight=present_weight,
        )
        if path is not None:
            grid.add_usage(path)
            flags.append(_path_overflows(grid, path))
        else:
            flags.append(False)
        paths.append(path)
    return paths, flags


def _clone(grid):
    twin = RoutingGrid(
        origin=grid.origin,
        width=grid.nx * grid.bin_um,
        height=grid.ny * grid.bin_um,
        bin_um=grid.bin_um,
        capacity=grid.base_capacity,
    )
    twin.horizontal_usage[:] = grid.horizontal_usage
    twin.vertical_usage[:] = grid.vertical_usage
    twin.horizontal_capacity[:] = grid.horizontal_capacity
    twin.vertical_capacity[:] = grid.vertical_capacity
    return twin


COUNTER_FIELDS = ("heap_pushes", "heap_pops", "visited_bins", "searches", "epoch")


class TestPropertyParity:
    @settings(max_examples=60, deadline=None)
    @given(case=routing_scenarios())
    def test_ordered_batch_parity(self, case):
        grid_ref, pairs, window = case
        grid_ker = _clone(grid_ref)
        ws_ref = MazeWorkspace(grid_ref)
        ws_ker = MazeWorkspace(grid_ker)
        ref_paths, _ = _reference_batch(grid_ref, ws_ref, pairs, window=window)
        with interpreted_kernel():
            ker_paths, statuses = route_wires_kernel(
                grid_ker, ws_ker, pairs,
                window_margin=window, congestion_weight=2.0,
            )
        assert ref_paths == ker_paths
        assert np.array_equal(grid_ref.horizontal_usage, grid_ker.horizontal_usage)
        assert np.array_equal(grid_ref.vertical_usage, grid_ker.vertical_usage)
        for field in COUNTER_FIELDS:
            assert getattr(ws_ref, field) == getattr(ws_ker, field), field
        for path, status in zip(ker_paths, statuses):
            assert (path is None) == (status == 0)

    @settings(max_examples=60, deadline=None)
    @given(case=routing_scenarios())
    def test_negotiated_batch_parity(self, case):
        grid_ref, pairs, window = case
        grid_ker = _clone(grid_ref)
        ws_ref = MazeWorkspace(grid_ref)
        ws_ker = MazeWorkspace(grid_ker)
        # Seed identical random history costs on both workspaces.
        h_ref, v_ref = ws_ref.ensure_history()
        h_ker, v_ker = ws_ker.ensure_history()
        rng = np.random.default_rng(1234)
        h_ref += rng.random(h_ref.shape)
        v_ref += rng.random(v_ref.shape)
        h_ker[:] = h_ref
        v_ker[:] = v_ref
        ref_paths, _ = _reference_batch(
            grid_ref, ws_ref, pairs, window=window, present_weight=0.7
        )
        with interpreted_kernel():
            ker_paths, _ = route_wires_kernel(
                grid_ker, ws_ker, pairs,
                window_margin=window, congestion_weight=2.0,
                present_weight=0.7,
            )
        assert ref_paths == ker_paths
        # Negotiated mode never blocks: every wire routes.
        assert all(path is not None for path in ker_paths)
        assert np.array_equal(grid_ref.horizontal_usage, grid_ker.horizontal_usage)
        assert np.array_equal(grid_ref.vertical_usage, grid_ker.vertical_usage)
        for field in COUNTER_FIELDS:
            assert getattr(ws_ref, field) == getattr(ws_ker, field), field

    @settings(max_examples=40, deadline=None)
    @given(case=routing_scenarios())
    def test_overflow_batch_parity(self, case):
        grid_ref, pairs, window = case
        grid_ker = _clone(grid_ref)
        ws_ref = MazeWorkspace(grid_ref)
        ws_ker = MazeWorkspace(grid_ker)
        ref_paths, ref_flags = _reference_batch(
            grid_ref, ws_ref, pairs, window=window, allow_overflow=True
        )
        with interpreted_kernel():
            ker_paths, statuses = route_wires_kernel(
                grid_ker, ws_ker, pairs,
                window_margin=window, congestion_weight=2.0,
                allow_overflow=True, flag_overflow=True,
            )
        assert ref_paths == ker_paths
        assert np.array_equal(grid_ref.horizontal_usage, grid_ker.horizontal_usage)
        assert np.array_equal(grid_ref.vertical_usage, grid_ker.vertical_usage)
        # Overflow flags match the reference's after-commit check.
        for path, status, flag in zip(ker_paths, statuses, ref_flags):
            if path is None:
                assert status == 0
            else:
                assert (status == 2) == flag

    @pytest.mark.skipif(not NUMBA_AVAILABLE, reason="numba not installed")
    @settings(max_examples=25, deadline=None)
    @given(case=routing_scenarios())
    def test_compiled_batch_parity(self, case):
        grid_ref, pairs, window = case
        grid_ker = _clone(grid_ref)
        ws_ref = MazeWorkspace(grid_ref)
        ws_ker = MazeWorkspace(grid_ker)
        ref_paths, _ = _reference_batch(grid_ref, ws_ref, pairs, window=window)
        ker_paths, _ = route_wires_kernel(
            grid_ker, ws_ker, pairs,
            window_margin=window, congestion_weight=2.0,
        )
        assert ref_paths == ker_paths
        assert np.array_equal(grid_ref.horizontal_usage, grid_ker.horizontal_usage)
        assert np.array_equal(grid_ref.vertical_usage, grid_ker.vertical_usage)
        for field in COUNTER_FIELDS:
            assert getattr(ws_ref, field) == getattr(ws_ker, field), field


class TestDispatch:
    """kernel selection / fallback semantics."""

    def test_resolve_auto_prefers_kernel_when_available(self):
        with interpreted_kernel():
            assert resolve_kernel("auto") == "numba"

    def test_resolve_auto_falls_back_without_numba(self):
        if NUMBA_AVAILABLE:
            pytest.skip("fallback path requires numba to be absent")
        assert resolve_kernel("auto") == "python"

    def test_explicit_numba_without_numba_raises(self):
        if kernel_available():
            pytest.skip("requires numba to be absent")
        with pytest.raises(KernelUnavailableError):
            resolve_kernel("numba")

    def test_invalid_choice_rejected(self):
        with pytest.raises(ValueError, match="kernel"):
            resolve_kernel("fortran")
        with pytest.raises(ValueError, match="kernel"):
            RoutingConfig(kernel="fortran")

    def test_env_var_sets_the_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_ROUTING_KERNEL", "python")
        assert RoutingConfig().kernel == "python"
        monkeypatch.delenv("REPRO_ROUTING_KERNEL")
        assert RoutingConfig().kernel == "auto"

    def test_maze_route_kernel_leaves_grid_untouched(self):
        # maze_route's contract: the caller commits usage.  The kernel
        # commits internally, so the dispatch must roll it back.
        grid = RoutingGrid(origin=(0.0, 0.0), width=40.0, height=40.0,
                           bin_um=4.0, capacity=2)
        ws = MazeWorkspace(grid)
        with interpreted_kernel():
            path = maze_route(grid, (0, 0), (5, 5), workspace=ws, kernel="numba")
        assert path is not None
        assert grid.horizontal_usage.sum() == 0
        assert grid.vertical_usage.sum() == 0
        reference = maze_route(grid, (0, 0), (5, 5), workspace=ws)
        assert path == reference
