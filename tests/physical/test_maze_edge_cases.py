"""Edge cases the maze suite previously missed, plus the heuristic memo.

Covers (ISSUE 10 satellites): unreachable targets, source == target,
zero-capacity edges, single-row grids, workspace reuse across
consecutive searches (stale visited/history bins), and the per-target
heuristic memoization fix (identical results, fewer recomputations).
Every scenario is asserted on the python reference AND the interpreted
kernel, so the edge behaviour is part of the parity contract too.
"""

import numpy as np
import pytest

from repro.physical.routing.grid import RoutingGrid
from repro.physical.routing.kernel import interpreted_kernel, route_wires_kernel
from repro.physical.routing.maze import (
    _HEURISTIC_CACHE_LIMIT,
    MazeWorkspace,
    maze_route,
)


def make_grid(nx_um=40.0, ny_um=40.0, bin_um=4.0, capacity=2):
    return RoutingGrid(origin=(0.0, 0.0), width=nx_um, height=ny_um,
                       bin_um=bin_um, capacity=capacity)


def kernel_single(grid, ws, start, goal, **kwargs):
    """One wire through the batch kernel, usage rolled back (maze twin)."""
    with interpreted_kernel():
        paths, _ = route_wires_kernel(
            grid, ws, [(start, goal)],
            window_margin=kwargs.pop("window_margin", 8),
            congestion_weight=kwargs.pop("congestion_weight", 2.0),
            **kwargs,
        )
    if paths[0] is not None:
        grid.add_usage(paths[0], amount=-1)
    return paths[0]


class TestUnreachableTarget:
    def test_fully_blocked_grid_returns_none(self):
        grid = make_grid(capacity=1)
        grid.horizontal_usage += grid.horizontal_capacity
        grid.vertical_usage += grid.vertical_capacity
        ws = MazeWorkspace(grid)
        assert maze_route(grid, (0, 0), (5, 5), workspace=ws) is None
        assert kernel_single(grid, ws, (0, 0), (5, 5)) is None

    def test_walled_off_target(self):
        # Saturate only the edges adjacent to the goal bin's column.
        grid = make_grid(capacity=1)
        goal = (9, 9)
        grid.horizontal_usage[8, :] = grid.horizontal_capacity[8, :]
        grid.vertical_usage[9, :] = grid.vertical_capacity[9, :]
        ws = MazeWorkspace(grid)
        assert maze_route(grid, (0, 0), goal, workspace=ws) is None
        assert kernel_single(grid, ws, (0, 0), goal) is None
        # allow_overflow turns the wall back into a (priced) corridor.
        assert maze_route(
            grid, (0, 0), goal, allow_overflow=True, workspace=ws
        ) is not None

    def test_failed_search_leaves_usage_untouched(self):
        grid = make_grid(capacity=1)
        grid.horizontal_usage += grid.horizontal_capacity
        grid.vertical_usage += grid.vertical_capacity
        before_h = grid.horizontal_usage.copy()
        ws = MazeWorkspace(grid)
        kernel_single(grid, ws, (0, 0), (5, 5))
        assert np.array_equal(grid.horizontal_usage, before_h)


class TestSourceEqualsTarget:
    def test_trivial_path(self):
        grid = make_grid()
        ws = MazeWorkspace(grid)
        assert maze_route(grid, (3, 3), (3, 3), workspace=ws) == [(3, 3)]
        assert kernel_single(grid, ws, (3, 3), (3, 3)) == [(3, 3)]

    def test_trivial_path_commits_nothing(self):
        grid = make_grid()
        ws = MazeWorkspace(grid)
        with interpreted_kernel():
            paths, statuses = route_wires_kernel(
                grid, ws, [((3, 3), (3, 3))],
                window_margin=8, congestion_weight=2.0,
            )
        assert paths == [[(3, 3)]] and statuses == [1]
        assert grid.horizontal_usage.sum() == 0
        assert grid.vertical_usage.sum() == 0


class TestZeroCapacityEdge:
    def test_blocked_edge_is_routed_around(self):
        # RoutingGrid enforces capacity >= 1 at construction; a
        # zero-capacity edge models a routing blockage and can only be
        # produced by mutating the capacity array directly.
        grid = make_grid(capacity=2)
        grid.horizontal_capacity[4, 5] = 0
        ws = MazeWorkspace(grid)
        path = maze_route(grid, (4, 5), (5, 5), workspace=ws)
        assert path is not None
        assert ((4, 5), (5, 5)) not in set(zip(path, path[1:]))
        assert kernel_single(grid, ws, (4, 5), (5, 5)) == path

    def test_zero_capacity_row_blocks_crossing(self):
        grid = make_grid(capacity=1)
        grid.vertical_capacity[:, 4] = 0  # no edge crosses y=4 -> y=5
        ws = MazeWorkspace(grid)
        assert maze_route(grid, (0, 0), (0, 9), workspace=ws) is None
        assert kernel_single(grid, ws, (0, 0), (0, 9)) is None


class TestSingleRowGrid:
    def test_route_along_one_row(self):
        grid = make_grid(ny_um=4.0)  # ny == 1: no vertical edges at all
        assert grid.ny == 1
        assert grid.vertical_usage.shape[1] == 0
        ws = MazeWorkspace(grid)
        path = maze_route(grid, (0, 0), (9, 0), workspace=ws)
        assert path == [(x, 0) for x in range(10)]
        assert kernel_single(grid, ws, (0, 0), (9, 0)) == path

    def test_single_row_blockage_is_fatal(self):
        grid = make_grid(ny_um=4.0, capacity=1)
        grid.horizontal_usage[4, 0] = 1
        ws = MazeWorkspace(grid)
        assert maze_route(grid, (0, 0), (9, 0), workspace=ws) is None
        assert kernel_single(grid, ws, (0, 0), (9, 0)) is None

    def test_single_column_grid(self):
        grid = make_grid(nx_um=4.0)
        assert grid.nx == 1
        ws = MazeWorkspace(grid)
        path = maze_route(grid, (0, 0), (0, 9), workspace=ws)
        assert path == [(0, y) for y in range(10)]
        assert kernel_single(grid, ws, (0, 0), (0, 9)) == path


class TestWorkspaceReuse:
    def test_consecutive_searches_do_not_leak_state(self):
        # Stale visited/g-score/parent bins from search N must be
        # invisible to search N+1 (epoch stamping) — compare against a
        # fresh workspace per search.
        grid = make_grid()
        shared = MazeWorkspace(grid)
        cases = [((0, 0), (9, 9)), ((9, 0), (0, 9)), ((5, 5), (0, 0)),
                 ((0, 9), (9, 9)), ((3, 7), (7, 3))]
        for start, goal in cases:
            expected = maze_route(grid, start, goal,
                                  workspace=MazeWorkspace(grid))
            assert maze_route(grid, start, goal, workspace=shared) == expected

    def test_kernel_batches_reuse_the_same_workspace(self):
        grid = make_grid()
        shared = MazeWorkspace(grid)
        cases = [((0, 0), (9, 9)), ((9, 0), (0, 9)), ((5, 5), (0, 0))]
        for start, goal in cases:
            expected = maze_route(grid, start, goal,
                                  workspace=MazeWorkspace(grid))
            assert kernel_single(grid, shared, start, goal) == expected
        assert shared.kernel_batches == len(cases)
        assert shared.kernel_wires == len(cases)

    def test_usage_change_between_searches_is_seen(self):
        # The second search must observe usage committed after the
        # first — stale cached costs would reuse the old corridor.
        grid = make_grid(capacity=1)
        ws = MazeWorkspace(grid)
        first = maze_route(grid, (0, 5), (9, 5), workspace=ws)
        grid.add_usage(first)
        second = maze_route(grid, (0, 5), (9, 5), workspace=ws)
        assert second is not None
        assert second != first  # the straight corridor is now full


class TestHeuristicMemo:
    def test_repeat_goal_builds_once(self):
        grid = make_grid()
        ws = MazeWorkspace(grid)
        first = maze_route(grid, (0, 0), (9, 9), workspace=ws)
        assert ws.heuristic_builds == 1
        second = maze_route(grid, (2, 2), (9, 9), workspace=ws)
        # Same goal bin: the heuristic table is reused, not rebuilt.
        assert ws.heuristic_builds == 1
        assert ws.heuristic_hits >= 1
        assert first is not None and second is not None

    def test_memoized_results_identical_to_fresh(self):
        grid = make_grid()
        shared = MazeWorkspace(grid)
        for start in ((0, 0), (1, 5), (8, 2)):
            expected = maze_route(grid, start, (9, 9),
                                  workspace=MazeWorkspace(grid))
            assert maze_route(grid, start, (9, 9), workspace=shared) == expected

    def test_distinct_goals_build_distinct_tables(self):
        grid = make_grid()
        ws = MazeWorkspace(grid)
        maze_route(grid, (0, 0), (9, 9), workspace=ws)
        maze_route(grid, (0, 0), (5, 5), workspace=ws)
        assert ws.heuristic_builds == 2

    def test_cache_eviction_bounds_memory(self):
        grid = make_grid()
        ws = MazeWorkspace(grid)
        goals = [(x, y) for x in range(10) for y in range(10)]
        for goal in goals:
            ws.heuristic(goal[0] * grid.ny + goal[1])
        assert len(ws._heuristic_cache) <= _HEURISTIC_CACHE_LIMIT

    def test_table_values_match_inline_expression(self):
        grid = make_grid()
        ws = MazeWorkspace(grid)
        goal = (7, 3)
        table = ws.heuristic(goal[0] * grid.ny + goal[1])
        for bx in range(grid.nx):
            for by in range(grid.ny):
                inline = (abs(bx - goal[0]) + abs(by - goal[1])) * grid.bin_um
                assert table[bx * grid.ny + by] == inline  # bitwise


class TestWindowFallback:
    def test_zero_margin_falls_back_to_full_grid(self):
        # A congestion detour outside a zero-margin window forces the
        # full-grid retry; both engines must count two searches.
        grid = make_grid(capacity=1)
        grid.horizontal_usage[4, 5] = 1  # block the straight corridor
        ws = MazeWorkspace(grid)
        path = maze_route(grid, (0, 5), (9, 5), window_margin=0, workspace=ws)
        assert path is not None
        assert ws.searches == 2
        ws2 = MazeWorkspace(grid)
        with pytest.raises(ValueError, match="window_margin"):
            maze_route(grid, (0, 5), (9, 5), window_margin=-1, workspace=ws2)
        assert kernel_single(
            grid, ws2, (0, 5), (9, 5), window_margin=0
        ) == path
        assert ws2.searches == 2
