"""Tests for the sigmoid density model and spatial pruning."""

import numpy as np
import pytest

import repro.physical.placement.density as density_module
from repro.physical.placement.density import (
    density_value_and_grad,
    sigmoid_overlap,
    true_overlap,
)
from repro.physical.placement.spatial import candidate_pairs


class TestSigmoidOverlap:
    def test_overlapping_near_one(self):
        value = sigmoid_overlap(np.array([0.0]), np.array([10.0]), tau=0.5)
        assert value[0] > 0.99

    def test_separated_near_zero(self):
        value = sigmoid_overlap(np.array([100.0]), np.array([10.0]), tau=0.5)
        assert value[0] < 0.01

    def test_half_at_boundary(self):
        value = sigmoid_overlap(np.array([10.0]), np.array([10.0]), tau=1.0)
        assert value[0] == pytest.approx(0.5, abs=0.01)

    def test_rejects_bad_tau(self):
        with pytest.raises(ValueError):
            sigmoid_overlap(np.array([0.0]), np.array([1.0]), tau=0.0)


class TestDensityValue:
    def test_separated_cells_zero(self):
        x = np.array([0.0, 100.0])
        y = np.array([0.0, 100.0])
        dims = np.array([2.0, 2.0])
        value, gx, gy = density_value_and_grad(x, y, dims, dims, tau=0.5)
        assert value < 1e-6

    def test_stacked_cells_high(self):
        x = np.array([0.0, 0.5])
        y = np.array([0.0, 0.5])
        dims = np.array([4.0, 4.0])
        value, _, _ = density_value_and_grad(x, y, dims, dims, tau=0.5)
        assert value > 0.9

    def test_single_cell_zero(self):
        value, _, _ = density_value_and_grad(
            np.array([0.0]), np.array([0.0]), np.array([1.0]), np.array([1.0]), 1.0
        )
        assert value == 0.0

    def test_gradient_pushes_apart(self):
        x = np.array([0.0, 1.0])
        y = np.array([0.0, 0.0])
        dims = np.array([4.0, 4.0])
        _, gx, _ = density_value_and_grad(x, y, dims, dims, tau=0.5)
        # descending -grad must separate: cell 0 pushed left, cell 1 right
        assert gx[0] > 0
        assert gx[1] < 0

    def test_gradient_matches_finite_difference(self):
        rng = np.random.default_rng(0)
        x = rng.random(6) * 10
        y = rng.random(6) * 10
        w = rng.uniform(2, 5, 6)
        h = rng.uniform(2, 5, 6)
        _, gx, _ = density_value_and_grad(x, y, w, h, tau=1.0)
        eps = 1e-6
        for i in range(6):
            plus = x.copy(); plus[i] += eps
            minus = x.copy(); minus[i] -= eps
            vp, _, _ = density_value_and_grad(plus, y, w, h, tau=1.0)
            vm, _, _ = density_value_and_grad(minus, y, w, h, tau=1.0)
            assert gx[i] == pytest.approx((vp - vm) / (2 * eps), abs=1e-4)


class TestTrueOverlap:
    def test_known_overlap(self):
        # two 4x4 cells offset by 2 in x: overlap = 2*4 = 8
        x = np.array([0.0, 2.0])
        y = np.array([0.0, 0.0])
        dims = np.array([4.0, 4.0])
        assert true_overlap(x, y, dims, dims) == pytest.approx(8.0)

    def test_disjoint_zero(self):
        x = np.array([0.0, 10.0])
        y = np.array([0.0, 0.0])
        dims = np.array([4.0, 4.0])
        assert true_overlap(x, y, dims, dims) == 0.0

    def test_identical_cells(self):
        x = np.zeros(2)
        y = np.zeros(2)
        dims = np.array([3.0, 3.0])
        assert true_overlap(x, y, dims, dims) == pytest.approx(9.0)


class TestSpatialPruning:
    def test_candidate_pairs_superset_of_overlaps(self):
        rng = np.random.default_rng(3)
        n = 100
        x = rng.random(n) * 50
        y = rng.random(n) * 50
        half = rng.uniform(0.5, 3.0, n)
        ii, jj = candidate_pairs(x, y, half)
        found = set(zip(ii.tolist(), jj.tolist()))
        for i in range(n):
            for j in range(i + 1, n):
                interacting = (
                    abs(x[i] - x[j]) <= half[i] + half[j]
                    and abs(y[i] - y[j]) <= half[i] + half[j]
                )
                if interacting:
                    assert (i, j) in found

    def test_binned_matches_full_density(self):
        rng = np.random.default_rng(4)
        n = 150
        x = rng.random(n) * 80
        y = rng.random(n) * 80
        w = rng.uniform(1, 6, n)
        h = rng.uniform(1, 6, n)
        original = density_module.PAIRWISE_LIMIT
        try:
            density_module.PAIRWISE_LIMIT = 10**9
            v_full, gx_full, _ = density_value_and_grad(x, y, w, h, tau=0.8)
            density_module.PAIRWISE_LIMIT = 1
            v_bin, gx_bin, _ = density_value_and_grad(x, y, w, h, tau=0.8)
        finally:
            density_module.PAIRWISE_LIMIT = original
        assert v_bin == pytest.approx(v_full, rel=1e-3, abs=1e-6)
        np.testing.assert_allclose(gx_bin, gx_full, atol=1e-3)

    def test_binned_overlap_exact(self):
        rng = np.random.default_rng(5)
        n = 120
        x = rng.random(n) * 60
        y = rng.random(n) * 60
        w = rng.uniform(1, 8, n)
        h = rng.uniform(1, 8, n)
        original = density_module.PAIRWISE_LIMIT
        try:
            density_module.PAIRWISE_LIMIT = 10**9
            full = true_overlap(x, y, w, h)
            density_module.PAIRWISE_LIMIT = 1
            binned = true_overlap(x, y, w, h)
        finally:
            density_module.PAIRWISE_LIMIT = original
        assert binned == pytest.approx(full)

    def test_empty_input(self):
        ii, jj = candidate_pairs(np.zeros(0), np.zeros(0), np.zeros(0))
        assert ii.size == 0 and jj.size == 0

    def test_single_cell(self):
        ii, jj = candidate_pairs(np.zeros(1), np.zeros(1), np.ones(1))
        assert ii.size == 0
