"""Tests for the WA wirelength model (eq. 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.physical.placement.wirelength import hpwl, wa_wirelength, wa_wirelength_and_grad


def _finite_difference(x, y, s, t, w, gamma, h=1e-6):
    grad_x = np.zeros_like(x)
    for i in range(x.shape[0]):
        plus = x.copy(); plus[i] += h
        minus = x.copy(); minus[i] -= h
        vp = wa_wirelength(plus, y, s, t, w, gamma)
        vm = wa_wirelength(minus, y, s, t, w, gamma)
        grad_x[i] = (vp - vm) / (2 * h)
    return grad_x


class TestHpwl:
    def test_two_pin(self):
        x = np.array([0.0, 3.0])
        y = np.array([0.0, 4.0])
        assert hpwl(x, y, np.array([0]), np.array([1])) == pytest.approx(7.0)

    def test_weighted(self):
        x = np.array([0.0, 1.0])
        y = np.array([0.0, 0.0])
        value = hpwl(x, y, np.array([0]), np.array([1]), weights=np.array([2.5]))
        assert value == pytest.approx(2.5)


class TestWaModel:
    def test_approximates_hpwl(self):
        rng = np.random.default_rng(0)
        x = rng.random(10) * 100
        y = rng.random(10) * 100
        s = np.array([0, 2, 4, 6, 8])
        t = np.array([1, 3, 5, 7, 9])
        w = np.ones(5)
        exact = hpwl(x, y, s, t)
        smooth = wa_wirelength(x, y, s, t, w, gamma=0.5)
        assert smooth == pytest.approx(exact, rel=0.05)

    def test_converges_to_hpwl_as_gamma_shrinks(self):
        x = np.array([0.0, 10.0])
        y = np.array([0.0, 0.0])
        s, t, w = np.array([0]), np.array([1]), np.ones(1)
        errors = [
            abs(wa_wirelength(x, y, s, t, w, gamma) - 10.0)
            for gamma in (4.0, 2.0, 1.0, 0.5)
        ]
        assert all(b <= a + 1e-12 for a, b in zip(errors, errors[1:]))

    def test_underestimates_hpwl(self):
        # WA is a lower bound on the true span for 2-pin wires.
        x = np.array([0.0, 7.0])
        y = np.array([2.0, 9.0])
        s, t, w = np.array([0]), np.array([1]), np.ones(1)
        assert wa_wirelength(x, y, s, t, w, 1.0) <= 7.0 + 7.0

    def test_weights_scale_linearly(self):
        x = np.array([0.0, 5.0])
        y = np.array([0.0, 0.0])
        s, t = np.array([0]), np.array([1])
        v1 = wa_wirelength(x, y, s, t, np.array([1.0]), 1.0)
        v3 = wa_wirelength(x, y, s, t, np.array([3.0]), 1.0)
        assert v3 == pytest.approx(3 * v1)

    def test_empty_netlist(self):
        value, gx, gy = wa_wirelength_and_grad(
            np.zeros(3), np.zeros(3), np.array([], dtype=int),
            np.array([], dtype=int), np.array([]), 1.0
        )
        assert value == 0.0
        assert np.all(gx == 0) and np.all(gy == 0)

    def test_rejects_bad_gamma(self):
        with pytest.raises(ValueError):
            wa_wirelength(np.zeros(2), np.zeros(2), np.array([0]),
                          np.array([1]), np.ones(1), 0.0)

    def test_stable_for_large_coordinates(self):
        x = np.array([0.0, 1e6])
        y = np.array([0.0, 0.0])
        value = wa_wirelength(x, y, np.array([0]), np.array([1]), np.ones(1), 0.01)
        assert np.isfinite(value)
        assert value == pytest.approx(1e6, rel=1e-3)


class TestGradient:
    def test_matches_finite_difference(self):
        rng = np.random.default_rng(1)
        x = rng.random(8) * 50
        y = rng.random(8) * 50
        s = np.array([0, 1, 2, 3])
        t = np.array([4, 5, 6, 7])
        w = rng.random(4) + 0.5
        _, grad_x, _ = wa_wirelength_and_grad(x, y, s, t, w, gamma=2.0)
        numeric = _finite_difference(x, y, s, t, w, gamma=2.0)
        np.testing.assert_allclose(grad_x, numeric, atol=1e-4)

    def test_gradient_signs(self):
        # Pulling the right pin further right must increase wirelength.
        x = np.array([0.0, 5.0])
        y = np.zeros(2)
        _, gx, _ = wa_wirelength_and_grad(
            x, y, np.array([0]), np.array([1]), np.ones(1), 1.0
        )
        assert gx[1] > 0
        assert gx[0] < 0

    def test_shared_pin_accumulates(self):
        # star: cell 0 wired to cells 1 and 2
        x = np.array([0.0, 10.0, -10.0])
        y = np.zeros(3)
        _, gx, _ = wa_wirelength_and_grad(
            x, y, np.array([0, 0]), np.array([1, 2]), np.ones(2), 1.0
        )
        assert gx[0] == pytest.approx(0.0, abs=1e-6)  # symmetric pulls cancel


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10**6), gamma=st.floats(0.1, 5.0))
def test_property_wa_close_to_hpwl(seed, gamma):
    rng = np.random.default_rng(seed)
    n = 12
    x = rng.random(n) * 200
    y = rng.random(n) * 200
    s = rng.integers(0, n, 8)
    t = (s + 1 + rng.integers(0, n - 1, 8)) % n
    w = np.ones(8)
    exact = hpwl(x, y, s, t)
    smooth = wa_wirelength(x, y, s, t, w, gamma)
    # WA underestimates by at most ~2·gamma per wire per axis
    assert smooth <= exact + 1e-9
    assert smooth >= exact - 8 * 2 * 2 * gamma - 1e-9
