"""Tests for the end-to-end placer (Algorithm 4) and cost evaluation."""

import numpy as np
import pytest

from repro.hardware.library import CrossbarLibrary
from repro.mapping.netlist import CrossbarInstance, build_netlist
from repro.physical.cost import CostWeights, PhysicalCost, evaluate_cost, wire_delays_ns
from repro.physical.layout import Placement
from repro.physical.placement.initial import initial_placement
from repro.physical.placement.placer import PlacementConfig, place
from repro.physical.routing.router import route


@pytest.fixture(scope="module")
def small_netlist():
    library = CrossbarLibrary()
    instances = [
        CrossbarInstance(rows=(0, 1, 2), cols=(0, 1, 2), size=16,
                         connections=((0, 1), (1, 2))),
        CrossbarInstance(rows=(3, 4), cols=(3, 4), size=16,
                         connections=((3, 4),)),
    ]
    return build_netlist(6, instances, [(2, 3), (5, 0)], library)


@pytest.fixture(scope="module")
def placed(small_netlist):
    config = PlacementConfig(max_lambda_stages=5, cg_iterations_per_stage=20)
    return place(small_netlist, config=config, rng=0)


class TestInitialPlacement:
    def test_shapes(self, rng):
        x, y = initial_placement(np.ones(10), np.ones(10), rng=rng)
        assert x.shape == y.shape == (10,)

    def test_empty(self):
        x, y = initial_placement(np.zeros(0), np.zeros(0))
        assert x.size == 0

    def test_moderate_overlap(self, rng):
        from repro.physical.placement.density import true_overlap

        widths = rng.uniform(1, 10, 50)
        heights = rng.uniform(1, 10, 50)
        x, y = initial_placement(widths, heights, rng=0)
        total = float(np.sum(widths * heights))
        assert true_overlap(x, y, widths, heights) / total < 1.0

    def test_rejects_bad_whitespace(self):
        with pytest.raises(ValueError):
            initial_placement(np.ones(3), np.ones(3), whitespace_factor=0.5)

    def test_rejects_bad_compression(self):
        with pytest.raises(ValueError):
            initial_placement(np.ones(3), np.ones(3), compression=0.0)


class TestPlace:
    def test_output_shape(self, placed, small_netlist):
        assert placed.num_cells == small_netlist.num_cells
        assert np.all(placed.widths == small_netlist.widths())

    def test_low_final_overlap(self, placed):
        # legalization runs on virtual (inflated) dims; physical overlap
        # must be near zero.
        assert placed.overlap_ratio() < 0.02

    def test_positive_area(self, placed):
        assert placed.area > 0

    def test_origin_normalized(self, placed):
        xmin, ymin, _, _ = placed.bounding_box()
        assert xmin == pytest.approx(0.0, abs=1e-6)
        assert ymin == pytest.approx(0.0, abs=1e-6)

    def test_metadata_stages(self, placed):
        assert len(placed.metadata["stages"]) >= 1
        assert placed.metadata["legalization"]["method"] == "grid_snap+compact"
        assert placed.metadata["chosen_snapshot"] in ("seed", "refined")
        assert placed.metadata["seed"] in ("connectivity", "area_grid")

    def test_connected_cells_near_each_other(self, small_netlist):
        config = PlacementConfig(max_lambda_stages=6, cg_iterations_per_stage=30)
        placement = place(small_netlist, config=config, rng=1)
        # wirelength after placement beats a random shuffle of the same sites
        sources, targets, _ = small_netlist.wire_endpoints()
        optimized = placement.hpwl(sources, targets)
        rng = np.random.default_rng(5)
        perm = rng.permutation(placement.num_cells)
        shuffled = Placement(
            x=placement.x[perm], y=placement.y[perm],
            widths=placement.widths, heights=placement.heights,
        )
        assert optimized < shuffled.hpwl(sources, targets)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PlacementConfig(overlap_threshold=0.0)
        with pytest.raises(ValueError):
            PlacementConfig(whitespace_factor=0.9)
        with pytest.raises(ValueError):
            PlacementConfig(max_lambda_stages=0)

    def test_deterministic_given_seed(self, small_netlist):
        config = PlacementConfig(max_lambda_stages=3, cg_iterations_per_stage=10)
        a = place(small_netlist, config=config, rng=7)
        b = place(small_netlist, config=config, rng=7)
        np.testing.assert_allclose(a.x, b.x)
        np.testing.assert_allclose(a.y, b.y)


class TestCostEvaluation:
    def test_cost_fields(self, placed, small_netlist):
        routing = route(small_netlist, placed)
        cost = evaluate_cost(small_netlist, placed, routing)
        assert cost.wirelength_um == pytest.approx(routing.total_wirelength_um)
        assert cost.area_um2 == pytest.approx(placed.area)
        assert cost.average_delay_ns > 0
        assert cost.total == pytest.approx(
            cost.wirelength_um + cost.area_um2 + cost.average_delay_ns
        )

    def test_weights_applied(self, placed, small_netlist):
        routing = route(small_netlist, placed)
        cost = evaluate_cost(
            small_netlist, placed, routing, weights=CostWeights(alpha=0, beta=0, delta=2)
        )
        assert cost.total == pytest.approx(2 * cost.average_delay_ns)

    def test_wire_delays_include_intrinsic(self, placed, small_netlist):
        routing = route(small_netlist, placed)
        delays = wire_delays_ns(small_netlist, routing)
        assert delays.shape == (small_netlist.num_wires,)
        # crossbar wires carry at least the 16x16 crossbar delay
        library = CrossbarLibrary()
        assert delays.max() >= library.spec(16).delay_ns

    def test_cost_weights_validation(self):
        with pytest.raises(ValueError):
            CostWeights(alpha=-1)

    def test_physical_cost_immutable(self):
        cost = PhysicalCost(wirelength_um=1.0, area_um2=2.0, average_delay_ns=3.0)
        with pytest.raises(AttributeError):
            cost.wirelength_um = 5.0


class TestPlacementContainer:
    def test_bounding_box_empty(self):
        placement = Placement(x=np.zeros(0), y=np.zeros(0),
                              widths=np.zeros(0), heights=np.zeros(0))
        assert placement.area == 0.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            Placement(x=np.zeros(3), y=np.zeros(2), widths=np.ones(3), heights=np.ones(3))

    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ValueError):
            Placement(x=np.zeros(2), y=np.zeros(2), widths=np.zeros(2), heights=np.ones(2))

    def test_copy_independent(self):
        placement = Placement(x=np.zeros(2), y=np.zeros(2),
                              widths=np.ones(2), heights=np.ones(2))
        clone = placement.copy()
        clone.x[0] = 99.0
        assert placement.x[0] == 0.0
