"""Tests for the connectivity seed, grid-snap legalizer and compaction."""

import numpy as np
import pytest

from repro.physical.placement.density import true_overlap
from repro.physical.placement.legalize import compact, grid_snap
from repro.physical.placement.seed import connectivity_seed
from repro.physical.placement.wirelength import hpwl


class TestConnectivitySeed:
    def test_neurons_near_their_crossbar(self, small_mapping):
        netlist = small_mapping.netlist
        tech_omega = 1.25
        x, y = connectivity_seed(
            netlist, netlist.widths() * tech_omega, netlist.heights() * tech_omega, rng=0
        )
        assert x.shape == (netlist.num_cells,)
        # seed wirelength must beat a random placement of the same extent
        sources, targets, _ = netlist.wire_endpoints()
        seed_wl = hpwl(x, y, sources, targets)
        rng = np.random.default_rng(0)
        rand_wl = hpwl(
            rng.permutation(x), rng.permutation(y), sources, targets
        )
        assert seed_wl < rand_wl

    def test_empty_netlist(self):
        from repro.mapping.netlist import Netlist

        netlist = Netlist(cells=[], wires=[])
        x, y = connectivity_seed(netlist, np.zeros(0), np.zeros(0), rng=0)
        assert x.size == 0


class TestGridSnap:
    def test_removes_all_overlap(self, rng):
        n = 80
        x = rng.random(n) * 10  # heavily clumped
        y = rng.random(n) * 10
        w = rng.uniform(1, 6, n)
        h = rng.uniform(1, 6, n)
        nx, ny = grid_snap(x, y, w, h)
        assert true_overlap(nx, ny, w, h) < 1e-9

    def test_preserves_relative_structure(self, rng):
        # two groups far apart must stay apart after snapping
        n = 40
        x = np.concatenate([rng.random(20) * 5, 100 + rng.random(20) * 5])
        y = rng.random(n) * 5
        dims = np.full(n, 2.0)
        nx, ny = grid_snap(x, y, dims, dims)
        left = nx[:20].mean()
        right = nx[20:].mean()
        assert right > left

    def test_single_cell(self):
        nx, ny = grid_snap(np.zeros(1), np.zeros(1), np.ones(1), np.ones(1))
        assert nx.shape == (1,)

    def test_grows_map_when_needed(self, rng):
        # tight fill forces at least one growth iteration but must succeed
        n = 30
        x = np.zeros(n)
        y = np.zeros(n)
        dims = rng.uniform(3, 9, n)
        nx, ny = grid_snap(x, y, dims, dims, fill=0.9)
        assert true_overlap(nx, ny, dims, dims) < 1e-9

    def test_rejects_bad_fill(self):
        with pytest.raises(ValueError):
            grid_snap(np.zeros(2), np.zeros(2), np.ones(2), np.ones(2), fill=1.5)


class TestCompact:
    def test_preserves_legality(self, rng):
        n = 50
        x = rng.random(n) * 100
        y = rng.random(n) * 100
        dims = rng.uniform(1, 4, n)
        lx, ly = grid_snap(x, y, dims, dims)
        cx, cy = compact(lx, ly, dims, dims)
        assert true_overlap(cx, cy, dims, dims) < 1e-6

    def test_shrinks_bounding_box(self, rng):
        n = 40
        x = rng.random(n) * 300  # very spread
        y = rng.random(n) * 300
        dims = np.full(n, 3.0)
        cx, cy = compact(x, y, dims, dims)
        before = (x.max() - x.min()) * (y.max() - y.min())
        after = (cx.max() - cx.min()) * (cy.max() - cy.min())
        assert after <= before

    def test_empty(self):
        cx, cy = compact(np.zeros(0), np.zeros(0), np.zeros(0), np.zeros(0))
        assert cx.size == 0

    def test_rejects_bad_passes(self):
        with pytest.raises(ValueError):
            compact(np.zeros(2), np.zeros(2), np.ones(2), np.ones(2), passes=0)

    def test_preserves_order(self):
        x = np.array([0.0, 50.0, 100.0])
        y = np.zeros(3)
        dims = np.full(3, 4.0)
        cx, _ = compact(x, y, dims, dims)
        assert cx[0] < cx[1] < cx[2]


class TestAnnealingBaseline:
    def test_produces_legal_placement(self, small_mapping):
        from repro.physical.placement.annealing import AnnealingConfig, anneal_place

        config = AnnealingConfig(moves_per_temperature=60, temperatures=8)
        placement = anneal_place(small_mapping.netlist, config=config, rng=0)
        assert placement.num_cells == small_mapping.netlist.num_cells
        assert placement.overlap_ratio() < 0.05
        assert placement.metadata["method"] == "annealing"

    def test_config_validation(self):
        from repro.physical.placement.annealing import AnnealingConfig

        with pytest.raises(ValueError):
            AnnealingConfig(cooling=1.0)
        with pytest.raises(ValueError):
            AnnealingConfig(temperatures=0)
