"""Tests for the combined placement objective (WL + λ·D)."""

import numpy as np
import pytest

from repro.physical.placement.objective import PlacementObjective


@pytest.fixture()
def objective():
    return PlacementObjective(
        sources=np.array([0, 1]),
        targets=np.array([1, 2]),
        weights=np.array([1.0, 2.0]),
        virtual_widths=np.array([2.0, 2.0, 2.0]),
        virtual_heights=np.array([2.0, 2.0, 2.0]),
        gamma=1.0,
        tau=0.5,
    )


class TestPackUnpack:
    def test_roundtrip(self, objective):
        x = np.array([0.0, 1.0, 2.0])
        y = np.array([3.0, 4.0, 5.0])
        z = objective.pack(x, y)
        rx, ry = objective.unpack(z)
        np.testing.assert_array_equal(rx, x)
        np.testing.assert_array_equal(ry, y)

    def test_unpack_validates_shape(self, objective):
        with pytest.raises(ValueError):
            objective.unpack(np.zeros(5))


class TestValueAndGrad:
    def test_lambda_zero_is_pure_wirelength(self, objective):
        z = objective.pack(np.array([0.0, 5.0, 10.0]), np.zeros(3))
        objective.lam = 0.0
        value, _ = objective.value_and_grad(z)
        wl, _ = objective.wirelength_and_grad(z)
        assert value == pytest.approx(wl)

    def test_lambda_adds_density(self, objective):
        z = objective.pack(np.array([0.0, 0.5, 1.0]), np.zeros(3))
        objective.lam = 3.0
        combined, _ = objective.value_and_grad(z)
        wl, _ = objective.wirelength_and_grad(z)
        density, _ = objective.density_and_grad(z)
        assert combined == pytest.approx(wl + 3.0 * density)

    def test_gradient_consistent_with_value(self, objective):
        rng = np.random.default_rng(0)
        z = rng.random(6) * 10
        objective.lam = 2.0
        _, grad = objective.value_and_grad(z)
        eps = 1e-6
        for i in range(6):
            plus = z.copy(); plus[i] += eps
            minus = z.copy(); minus[i] -= eps
            vp, _ = objective.value_and_grad(plus)
            vm, _ = objective.value_and_grad(minus)
            assert grad[i] == pytest.approx((vp - vm) / (2 * eps), abs=1e-3)

    def test_callable_protocol(self, objective):
        z = objective.pack(np.zeros(3), np.zeros(3))
        value, grad = objective(z)
        assert np.isfinite(value)
        assert grad.shape == (6,)


class TestInitialLambda:
    def test_paper_formula(self, objective):
        z = objective.pack(np.array([0.0, 0.5, 1.0]), np.zeros(3))
        _, wl_grad = objective.wirelength_and_grad(z)
        _, d_grad = objective.density_and_grad(z)
        expected = np.sum(np.abs(wl_grad)) / np.sum(np.abs(d_grad))
        assert objective.initial_lambda(z) == pytest.approx(expected)

    def test_fallback_when_no_density_gradient(self, objective):
        # far-separated cells: density gradient ~ 0 -> fallback value 1.0
        z = objective.pack(np.array([0.0, 500.0, 1000.0]), np.zeros(3))
        assert objective.initial_lambda(z) == pytest.approx(1.0)

    def test_rejects_bad_smoothing(self):
        with pytest.raises(ValueError):
            PlacementObjective(
                sources=np.array([0]),
                targets=np.array([1]),
                weights=np.ones(1),
                virtual_widths=np.ones(2),
                virtual_heights=np.ones(2),
                gamma=0.0,
                tau=1.0,
            )
