"""Tests for delay statistics and cost extensions."""

import numpy as np
import pytest

from repro.hardware.library import CrossbarLibrary
from repro.mapping.netlist import CrossbarInstance, build_netlist
from repro.physical.cost import delay_statistics
from repro.physical.layout import Placement
from repro.physical.routing.router import route


@pytest.fixture(scope="module")
def routed_design():
    library = CrossbarLibrary()
    instances = [
        CrossbarInstance(rows=(0, 1), cols=(0, 1), size=16, connections=((0, 1),)),
        CrossbarInstance(rows=(2, 3), cols=(2, 3), size=64, connections=((2, 3),)),
    ]
    netlist = build_netlist(4, instances, [(1, 2)], library)
    rng = np.random.default_rng(0)
    placement = Placement(
        x=rng.random(netlist.num_cells) * 80,
        y=rng.random(netlist.num_cells) * 80,
        widths=netlist.widths(),
        heights=netlist.heights(),
    )
    routing = route(netlist, placement)
    return netlist, routing


class TestDelayStatistics:
    def test_ordering(self, routed_design):
        netlist, routing = routed_design
        stats = delay_statistics(netlist, routing)
        assert stats.mean_ns <= stats.max_ns
        assert stats.median_ns <= stats.p95_ns <= stats.max_ns

    def test_max_dominated_by_biggest_crossbar(self, routed_design):
        netlist, routing = routed_design
        stats = delay_statistics(netlist, routing)
        library = CrossbarLibrary()
        assert stats.max_ns >= library.spec(64).delay_ns

    def test_as_dict(self, routed_design):
        netlist, routing = routed_design
        d = delay_statistics(netlist, routing).as_dict()
        assert set(d) == {"mean_ns", "median_ns", "p95_ns", "max_ns"}

    def test_empty_netlist(self):
        from repro.mapping.netlist import Netlist
        from repro.physical.routing.router import RoutingResult
        from repro.physical.routing.grid import RoutingGrid

        netlist = Netlist(cells=[], wires=[])
        grid = RoutingGrid((0, 0), 10, 10, 2, 4)
        routing = RoutingResult(wires=[], grid=grid, relax_rounds=0, overflow_wires=0)
        stats = delay_statistics(netlist, routing)
        assert stats.max_ns == 0.0


class TestIscClustererPlugin:
    def test_modularity_clusterer_in_isc(self, block_network):
        from repro.clustering import iterative_spectral_clustering
        from repro.clustering.modularity import modularity_clustering

        isc = iterative_spectral_clustering(
            block_network,
            utilization_threshold=0.01,
            clusterer=modularity_clustering,
            max_iterations=5,
            rng=0,
        )
        isc.validate()
        assert isc.iterations >= 1
