"""Cross-cutting hypothesis property tests on system invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering import iterative_spectral_clustering
from repro.mapping import autoncs_mapping, fullcro_mapping
from repro.networks import random_sparse_network
from repro.physical.placement.legalize import compact, grid_snap
from repro.physical.placement.wirelength import hpwl, wa_wirelength
from repro.physical.routing.grid import RoutingGrid


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10**6), density=st.floats(0.03, 0.25))
def test_mapping_conservation_end_to_end(seed, density):
    """Crossbar + synapse connections always equal the network exactly."""
    net = random_sparse_network(45, density, rng=seed)
    isc = iterative_spectral_clustering(net, utilization_threshold=0.02,
                                        max_iterations=6, rng=seed)
    mapping = autoncs_mapping(isc)
    mapping.validate()
    baseline = fullcro_mapping(net)
    baseline.validate()
    ours = sum(i.utilized_connections for i in mapping.instances) + mapping.num_synapses
    theirs = sum(i.utilized_connections for i in baseline.instances)
    assert ours == theirs == net.num_connections


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10**6), n=st.integers(2, 60))
def test_grid_snap_always_legal(seed, n):
    """Grid snap never leaves overlap regardless of the input chaos."""
    from repro.physical.placement.density import true_overlap

    rng = np.random.default_rng(seed)
    x = rng.normal(0, 5, n)
    y = rng.normal(0, 5, n)
    w = rng.uniform(0.5, 6, n)
    h = rng.uniform(0.5, 6, n)
    nx, ny = grid_snap(x, y, w, h)
    assert true_overlap(nx, ny, w, h) < 1e-9


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10**6), n=st.integers(2, 50))
def test_compact_monotone_and_legal(seed, n):
    """Compaction shrinks the bounding box and keeps legality."""
    from repro.physical.placement.density import true_overlap

    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 200, n)
    y = rng.uniform(0, 200, n)
    dims = rng.uniform(1, 5, n)
    lx, ly = grid_snap(x, y, dims, dims)

    def bbox_area(px, py):
        return float(
            ((px + dims / 2).max() - (px - dims / 2).min())
            * ((py + dims / 2).max() - (py - dims / 2).min())
        )

    cx, cy = compact(lx, ly, dims, dims)
    assert true_overlap(cx, cy, dims, dims) < 1e-6
    assert bbox_area(cx, cy) <= bbox_area(lx, ly) + 1e-6


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10**6),
    gamma=st.floats(0.05, 3.0),
    scale=st.floats(1.5, 100.0),
)
def test_wa_scale_equivariance(seed, gamma, scale):
    """Scaling all coordinates and gamma together scales WA linearly."""
    rng = np.random.default_rng(seed)
    n = 10
    x = rng.random(n) * 50
    y = rng.random(n) * 50
    s = rng.integers(0, n, 6)
    t = (s + 1 + rng.integers(0, n - 1, 6)) % n
    w = rng.random(6) + 0.1
    base = wa_wirelength(x, y, s, t, w, gamma)
    scaled = wa_wirelength(x * scale, y * scale, s, t, w, gamma * scale)
    assert scaled == pytest.approx(base * scale, rel=1e-6, abs=1e-6)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_routing_usage_conserved_by_ripup(seed):
    """add_usage followed by negative add_usage restores the grid exactly."""
    rng = np.random.default_rng(seed)
    grid = RoutingGrid((0, 0), 40, 40, 4, capacity=8)
    before_h = grid.horizontal_usage.copy()
    before_v = grid.vertical_usage.copy()
    # random monotone staircase path
    path = [(0, 0)]
    while path[-1] != (9, 9):
        bx, by = path[-1]
        if bx == 9:
            path.append((bx, by + 1))
        elif by == 9 or rng.random() < 0.5:
            path.append((bx + 1, by))
        else:
            path.append((bx, by + 1))
    grid.add_usage(path)
    grid.add_usage(path, amount=-1)
    np.testing.assert_array_equal(grid.horizontal_usage, before_h)
    np.testing.assert_array_equal(grid.vertical_usage, before_v)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_hpwl_lower_bounds_routed_length(seed):
    """Routed wirelength can never beat the HPWL lower bound by much.

    (Bin quantization can make a routed path shorter than the exact
    pin-to-pin HPWL by at most one bin per wire.)
    """
    from repro.mapping.netlist import build_netlist
    from repro.hardware.library import CrossbarLibrary
    from repro.physical.layout import Placement
    from repro.physical.routing.router import route

    rng = np.random.default_rng(seed)
    library = CrossbarLibrary()
    synapses = [(i, i + 1) for i in range(5)]
    netlist = build_netlist(6, [], synapses, library)
    placement = Placement(
        x=rng.random(netlist.num_cells) * 60,
        y=rng.random(netlist.num_cells) * 60,
        widths=netlist.widths(),
        heights=netlist.heights(),
    )
    result = route(netlist, placement)
    sources, targets, _ = netlist.wire_endpoints()
    bound = hpwl(placement.x, placement.y, sources, targets)
    slack = 2 * result.grid.bin_um * netlist.num_wires
    assert result.total_wirelength_um >= bound - slack
