"""Tests for :class:`repro.FlowOptions`, ``repro.load_network`` and the
legacy per-call keyword shims on the facade functions."""

from __future__ import annotations

import warnings

import pytest

import repro
from repro import FlowOptions
from repro.core.config import AutoNcsConfig, fast_config
from repro.networks import random_sparse_network
from repro.networks.io import save_network_edgelist, save_network_npz


@pytest.fixture(scope="module")
def network():
    return random_sparse_network(40, 0.1, rng=7, name="opts-net")


class TestFlowOptions:
    def test_defaults(self):
        options = FlowOptions()
        assert options.config is None
        assert options.seed is None
        assert options.n_jobs == 1
        assert isinstance(options.resolved_config(), AutoNcsConfig)

    def test_rejects_bad_n_jobs(self):
        with pytest.raises(ValueError, match="n_jobs"):
            FlowOptions(n_jobs=0)

    def test_checks_normalized_to_tuple(self):
        options = FlowOptions(checks=["coverage", "hardware"])
        assert options.checks == ("coverage", "hardware")

    def test_cache_key_stable_and_seed_sensitive(self):
        assert FlowOptions(seed=1).cache_key() == FlowOptions(seed=1).cache_key()
        assert FlowOptions(seed=1).cache_key() != FlowOptions(seed=2).cache_key()

    def test_cache_key_covers_result_determining_fields(self):
        base = FlowOptions(seed=1)
        assert FlowOptions(seed=1, verify=True).cache_key() != base.cache_key()
        assert FlowOptions(seed=1, baseline=True).cache_key() != base.cache_key()
        assert (
            FlowOptions(seed=1, checks=("coverage",)).cache_key()
            != base.cache_key()
        )
        assert (
            FlowOptions(seed=1, config=fast_config()).cache_key()
            != base.cache_key()
        )

    def test_cache_key_ignores_execution_strategy(self):
        base = FlowOptions(seed=1)
        assert FlowOptions(seed=1, n_jobs=4).cache_key() == base.cache_key()
        assert FlowOptions(seed=1, label="x").cache_key() == base.cache_key()


class TestOptionsParameter:
    def test_map_network_options_equals_legacy_kwargs(self, network):
        via_options = repro.map_network(
            network, options=FlowOptions(config=fast_config(), seed=3)
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            via_legacy = repro.map_network(network, config=fast_config(), seed=3)
        assert via_options.design.summary() == via_legacy.design.summary()

    def test_legacy_kwargs_warn(self, network):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            repro.map_network(network, config=fast_config(), seed=3)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert deprecations
        assert any("FlowOptions" in str(w.message) for w in deprecations)

    def test_legacy_kwargs_override_options(self, network):
        # Matching pre-1.7 behaviour: an explicit kwarg wins over options.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            report_a = repro.compare(
                network, options=FlowOptions(config=fast_config(), seed=1), seed=9
            )
            report_b = repro.compare(
                network, options=FlowOptions(config=fast_config(), seed=9)
            )
        assert report_a.rows() == report_b.rows()

    def test_unknown_kwarg_rejected(self, network):
        with pytest.raises(TypeError, match="unexpected keyword"):
            repro.map_network(network, nonsense=1)

    def test_verify_options_checks(self, network):
        report = repro.verify(
            network,
            options=FlowOptions(
                config=fast_config(), seed=3, checks=("coverage", "hardware")
            ),
        )
        assert report.passed
        assert {c.name for c in report.checks if c.status != "skip"} <= {
            "coverage",
            "hardware",
        }


class TestLoadNetwork:
    def test_npz_round_trip(self, network, tmp_path):
        path = tmp_path / "net.npz"
        save_network_npz(network, path)
        loaded = repro.load_network(path)
        assert loaded.digest() == network.digest()

    def test_npz_round_trip_sparse_backend(self, tmp_path):
        sparse_net = random_sparse_network(40, 0.1, rng=7).with_backend("sparse")
        path = tmp_path / "sparse.npz"
        save_network_npz(sparse_net, path)
        loaded = repro.load_network(path)
        assert loaded.digest() == sparse_net.digest()

    def test_edgelist_round_trip(self, network, tmp_path):
        path = tmp_path / "net.edges"
        save_network_edgelist(network, path)
        loaded = repro.load_network(path)
        assert loaded.digest() == network.digest()

    def test_name_override(self, network, tmp_path):
        path = tmp_path / "net.npz"
        save_network_npz(network, path)
        assert repro.load_network(path, name="renamed").name == "renamed"
