"""Tests for the technology parameter model."""

import pytest

from repro.hardware.technology import DEFAULT_TECHNOLOGY, Technology


class TestDefaults:
    def test_delay_calibration(self):
        # FullCro's constant delay in Table 1: delay(64) ~ 1.95 ns.
        assert DEFAULT_TECHNOLOGY.crossbar_delay_ns(64) == pytest.approx(1.95, abs=0.01)

    def test_delay_monotone_in_size(self):
        tech = DEFAULT_TECHNOLOGY
        delays = [tech.crossbar_delay_ns(s) for s in range(16, 65, 4)]
        assert all(b > a for a, b in zip(delays, delays[1:]))

    def test_area_monotone_in_size(self):
        tech = DEFAULT_TECHNOLOGY
        areas = [tech.crossbar_area_um2(s) for s in (16, 32, 64)]
        assert areas[0] < areas[1] < areas[2]

    def test_side_includes_margin(self):
        tech = DEFAULT_TECHNOLOGY
        assert tech.crossbar_side_um(64) == pytest.approx(
            64 * tech.memristor_pitch_um + 2 * tech.crossbar_margin_um
        )

    def test_wire_delay_quadratic(self):
        tech = DEFAULT_TECHNOLOGY
        assert tech.wire_delay_ns(200.0) == pytest.approx(4 * tech.wire_delay_ns(100.0))

    def test_wire_delay_zero_length(self):
        assert DEFAULT_TECHNOLOGY.wire_delay_ns(0.0) == 0.0

    def test_wire_delay_small_vs_crossbar(self):
        # Wire RC must be a minor term next to crossbar delay (the paper's
        # delay is pinned by the crossbar size distribution).
        tech = DEFAULT_TECHNOLOGY
        assert tech.wire_delay_ns(100.0) < 0.05 * tech.crossbar_delay_ns(64)


class TestValidation:
    def test_rejects_negative_pitch(self):
        with pytest.raises(ValueError):
            Technology(memristor_pitch_um=-1.0)

    def test_rejects_small_routing_factor(self):
        with pytest.raises(ValueError):
            Technology(routing_space_factor=0.5)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            Technology(routing_capacity_per_bin=0)

    def test_delay_rejects_bad_size(self):
        with pytest.raises(ValueError):
            DEFAULT_TECHNOLOGY.crossbar_delay_ns(0)

    def test_wire_delay_rejects_negative(self):
        with pytest.raises(ValueError):
            DEFAULT_TECHNOLOGY.wire_delay_ns(-1.0)


class TestScaling:
    def test_scaled_areas_quadratic(self):
        scaled = DEFAULT_TECHNOLOGY.scaled(22.5)  # half the node
        assert scaled.neuron_area_um2 == pytest.approx(
            DEFAULT_TECHNOLOGY.neuron_area_um2 / 4
        )

    def test_scaled_pitch_linear(self):
        scaled = DEFAULT_TECHNOLOGY.scaled(90.0)
        assert scaled.memristor_pitch_um == pytest.approx(
            DEFAULT_TECHNOLOGY.memristor_pitch_um * 2
        )

    def test_scaled_keeps_delays(self):
        scaled = DEFAULT_TECHNOLOGY.scaled(22.5)
        assert scaled.crossbar_delay_ns(64) == DEFAULT_TECHNOLOGY.crossbar_delay_ns(64)

    def test_identity_scaling(self):
        scaled = DEFAULT_TECHNOLOGY.scaled(45.0)
        assert scaled.memristor_pitch_um == DEFAULT_TECHNOLOGY.memristor_pitch_um
