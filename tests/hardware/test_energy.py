"""Tests for the energy / programming model."""

import pytest

from repro.hardware.energy import (
    DEFAULT_ENERGY,
    EnergyParameters,
    evaluate_energy,
)


class TestParameters:
    def test_defaults_valid(self):
        assert DEFAULT_ENERGY.read_voltage_v < DEFAULT_ENERGY.write_voltage_v

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            EnergyParameters(utilized_on_fraction=0.0)

    def test_rejects_inverted_conductances(self):
        with pytest.raises(ValueError):
            EnergyParameters(on_conductance_s=1e-6, off_conductance_s=1e-3)

    def test_rejects_nonpositive_voltage(self):
        with pytest.raises(ValueError):
            EnergyParameters(read_voltage_v=0.0)


class TestEvaluateEnergy:
    def test_autoncs_beats_fullcro_on_read_energy(self, small_mapping, small_fullcro):
        ours = evaluate_energy(small_mapping)
        baseline = evaluate_energy(small_fullcro)
        # same utilized devices (same network), far fewer idle ones
        assert ours.utilized_devices == baseline.utilized_devices
        assert ours.idle_devices < baseline.idle_devices
        assert ours.read_energy_pj < baseline.read_energy_pj

    def test_programming_energy_positive(self, small_mapping):
        report = evaluate_energy(small_mapping)
        assert report.programming_energy_pj > 0
        assert report.programming_time_us > 0

    def test_wire_energy_scales_with_wirelength(self, small_mapping):
        short = evaluate_energy(small_mapping, routed_wirelength_um=100.0)
        long = evaluate_energy(small_mapping, routed_wirelength_um=1000.0)
        assert long.wire_energy_pj == pytest.approx(10 * short.wire_energy_pj)
        assert long.total_read_energy_pj > short.total_read_energy_pj

    def test_rejects_negative_wirelength(self, small_mapping):
        with pytest.raises(ValueError):
            evaluate_energy(small_mapping, routed_wirelength_um=-1.0)

    def test_device_accounting(self, small_fullcro):
        report = evaluate_energy(small_fullcro)
        provisioned = sum(i.size * i.size for i in small_fullcro.instances)
        assert report.utilized_devices + report.idle_devices == provisioned
