"""Tests for the analog crossbar / hybrid NCS simulators."""

import numpy as np
import pytest

from repro.clustering import iterative_spectral_clustering
from repro.hardware.simulation import (
    CrossbarSimulator,
    HybridNcsSimulator,
    NonIdealityModel,
)
from repro.mapping import fullcro_utilization
from repro.networks import block_diagonal_network


class TestNonIdealityModel:
    def test_defaults_ideal(self):
        model = NonIdealityModel()
        assert model.variation_sigma == 0.0
        assert model.ir_drop_coefficient == 0.0

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ValueError):
            NonIdealityModel(stuck_off_probability=0.7, stuck_on_probability=0.7)

    def test_rejects_negative_sigma(self):
        with pytest.raises(ValueError):
            NonIdealityModel(variation_sigma=-0.1)


class TestCrossbarSimulator:
    def test_ideal_compute_matches_matrix_product(self, rng):
        weights = rng.random((8, 8))
        sim = CrossbarSimulator(weights, rng=rng)
        inputs = rng.random(8)
        np.testing.assert_allclose(sim.compute(inputs), inputs @ weights, atol=1e-2)

    def test_variation_adds_error(self, rng):
        weights = rng.random((16, 16))
        inputs = np.ones(16)
        noisy = CrossbarSimulator(
            weights, model=NonIdealityModel(variation_sigma=0.2), rng=0
        )
        error = noisy.relative_error(inputs, weights)
        assert error > 0.001

    def test_ir_drop_error_grows_with_size(self):
        model = NonIdealityModel(ir_drop_coefficient=0.005)
        rng = np.random.default_rng(0)
        errors = []
        for size in (16, 64, 128):
            weights = rng.random((size, size))
            sim = CrossbarSimulator(weights, model=model, rng=rng)
            errors.append(sim.relative_error(np.ones(size), weights))
        assert errors[0] < errors[1] < errors[2]

    def test_stuck_off_reduces_output(self, rng):
        weights = np.ones((16, 16))
        sim = CrossbarSimulator(
            weights, model=NonIdealityModel(stuck_off_probability=0.5), rng=0
        )
        outputs = sim.compute(np.ones(16))
        assert outputs.sum() < 0.9 * 16 * 16

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            CrossbarSimulator(np.ones((2, 3)))

    def test_rejects_out_of_range_weights(self):
        with pytest.raises(ValueError):
            CrossbarSimulator(np.full((2, 2), 1.5))

    def test_rejects_bad_input_shape(self, rng):
        sim = CrossbarSimulator(rng.random((4, 4)), rng=rng)
        with pytest.raises(ValueError):
            sim.compute(np.ones(5))


class TestHybridNcsSimulator:
    @pytest.fixture(scope="class")
    def topology(self):
        net = block_diagonal_network([20, 16, 12], within_density=0.7,
                                     between_density=0.03, rng=5)
        threshold = fullcro_utilization(net, 64)
        return iterative_spectral_clustering(net, utilization_threshold=threshold, rng=0)

    def test_ideal_matches_binary_product(self, topology):
        sim = HybridNcsSimulator(topology, rng=0)
        x = np.random.default_rng(1).choice([-1.0, 1.0], topology.network.size)
        reference = x @ topology.network.matrix.astype(float)
        np.testing.assert_allclose(sim.compute(x), reference, atol=0.05)

    def test_signed_weights_supported(self, topology):
        n = topology.network.size
        rng = np.random.default_rng(2)
        signed = topology.network.matrix.astype(float) * rng.choice([-1.0, 1.0], (n, n))
        sim = HybridNcsSimulator(topology, signed_weights=signed, rng=0)
        x = rng.choice([-1.0, 1.0], n)
        np.testing.assert_allclose(sim.compute(x), x @ signed, atol=0.05)

    def test_recall_reaches_fixed_point(self, topology):
        sim = HybridNcsSimulator(topology, rng=0)
        x = np.random.default_rng(3).choice([-1.0, 1.0], topology.network.size)
        state = sim.recall(x, max_steps=30)
        assert set(np.unique(state)).issubset({-1, 1})

    def test_rejects_wrong_weight_shape(self, topology):
        with pytest.raises(ValueError):
            HybridNcsSimulator(topology, signed_weights=np.zeros((3, 3)))

    def test_rejects_wrong_input_shape(self, topology):
        sim = HybridNcsSimulator(topology, rng=0)
        with pytest.raises(ValueError):
            sim.compute(np.ones(7))

    def test_noise_perturbs_but_preserves_scale(self, topology):
        model = NonIdealityModel(variation_sigma=0.1)
        sim = HybridNcsSimulator(topology, model=model, rng=0)
        x = np.ones(topology.network.size)
        ideal = x @ topology.network.matrix.astype(float)
        noisy = sim.compute(x)
        assert not np.allclose(noisy, ideal)
        assert np.linalg.norm(noisy) == pytest.approx(np.linalg.norm(ideal), rel=0.3)
