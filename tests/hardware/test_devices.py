"""Tests for memristor, crossbar spec, synapse, neuron and library models."""

import numpy as np
import pytest

from repro.hardware.crossbar import CrossbarSpec
from repro.hardware.library import CrossbarLibrary
from repro.hardware.memristor import Memristor, weights_to_conductances
from repro.hardware.neuron import IntegrateFireNeuron
from repro.hardware.synapse import DiscreteSynapse
from repro.hardware.technology import DEFAULT_TECHNOLOGY


class TestMemristor:
    def test_state_maps_to_conductance(self):
        device = Memristor(r_on=1e3, r_off=1e6, state=1.0)
        assert device.conductance == pytest.approx(1e-3)
        device.state = 0.0
        assert device.conductance == pytest.approx(1e-6)

    def test_resistance_reciprocal(self):
        device = Memristor(state=0.5)
        assert device.resistance == pytest.approx(1.0 / device.conductance)

    def test_program_weight_exact_without_noise(self):
        device = Memristor()
        stored = device.program_weight(0.7)
        assert stored == pytest.approx(0.7)

    def test_program_weight_noise_clipped(self):
        device = Memristor()
        stored = device.program_weight(0.9, variation_sigma=2.0, rng=0)
        assert 0.0 <= stored <= 1.0

    def test_read_current_ohmic(self):
        device = Memristor(state=1.0)
        assert device.read_current(0.5) == pytest.approx(0.5e-3)

    def test_rejects_r_on_above_r_off(self):
        with pytest.raises(ValueError):
            Memristor(r_on=1e6, r_off=1e3)

    def test_rejects_bad_weight(self):
        with pytest.raises(ValueError):
            Memristor().program_weight(1.5)


class TestWeightsToConductances:
    def test_deterministic_mapping(self):
        weights = np.array([[0.0, 1.0], [0.5, 0.25]])
        g = weights_to_conductances(weights)
        assert g[0, 0] == pytest.approx(1e-6)
        assert g[0, 1] == pytest.approx(1e-3)
        assert g[1, 0] == pytest.approx(1e-6 + 0.5 * (1e-3 - 1e-6))

    def test_noise_changes_values(self):
        weights = np.full((4, 4), 0.5)
        a = weights_to_conductances(weights, variation_sigma=0.1, rng=0)
        b = weights_to_conductances(weights)
        assert not np.allclose(a, b)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            weights_to_conductances(np.array([[2.0]]))


class TestCrossbarSpec:
    def test_from_technology(self):
        spec = CrossbarSpec.from_technology(32, DEFAULT_TECHNOLOGY)
        assert spec.size == 32
        assert spec.capacity == 1024
        assert spec.area_um2 == pytest.approx(DEFAULT_TECHNOLOGY.crossbar_area_um2(32))

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            CrossbarSpec(size=0, side_um=1, area_um2=1, delay_ns=1)
        with pytest.raises(ValueError):
            CrossbarSpec(size=4, side_um=0, area_um2=1, delay_ns=1)


class TestSynapseAndNeuron:
    def test_synapse_from_technology(self):
        synapse = DiscreteSynapse.from_technology(DEFAULT_TECHNOLOGY)
        assert synapse.area_um2 == DEFAULT_TECHNOLOGY.synapse_area_um2
        assert synapse.side_um == pytest.approx(np.sqrt(synapse.area_um2))

    def test_neuron_integrates_and_fires(self):
        neuron = IntegrateFireNeuron(capacitance_ff=50.0, threshold_v=0.5)
        fired = neuron.integrate(current_na=10_000.0, dt_ns=1.0)
        # dV = 1e-5 A * 1e-9 s / 50e-15 F = 0.2 V
        assert not fired
        assert neuron.voltage == pytest.approx(0.2)
        assert not neuron.integrate(10_000.0, 1.0)
        assert neuron.integrate(10_000.0, 1.0)  # crosses 0.5 -> fires
        assert neuron.voltage == 0.0

    def test_neuron_reset(self):
        neuron = IntegrateFireNeuron()
        neuron.integrate(5.0, 1.0)
        neuron.reset()
        assert neuron.voltage == 0.0

    def test_neuron_rejects_bad_dt(self):
        with pytest.raises(ValueError):
            IntegrateFireNeuron().integrate(1.0, 0.0)


class TestCrossbarLibrary:
    def test_paper_default_sizes(self):
        library = CrossbarLibrary()
        assert library.sizes == tuple(range(16, 65, 4))
        assert library.max_size == 64
        assert library.min_size == 16

    def test_minimum_satisfiable(self):
        library = CrossbarLibrary()
        assert library.minimum_satisfiable(10).size == 16
        assert library.minimum_satisfiable(33).size == 36
        assert library.minimum_satisfiable(64).size == 64
        assert library.minimum_satisfiable(65) is None

    def test_spec_lookup(self):
        library = CrossbarLibrary()
        assert library.spec(24).size == 24
        with pytest.raises(KeyError):
            library.spec(25)

    def test_contains_iter_len(self):
        library = CrossbarLibrary(sizes=(16, 32))
        assert 16 in library and 17 not in library
        assert len(library) == 2
        assert [spec.size for spec in library] == [16, 32]

    def test_deduplicates_sizes(self):
        library = CrossbarLibrary(sizes=(16, 16, 32))
        assert library.sizes == (16, 32)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            CrossbarLibrary(sizes=())

    def test_specs_follow_technology(self):
        library = CrossbarLibrary()
        for spec in library:
            assert spec.delay_ns == pytest.approx(
                DEFAULT_TECHNOLOGY.crossbar_delay_ns(spec.size)
            )
