"""Hybrid simulator fidelity: ideal hardware must reproduce y = W x exactly.

The differential (two-polarity) crossbar read cancels the G_off leak, so
with the default (ideal) NonIdealityModel the mapped hardware computes the
same product as the software network to floating-point precision — for all
three paper testbench topologies (small-N variants) and for every topology
source (ISC result, AutoNCS mapping, FullCro mapping).
"""

import numpy as np
import pytest

from repro.clustering import iterative_spectral_clustering
from repro.experiments.testbenches import build_testbench, scaled_testbench
from repro.hardware.simulation import HybridNcsSimulator
from repro.mapping import autoncs_mapping, fullcro_mapping, fullcro_utilization

#: (testbench index, scaled dimension) — small enough to keep the suite fast.
CASES = [(1, 60), (2, 64), (3, 80)]


def _instance_and_isc(index, dimension):
    instance = build_testbench(scaled_testbench(index, dimension), rng=index)
    threshold = fullcro_utilization(instance.network, 64)
    isc = iterative_spectral_clustering(
        instance.network, utilization_threshold=threshold, rng=index
    )
    return instance, isc


def _probe_inputs(n, rng):
    return [
        rng.choice([-1.0, 1.0], size=n),
        rng.random(n) * 2.0 - 1.0,
        np.zeros(n),
    ]


@pytest.mark.parametrize("index,dimension", CASES)
def test_isc_topology_is_exact(index, dimension):
    instance, isc = _instance_and_isc(index, dimension)
    weights = instance.hopfield.weights
    simulator = HybridNcsSimulator(isc, signed_weights=weights)
    rng = np.random.default_rng(index)
    for x in _probe_inputs(instance.network.size, rng):
        np.testing.assert_allclose(simulator.compute(x), x @ weights,
                                   rtol=1e-9, atol=1e-9)


@pytest.mark.parametrize("index,dimension", CASES)
def test_autoncs_mapping_is_exact(index, dimension):
    instance, isc = _instance_and_isc(index, dimension)
    weights = instance.hopfield.weights
    mapping = autoncs_mapping(isc)
    simulator = HybridNcsSimulator(mapping, signed_weights=weights)
    rng = np.random.default_rng(index + 10)
    for x in _probe_inputs(instance.network.size, rng):
        np.testing.assert_allclose(simulator.compute(x), x @ weights,
                                   rtol=1e-9, atol=1e-9)


@pytest.mark.parametrize("index,dimension", CASES)
def test_fullcro_mapping_is_exact(index, dimension):
    # FullCro tiles have distinct row/column groups — the rows != cols path.
    instance, _ = _instance_and_isc(index, dimension)
    weights = instance.hopfield.weights
    mapping = fullcro_mapping(instance.network)
    simulator = HybridNcsSimulator(mapping, signed_weights=weights)
    rng = np.random.default_rng(index + 20)
    for x in _probe_inputs(instance.network.size, rng):
        np.testing.assert_allclose(simulator.compute(x), x @ weights,
                                   rtol=1e-9, atol=1e-9)


def test_binary_topology_default_weights():
    # With no signed_weights the simulator implements the 0/1 topology itself.
    instance, isc = _instance_and_isc(1, 60)
    simulator = HybridNcsSimulator(isc)
    rng = np.random.default_rng(0)
    x = rng.random(instance.network.size)
    np.testing.assert_allclose(
        simulator.compute(x), x @ instance.network.matrix.astype(float),
        rtol=1e-9, atol=1e-9,
    )
