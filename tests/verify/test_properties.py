"""Property-based verification: the full flow is clean for random inputs.

The verifier is the oracle; hypothesis drives it with random networks from
every generator in :mod:`repro.networks.generators`, plus LDPC codes and
Hopfield testbenches.  Whatever the topology, seed or size, the complete
AutoNCS flow must produce a design that passes all four independent checks
— and a randomly mutated mapping must always be rejected.
"""

from __future__ import annotations

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AutoNCS
from repro.experiments.testbenches import build_testbench, scaled_testbench
from repro.networks.generators import (
    block_diagonal_network,
    distance_decay_network,
    random_sparse_network,
    scale_free_network,
)
from repro.networks.ldpc import ldpc_network
from repro.verify import verify_flow, verify_mapping


def _random(draw, seed):
    n = draw(st.integers(28, 72))
    density = draw(st.floats(0.04, 0.15))
    return random_sparse_network(n, density, rng=seed)


def _blocks(draw, seed):
    sizes = draw(st.lists(st.integers(8, 24), min_size=2, max_size=4))
    return block_diagonal_network(sizes, rng=seed)


def _distance(draw, seed):
    n = draw(st.integers(30, 80))
    scale = draw(st.floats(3.0, 15.0))
    return distance_decay_network(n, scale=scale, rng=seed)


def _scale_free(draw, seed):
    n = draw(st.integers(30, 80))
    attachment = draw(st.integers(2, 4))
    return scale_free_network(n, attachment, rng=seed)


def _ldpc(draw, seed):
    n_vars = 6 * draw(st.integers(4, 9))
    return ldpc_network(n_vars, column_weight=3, row_weight=6, rng=seed)


BUILDERS = {
    "random": _random,
    "blocks": _blocks,
    "distance-decay": _distance,
    "scale-free": _scale_free,
    "ldpc": _ldpc,
}


@settings(max_examples=10, deadline=None)
@given(data=st.data())
def test_full_flow_verifies_clean_on_any_generator(data):
    """Every generator family → full flow → all four checks green."""
    kind = data.draw(st.sampled_from(sorted(BUILDERS)))
    seed = data.draw(st.integers(0, 10**6))
    network = BUILDERS[kind](data.draw, seed)
    flow = AutoNCS().run(network, rng=seed)
    report = verify_flow(flow)
    assert report.passed, f"[{kind}]\n{report.format()}"


@settings(max_examples=4, deadline=None)
@given(
    index=st.integers(1, 3),
    dimension=st.sampled_from([48, 64, 80]),
    seed=st.integers(0, 10**6),
)
def test_hopfield_testbench_flow_verifies_clean(index, dimension, seed):
    """Scaled paper testbenches pass all checks including hardware recall."""
    tb = build_testbench(scaled_testbench(index, dimension), rng=seed)
    flow = AutoNCS().run(tb.network, rng=seed)
    report = verify_flow(flow, hopfield=tb.hopfield)
    assert report.passed, report.format()
    assert "max_recall_error" in report.check("functional").stats


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_random_cell_flip_always_rejected(verified_flow, seed):
    """Any single misplaced crossbar cell is caught by the coverage check."""
    import numpy as np

    mapping = verified_flow.mapping
    rng = np.random.default_rng(seed)
    matrix = mapping.network.matrix
    candidates = []
    for index, instance in enumerate(mapping.instances):
        taken = set(instance.connections)
        for i, j in instance.connections:
            for j2 in instance.cols:
                if j2 != j and matrix[i, j2] == 0 and (i, j2) not in taken:
                    candidates.append((index, (i, j), (i, j2)))
    index, old, new = candidates[rng.integers(len(candidates))]
    instance = mapping.instances[index]
    instances = list(mapping.instances)
    instances[index] = dataclasses.replace(
        instance,
        connections=tuple(new if pair == old else pair for pair in instance.connections),
    )
    mutant = dataclasses.replace(mapping, instances=instances)
    report = verify_mapping(mutant, checks=("coverage",))
    assert not report.passed
    messages = [v.message for v in report.violations]
    assert any(str(old) in m for m in messages)
    assert any(str(new) in m for m in messages)
