"""Mutation rejection: every corrupted artifact must fail its check.

These tests take a genuinely correct flow result and break exactly one
invariant per test; the verifier must reject the mutant with a violation
that names the offending object (the acceptance bar for `repro.verify`).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.mapping.netlist import CrossbarInstance
from repro.networks.hopfield import HopfieldNetwork
from repro.networks.patterns import qr_like_patterns
from repro.physical.routing.router import RoutingResult
from repro.reliability.defects import DefectRates, sample_defect_map
from repro.verify import (
    VerificationError,
    check_coverage,
    check_functional,
    check_hardware,
    check_physical,
    verify_mapping,
)


def _clone_mapping(mapping, **overrides):
    return dataclasses.replace(mapping, **overrides)


def _clone_routing(routing, wires=None):
    return RoutingResult(
        wires=list(routing.wires) if wires is None else wires,
        grid=routing.grid,
        relax_rounds=routing.relax_rounds,
        overflow_wires=routing.overflow_wires,
    )


def _flip_cell(mapping):
    """Move one crossbar connection to a legal cell that the network lacks."""
    matrix = mapping.network.matrix
    for index, instance in enumerate(mapping.instances):
        taken = set(instance.connections)
        for i, j in instance.connections:
            for j2 in instance.cols:
                if j2 != j and matrix[i, j2] == 0 and (i, j2) not in taken:
                    connections = tuple(
                        (i, j2) if pair == (i, j) else pair
                        for pair in instance.connections
                    )
                    instances = list(mapping.instances)
                    instances[index] = dataclasses.replace(
                        instance, connections=connections
                    )
                    return _clone_mapping(mapping, instances=instances), (i, j), (i, j2)
    raise AssertionError("no flippable cell found in any instance")


# ----------------------------------------------------------------------
# coverage
# ----------------------------------------------------------------------
def test_clean_mapping_passes_coverage(verified_flow):
    result = check_coverage(verified_flow.mapping)
    assert result.passed
    assert result.stats["expected"] == verified_flow.mapping.network.num_connections


def test_flipped_cell_rejected(verified_flow):
    mutant, dropped, phantom = _flip_cell(verified_flow.mapping)
    result = check_coverage(mutant)
    assert not result.passed
    messages = "\n".join(v.message for v in result.violations)
    assert f"connection {dropped} of the network is not realized" in messages
    assert f"realized connection {phantom} does not exist" in messages


def test_duplicate_realization_rejected(verified_flow):
    mapping = verified_flow.mapping
    duplicated = mapping.instances[0].connections[0]
    mutant = _clone_mapping(
        mapping, synapse_connections=list(mapping.synapse_connections) + [duplicated]
    )
    result = check_coverage(mutant)
    assert not result.passed
    assert any(
        f"connection {duplicated} realized 2 times" == v.message
        for v in result.violations
    )


def test_phantom_synapse_rejected(verified_flow):
    mapping = verified_flow.mapping
    matrix = mapping.network.matrix
    i, j = np.argwhere(matrix == 0)[1]
    phantom = (int(i), int(j))
    assert phantom[0] != phantom[1]
    mutant = _clone_mapping(
        mapping, synapse_connections=list(mapping.synapse_connections) + [phantom]
    )
    result = check_coverage(mutant)
    assert any("does not exist in network" in v.message for v in result.violations)


def test_violation_flood_is_capped(verified_flow):
    """A catastrophically wrong mapping reports a rollup, not 700 lines."""
    mapping = verified_flow.mapping
    mutant = _clone_mapping(mapping, instances=[], synapse_connections=[])
    result = check_coverage(mutant)
    assert not result.passed
    assert len(result.violations) <= 30
    assert any("further case(s)" in v.message for v in result.violations)


# ----------------------------------------------------------------------
# hardware
# ----------------------------------------------------------------------
def test_clean_mapping_passes_hardware(verified_flow):
    assert check_hardware(verified_flow.mapping).passed


def test_oversized_crossbar_rejected(verified_flow):
    mapping = verified_flow.mapping
    instances = list(mapping.instances)
    instances[0] = dataclasses.replace(instances[0], size=65)
    result = check_hardware(_clone_mapping(mapping, instances=instances))
    assert not result.passed
    assert any(
        "crossbar 0 has size 65, not in the library" in v.message
        for v in result.violations
    )


def test_netlist_cell_count_mismatch_rejected(verified_flow):
    """Dropping an instance without rebuilding the netlist is inconsistent."""
    mapping = verified_flow.mapping
    mutant = _clone_mapping(mapping, instances=list(mapping.instances)[:-1])
    result = check_hardware(mutant)
    assert any("netlist has" in v.message for v in result.violations)


def test_unrepaired_dead_cells_tolerated_until_binding_claims_repair(verified_flow):
    """A defect map alone is fine; claiming a repair binding is not."""
    mapping = verified_flow.mapping
    rates = DefectRates(cell_stuck_off=0.4, row_line=0.2, col_line=0.2)
    defect_map = sample_defect_map(mapping, rates, rng=0)
    attached = _clone_mapping(mapping, metadata=dict(mapping.metadata))
    defect_map.attach(attached)
    assert check_hardware(attached).passed  # dead cells, but no repair claim

    claimed = _clone_mapping(mapping, metadata=dict(attached.metadata))
    claimed.metadata["physical_binding"] = tuple(range(mapping.num_crossbars))
    result = check_hardware(claimed)
    assert not result.passed
    assert any("dead cell" in v.message for v in result.violations)


def test_binding_without_defect_map_rejected(verified_flow):
    mapping = verified_flow.mapping
    mutant = _clone_mapping(mapping, metadata={"physical_binding": (0,)})
    result = check_hardware(mutant)
    assert any("no defect map" in v.message for v in result.violations)


# ----------------------------------------------------------------------
# physical
# ----------------------------------------------------------------------
def test_clean_design_passes_physical(verified_flow):
    design = verified_flow.design
    result = check_physical(verified_flow.mapping, design.placement, design.routing)
    assert result.passed
    assert result.stats["routed_wires"] == verified_flow.mapping.netlist.num_wires


def test_dropped_net_rejected(verified_flow):
    design = verified_flow.design
    broken = _clone_routing(design.routing, wires=list(design.routing.wires)[:-1])
    result = check_physical(verified_flow.mapping, design.placement, broken)
    assert not result.passed
    dropped = design.routing.wires[-1].wire_index
    assert any(
        f"wire {dropped}" in v.message and "has no route" in v.message
        for v in result.violations
    )


def test_overlapping_cells_rejected(verified_flow):
    design = verified_flow.design
    placement = design.placement.copy()
    placement.x[1] = placement.x[0]
    placement.y[1] = placement.y[0]
    result = check_physical(verified_flow.mapping, placement)
    assert not result.passed
    assert any("overlap" in v.message for v in result.violations)


def test_off_chip_cell_rejected(verified_flow):
    design = verified_flow.design
    placement = design.placement.copy()
    placement.x[0] += 1e5  # far outside the routed region
    result = check_physical(verified_flow.mapping, placement, design.routing)
    assert not result.passed
    assert any("outside the chip region" in v.message for v in result.violations)


def test_corrupted_path_rejected(verified_flow):
    design = verified_flow.design
    wires = list(design.routing.wires)
    victim_index, victim = next(
        (k, w) for k, w in enumerate(wires) if len(w.path) > 2
    )
    # Dropping an interior bin leaves a 2-bin jump: never grid-adjacent.
    broken_path = [victim.path[0]] + list(victim.path[2:])
    wires[victim_index] = dataclasses.replace(victim, path=broken_path)
    result = check_physical(
        verified_flow.mapping, design.placement, _clone_routing(design.routing, wires)
    )
    assert not result.passed
    assert any("non-contiguous" in v.message for v in result.violations)


def test_wirelength_mismatch_rejected(verified_flow):
    design = verified_flow.design
    wires = list(design.routing.wires)
    wires[0] = dataclasses.replace(wires[0], length_um=wires[0].length_um + 7.5)
    result = check_physical(
        verified_flow.mapping, design.placement, _clone_routing(design.routing, wires)
    )
    assert any("its path measures" in v.message for v in result.violations)


def test_stale_usage_counters_rejected(verified_flow):
    design = verified_flow.design
    grid = design.routing.grid
    original = grid.horizontal_usage.copy()
    grid.horizontal_usage[0, 0] += 3
    try:
        result = check_physical(
            verified_flow.mapping, design.placement, design.routing
        )
    finally:
        grid.horizontal_usage[:] = original
    assert any(
        "disagree with the committed paths" in v.message for v in result.violations
    )


# ----------------------------------------------------------------------
# functional
# ----------------------------------------------------------------------
def test_clean_mapping_passes_functional(verified_flow):
    result = check_functional(verified_flow.mapping)
    assert result.passed
    assert result.stats["max_relative_error"] < 1e-9


def test_unmappable_weights_rejected(verified_flow):
    """Weights outside the mapped topology cannot be implemented."""
    mapping = verified_flow.mapping
    n = mapping.network.size
    dense = HopfieldNetwork.train(qr_like_patterns(4, n, rng=0))
    assert np.count_nonzero(dense.weights * (1 - mapping.network.matrix)) > 0
    result = check_functional(mapping, hopfield=dense)
    assert not result.passed
    assert any("deviates from" in v.message for v in result.violations)


def test_size_mismatch_rejected(verified_flow):
    other = HopfieldNetwork.train(qr_like_patterns(2, 16, rng=0))
    result = check_functional(verified_flow.mapping, hopfield=other)
    assert any("neurons" in v.message for v in result.violations)


# ----------------------------------------------------------------------
# report plumbing
# ----------------------------------------------------------------------
def test_verification_error_names_the_failure(verified_flow):
    mutant, dropped, _ = _flip_cell(verified_flow.mapping)
    report = verify_mapping(mutant, checks=("coverage",))
    with pytest.raises(VerificationError) as excinfo:
        report.raise_if_failed()
    assert "coverage" in str(excinfo.value)
    assert str(dropped) in str(excinfo.value)
    assert excinfo.value.report is report


def test_report_format_marks_status(verified_flow):
    mutant, _, _ = _flip_cell(verified_flow.mapping)
    report = verify_mapping(mutant)
    text = report.format()
    assert "FAIL" in text and "coverage" in text
    assert report.check("coverage").status == "fail"
    assert report.check("hardware").status == "pass"
    with pytest.raises(KeyError):
        report.check("nonsense")


def test_unknown_check_selection_rejected(verified_flow):
    with pytest.raises(ValueError, match="unknown check"):
        verify_mapping(verified_flow.mapping, checks=("coverage", "vibes"))
