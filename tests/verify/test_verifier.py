"""verify_mapping / verify_flow entry points, flow wiring and the CLI."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.core import AutoNCS
from repro.experiments.testbenches import build_testbench, scaled_testbench
from repro.reliability.yield_eval import evaluate_yield
from repro.verify import CHECK_NAMES, verify_flow, verify_mapping


def test_check_names_are_canonical():
    assert CHECK_NAMES == ("coverage", "hardware", "physical", "functional")


def test_verify_flow_green_on_autoncs(verified_flow):
    report = verify_flow(verified_flow)
    assert report.passed
    assert [c.name for c in report.checks] == list(CHECK_NAMES)
    assert all(c.status == "pass" for c in report.checks)
    assert report.metadata["neurons"] == verified_flow.mapping.network.size


def test_verify_flow_green_on_fullcro(sparse_network):
    design = AutoNCS().run_baseline(sparse_network, rng=7)
    report = verify_flow(design)
    assert report.passed
    assert report.target == "FullCro"


def test_verify_flow_accepts_bare_mapping(verified_flow):
    report = verify_flow(verified_flow.mapping)
    assert report.passed
    assert report.check("physical").status == "skip"
    assert "no placement" in report.check("physical").reason


def test_verify_flow_rejects_foreign_objects():
    with pytest.raises(TypeError, match="verify_flow expects"):
        verify_flow(object())


def test_verify_mapping_check_subset(verified_flow):
    report = verify_mapping(verified_flow.mapping, checks=("hardware", "coverage"))
    assert [c.name for c in report.checks] == ["coverage", "hardware"]


def test_verify_mapping_is_deterministic(verified_flow):
    design = verified_flow.design
    first = verify_mapping(
        verified_flow.mapping, design.placement, design.routing
    )
    second = verify_mapping(
        verified_flow.mapping, design.placement, design.routing
    )
    assert first.summary() == second.summary()
    assert first.check("functional").stats == second.check("functional").stats


# ----------------------------------------------------------------------
# Flow wiring: AutoNCS.run(verify=...) and evaluate_yield(assert_legal=...)
# ----------------------------------------------------------------------
def test_autoncs_run_verify_records_report(sparse_network):
    result = AutoNCS().run(sparse_network, rng=7, verify=True)
    verification = result.metadata["verification"]
    assert verification["passed"] is True
    assert verification["checks"] == {name: "pass" for name in CHECK_NAMES}
    assert result.metadata["stage_seconds"]["verify"] > 0


def test_run_baseline_verify_records_report(sparse_network):
    design = AutoNCS().run_baseline(sparse_network, rng=7, verify=True)
    verification = design.metadata["diagnostics"]["verification"]
    assert verification["passed"] is True


def test_evaluate_yield_assert_legal(verified_flow):
    tb = build_testbench(scaled_testbench(1, 60), rng=3)
    mapping = AutoNCS().run(tb.network, rng=5).mapping
    curve = evaluate_yield(
        tb.hopfield,
        mapping,
        defect_rates=[0.0, 0.3],
        samples=2,
        spare_instances=1,
        rng=11,
        assert_legal=True,
    )
    assert curve.metadata["assert_legal"] is True
    assert len(curve.points) == 2


# ----------------------------------------------------------------------
# CLI: python -m repro verify
# ----------------------------------------------------------------------
@pytest.mark.parametrize("index", [1, 2, 3])
def test_cli_verify_testbench_green(index, capsys):
    exit_code = main(
        ["verify", "--testbench", str(index), "--dimension", "64", "--seed", "4"]
    )
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "PASS" in out
    assert out.count("ok  ") == 4  # all four checks green


def test_cli_verify_generated_network(capsys):
    exit_code = main(
        ["verify", "--neurons", "48", "--density", "0.08", "--seed", "3",
         "--baseline", "--checks", "coverage", "hardware"]
    )
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "coverage" in out and "hardware" in out
    assert "physical" not in out  # deselected checks are not listed
