"""Shared verify-layer fixtures: one fully implemented flow per session."""

from __future__ import annotations

import pytest

from repro.core import AutoNCS


@pytest.fixture(scope="session")
def verified_flow(sparse_network):
    """A complete AutoNCS flow on the 60-neuron sparse network.

    Session-cached: every mutation test derives a *copy* from it — the
    artifacts themselves must never be modified in place.
    """
    return AutoNCS().run(sparse_network, rng=7)
