"""Tests for deterministic fault injection (:mod:`repro.runtime.chaos`).

The load-bearing contracts:

* decisions are a pure function of (plan seed, site, label, token,
  attempt) — replayable across processes and execution orders;
* with no plan installed, every ``chaos_point`` is a no-op;
* the resilient runner recovers from every injected fault kind, and a
  recovered run is bitwise-identical to a fault-free one.
"""

import numpy as np
import pytest

from repro.core.config import fast_config
from repro.runtime import (
    ArtifactCache,
    EventLog,
    FaultPlan,
    FaultRule,
    Job,
    Runner,
    SweepSpec,
    chaos_point,
    chaos_scope,
    register_executor,
)
from repro.runtime.chaos import (
    ChaosError,
    ChaosHang,
    ChaosTransientError,
    ChaosWorkerCrash,
    active_plan,
)
from repro.runtime.resilience import ResilienceConfig, RetryPolicy

FAST = fast_config()

#: Quick retry policy for tests — real backoff shape, negligible sleeps.
QUICK = ResilienceConfig(
    retry=RetryPolicy(max_attempts=4, backoff_base=0.001, backoff_max=0.002)
)


def _unit(rng, x):
    return float(rng.standard_normal(64).sum()) + x


register_executor("chaos_unit", _unit)


def unit_job(i=0, key=True):
    return Job(
        kind="chaos_unit", label=f"u{i}", payload={"x": float(i)}, seed=100 + i,
        key={"cell": i} if key else None,
    )


class TestFaultRule:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultRule(site="job.run", kind="meteor")

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError, match="probability"):
            FaultRule(site="job.run", kind="error", probability=1.5)

    def test_transient_defaults_until_attempt(self):
        assert FaultRule(site="job.run", kind="transient").until_attempt == 1
        assert FaultRule(site="job.run", kind="error").until_attempt is None


class TestFaultPlanParse:
    def test_presets(self):
        for preset in ("transient", "crash", "hang", "error", "corrupt", "mixed"):
            plan = FaultPlan.parse(preset, seed=3)
            assert plan.rules and plan.seed == 3

    def test_grammar(self):
        plan = FaultPlan.parse(
            "transient@job.run:p=0.5,until=2;hang@stage.routing:hang=5", seed=1
        )
        assert len(plan.rules) == 2
        assert plan.rules[0] == FaultRule(
            site="job.run", kind="transient", probability=0.5, until_attempt=2
        )
        assert plan.rules[1].hang_seconds == 5.0

    def test_default_site_is_job_run(self):
        assert FaultPlan.parse("error").rules[0].site == "job.run"

    def test_rejects_unknown_kind_and_option(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.parse("meteor@job.run")
        with pytest.raises(ValueError, match="unknown chaos rule option"):
            FaultPlan.parse("error@job.run:frequency=2")
        with pytest.raises(ValueError, match="empty chaos spec"):
            FaultPlan.parse(" ; ")


class TestDecide:
    def test_deterministic_and_site_matched(self):
        plan = FaultPlan.parse("transient@stage.*:p=0.5", seed=9)
        first = plan.decide("stage.routing", label="a", token="t", attempt=0)
        again = plan.decide("stage.routing", label="a", token="t", attempt=0)
        assert first == again
        assert plan.decide("job.run", label="a", token="t", attempt=0) is None

    def test_probability_splits_the_population(self):
        plan = FaultPlan.parse("error@job.run:p=0.5", seed=9)
        fired = sum(
            plan.decide("job.run", label=f"job-{i}", token=i) is not None
            for i in range(200)
        )
        assert 60 < fired < 140

    def test_until_attempt_bounds_firing(self):
        plan = FaultPlan(rules=(FaultRule(site="job.run", kind="transient"),))
        assert plan.decide("job.run", attempt=0) is not None
        assert plan.decide("job.run", attempt=1) is None

    def test_first_matching_rule_wins(self):
        plan = FaultPlan(rules=(
            FaultRule(site="job.*", kind="error"),
            FaultRule(site="job.run", kind="hang"),
        ))
        assert plan.decide("job.run").kind == "error"


class TestScopeAndPoint:
    def test_no_plan_is_noop(self):
        assert active_plan() is None
        assert chaos_point("job.run") is None
        with chaos_scope(None):
            assert active_plan() is None
        with chaos_scope(FaultPlan()):  # empty plan: also a no-op
            assert active_plan() is None

    def test_action_faults_raise(self):
        for kind, exc in (
            ("error", ChaosError),
            ("transient", ChaosTransientError),
            ("crash", ChaosWorkerCrash),  # inline: degraded, not os._exit
        ):
            plan = FaultPlan(rules=(FaultRule(site="job.run", kind=kind),))
            with chaos_scope(plan, label="j"):
                with pytest.raises(exc):
                    chaos_point("job.run")

    def test_hang_sleeps_then_raises(self):
        plan = FaultPlan(rules=(
            FaultRule(site="job.run", kind="hang", hang_seconds=0.01),
        ))
        with chaos_scope(plan):
            with pytest.raises(ChaosHang):
                chaos_point("job.run")

    def test_corrupt_rule_is_returned_not_raised(self):
        plan = FaultPlan(rules=(FaultRule(site="cache.store", kind="corrupt"),))
        with chaos_scope(plan):
            rule = chaos_point("cache.store")
        assert rule is not None and rule.kind == "corrupt"

    def test_scope_restores_previous_context(self):
        plan = FaultPlan(rules=(FaultRule(site="x", kind="error"),))
        with chaos_scope(plan):
            assert active_plan() is plan
        assert active_plan() is None


class TestRunnerRecovery:
    """The resilient runner survives each fault kind and stays correct."""

    def clean_value(self, i=0):
        return Runner().run([unit_job(i, key=False)])[0].value

    def run_with(self, spec, **runner_kwargs):
        plan = FaultPlan.parse(spec, seed=5)
        events = EventLog()
        runner = Runner(resilience=QUICK, chaos=plan, events=events,
                        **runner_kwargs)
        results = runner.run([unit_job(0, key=False)])
        return results[0], events

    def test_transient_recovers_bitwise(self):
        result, events = self.run_with("transient@job.run")
        assert result.failure is None
        assert result.attempts == 2
        assert result.value == self.clean_value()
        assert events.of_kind("job_retry")

    def test_inline_crash_recovers(self):
        result, _ = self.run_with("crash@job.run:until=1")
        assert result.failure is None
        assert result.value == self.clean_value()

    def test_hang_classified_timeout_then_recovers(self):
        result, events = self.run_with("hang@job.run:until=1,hang=0.01")
        assert result.failure is None
        assert result.value == self.clean_value()
        assert events.of_kind("job_timeout")

    def test_persistent_error_becomes_failure(self):
        result, events = self.run_with("error@job.run")
        assert result.failure is not None
        assert result.failure.failure == "error"
        assert result.failure.attempts == QUICK.retry.max_attempts
        assert result.value is None
        assert events.of_kind("job_failed")

    def test_corrupt_store_recovers_on_next_run(self, tmp_path):
        cache = ArtifactCache(tmp_path, version="1.0")
        plan = FaultPlan.parse("corrupt@cache.store", seed=5)
        first = Runner(cache=cache, chaos=plan).run([unit_job(0)])
        assert first[0].value == self.clean_value()  # caller got the real value
        # The stored artifact was truncated: the rerun treats it as a
        # miss, recomputes, and re-stores a good copy.
        second = Runner(cache=cache).run([unit_job(0)])
        assert not second[0].cache_hit
        assert second[0].value == self.clean_value()
        third = Runner(cache=cache).run([unit_job(0)])
        assert third[0].cache_hit
        assert third[0].value == self.clean_value()

    def test_flow_stage_fault_recovers_verified(self):
        # A transient fault inside the AutoNCS stages (not just the job
        # boundary): the retried flow must still produce a verifiably
        # legal design.
        from repro.networks import random_sparse_network
        from repro.verify.verifier import verify_flow

        network = random_sparse_network(30, 0.08, rng=3, name="chaos-net")
        plan = FaultPlan(rules=(
            FaultRule(site="stage.*", kind="transient", until_attempt=1),
        ), seed=5)
        job = Job(kind="autoncs", label="flow",
                  payload={"network": network, "config": FAST}, seed=9)
        result = Runner(resilience=QUICK, chaos=plan).run([job])[0]
        assert result.failure is None
        assert result.attempts == 2
        assert verify_flow(result.value.design).passed

    def test_retry_determinism_vs_fault_free_run(self):
        # The acceptance contract: the same seed with and without
        # transient faults produces bitwise-identical artifacts once
        # retries succeed.
        spec = SweepSpec(sizes=(30,), densities=(0.08,), seed=11,
                         kind="autoncs", config=FAST, name="t")
        clean = Runner().run_sweep(spec)
        plan = FaultPlan(rules=(
            FaultRule(site="job.run", kind="transient", until_attempt=1),
        ), seed=5)
        chaotic = Runner(resilience=QUICK, chaos=plan).run_sweep(spec)
        assert [r.attempts for r in chaotic.results] == [2]
        clean_rows = [
            {k: v for k, v in row.items() if k != "seconds"}
            for row in clean.cell_rows()
        ]
        chaos_rows = [
            {k: v for k, v in row.items() if k != "seconds"}
            for row in chaotic.cell_rows()
        ]
        assert clean_rows == chaos_rows
        assert np.array_equal(
            clean.results[0].value.design.placement.x,
            chaotic.results[0].value.design.placement.x,
        )
        assert np.array_equal(
            clean.results[0].value.design.placement.y,
            chaotic.results[0].value.design.placement.y,
        )


class TestCounters:
    def test_faults_injected_counted(self):
        from repro.observability import Recorder, recording

        recorder = Recorder()
        plan = FaultPlan.parse("transient@job.run", seed=5)
        with recording(recorder):
            Runner(resilience=QUICK, chaos=plan).run([unit_job(0, key=False)])
        counters = recorder.snapshot().counters
        assert counters.get("chaos.faults_injected") == 1
        assert counters.get("chaos.faults.transient") == 1
        assert counters.get("runner.retries") == 1
