"""Tests for the parallel, cache-aware runner and sweep specs.

The two load-bearing contracts:

* determinism — a sweep's numbers are bitwise-identical for any
  ``n_jobs`` (seeds are fixed at job construction, not execution);
* warm cache — rerunning an executed sweep serves every cell from disk
  (100 % hits, zero executions).
"""

import pytest

from repro.core.config import fast_config
from repro.runtime import (
    ArtifactCache,
    EventLog,
    Job,
    Runner,
    SweepSpec,
    register_executor,
    registered_kinds,
)

FAST = fast_config()


def small_spec(**overrides):
    params = dict(sizes=(30, 40), densities=(0.08,), seed=11,
                  kind="compare", config=FAST, name="t")
    params.update(overrides)
    return SweepSpec(**params)


def reduction_rows(result):
    return [
        (row["size"], row["density"], row["wirelength_reduction"],
         row["area_reduction"], row["delay_reduction"])
        for row in result.cell_rows()
    ]


class TestSweepSpec:
    def test_cells_row_major(self):
        spec = small_spec(sizes=(30, 40), densities=(0.05, 0.08))
        assert spec.cells() == [(30, 0.05), (30, 0.08), (40, 0.05), (40, 0.08)]
        assert len(spec) == 4

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError, match="sizes"):
            small_spec(sizes=(1,))
        with pytest.raises(ValueError, match="sizes"):
            small_spec(sizes=())

    def test_rejects_bad_densities(self):
        with pytest.raises(ValueError, match="densities"):
            small_spec(densities=(0.0,))
        with pytest.raises(ValueError, match="densities"):
            small_spec(densities=(1.5,))

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            small_spec(kind="explode")

    def test_jobs_carry_cache_keys_and_distinct_seeds(self):
        jobs = small_spec().jobs()
        assert all(job.cacheable for job in jobs)
        assert len({job.key["network"] for job in jobs}) == len(jobs)
        assert all(job.key["config"] == FAST.cache_key() for job in jobs)

    def test_jobs_are_reproducible(self):
        first, second = small_spec().jobs(), small_spec().jobs()
        assert [j.key for j in first] == [j.key for j in second]


class TestRunner:
    def test_rejects_bad_n_jobs(self):
        with pytest.raises(ValueError, match="n_jobs"):
            Runner(n_jobs=0)

    def test_unknown_kind_raises_with_label(self):
        runner = Runner()
        with pytest.raises(RuntimeError, match="mystery"):
            runner.run([Job(kind="no-such-kind", label="mystery")])

    def test_failing_job_raises_with_label(self):
        register_executor("boom", _raise)
        try:
            with pytest.raises(RuntimeError, match="bad cell"):
                Runner().run([Job(kind="boom", label="bad cell")])
        finally:
            registered_kinds()  # registry intentionally keeps "boom"

    def test_events_cover_lifecycle(self):
        events = EventLog()
        result = Runner(events=events).run_sweep(small_spec(sizes=(30,)))
        assert len(result.results) == 1
        assert [e["event"] for e in events.events] == [
            "sweep_started", "job_started", "job_finished", "sweep_finished",
        ]
        finished = events.of_kind("job_finished")[0]
        assert finished["cache_hit"] is False
        assert finished["stage_seconds"]  # flow diagnostics re-exported

    def test_trace_file_is_jsonl(self, tmp_path):
        import json

        trace = tmp_path / "trace.jsonl"
        with EventLog(trace_path=trace) as events:
            Runner(events=events).run_sweep(small_spec(sizes=(30,)))
        lines = trace.read_text().strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0]["event"] == "sweep_started"
        assert records[-1]["event"] == "sweep_finished"

    def test_deterministic_across_n_jobs(self):
        spec = small_spec()
        serial = Runner(n_jobs=1).run_sweep(spec)
        parallel = Runner(n_jobs=4).run_sweep(spec)
        assert reduction_rows(serial) == reduction_rows(parallel)

    def test_warm_cache_serves_everything(self, tmp_path):
        spec = small_spec()
        cache = ArtifactCache(tmp_path)
        cold = Runner(cache=cache).run_sweep(spec)
        assert cold.executed == len(spec) and cold.cache_hits == 0
        warm = Runner(cache=cache).run_sweep(spec)
        assert warm.cache_hits == len(spec) and warm.executed == 0
        assert reduction_rows(cold) == reduction_rows(warm)

    def test_cache_ignores_renamed_sweep_but_not_reseeded(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        Runner(cache=cache).run_sweep(small_spec())
        reseeded = Runner(cache=cache).run_sweep(small_spec(seed=12))
        assert reseeded.cache_hits == 0  # new seed -> new networks -> miss

    def test_format_table_mentions_cache_state(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        result = Runner(cache=cache).run_sweep(small_spec(sizes=(30,)))
        table = result.format_table()
        assert "miss" in table and "1 executed" in table
        warm = Runner(cache=cache).run_sweep(small_spec(sizes=(30,)))
        assert "hit" in warm.format_table()

    def test_autoncs_kind_reports_costs(self):
        result = Runner().run_sweep(small_spec(sizes=(30,), kind="autoncs"))
        row = result.cell_rows()[0]
        assert row["wirelength_um"] > 0
        assert row["area_um2"] > 0


def _raise(rng, **payload):
    raise ValueError("synthetic failure")
