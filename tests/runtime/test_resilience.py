"""Tests for the failure policy, journal and resumable/resilient runner.

Covers the resilience layer end to end: deterministic backoff, the
structured failure records, the crash-safe journal (including truncated
tails), quarantine-aware resume, pool respawn after worker death,
preemptive wall-clock timeouts, and the acceptance contract that an
interrupted-then-resumed sweep is bitwise-identical to an uninterrupted
one.
"""

import os
import time

import numpy as np
import pytest

from repro.runtime import (
    ArtifactCache,
    EventLog,
    Job,
    JobFailure,
    ResilienceConfig,
    RetryPolicy,
    Runner,
    SweepJournal,
    UnknownJobKindError,
    register_executor,
    registered_kinds,
)

QUICK = ResilienceConfig(
    retry=RetryPolicy(max_attempts=3, backoff_base=0.001, backoff_max=0.002)
)


def _array_job(rng, n):
    return rng.standard_normal(int(n))


def _crash_job(rng, poison):
    if poison:
        os._exit(43)
    return float(rng.standard_normal(8).sum())


def _sleep_job(rng, seconds):
    time.sleep(seconds)
    return seconds


register_executor("res_array", _array_job)
register_executor("res_crash", _crash_job)
register_executor("res_sleep", _sleep_job)


def array_job(i, key=True):
    return Job(kind="res_array", label=f"a{i}", payload={"n": 16},
               seed=200 + i, key={"cell": i} if key else None)


class TestRetryPolicy:
    def test_exponential_shape_without_jitter(self):
        policy = RetryPolicy(max_attempts=5, backoff_base=0.1,
                             backoff_multiplier=2.0, backoff_max=0.5,
                             jitter=0.0)
        assert policy.backoff_seconds(0) == pytest.approx(0.1)
        assert policy.backoff_seconds(1) == pytest.approx(0.2)
        assert policy.backoff_seconds(2) == pytest.approx(0.4)
        assert policy.backoff_seconds(3) == pytest.approx(0.5)  # capped

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_base=0.1, jitter=0.25)
        first = policy.backoff_seconds(0, token="job-1")
        assert first == policy.backoff_seconds(0, token="job-1")
        assert first != policy.backoff_seconds(0, token="job-2")
        assert 0.075 <= first <= 0.125

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ValueError, match="timeout_seconds"):
            ResilienceConfig(timeout_seconds=0.0)
        with pytest.raises(ValueError, match="quarantine_after"):
            ResilienceConfig(quarantine_after=0)


class TestJobFailure:
    def test_rejects_unknown_class(self):
        with pytest.raises(ValueError, match="unknown failure class"):
            JobFailure(index=0, label="j", kind="k", failure="gremlin",
                       message="m")

    def test_to_dict_roundtrips_fields(self):
        failure = JobFailure(index=2, label="j", kind="k", failure="timeout",
                             message="m", attempts=3, seconds=1.5)
        payload = failure.to_dict()
        assert payload["failure"] == "timeout"
        assert payload["attempts"] == 3


class TestUnknownKind:
    def test_legacy_runner_raises_structured_error(self):
        job = Job(kind="mystery", label="m", payload={})
        with pytest.raises(UnknownJobKindError, match="mystery") as excinfo:
            Runner().run([job])
        assert "'m'" in str(excinfo.value)
        for kind in registered_kinds()[:1]:
            assert kind in str(excinfo.value)

    def test_resilient_runner_records_without_burning_retries(self):
        events = EventLog()
        job = Job(kind="mystery", label="m", payload={})
        result = Runner(resilience=QUICK, events=events).run([job])[0]
        assert result.failure is not None
        assert result.failure.failure == "unknown-kind"
        assert result.failure.attempts == 1  # non-retryable
        assert not events.of_kind("job_retry")


class TestSweepJournal:
    def test_roundtrip_and_replay(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with SweepJournal(path) as journal:
            journal.run_started("sweep-key", jobs=3)
            journal.job_done("k1", label="a", kind="x", status="ok",
                             seconds=1.0, attempts=1)
            journal.job_failed(
                "k2", quarantined=True,
                failure=JobFailure(index=1, label="b", kind="x",
                                   failure="crash", message="died"),
            )
        state = SweepJournal(path).load_state()
        assert state.sweep_key == "sweep-key"
        assert state.runs == 1
        assert state.done == {"k1"}
        assert state.quarantined == {"k2"}
        assert state.failed["k2"]["failure"] == "crash"

    def test_success_clears_earlier_failure(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with SweepJournal(path) as journal:
            journal.job_failed(
                "k", quarantined=True,
                failure=JobFailure(index=0, label="a", kind="x",
                                   failure="crash", message="died"),
            )
            journal.job_done("k", label="a", kind="x", status="ok",
                             seconds=1.0, attempts=2)
        state = SweepJournal(path).load_state()
        assert state.done == {"k"}
        assert not state.quarantined and not state.failed

    def test_truncated_tail_is_skipped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with SweepJournal(path) as journal:
            journal.job_done("k1", label="a", kind="x", status="ok",
                             seconds=1.0, attempts=1)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "job_done", "key": "k2", "trunc')  # SIGKILL
        state = SweepJournal(path).load_state()
        assert state.done == {"k1"}

    def test_missing_file_is_empty_state(self, tmp_path):
        state = SweepJournal(tmp_path / "nope.jsonl").load_state()
        assert not state


class TestResumableRuns:
    def test_interrupted_then_resumed_is_bitwise_identical(self, tmp_path):
        # Simulate a sweep killed after two of three cells: the journal
        # and cache hold the prefix; the resumed run serves it from the
        # cache and executes only the missing cell.
        jobs = [array_job(i) for i in range(3)]
        cache = ArtifactCache(tmp_path / "cache", version="1.0")
        journal_path = tmp_path / "journal.jsonl"
        with SweepJournal(journal_path) as journal:
            Runner(cache=cache, journal=journal,
                   resilience=QUICK).run(jobs[:2])
        events = EventLog()
        with SweepJournal(journal_path) as journal:
            resumed = Runner(cache=cache, journal=journal, events=events,
                             resilience=QUICK).run(jobs, resume=True)
        assert [r.cache_hit for r in resumed] == [True, True, False]
        clean = Runner(
            cache=ArtifactCache(tmp_path / "clean", version="1.0"),
            resilience=QUICK,
        ).run(jobs)
        for mine, theirs in zip(resumed, clean):
            assert np.array_equal(mine.value, theirs.value)

    def test_resume_skips_quarantined_cells(self, tmp_path):
        jobs = [array_job(0)]
        cache = ArtifactCache(tmp_path / "cache", version="1.0")
        key = cache.key_for(jobs[0])
        journal_path = tmp_path / "journal.jsonl"
        with SweepJournal(journal_path) as journal:
            journal.job_failed(
                key, quarantined=True,
                failure=JobFailure(index=0, label="a0", kind="res_array",
                                   failure="crash", message="poison"),
            )
        events = EventLog()
        with SweepJournal(journal_path) as journal:
            results = Runner(cache=cache, journal=journal, events=events,
                             resilience=QUICK).run(jobs, resume=True)
        assert results[0].failure is not None
        assert results[0].failure.failure == "quarantined"
        assert events.of_kind("job_skipped")
        assert events.of_kind("sweep_resumed")

    def test_without_resume_flag_journal_is_ignored(self, tmp_path):
        jobs = [array_job(0)]
        journal_path = tmp_path / "journal.jsonl"
        with SweepJournal(journal_path) as journal:
            journal.job_failed(
                "whatever", quarantined=True,
                failure=JobFailure(index=0, label="a0", kind="res_array",
                                   failure="crash", message="poison"),
            )
        with SweepJournal(journal_path) as journal:
            results = Runner(journal=journal,
                             resilience=QUICK).run(jobs, resume=False)
        assert results[0].failure is None


class TestPartialResults:
    def test_failures_collected_not_raised(self):
        jobs = [array_job(0, key=False),
                Job(kind="mystery", label="bad", payload={}),
                array_job(1, key=False)]
        results = Runner(resilience=QUICK).run(jobs)
        assert [r.ok for r in results] == [True, False, True]
        assert results[1].failure.failure == "unknown-kind"

    def test_fail_fast_config_still_raises(self):
        config = ResilienceConfig(
            retry=RetryPolicy(max_attempts=2, backoff_base=0.001),
            fail_fast=True,
        )
        jobs = [Job(kind="mystery", label="bad", payload={})]
        with pytest.raises(UnknownJobKindError):
            Runner(resilience=config).run(jobs)


class TestPoolResilience:
    def test_worker_crash_quarantines_poison_and_spares_innocents(self):
        jobs = [
            Job(kind="res_crash", label=f"c{i}", payload={"poison": i == 1},
                seed=i)
            for i in range(4)
        ]
        events = EventLog()
        config = ResilienceConfig(
            retry=RetryPolicy(max_attempts=6, backoff_base=0.001,
                              backoff_max=0.002),
            quarantine_after=2,
        )
        results = Runner(n_jobs=2, resilience=config,
                         events=events).run(jobs)
        assert results[1].failure is not None
        assert results[1].failure.failure == "quarantined"
        for index in (0, 2, 3):
            assert results[index].failure is None, results[index]
        assert events.of_kind("worker_crash")
        assert events.of_kind("job_quarantined")

    def test_pool_timeout_preempts_hung_worker(self):
        jobs = [
            Job(kind="res_sleep", label="hung", payload={"seconds": 30.0}),
            Job(kind="res_sleep", label="fast", payload={"seconds": 0.01}),
        ]
        config = ResilienceConfig(
            retry=RetryPolicy(max_attempts=1),
            timeout_seconds=1.0,
        )
        events = EventLog()
        started = time.monotonic()
        results = Runner(n_jobs=2, resilience=config,
                         events=events).run(jobs)
        assert time.monotonic() - started < 20.0
        assert results[0].failure is not None
        assert results[0].failure.failure == "timeout"
        assert results[1].failure is None
        assert events.of_kind("job_timeout")

    def test_pool_determinism_with_retries(self):
        # Retried jobs replay their construction-time seeds: a pool run
        # with transient chaos matches a clean inline run bitwise.
        from repro.runtime import FaultPlan, FaultRule

        jobs = [array_job(i, key=False) for i in range(3)]
        clean = Runner().run(jobs)
        plan = FaultPlan(rules=(
            FaultRule(site="job.run", kind="transient", until_attempt=1),
        ), seed=7)
        chaotic = Runner(n_jobs=2, resilience=QUICK, chaos=plan).run(jobs)
        for mine, theirs in zip(chaotic, clean):
            assert np.array_equal(mine.value, theirs.value)


class TestSweepResultSurface:
    def test_failed_rows_and_table(self):
        from repro.core.config import fast_config
        from repro.runtime import SweepSpec
        from repro.runtime.runner import SweepResult
        from repro.runtime.jobs import JobResult

        spec = SweepSpec(sizes=(30,), densities=(0.08,), seed=1,
                         kind="autoncs", config=fast_config())
        failure = JobFailure(index=0, label="n=30 d=0.08", kind="autoncs",
                             failure="timeout", message="m", attempts=3)
        result = SweepResult(spec=spec, results=[
            JobResult(index=0, label="n=30 d=0.08", kind="autoncs",
                      value=None, failure=failure, attempts=3),
        ])
        assert result.succeeded == 0
        assert [f.failure for f in result.failures] == ["timeout"]
        row = result.cell_rows()[0]
        assert row["status"] == "failed" and row["attempts"] == 3
        table = result.format_table()
        assert "FAILED(timeout, 3 attempt(s))" in table
        assert "1 FAILED" in table
