"""Job construction and SweepSpec seed-spawning contracts.

Runner-level behaviour (caching, events, parallel execution) lives in
test_runner.py; here we pin the job layer itself: validation, payload
construction, and the guarantee that every cell's RNG streams are fixed
at job *construction* — so execution order, subsetting or ``n_jobs``
cannot perturb what any job computes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import fast_config
from repro.runtime import Job, Runner, SweepSpec

FAST = fast_config()


def spec(**overrides):
    params = dict(sizes=(30, 36), densities=(0.06, 0.1), seed=23,
                  kind="fullcro", config=FAST, name="jobs-t")
    params.update(overrides)
    return SweepSpec(**params)


class TestJob:
    def test_rejects_empty_kind(self):
        with pytest.raises(ValueError, match="kind"):
            Job(kind="", label="x")

    def test_cacheable_iff_key_material_present(self):
        assert not Job(kind="autoncs", label="x").cacheable
        assert Job(kind="autoncs", label="x", key={"a": 1}).cacheable


class TestSweepSpecJobs:
    def test_normalizes_grid_types_and_length(self):
        s = spec(sizes=[30.0, 36], densities=[0.06, np.float64(0.1)])
        assert s.sizes == (30, 36)
        assert s.densities == (0.06, 0.1)
        assert len(s) == 4
        assert len(s.jobs()) == 4

    def test_payload_networks_are_bitwise_reproducible(self):
        first, second = spec().jobs(), spec().jobs()
        for a, b in zip(first, second):
            assert a.label == b.label
            assert np.array_equal(
                a.payload["network"].matrix, b.payload["network"].matrix
            )
            assert a.payload["network"].name == b.payload["network"].name

    def test_cells_get_distinct_networks(self):
        jobs = spec().jobs()
        digests = {job.key["network"] for job in jobs}
        assert len(digests) == len(jobs)

    def test_flow_streams_are_fixed_at_construction(self):
        """Each job's seed yields the same stream on every expansion, and
        the streams of different cells are independent draws."""
        first, second = spec().jobs(), spec().jobs()
        draws_first = [
            np.random.default_rng(job.seed).integers(0, 2**31, size=4).tolist()
            for job in first
        ]
        draws_second = [
            np.random.default_rng(job.seed).integers(0, 2**31, size=4).tolist()
            for job in second
        ]
        assert draws_first == draws_second
        assert len({tuple(d) for d in draws_first}) == len(draws_first)

    def test_reseeding_changes_every_stream(self):
        for a, b in zip(spec().jobs(), spec(seed=24).jobs()):
            assert a.key["network"] != b.key["network"]

    def test_execution_order_cannot_perturb_results(self):
        """Running the same jobs reversed produces identical per-cell
        values — the seeds were spawned per cell at construction."""
        runner = Runner(n_jobs=1)
        forward = runner.run(spec().jobs())
        backward = runner.run(list(reversed(spec().jobs())))
        by_label_fwd = {r.label: r.value.cost.total for r in forward}
        by_label_bwd = {r.label: r.value.cost.total for r in backward}
        assert by_label_fwd == by_label_bwd
