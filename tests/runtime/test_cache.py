"""Tests for the content-addressed artifact cache."""

import json
import pickle
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.core.config import fast_config
from repro.runtime import ArtifactCache, Job, job_cache_key


def make_job(seed=7, key=None):
    if key is None:
        key = {"network": "abc123", "size": 40}
    return Job(kind="autoncs", label="j", payload={}, seed=seed, key=key)


def _store_many(root, key, writer, rounds):
    """Worker: hammer one key with this writer's matching value+meta."""
    cache = ArtifactCache(root, version="1.0")
    for _ in range(rounds):
        cache.store(key, {"writer": writer}, meta={"writer": writer})
    return writer


class TestJobCacheKey:
    def test_uncacheable_without_key(self):
        job = Job(kind="autoncs", label="j", payload={}, seed=1, key=None)
        assert not job.cacheable
        assert job_cache_key(job, "1.0") is None

    def test_stable_across_calls(self):
        assert job_cache_key(make_job(), "1.0") == job_cache_key(make_job(), "1.0")

    def test_sensitive_to_every_component(self):
        base = job_cache_key(make_job(), "1.0")
        assert job_cache_key(make_job(seed=8), "1.0") != base
        assert job_cache_key(make_job(key={"network": "zzz"}), "1.0") != base
        assert job_cache_key(make_job(), "2.0") != base
        other_kind = Job(kind="fullcro", label="j", payload={},
                         seed=7, key={"network": "abc123", "size": 40})
        assert job_cache_key(other_kind, "1.0") != base

    def test_seed_sequence_seeds_are_hashable(self):
        seq = np.random.SeedSequence(3).spawn(2)[0]
        job = make_job(seed=seq)
        key = job_cache_key(job, "1.0")
        assert key is not None
        assert key == job_cache_key(make_job(seed=seq), "1.0")

    def test_config_hash_differs_between_configs(self):
        from repro.core.config import AutoNcsConfig

        assert AutoNcsConfig().cache_key() != fast_config().cache_key()


class TestArtifactCache:
    def test_roundtrip(self, tmp_path):
        cache = ArtifactCache(tmp_path, version="1.0")
        key = cache.key_for(make_job())
        hit, _ = cache.lookup(key)
        assert not hit and cache.misses == 1
        cache.store(key, {"answer": 42}, meta={"label": "j"})
        hit, value = cache.lookup(key)
        assert hit and value == {"answer": 42}
        assert cache.hits == 1
        assert len(cache) == 1

    def test_lookup_none_key_is_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path, version="1.0")
        assert cache.lookup(None) == (False, None)
        assert not cache.contains(None)

    def test_corrupt_entry_is_miss_and_removed(self, tmp_path):
        cache = ArtifactCache(tmp_path, version="1.0")
        key = cache.key_for(make_job())
        cache.store(key, [1, 2, 3])
        cache.path_for(key).write_bytes(b"not a pickle")
        hit, value = cache.lookup(key)
        assert not hit and value is None
        assert not cache.path_for(key).exists()

    def test_metadata_sidecar_written(self, tmp_path):
        cache = ArtifactCache(tmp_path, version="1.0")
        key = cache.key_for(make_job())
        path = cache.store(key, "v", meta={"label": "cell"})
        sidecar = path.with_suffix(".json")
        assert sidecar.exists()
        assert '"label"' in sidecar.read_text()

    def test_clear(self, tmp_path):
        cache = ArtifactCache(tmp_path, version="1.0")
        for seed in range(3):
            cache.store(cache.key_for(make_job(seed=seed)), seed)
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_version_partitions_entries(self, tmp_path):
        old = ArtifactCache(tmp_path, version="1.0")
        new = ArtifactCache(tmp_path, version="2.0")
        job = make_job()
        old.store(old.key_for(job), "old-value")
        hit, _ = new.lookup(new.key_for(job))
        assert not hit

    def test_default_version_is_package_version(self, tmp_path):
        import repro

        cache = ArtifactCache(tmp_path)
        assert cache.version == repro.__version__

    def test_concurrent_writers_commit_matching_pairs(self, tmp_path):
        # Regression test for the store race: the pickle and its JSON
        # sidecar commit as one unit under the per-key lock, so two
        # writers hammering the same key can never interleave one
        # writer's object with the other's metadata.
        cache = ArtifactCache(tmp_path, version="1.0")
        key = cache.key_for(make_job())
        with ProcessPoolExecutor(max_workers=4) as pool:
            futures = [
                pool.submit(_store_many, str(tmp_path), key, writer, 25)
                for writer in range(4)
            ]
            for future in futures:
                future.result()
        path = cache.path_for(key)
        with open(path, "rb") as handle:
            value = pickle.load(handle)
        sidecar = json.loads(path.with_suffix(".json").read_text())
        assert value["writer"] == sidecar["writer"]
        hit, read_back = cache.lookup(key)
        assert hit and read_back == value

    def test_rejects_unsupported_seed_type(self):
        job = Job(kind="autoncs", label="j", payload={},
                  seed="not-a-seed", key={"x": 1})
        with pytest.raises(TypeError):
            job_cache_key(job, "1.0")


class TestEviction:
    @staticmethod
    def _fill(cache, count, payload_bytes=2000):
        import time

        keys = []
        for seed in range(count):
            key = cache.key_for(make_job(seed=seed))
            cache.store(key, b"x" * payload_bytes, meta={"seed": seed})
            keys.append(key)
            time.sleep(0.002)  # strictly ordered mtimes for the LRU sort
        return keys

    def test_rejects_nonpositive_bound(self, tmp_path):
        with pytest.raises(ValueError):
            ArtifactCache(tmp_path, version="1.0", max_bytes=0)

    def test_unbounded_cache_never_evicts(self, tmp_path):
        cache = ArtifactCache(tmp_path, version="1.0")
        self._fill(cache, 5)
        assert cache.evict() == 0
        assert len(cache) == 5 and cache.evictions == 0

    def test_store_evicts_oldest_beyond_bound(self, tmp_path):
        import os

        cache = ArtifactCache(tmp_path, version="1.0", max_bytes=1)
        keys = self._fill(cache, 4)
        # max_bytes=1 can hold nothing, but eviction always spares the
        # most recent entry — the one the store that triggered it wrote.
        assert len(cache) == 1
        assert cache.evictions == 3
        assert cache.contains(keys[-1])
        # Both halves of each evicted pkl+json pair are gone (the
        # advisory .lock siblings legitimately remain).
        assert sum(1 for _ in cache.objects_dir.rglob("*.pkl")) == 1
        assert sum(1 for _ in cache.objects_dir.rglob("*.json")) == 1
        assert os.path.exists(cache.path_for(keys[-1]))

    def test_lookup_refreshes_lru_order(self, tmp_path):
        import os

        cache = ArtifactCache(tmp_path, version="1.0", max_bytes=None)
        keys = self._fill(cache, 3)
        # Make the mtimes strictly ordered, oldest first.
        for offset, key in enumerate(keys):
            stamp = 1_000_000 + offset
            for member in (cache.path_for(key),
                           cache.path_for(key).with_suffix(".json")):
                os.utime(member, (stamp, stamp))
        bounded = ArtifactCache(tmp_path, version="1.0", max_bytes=1)
        hit, _ = bounded.lookup(keys[0])  # refresh the oldest entry
        assert hit
        assert bounded.evict(max_bytes=bounded.total_bytes() - 1) >= 1
        assert bounded.contains(keys[0])      # refreshed: survived
        assert not bounded.contains(keys[1])  # now the oldest: evicted

    def test_total_bytes_counts_pickle_and_sidecar(self, tmp_path):
        cache = ArtifactCache(tmp_path, version="1.0")
        key = cache.key_for(make_job())
        path = cache.store(key, b"x" * 100, meta={"m": 1})
        expected = (path.stat().st_size
                    + path.with_suffix(".json").stat().st_size)
        assert cache.total_bytes() == expected

    def test_evicted_entry_is_a_clean_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path, version="1.0", max_bytes=1)
        keys = self._fill(cache, 2)
        hit, value = cache.lookup(keys[0])
        assert not hit and value is None
        hit, _ = cache.lookup(keys[-1])
        assert hit
