"""EventLog and ProgressPrinter in isolation (Runner wiring lives in
test_runner.py)."""

from __future__ import annotations

import io
import json
import threading

import pytest

from repro.runtime.events import EventLog, ProgressPrinter, follow_trace, tail_trace


def test_emit_returns_and_records_full_record():
    log = EventLog()
    record = log.emit("job_started", label="n=40 d=0.1", index=3)
    assert record["event"] == "job_started"
    assert record["label"] == "n=40 d=0.1"
    assert record["index"] == 3
    assert isinstance(record["ts"], float)
    assert log.events == [record]


def test_of_kind_preserves_emission_order():
    log = EventLog()
    log.emit("job_started", index=0)
    log.emit("job_finished", index=0)
    log.emit("job_started", index=1)
    log.emit("job_finished", index=1)
    finished = log.of_kind("job_finished")
    assert [r["index"] for r in finished] == [0, 1]
    assert log.of_kind("sweep_finished") == []


def test_trace_file_round_trips_every_event(tmp_path):
    trace = tmp_path / "nested" / "trace.jsonl"
    with EventLog(trace_path=trace) as log:
        log.emit("sweep_started", jobs=2, n_jobs=1)
        log.emit("job_finished", index=0, label="a", seconds=0.5, cache_hit=False)
        log.emit("sweep_finished", executed=2, cache_hits=0, seconds=1.0)
    lines = trace.read_text().splitlines()
    assert len(lines) == 3
    parsed = [json.loads(line) for line in lines]
    assert parsed == log.events  # canonical JSON loses nothing


def test_trace_file_appends_across_reopens(tmp_path):
    trace = tmp_path / "trace.jsonl"
    with EventLog(trace_path=trace) as log:
        log.emit("sweep_started", jobs=1)
    with EventLog(trace_path=trace) as log:
        log.emit("sweep_finished", executed=1)
    events = [json.loads(line)["event"] for line in trace.read_text().splitlines()]
    assert events == ["sweep_started", "sweep_finished"]


def test_close_keeps_memory_log_readable(tmp_path):
    log = EventLog(trace_path=tmp_path / "trace.jsonl")
    log.emit("sweep_started", jobs=1)
    log.close()
    log.close()  # idempotent
    record = log.emit("sweep_finished", executed=1)  # no trace, still recorded
    assert record in log.events
    assert len((tmp_path / "trace.jsonl").read_text().splitlines()) == 1


def test_printer_receives_every_record():
    seen = []
    log = EventLog(printer=seen.append)
    log.emit("sweep_started", jobs=1)
    log.emit("sweep_finished", executed=1)
    assert seen == log.events


def test_progress_printer_formats_sweep_lifecycle():
    stream = io.StringIO()
    printer = ProgressPrinter(stream=stream)
    printer({"event": "sweep_started", "jobs": 3, "n_jobs": 2})
    printer({"event": "job_finished", "label": "n=40 d=0.1", "seconds": 12.408,
             "cache_hit": False})
    printer({"event": "job_finished", "label": "n=40 d=0.05", "seconds": 0.0,
             "cache_hit": True})
    printer({"event": "job_started", "label": "ignored"})  # no output
    printer({"event": "sweep_finished", "executed": 2, "cache_hits": 1,
             "seconds": 12.5})
    lines = stream.getvalue().splitlines()
    assert lines[0] == "running 3 job(s), n_jobs=2"
    assert lines[1].startswith("[1/3] done   n=40 d=0.1")
    assert lines[1].endswith("12.41s")
    assert lines[2].startswith("[2/3] cached n=40 d=0.05")
    assert lines[3] == "finished: 2 executed, 1 cache hit(s), 12.50s wall"
    assert len(lines) == 4


class TestTailTrace:
    def test_missing_file_reads_empty(self, tmp_path):
        records, offset = tail_trace(tmp_path / "absent.jsonl")
        assert records == [] and offset == 0

    def test_offset_resumes_where_the_last_call_stopped(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        with EventLog(trace_path=trace) as log:
            log.emit("a")
            records, offset = log.tail()
            assert [r["event"] for r in records] == ["a"]
            log.emit("b")
            log.emit("c")
            records, offset = log.tail(offset)
            assert [r["event"] for r in records] == ["b", "c"]
            assert log.tail(offset) == ([], offset)  # drained

    def test_partial_last_line_is_left_for_the_next_poll(self, tmp_path):
        # A writer flushed mid-record: the torn tail must not be
        # consumed (and must not raise) — the next poll, after the
        # writer finishes the line, reads it whole.
        trace = tmp_path / "trace.jsonl"
        trace.write_text('{"event": "done"}\n{"event": "par')
        records, offset = tail_trace(trace)
        assert [r["event"] for r in records] == ["done"]
        with open(trace, "a") as handle:
            handle.write('tial"}\n')
        records, offset = tail_trace(trace, offset)
        assert [r["event"] for r in records] == ["partial"]

    def test_complete_garbage_line_is_skipped(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        trace.write_text('{"event": "a"}\nnot json\n[1, 2]\n{"event": "b"}\n')
        records, _offset = tail_trace(trace)
        assert [r["event"] for r in records] == ["a", "b"]

    def test_tail_requires_a_trace_path(self):
        with pytest.raises(ValueError):
            EventLog().tail()

    def test_concurrent_writer_and_reader_lose_nothing(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        total = 200

        def write():
            with EventLog(trace_path=trace) as log:
                for index in range(total):
                    log.emit("tick", index=index)

        writer = threading.Thread(target=write)
        writer.start()
        seen, offset = [], 0
        while len(seen) < total:
            records, offset = tail_trace(trace, offset)
            seen.extend(records)
            if not records and not writer.is_alive():
                records, offset = tail_trace(trace, offset)
                seen.extend(records)
                break
        writer.join()
        assert [r["index"] for r in seen] == list(range(total))


class TestFollowTrace:
    def test_follows_until_stop_and_drains_the_tail(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        log = EventLog(trace_path=trace)
        done = threading.Event()

        def write():
            for index in range(25):
                log.emit("tick", index=index)
            log.close()
            done.set()

        writer = threading.Thread(target=write)
        writer.start()
        events = list(
            follow_trace(trace, poll_seconds=0.001, stop=done.is_set)
        )
        writer.join()
        # The final drain guarantees records emitted just before the
        # stop flag are delivered, in order, exactly once.
        assert [r["index"] for r in events] == list(range(25))


def test_progress_printer_counts_reset_per_sweep():
    stream = io.StringIO()
    printer = ProgressPrinter(stream=stream)
    printer({"event": "job_finished", "label": "x", "seconds": 0.0})
    assert "[1/?]" in stream.getvalue()  # no sweep_started yet: unknown total
    printer({"event": "sweep_started", "jobs": 1, "n_jobs": 1})
    printer({"event": "job_finished", "label": "y", "seconds": 0.0})
    assert "[1/1]" in stream.getvalue().splitlines()[-1]
