"""Unit tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_binary_matrix,
    check_in_range,
    check_positive,
    check_probability,
    check_square,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        check_positive("x", 1.5)

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="must be > 0"):
            check_positive("x", 0)

    def test_allows_zero_when_requested(self):
        check_positive("x", 0, allow_zero=True)

    def test_rejects_negative_with_allow_zero(self):
        with pytest.raises(ValueError, match="must be >= 0"):
            check_positive("x", -1, allow_zero=True)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            check_positive("x", float("nan"))

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="finite"):
            check_positive("x", float("inf"))

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive("x", True)

    def test_rejects_non_scalar(self):
        with pytest.raises(TypeError):
            check_positive("x", [1, 2])


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        check_probability("p", value)

    @pytest.mark.parametrize("value", [-0.01, 1.01, 5.0])
    def test_rejects_outside(self, value):
        with pytest.raises(ValueError):
            check_probability("p", value)

    def test_rejects_non_scalar(self):
        with pytest.raises(TypeError):
            check_probability("p", [0.5])


class TestCheckInRange:
    def test_inclusive_bounds(self):
        check_in_range("v", 5, 5, 5)

    def test_exclusive_low(self):
        with pytest.raises(ValueError, match="must be >"):
            check_in_range("v", 5, 5, 10, low_inclusive=False)

    def test_exclusive_high(self):
        with pytest.raises(ValueError, match="must be <"):
            check_in_range("v", 10, 5, 10, high_inclusive=False)

    def test_below_low(self):
        with pytest.raises(ValueError, match="must be >="):
            check_in_range("v", 4, 5, None)

    def test_above_high(self):
        with pytest.raises(ValueError, match="must be <="):
            check_in_range("v", 11, None, 10)


class TestCheckSquare:
    def test_accepts_square(self):
        check_square("m", np.zeros((3, 3)))

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError, match="square"):
            check_square("m", np.zeros((3, 4)))

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="square"):
            check_square("m", np.zeros(5))

    def test_rejects_list(self):
        with pytest.raises(TypeError):
            check_square("m", [[0, 1], [1, 0]])


class TestCheckBinaryMatrix:
    def test_accepts_binary(self):
        check_binary_matrix("m", np.array([[0, 1], [1, 0]]))

    def test_accepts_all_zero(self):
        check_binary_matrix("m", np.zeros((4, 4)))

    def test_rejects_other_values(self):
        with pytest.raises(ValueError, match="0/1"):
            check_binary_matrix("m", np.array([[0, 2], [1, 0]]))

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="0/1"):
            check_binary_matrix("m", np.array([[0, -1], [1, 0]]))
