"""Tests for the re-entrant Timer and stage-time formatting."""

import time

import pytest

from repro.utils.timers import Timer, format_stage_seconds


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.01
        assert timer.elapsed_ms == pytest.approx(timer.elapsed * 1e3)

    def test_reentrant_nesting_preserves_outer_span(self):
        timer = Timer()
        with timer:
            assert timer.depth == 1
            with timer:
                assert timer.depth == 2
                time.sleep(0.01)
            inner = timer.elapsed
            time.sleep(0.01)
        assert timer.depth == 0
        assert not timer.running
        assert inner >= 0.01
        # the outer span covers the inner one plus the extra sleep
        assert timer.elapsed >= inner + 0.01

    def test_total_accumulates_outermost_spans_only(self):
        timer = Timer()
        with timer:
            with timer:
                pass
        first_total = timer.total
        assert first_total == pytest.approx(timer.elapsed)
        with timer:
            time.sleep(0.005)
        assert timer.total >= first_total + 0.005

    def test_running_flag(self):
        timer = Timer()
        assert not timer.running
        with timer:
            assert timer.running
        assert not timer.running


class TestFormatStageSeconds:
    def test_aligned_block_with_total(self):
        text = format_stage_seconds({"isc": 1.0, "placement": 3.0})
        lines = text.splitlines()
        assert len(lines) == 3
        assert "isc" in lines[0] and "( 25.0 %)" in lines[0]
        assert "placement" in lines[1] and "( 75.0 %)" in lines[1]
        assert "total" in lines[2] and "4.000 s" in lines[2]

    def test_insertion_order_preserved(self):
        text = format_stage_seconds({"z-last": 1.0, "a-first": 1.0})
        assert text.index("z-last") < text.index("a-first")

    def test_empty_mapping(self):
        assert "no stage timings" in format_stage_seconds({})

    def test_zero_total_avoids_division(self):
        text = format_stage_seconds({"isc": 0.0})
        assert "(  0.0 %)" in text

    def test_custom_indent(self):
        text = format_stage_seconds({"isc": 1.0}, indent=">>")
        assert all(line.startswith(">>") for line in text.splitlines())
