"""Unit tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rng


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).random(5)
        b = ensure_rng(2).random(5)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_numpy_integer_seed(self):
        assert isinstance(ensure_rng(np.int64(7)), np.random.Generator)

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestSpawnRng:
    def test_count(self):
        children = spawn_rng(0, 4)
        assert len(children) == 4

    def test_children_independent(self):
        children = spawn_rng(0, 2)
        a = children[0].random(5)
        b = children[1].random(5)
        assert not np.array_equal(a, b)

    def test_deterministic_from_seed(self):
        a = [g.random() for g in spawn_rng(9, 3)]
        b = [g.random() for g in spawn_rng(9, 3)]
        assert a == b


class TestTimer:
    def test_measures_nonnegative(self):
        from repro.utils.timers import Timer

        with Timer() as t:
            sum(range(100))
        assert t.elapsed >= 0.0
        assert t.elapsed_ms == pytest.approx(t.elapsed * 1000)
