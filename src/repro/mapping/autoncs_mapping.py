"""Mapping an ISC result onto hardware: the AutoNCS hybrid design."""

from __future__ import annotations

from typing import Optional

from repro.clustering.isc import IscResult
from repro.hardware.library import CrossbarLibrary
from repro.mapping.netlist import CrossbarInstance, MappingResult, build_netlist


def autoncs_mapping(
    isc_result: IscResult,
    library: Optional[CrossbarLibrary] = None,
    name: str = "AutoNCS",
) -> MappingResult:
    """Turn an :class:`IscResult` into a :class:`MappingResult` with a netlist.

    Each ISC crossbar assignment becomes a crossbar instance whose rows and
    columns are the cluster's neurons; each outlier connection becomes a
    discrete-synapse cell wired between its two neurons.
    """
    if library is None:
        library = CrossbarLibrary(sizes=isc_result.sizes)
    for size in {assignment.size for assignment in isc_result.crossbars}:
        if size not in library:
            raise ValueError(
                f"ISC placed a {size}x{size} crossbar but the library only "
                f"offers {library.sizes}"
            )
    instances = [
        CrossbarInstance(
            rows=assignment.members,
            cols=assignment.members,
            size=assignment.size,
            connections=assignment.connections,
        )
        for assignment in isc_result.crossbars
    ]
    synapses = list(isc_result.outliers)
    netlist = build_netlist(isc_result.network.size, instances, synapses, library)
    result = MappingResult(
        name=name,
        network=isc_result.network,
        instances=instances,
        synapse_connections=synapses,
        netlist=netlist,
        library=library,
        metadata={
            "isc_iterations": isc_result.iterations,
            "outlier_ratio": isc_result.outlier_ratio,
            "utilization_threshold": isc_result.utilization_threshold,
        },
    )
    result.validate()
    return result
