"""Cells, wires and netlists — the physical-design input (paper Sec. 3.5).

"In the phase of placement and routing, the crossbars and neurons are
considered as cells" with "mixed-size cells including neurons, memristors,
and crossbars" and "various wire weights between memristors and crossbars".
We model:

* one **neuron cell** per network neuron;
* one **crossbar cell** per placed crossbar;
* one **synapse cell** per outlier connection (a discrete memristor);
* 2-pin **wires**: neuron → crossbar for every row the neuron drives,
  crossbar → neuron for every column it reads, and neuron → synapse →
  neuron for each discrete connection.  Wire weights are RC-delay based —
  wires attached to slower (larger) cells are more timing-critical and get
  a larger weight, which the WA wirelength model then shortens first.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.hardware.library import CrossbarLibrary
from repro.networks.connection_matrix import ConnectionMatrix

#: Floor on wire weights so no wire is invisible to the objective.
_MIN_WIRE_WEIGHT = 0.05


class CellKind(str, enum.Enum):
    """The three mixed-size cell families of the AutoNCS physical design."""

    NEURON = "neuron"
    CROSSBAR = "crossbar"
    SYNAPSE = "synapse"


@dataclass(frozen=True)
class CrossbarInstance:
    """A placed crossbar connecting row neurons to column neurons.

    AutoNCS clusters yield ``rows == cols`` (a neuron set's mutual
    connections); FullCro block tiles have distinct row/column groups.
    """

    rows: Tuple[int, ...]
    cols: Tuple[int, ...]
    size: int
    connections: Tuple[Tuple[int, int], ...]

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError(f"size must be >= 1, got {self.size}")
        if len(self.rows) > self.size or len(self.cols) > self.size:
            raise ValueError(
                f"{len(self.rows)} rows / {len(self.cols)} cols exceed "
                f"crossbar size {self.size}"
            )
        if len(set(self.rows)) != len(self.rows) or len(set(self.cols)) != len(self.cols):
            raise ValueError("row/column neuron lists must be unique")
        row_set, col_set = set(self.rows), set(self.cols)
        for i, j in self.connections:
            if i not in row_set or j not in col_set:
                raise ValueError(f"connection ({i}, {j}) outside the crossbar's rows/cols")
        if len(set(self.connections)) != len(self.connections):
            raise ValueError("duplicate connections in a crossbar instance")

    @property
    def utilized_connections(self) -> int:
        """The paper's ``m`` for this crossbar."""
        return len(self.connections)

    @property
    def utilization(self) -> float:
        """``u = m / s²``."""
        return self.utilized_connections / float(self.size * self.size)


@dataclass(frozen=True)
class Cell:
    """One placeable object with its physical footprint and intrinsic delay."""

    name: str
    kind: CellKind
    width: float
    height: float
    intrinsic_delay_ns: float = 0.0
    metadata: dict = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError(f"cell {self.name}: width/height must be > 0")
        if self.intrinsic_delay_ns < 0:
            raise ValueError(f"cell {self.name}: intrinsic_delay_ns must be >= 0")

    @property
    def area(self) -> float:
        """Footprint in µm²."""
        return self.width * self.height


@dataclass(frozen=True)
class Wire:
    """A weighted 2-pin wire between two cells (by cell index)."""

    source: int
    target: int
    weight: float = 1.0
    name: str = ""

    def __post_init__(self) -> None:
        if self.source == self.target:
            raise ValueError(f"wire {self.name!r} connects a cell to itself")
        if self.weight <= 0:
            raise ValueError(f"wire {self.name!r}: weight must be > 0, got {self.weight}")


@dataclass
class Netlist:
    """Cells plus weighted wires — the input to placement and routing."""

    cells: List[Cell]
    wires: List[Wire]

    def __post_init__(self) -> None:
        n = len(self.cells)
        for wire in self.wires:
            if not (0 <= wire.source < n and 0 <= wire.target < n):
                raise ValueError(
                    f"wire {wire.name!r} references cell indices "
                    f"({wire.source}, {wire.target}) outside [0, {n})"
                )

    @property
    def num_cells(self) -> int:
        """Number of cells."""
        return len(self.cells)

    @property
    def num_wires(self) -> int:
        """Number of wires."""
        return len(self.wires)

    @property
    def total_cell_area(self) -> float:
        """Sum of cell footprints in µm²."""
        return float(sum(cell.area for cell in self.cells))

    def cells_of_kind(self, kind: CellKind) -> List[int]:
        """Indices of all cells of one kind."""
        return [i for i, cell in enumerate(self.cells) if cell.kind == kind]

    def widths(self) -> np.ndarray:
        """Cell widths as an array (placement consumes vectors)."""
        return np.array([cell.width for cell in self.cells])

    def heights(self) -> np.ndarray:
        """Cell heights as an array."""
        return np.array([cell.height for cell in self.cells])

    def wire_endpoints(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(sources, targets, weights)`` arrays over all wires."""
        sources = np.array([w.source for w in self.wires], dtype=int)
        targets = np.array([w.target for w in self.wires], dtype=int)
        weights = np.array([w.weight for w in self.wires], dtype=float)
        return sources, targets, weights


@dataclass
class FaninFanoutBreakdown:
    """Per-neuron wire counts split by implementation medium (Fig. 7–9(d)).

    ``crossbar[i]`` counts the crossbar ports neuron ``i`` occupies (one
    wire per occupied row or column), ``synapse[i]`` the discrete-synapse
    wires incident to it; ``total`` is their sum — the paper's
    "fanin+fanout" congestion proxy.
    """

    crossbar: np.ndarray
    synapse: np.ndarray

    @property
    def total(self) -> np.ndarray:
        """Crossbar plus synapse wire counts per neuron."""
        return self.crossbar + self.synapse

    @property
    def average_total(self) -> float:
        """Mean fanin+fanout over all neurons (the "Avg. sum" of Fig. 9(d))."""
        return float(self.total.mean()) if self.total.size else 0.0


def fanin_fanout_breakdown(
    n_neurons: int,
    instances: Sequence[CrossbarInstance],
    synapse_connections: Sequence[Tuple[int, int]],
) -> FaninFanoutBreakdown:
    """Count per-neuron crossbar-port and synapse wires."""
    crossbar = np.zeros(n_neurons, dtype=int)
    synapse = np.zeros(n_neurons, dtype=int)
    for instance in instances:
        for neuron in instance.rows:
            crossbar[neuron] += 1
        for neuron in instance.cols:
            crossbar[neuron] += 1
    for i, j in synapse_connections:
        synapse[i] += 1
        synapse[j] += 1
    return FaninFanoutBreakdown(crossbar=crossbar, synapse=synapse)


def build_netlist(
    n_neurons: int,
    instances: Sequence[CrossbarInstance],
    synapse_connections: Sequence[Tuple[int, int]],
    library: CrossbarLibrary,
) -> Netlist:
    """Construct the physical netlist for a mapped design.

    Cell order: neurons ``0..n-1`` first (cell index == neuron index), then
    one cell per crossbar instance, then one cell per discrete synapse.
    """
    if n_neurons < 1:
        raise ValueError(f"n_neurons must be >= 1, got {n_neurons}")
    technology = library.technology
    cells: List[Cell] = []
    neuron_side = library.neuron.side_um
    for i in range(n_neurons):
        cells.append(
            Cell(
                name=f"neuron{i}",
                kind=CellKind.NEURON,
                width=neuron_side,
                height=neuron_side,
                intrinsic_delay_ns=0.0,
                metadata={"neuron": i},
            )
        )
    reference_delay = technology.crossbar_delay_ns(library.max_size)
    wires: List[Wire] = []
    for idx, instance in enumerate(instances):
        spec = library.spec(instance.size)
        cell_index = len(cells)
        cells.append(
            Cell(
                name=f"xbar{idx}_s{instance.size}",
                kind=CellKind.CROSSBAR,
                width=spec.side_um,
                height=spec.side_um,
                intrinsic_delay_ns=spec.delay_ns,
                metadata={"instance": idx, "size": instance.size},
            )
        )
        weight = max(spec.delay_ns / reference_delay, _MIN_WIRE_WEIGHT)
        for neuron in instance.rows:
            wires.append(
                Wire(source=neuron, target=cell_index, weight=weight, name=f"n{neuron}->x{idx}")
            )
        for neuron in instance.cols:
            wires.append(
                Wire(source=cell_index, target=neuron, weight=weight, name=f"x{idx}->n{neuron}")
            )
    synapse_side = library.synapse.side_um
    synapse_weight = max(library.synapse.delay_ns / reference_delay, _MIN_WIRE_WEIGHT)
    for idx, (i, j) in enumerate(synapse_connections):
        if not (0 <= i < n_neurons and 0 <= j < n_neurons):
            raise ValueError(f"synapse connection ({i}, {j}) outside neuron range")
        cell_index = len(cells)
        cells.append(
            Cell(
                name=f"syn{idx}_{i}_{j}",
                kind=CellKind.SYNAPSE,
                width=synapse_side,
                height=synapse_side,
                intrinsic_delay_ns=library.synapse.delay_ns,
                metadata={"connection": (i, j)},
            )
        )
        wires.append(Wire(source=i, target=cell_index, weight=synapse_weight, name=f"n{i}->s{idx}"))
        wires.append(Wire(source=cell_index, target=j, weight=synapse_weight, name=f"s{idx}->n{j}"))
    return Netlist(cells=cells, wires=wires)


@dataclass
class MappingResult:
    """A network fully mapped to hardware: instances + synapses + netlist."""

    name: str
    network: ConnectionMatrix
    instances: List[CrossbarInstance]
    synapse_connections: List[Tuple[int, int]]
    netlist: Netlist
    library: CrossbarLibrary
    metadata: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def num_crossbars(self) -> int:
        """Number of placed crossbars."""
        return len(self.instances)

    @property
    def num_synapses(self) -> int:
        """Number of discrete synapses."""
        return len(self.synapse_connections)

    @property
    def average_utilization(self) -> float:
        """Mean crossbar utilization ``u`` over all instances."""
        if not self.instances:
            return 0.0
        return float(np.mean([x.utilization for x in self.instances]))

    @property
    def clustered_connection_ratio(self) -> float:
        """Fraction of connections absorbed by crossbars."""
        total = self.network.num_connections
        if total == 0:
            return 0.0
        clustered = sum(x.utilized_connections for x in self.instances)
        return clustered / total

    def crossbar_size_histogram(self) -> Dict[int, int]:
        """Size → count over placed crossbars."""
        histogram: Dict[int, int] = {}
        for instance in self.instances:
            histogram[instance.size] = histogram.get(instance.size, 0) + 1
        return dict(sorted(histogram.items()))

    def fanin_fanout(self) -> FaninFanoutBreakdown:
        """Per-neuron wire-count breakdown (Fig. 7–9(d))."""
        return fanin_fanout_breakdown(
            self.network.size, self.instances, self.synapse_connections
        )

    def validate(self) -> None:
        """Assert every network connection is implemented exactly once."""
        implemented: set = set()
        for instance in self.instances:
            for pair in instance.connections:
                assert pair not in implemented, f"connection {pair} implemented twice"
                implemented.add(pair)
        for pair in self.synapse_connections:
            assert pair not in implemented, f"synapse {pair} duplicates a crossbar connection"
            implemented.add(pair)
        expected = set(self.network.connection_list())
        assert implemented == expected, (
            f"mapping implements {len(implemented)} connections, "
            f"network has {len(expected)}"
        )

    def summary(self) -> Dict[str, float]:
        """Scalar summary used by reports and benchmark printouts."""
        histogram = self.crossbar_size_histogram()
        return {
            "design": self.name,
            "neurons": self.network.size,
            "connections": self.network.num_connections,
            "crossbars": self.num_crossbars,
            "synapses": self.num_synapses,
            "average_utilization": self.average_utilization,
            "clustered_ratio": self.clustered_connection_ratio,
            "mean_crossbar_size": (
                float(np.mean([x.size for x in self.instances])) if self.instances else 0.0
            ),
            "size_histogram": histogram,
            "average_fanin_fanout": self.fanin_fanout().average_total,
        }

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible dict (the repo-wide result-object surface)."""
        return {
            **self.summary(),
            "netlist_cells": self.netlist.num_cells,
            "netlist_wires": len(self.netlist.wires),
        }

    def format_table(self) -> str:
        """Aligned plain-text summary (the repo-wide result-object surface)."""
        data = self.to_dict()
        width = max(len(key) for key in data)
        lines = [f"mapping {self.name}"]
        for key, value in data.items():
            if key == "design":
                continue
            if isinstance(value, float):
                rendered = f"{value:.4f}"
            else:
                rendered = str(value)
            lines.append(f"  {key:<{width}}  {rendered}")
        return "\n".join(lines)


def _round_up(value: float) -> int:  # pragma: no cover - tiny helper
    return int(math.ceil(value))
