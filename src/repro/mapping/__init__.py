"""Mapping a clustered network onto hardware cells and wires.

* :mod:`~repro.mapping.netlist` — cells (crossbars, neurons, discrete
  synapses), weighted 2-pin wires, and the netlist builder shared by both
  designs.
* :mod:`~repro.mapping.fullcro` — the paper's brute-force baseline: only
  maximum-size crossbars (Sec. 4.2).
* :mod:`~repro.mapping.autoncs_mapping` — the hybrid AutoNCS mapping
  produced from an ISC result.
"""

from repro.mapping.autoncs_mapping import autoncs_mapping
from repro.mapping.fullcro import fullcro_mapping, fullcro_utilization
from repro.mapping.netlist import (
    Cell,
    CellKind,
    CrossbarInstance,
    FaninFanoutBreakdown,
    MappingResult,
    Netlist,
    Wire,
    build_netlist,
    fanin_fanout_breakdown,
)

__all__ = [
    "Cell",
    "CellKind",
    "CrossbarInstance",
    "FaninFanoutBreakdown",
    "MappingResult",
    "Netlist",
    "Wire",
    "autoncs_mapping",
    "build_netlist",
    "fanin_fanout_breakdown",
    "fullcro_mapping",
    "fullcro_utilization",
]
