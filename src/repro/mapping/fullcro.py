"""The FullCro baseline: brute-force maximum-size crossbars (paper Sec. 4.2).

"We define the baseline design as a full crossbar design (denoted as
'FullCro') that uses only crossbars with a size of 64 to implement the
neural network."  Neurons are partitioned into consecutive groups of the
maximum crossbar size; every (row-group, column-group) block containing at
least one connection is realized by one maximum-size crossbar.  No discrete
synapses are used.  FullCro's average utilization is the ISC stopping
threshold ``t`` of the experiments.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.hardware.library import CrossbarLibrary
from repro.mapping.netlist import CrossbarInstance, MappingResult, build_netlist
from repro.networks.connection_matrix import ConnectionMatrix


def _neuron_groups(n: int, group_size: int) -> List[np.ndarray]:
    """Split ``range(n)`` into consecutive chunks of ``group_size``."""
    return [np.arange(start, min(start + group_size, n)) for start in range(0, n, group_size)]


def fullcro_instances(
    network: ConnectionMatrix, max_size: int
) -> List[CrossbarInstance]:
    """Build the FullCro crossbar instances (one per non-empty block).

    Rows/columns of each instance are restricted to the neurons that carry
    at least one connection inside the block — unconnected rows would add
    dead wires that serve nothing.
    """
    if max_size < 1:
        raise ValueError(f"max_size must be >= 1, got {max_size}")
    matrix = network.matrix
    groups = _neuron_groups(network.size, max_size)
    instances: List[CrossbarInstance] = []
    for gi in groups:
        for gj in groups:
            block = matrix[np.ix_(gi, gj)]
            if not block.any():
                continue
            rows_local, cols_local = np.nonzero(block)
            connections = tuple(
                (int(gi[r]), int(gj[c])) for r, c in zip(rows_local, cols_local)
            )
            active_rows = tuple(int(gi[r]) for r in np.unique(rows_local))
            active_cols = tuple(int(gj[c]) for c in np.unique(cols_local))
            instances.append(
                CrossbarInstance(
                    rows=active_rows,
                    cols=active_cols,
                    size=max_size,
                    connections=connections,
                )
            )
    return instances


def fullcro_utilization(network: ConnectionMatrix, max_size: int = 64) -> float:
    """Average utilization of the FullCro design — ISC's stop threshold ``t``.

    "The iteration of ISC stops when the average crossbar utilization is
    below that of the baseline design" (Sec. 4.2).
    """
    instances = fullcro_instances(network, max_size)
    if not instances:
        return 0.0
    return float(np.mean([x.utilization for x in instances]))


def fullcro_mapping(
    network: ConnectionMatrix,
    library: Optional[CrossbarLibrary] = None,
    name: str = "FullCro",
) -> MappingResult:
    """Map ``network`` with only maximum-size crossbars and build its netlist."""
    if library is None:
        library = CrossbarLibrary()
    instances = fullcro_instances(network, library.max_size)
    synapses: List[Tuple[int, int]] = []
    netlist = build_netlist(network.size, instances, synapses, library)
    result = MappingResult(
        name=name,
        network=network,
        instances=instances,
        synapse_connections=synapses,
        netlist=netlist,
        library=library,
        metadata={"max_size": library.max_size},
    )
    result.validate()
    return result
