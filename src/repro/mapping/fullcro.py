"""The FullCro baseline: brute-force maximum-size crossbars (paper Sec. 4.2).

"We define the baseline design as a full crossbar design (denoted as
'FullCro') that uses only crossbars with a size of 64 to implement the
neural network."  Neurons are partitioned into consecutive groups of the
maximum crossbar size; every (row-group, column-group) block containing at
least one connection is realized by one maximum-size crossbar.  No discrete
synapses are used.  FullCro's average utilization is the ISC stopping
threshold ``t`` of the experiments.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.hardware.library import CrossbarLibrary
from repro.mapping.netlist import CrossbarInstance, MappingResult, build_netlist
from repro.networks.connection_matrix import ConnectionMatrix


def _block_sorted_edges(
    network: ConnectionMatrix, max_size: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Edges sorted in FullCro instance order, plus per-block edge counts.

    Returns ``(rows, cols, counts)``: the connection arrays reordered by
    ``(block_row, block_col, i, j)`` — exactly the order the historical
    per-block ``np.nonzero`` iteration visited them in — and the number of
    edges in each non-empty block, in the same block order.
    """
    rows, cols = network.connection_arrays()
    block_rows = rows // max_size
    block_cols = cols // max_size
    # lexsort keys: last key is primary → (block_row, block_col, i, j).
    order = np.lexsort((cols, rows, block_cols, block_rows))
    rows, cols = rows[order], cols[order]
    block_rows, block_cols = block_rows[order], block_cols[order]
    num_blocks = -(-network.size // max_size) if network.size else 0
    block_key = block_rows * max(num_blocks, 1) + block_cols
    _, starts, counts = np.unique(block_key, return_index=True, return_counts=True)
    # np.unique sorts the keys, which matches the (block_row, block_col)
    # iteration order already established by the lexsort.
    return rows, cols, counts


def fullcro_instances(
    network: ConnectionMatrix, max_size: int
) -> List[CrossbarInstance]:
    """Build the FullCro crossbar instances (one per non-empty block).

    Rows/columns of each instance are restricted to the neurons that carry
    at least one connection inside the block — unconnected rows would add
    dead wires that serve nothing.
    """
    if max_size < 1:
        raise ValueError(f"max_size must be >= 1, got {max_size}")
    rows, cols, counts = _block_sorted_edges(network, max_size)
    instances: List[CrossbarInstance] = []
    start = 0
    for count in counts:
        stop = start + int(count)
        block_rows = rows[start:stop]
        block_cols = cols[start:stop]
        instances.append(
            CrossbarInstance(
                rows=tuple(np.unique(block_rows).tolist()),
                cols=tuple(np.unique(block_cols).tolist()),
                size=max_size,
                connections=tuple(zip(block_rows.tolist(), block_cols.tolist())),
            )
        )
        start = stop
    return instances


def fullcro_utilization(network: ConnectionMatrix, max_size: int = 64) -> float:
    """Average utilization of the FullCro design — ISC's stop threshold ``t``.

    "The iteration of ISC stops when the average crossbar utilization is
    below that of the baseline design" (Sec. 4.2).

    Computed straight from per-block edge counts — never instantiates the
    crossbars, so it stays O(connections) on 100k-neuron networks.
    """
    if max_size < 1:
        raise ValueError(f"max_size must be >= 1, got {max_size}")
    _, _, counts = _block_sorted_edges(network, max_size)
    if counts.size == 0:
        return 0.0
    return float(np.mean(counts.astype(float) / float(max_size * max_size)))


def fullcro_mapping(
    network: ConnectionMatrix,
    library: Optional[CrossbarLibrary] = None,
    name: str = "FullCro",
) -> MappingResult:
    """Map ``network`` with only maximum-size crossbars and build its netlist."""
    if library is None:
        library = CrossbarLibrary()
    instances = fullcro_instances(network, library.max_size)
    synapses: List[Tuple[int, int]] = []
    netlist = build_netlist(network.size, instances, synapses, library)
    result = MappingResult(
        name=name,
        network=network,
        instances=instances,
        synapse_connections=synapses,
        netlist=netlist,
        library=library,
        metadata={"max_size": library.max_size},
    )
    result.validate()
    return result
