"""Discrete memristor synapse cell (paper Fig. 1(a), [2]).

A discrete synapse makes one point-to-point connection between two neurons:
a memristor storing the weight plus its access circuitry.  It is the
efficient choice for sparse, isolated connections that would waste a
crossbar (Sec. 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
import math

from repro.hardware.technology import Technology


@dataclass(frozen=True)
class DiscreteSynapse:
    """Geometry and timing of a discrete synapse cell."""

    area_um2: float
    delay_ns: float

    def __post_init__(self) -> None:
        if self.area_um2 <= 0:
            raise ValueError(f"area_um2 must be > 0, got {self.area_um2}")
        if self.delay_ns <= 0:
            raise ValueError(f"delay_ns must be > 0, got {self.delay_ns}")

    @property
    def side_um(self) -> float:
        """Side of the (square) cell footprint."""
        return math.sqrt(self.area_um2)

    @classmethod
    def from_technology(cls, technology: Technology) -> "DiscreteSynapse":
        """Build the synapse cell spec under ``technology``."""
        return cls(
            area_um2=technology.synapse_area_um2,
            delay_ns=technology.synapse_delay_ns,
        )
