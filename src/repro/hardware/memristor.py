"""A behavioural memristor device model (paper Sec. 2.1).

The synaptic weight is stored as the device conductance: programming pulses
move the state variable between ``R_on`` (fully conductive) and ``R_off``.
The model captures what the EDA flow and the analog simulator need —
weight↔conductance mapping, bounded programming with write variation — not
full ion-migration dynamics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive, check_probability


@dataclass
class Memristor:
    """A single memristive synapse device.

    Attributes
    ----------
    r_on / r_off:
        Low / high resistance bounds in ohms.
    state:
        Normalized internal state in [0, 1]; 1 means fully ON (``R_on``).
    """

    r_on: float = 1e3
    r_off: float = 1e6
    state: float = 0.0

    def __post_init__(self) -> None:
        check_positive("r_on", self.r_on)
        check_positive("r_off", self.r_off)
        if self.r_on >= self.r_off:
            raise ValueError(f"r_on ({self.r_on}) must be < r_off ({self.r_off})")
        check_probability("state", self.state)

    # ------------------------------------------------------------------
    @property
    def conductance(self) -> float:
        """Device conductance in siemens for the current state.

        Conductance interpolates linearly in the state variable:
        ``G = G_off + state · (G_on - G_off)``.
        """
        g_on = 1.0 / self.r_on
        g_off = 1.0 / self.r_off
        return g_off + self.state * (g_on - g_off)

    @property
    def resistance(self) -> float:
        """Device resistance in ohms (reciprocal of :attr:`conductance`)."""
        return 1.0 / self.conductance

    # ------------------------------------------------------------------
    def program_weight(
        self, weight: float, variation_sigma: float = 0.0, rng: RngLike = None
    ) -> float:
        """Program a normalized weight in [0, 1] into the device state.

        ``variation_sigma`` adds multiplicative lognormal-ish write noise
        (clipped back to [0, 1]), modelling process/programming variation
        (Sec. 2.1 [6]).  Returns the state actually stored.
        """
        check_probability("weight", weight)
        if variation_sigma < 0:
            raise ValueError(f"variation_sigma must be >= 0, got {variation_sigma}")
        value = float(weight)
        if variation_sigma > 0.0:
            rng = ensure_rng(rng)
            value *= float(np.exp(rng.normal(0.0, variation_sigma)))
        self.state = float(np.clip(value, 0.0, 1.0))
        return self.state

    def read_current(self, voltage: float) -> float:
        """Ohmic read: ``I = G · V`` (amps)."""
        return self.conductance * voltage


def weights_to_conductances(
    weights: np.ndarray,
    r_on: float = 1e3,
    r_off: float = 1e6,
    variation_sigma: float = 0.0,
    rng: RngLike = None,
) -> np.ndarray:
    """Vectorized weight→conductance mapping for a whole crossbar.

    ``weights`` must lie in [0, 1]; the return value is the conductance
    matrix in siemens with optional multiplicative write variation.
    """
    weights = np.asarray(weights, dtype=float)
    if np.any(weights < 0.0) or np.any(weights > 1.0):
        raise ValueError("weights must lie in [0, 1]")
    check_positive("r_on", r_on)
    check_positive("r_off", r_off)
    if r_on >= r_off:
        raise ValueError(f"r_on ({r_on}) must be < r_off ({r_off})")
    if variation_sigma < 0:
        raise ValueError(f"variation_sigma must be >= 0, got {variation_sigma}")
    effective = weights
    if variation_sigma > 0.0:
        rng = ensure_rng(rng)
        noise = np.exp(rng.normal(0.0, variation_sigma, size=weights.shape))
        effective = np.clip(weights * noise, 0.0, 1.0)
    g_on = 1.0 / r_on
    g_off = 1.0 / r_off
    return g_off + effective * (g_on - g_off)
