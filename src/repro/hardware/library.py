"""The crossbar library: the predefined fixed-size crossbars of AutoNCS.

The experiments use "allowable crossbar sizes rang[ing] from 16 to 64 at a
step of 4" (Sec. 4.2); the library resolves each cluster to its *minimum
satisfiable* crossbar (Algorithm 3 line 11) and supplies area/delay specs.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.clustering.isc import DEFAULT_CROSSBAR_SIZES
from repro.hardware.crossbar import CrossbarSpec
from repro.hardware.neuron import IntegrateFireNeuron
from repro.hardware.synapse import DiscreteSynapse
from repro.hardware.technology import DEFAULT_TECHNOLOGY, Technology


class CrossbarLibrary:
    """A set of crossbar sizes with their physical specs under a technology.

    Parameters
    ----------
    sizes:
        Allowed crossbar dimensions (paper default: 16..64 step 4).
    technology:
        The :class:`Technology` supplying geometry and timing.
    """

    def __init__(
        self,
        sizes: Sequence[int] = DEFAULT_CROSSBAR_SIZES,
        technology: Technology = DEFAULT_TECHNOLOGY,
    ) -> None:
        size_list = sorted(set(int(s) for s in sizes))
        if not size_list:
            raise ValueError("sizes must be non-empty")
        if size_list[0] < 1:
            raise ValueError(f"crossbar sizes must be >= 1, got {size_list[0]}")
        self.technology = technology
        self._specs: Dict[int, CrossbarSpec] = {
            s: CrossbarSpec.from_technology(s, technology) for s in size_list
        }
        self.synapse = DiscreteSynapse.from_technology(technology)
        self.neuron = IntegrateFireNeuron.from_technology(technology)

    # ------------------------------------------------------------------
    @property
    def sizes(self) -> Tuple[int, ...]:
        """Ascending library sizes."""
        return tuple(sorted(self._specs))

    @property
    def max_size(self) -> int:
        """Largest crossbar available (the paper's reliability limit, 64)."""
        return self.sizes[-1]

    @property
    def min_size(self) -> int:
        """Smallest crossbar available."""
        return self.sizes[0]

    def spec(self, size: int) -> CrossbarSpec:
        """Spec of an exact library size; raises ``KeyError`` if absent."""
        try:
            return self._specs[int(size)]
        except KeyError:
            raise KeyError(
                f"crossbar size {size} is not in the library {self.sizes}"
            ) from None

    def minimum_satisfiable(self, cluster_size: int) -> Optional[CrossbarSpec]:
        """Smallest library crossbar fitting ``cluster_size`` neurons, or None."""
        if cluster_size < 0:
            raise ValueError(f"cluster_size must be >= 0, got {cluster_size}")
        for s in self.sizes:
            if s >= cluster_size:
                return self._specs[s]
        return None

    def __contains__(self, size: int) -> bool:
        return int(size) in self._specs

    def __iter__(self):
        return (self._specs[s] for s in self.sizes)

    def __len__(self) -> int:
        return len(self._specs)

    def __repr__(self) -> str:
        return f"CrossbarLibrary(sizes={self.sizes})"
