"""Analog crossbar evaluation: T = A·F with non-idealities (extension).

The paper's preliminaries (Sec. 2.1–2.2) explain *why* crossbars are capped
at 64×64: IR-drop, device defects and process variation degrade programming
and computing reliability as the array grows [6].  This module implements
the corresponding behavioural simulation so that a mapped design can be
functionally validated, not just costed:

* :class:`CrossbarSimulator` — one crossbar computing output currents from
  input voltages through a conductance matrix, with programming variation,
  stuck-at defects, and a first-order IR-drop attenuation that grows with
  array size and with distance from the drivers.
* :class:`HybridNcsSimulator` — the full hybrid implementation: every
  crossbar block plus the discrete-synapse outliers jointly evaluate
  ``y = W x``, so Hopfield recall can be replayed *on the mapped hardware*.
  It accepts either an :class:`~repro.clustering.isc.IscResult` or a
  :class:`~repro.mapping.netlist.MappingResult` (e.g. a repaired mapping
  from :mod:`repro.reliability`), and an optional structural defect map
  whose stuck cells / dead lines are applied to the programmed arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.clustering.isc import IscResult
from repro.hardware.memristor import weights_to_conductances
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_probability


@dataclass
class NonIdealityModel:
    """Knobs for analog crossbar imperfections.

    Attributes
    ----------
    variation_sigma:
        Lognormal programming-variation sigma on device weights.
    stuck_off_probability / stuck_on_probability:
        Per-device defect rates: stuck-off devices read as weight 0,
        stuck-on devices as weight 1.
    ir_drop_coefficient:
        First-order IR-drop strength: the effective drive seen by device
        ``(i, j)`` of an ``s × s`` array is attenuated by
        ``1 / (1 + coeff · s · (i + j) / (2s))`` — deeper devices on longer
        lines see a weaker signal, and the effect grows with array size.
    """

    variation_sigma: float = 0.0
    stuck_off_probability: float = 0.0
    stuck_on_probability: float = 0.0
    ir_drop_coefficient: float = 0.0

    def __post_init__(self) -> None:
        if self.variation_sigma < 0:
            raise ValueError(f"variation_sigma must be >= 0, got {self.variation_sigma}")
        check_probability("stuck_off_probability", self.stuck_off_probability)
        check_probability("stuck_on_probability", self.stuck_on_probability)
        if self.stuck_off_probability + self.stuck_on_probability > 1.0:
            raise ValueError("stuck-off + stuck-on probabilities exceed 1")
        if self.ir_drop_coefficient < 0:
            raise ValueError(
                f"ir_drop_coefficient must be >= 0, got {self.ir_drop_coefficient}"
            )


IDEAL = NonIdealityModel()


class CrossbarSimulator:
    """Analog evaluation of one programmed crossbar.

    Parameters
    ----------
    weights:
        ``(s, s)`` matrix of normalized weights in [0, 1]; ``weights[i, j]``
        connects input (row) ``i`` to output (column) ``j``.
    model:
        Non-ideality knobs; defaults to an ideal crossbar.
    """

    def __init__(
        self,
        weights: np.ndarray,
        model: NonIdealityModel = IDEAL,
        r_on: float = 1e3,
        r_off: float = 1e6,
        rng: RngLike = None,
        stuck_off_mask: Optional[np.ndarray] = None,
        stuck_on_mask: Optional[np.ndarray] = None,
    ) -> None:
        weights = np.asarray(weights, dtype=float)
        if weights.ndim != 2 or weights.shape[0] != weights.shape[1]:
            raise ValueError(f"weights must be square, got shape {weights.shape}")
        if np.any(weights < 0.0) or np.any(weights > 1.0):
            raise ValueError("weights must lie in [0, 1]")
        rng = ensure_rng(rng)
        self.model = model
        self.size = weights.shape[0]
        programmed = weights.copy()
        # Statistical defect injection: stuck-off → 0, stuck-on → 1.
        if model.stuck_off_probability > 0.0 or model.stuck_on_probability > 0.0:
            roll = rng.random(weights.shape)
            programmed[roll < model.stuck_off_probability] = 0.0
            programmed[
                (roll >= model.stuck_off_probability)
                & (roll < model.stuck_off_probability + model.stuck_on_probability)
            ] = 1.0
        # Structural defects (a sampled DefectMap) override the programming.
        for name, mask, value in (
            ("stuck_off_mask", stuck_off_mask, 0.0),
            ("stuck_on_mask", stuck_on_mask, 1.0),
        ):
            if mask is None:
                continue
            mask = np.asarray(mask, dtype=bool)
            if mask.shape != programmed.shape:
                raise ValueError(
                    f"{name} must have shape {programmed.shape}, got {mask.shape}"
                )
            programmed[mask] = value
        self.conductances = weights_to_conductances(
            programmed,
            r_on=r_on,
            r_off=r_off,
            variation_sigma=model.variation_sigma,
            rng=rng,
        )
        self._g_on = 1.0 / r_on
        self._g_delta = 1.0 / r_on - 1.0 / r_off
        self._ir_attenuation = self._build_ir_attenuation()

    def _build_ir_attenuation(self) -> np.ndarray:
        """Per-device drive attenuation from the first-order IR-drop model."""
        s = self.size
        coeff = self.model.ir_drop_coefficient
        if coeff <= 0.0:
            return np.ones((s, s))
        rows = np.arange(s)[:, None]
        cols = np.arange(s)[None, :]
        depth = (rows + cols) / (2.0 * max(s - 1, 1))
        return 1.0 / (1.0 + coeff * s * depth)

    # ------------------------------------------------------------------
    def output_currents(self, input_voltages: np.ndarray) -> np.ndarray:
        """Column output currents for the given row input voltages (amps)."""
        v = np.asarray(input_voltages, dtype=float)
        if v.shape != (self.size,):
            raise ValueError(f"input_voltages must have shape ({self.size},), got {v.shape}")
        effective = self.conductances * self._ir_attenuation
        return v @ effective

    def compute(self, inputs: np.ndarray) -> np.ndarray:
        """Normalized dot-product ``inputs @ weights`` as the crossbar sees it.

        Output currents are normalized by ``G_on`` so an ideal crossbar
        returns exactly ``inputs @ weights`` (up to the tiny ``G_off`` leak).
        """
        return self.output_currents(inputs) / self._g_on

    def relative_error(self, inputs: np.ndarray, reference_weights: np.ndarray) -> float:
        """RMS error of :meth:`compute` against the ideal ``inputs @ W``.

        Used by the reliability example to reproduce the motivation for the
        64×64 size cap: error grows with array size under IR-drop.
        """
        reference = np.asarray(inputs, dtype=float) @ np.asarray(reference_weights, dtype=float)
        actual = self.compute(inputs)
        scale = float(np.max(np.abs(reference)))
        if scale == 0.0:
            return float(np.sqrt(np.mean(actual**2)))
        return float(np.sqrt(np.mean((actual - reference) ** 2)) / scale)


def _normalize_topology(
    source,
) -> Tuple[int, List[Tuple[Sequence[int], Sequence[int], int, Sequence[Tuple[int, int]]]], List[Tuple[int, int]]]:
    """Normalize an IscResult or MappingResult into simulator blocks.

    Returns ``(n_neurons, blocks, synapse_connections)`` where each block is
    ``(rows, cols, size, connections)``.  ISC clusters have ``rows == cols``
    (the member neurons); mapping instances may have distinct row/column
    groups (e.g. FullCro block tiles).
    """
    if isinstance(source, IscResult):
        blocks = [
            (a.members, a.members, a.size, a.connections) for a in source.crossbars
        ]
        return source.network.size, blocks, list(source.outliers)
    instances = getattr(source, "instances", None)
    synapses = getattr(source, "synapse_connections", None)
    network = getattr(source, "network", None)
    if instances is None or synapses is None or network is None:
        raise TypeError(
            "topology must be an IscResult or a MappingResult, "
            f"got {type(source).__name__}"
        )
    blocks = [(x.rows, x.cols, x.size, x.connections) for x in instances]
    return network.size, blocks, list(synapses)


@dataclass
class HybridProgram:
    """The defect-independent programming of a hybrid topology.

    Assembling a :class:`HybridNcsSimulator` from a mapping walks every
    block's connection list to build the positive/negative weight planes
    — pure bookkeeping that depends only on the topology and the signed
    weights, not on defects or analog imperfections.  A Monte-Carlo loop
    that simulates many faulty chips of the *same* mapped design can
    therefore compile this program once and share it across samples
    (pass it as ``HybridNcsSimulator(..., program=...)``); only the
    defect masks and stochastic non-idealities are applied per chip.

    The arrays are treated as read-only by the simulator.
    """

    n: int
    scale: float
    #: per block: (global row ids, global col ids, positive plane, negative plane)
    blocks: List[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]
    synapse_rows: np.ndarray
    synapse_cols: np.ndarray
    synapse_values: np.ndarray
    metadata: dict = field(default_factory=dict)

    @classmethod
    def compile(cls, topology, signed_weights: Optional[np.ndarray] = None) -> "HybridProgram":
        """Assemble the weight planes for ``topology`` (no RNG draws)."""
        n, blocks, synapse_connections = _normalize_topology(topology)
        if signed_weights is None:
            signed_weights = topology.network.matrix.astype(float)
        signed_weights = np.asarray(signed_weights, dtype=float)
        if signed_weights.shape != (n, n):
            raise ValueError(
                f"signed_weights must have shape ({n}, {n}), got {signed_weights.shape}"
            )
        scale = float(np.max(np.abs(signed_weights)))
        scale = scale if scale > 0 else 1.0
        normalized = signed_weights / scale

        compiled = []
        for rows, cols, s, connections in blocks:
            rows = np.asarray(rows, dtype=int)
            cols = np.asarray(cols, dtype=int)
            pos = np.zeros((s, s))
            neg = np.zeros((s, s))
            row_of = {int(g): local for local, g in enumerate(rows)}
            col_of = {int(g): local for local, g in enumerate(cols)}
            for gi, gj in connections:
                value = normalized[gi, gj]
                if value >= 0:
                    pos[row_of[gi], col_of[gj]] = value
                else:
                    neg[row_of[gi], col_of[gj]] = -value
            compiled.append((rows, cols, pos, neg))

        synapse_rows = np.array([i for i, _ in synapse_connections], dtype=int)
        synapse_cols = np.array([j for _, j in synapse_connections], dtype=int)
        synapse_values = (
            normalized[synapse_rows, synapse_cols]
            if synapse_connections
            else np.array([])
        )
        return cls(
            n=n,
            scale=scale,
            blocks=compiled,
            synapse_rows=synapse_rows,
            synapse_cols=synapse_cols,
            synapse_values=synapse_values,
        )


class HybridNcsSimulator:
    """Functional model of a full hybrid implementation (crossbars + synapses).

    Evaluates ``y = x @ W_signed`` by summing the contribution of every
    crossbar block and every discrete synapse, each with its own analog
    imperfections.  Signed weights are split into positive and negative
    parts mapped to separate (simulated) crossbar polarities, the standard
    two-array trick for memristor NCS; the differential read cancels the
    ``G_off`` leak exactly, so an ideal model reproduces ``y = W x`` to
    floating-point precision.

    Parameters
    ----------
    topology:
        The hybrid topology: an :class:`~repro.clustering.isc.IscResult` or
        a :class:`~repro.mapping.netlist.MappingResult`.
    signed_weights:
        Optional real weight matrix (e.g. the Hopfield weights); defaults to
        the binary connection matrix of the topology.
    defect_map:
        Optional :class:`~repro.reliability.defects.DefectMap` whose entry
        ``k`` describes the physical crossbar serving block ``k``: stuck-off
        cells and dead row/column lines read as weight 0, stuck-on cells
        saturate the programmed polarity to full conductance.  (Stuck-on
        faults at cells with no programmed weight are ignored — the model
        tracks implemented connections, not parasitic ones.)
    program:
        Optional precompiled :class:`HybridProgram` of this exact
        ``(topology, signed_weights)`` pair.  Compiling once and reusing
        it across many simulator constructions (e.g. Monte-Carlo chips
        of one mapped design) skips the per-connection assembly; the
        draws of a stochastic ``model`` still happen per construction,
        so results are identical with or without a shared program.
    """

    def __init__(
        self,
        topology,
        signed_weights: Optional[np.ndarray] = None,
        model: NonIdealityModel = IDEAL,
        defect_map=None,
        rng: RngLike = None,
        program: Optional[HybridProgram] = None,
    ) -> None:
        self.topology = topology
        if program is None:
            program = HybridProgram.compile(topology, signed_weights)
        if defect_map is not None and len(defect_map.instances) < len(program.blocks):
            raise ValueError(
                f"defect map covers {len(defect_map.instances)} crossbars, "
                f"topology has {len(program.blocks)}"
            )
        self.n = program.n
        self.model = model
        self.program = program
        rng = ensure_rng(rng)
        self._scale = program.scale

        self._blocks = []
        for index, (rows, cols, pos, neg) in enumerate(program.blocks):
            s = pos.shape[0]
            off_mask = on_pos = on_neg = None
            if defect_map is not None:
                defects = defect_map.instances[index]
                if defects.size < s:
                    raise ValueError(
                        f"defect-map crossbar {index} has size {defects.size}, "
                        f"block needs {s}"
                    )
                # The block occupies the top-left s×s corner of its physical
                # crossbar — the same convention reliability.local_cells uses.
                off_mask = (
                    defects.stuck_off
                    | defects.dead_rows[:, None]
                    | defects.dead_cols[None, :]
                )[:s, :s]
                stuck_on = defects.stuck_on[:s, :s] & ~off_mask
                on_pos = stuck_on & (pos > 0)
                on_neg = stuck_on & (neg > 0)
            self._blocks.append(
                (
                    rows,
                    cols,
                    CrossbarSimulator(
                        pos, model=model, rng=rng,
                        stuck_off_mask=off_mask, stuck_on_mask=on_pos,
                    ),
                    CrossbarSimulator(
                        neg, model=model, rng=rng,
                        stuck_off_mask=off_mask, stuck_on_mask=on_neg,
                    ),
                )
            )

        # Discrete synapses: per-connection weight with programming noise
        # but no IR-drop (point-to-point wiring has no shared line).
        self._synapse_rows = program.synapse_rows
        self._synapse_cols = program.synapse_cols
        values = program.synapse_values
        if model.variation_sigma > 0.0 and values.size:
            noise = np.exp(rng.normal(0.0, model.variation_sigma, size=values.shape))
            magnitude = np.clip(np.abs(values) * noise, 0.0, 1.0)
            values = np.sign(values) * magnitude
        self._synapse_values = values

    # ------------------------------------------------------------------
    def compute(self, inputs: np.ndarray) -> np.ndarray:
        """Evaluate ``inputs @ W`` through the mapped hardware."""
        x = np.asarray(inputs, dtype=float)
        if x.shape != (self.n,):
            raise ValueError(f"inputs must have shape ({self.n},), got {x.shape}")
        output = np.zeros(self.n)
        for rows, cols, positive, negative in self._blocks:
            # A cluster may be smaller than its crossbar: pad the unused
            # rows with zero drive and read back only the used columns.
            local_in = np.zeros(positive.size)
            local_in[: rows.size] = x[rows]
            # Differential read: (I⁺ - I⁻) / (G_on - G_off) cancels the
            # G_off leak of both polarities exactly.
            currents = positive.output_currents(local_in) - negative.output_currents(
                local_in
            )
            contribution = currents / positive._g_delta
            output[cols] += contribution[: cols.size]
        if self._synapse_values.size:
            np.add.at(
                output,
                self._synapse_cols,
                x[self._synapse_rows] * self._synapse_values,
            )
        return output * self._scale

    def recall(self, probe: np.ndarray, max_steps: int = 50) -> np.ndarray:
        """Hopfield-style synchronous recall running on the mapped hardware."""
        state = np.asarray(probe, dtype=float).copy()
        if state.shape != (self.n,):
            raise ValueError(f"probe must have shape ({self.n},), got {state.shape}")
        for _ in range(max_steps):
            activation = self.compute(state)
            new_state = np.where(activation >= 0.0, 1.0, -1.0)
            if np.array_equal(new_state, state):
                break
            state = new_state
        return state.astype(np.int8)
