"""Integrate-and-fire neuron cell (paper Fig. 1(a), [2]).

The paper's output neuron integrates synaptic current on a capacitor and
fires when the accumulated voltage crosses a threshold.  The EDA flow only
needs the cell footprint; the behavioural part backs the analog simulator
and the examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import math

from repro.hardware.technology import Technology
from repro.utils.validation import check_positive


@dataclass
class IntegrateFireNeuron:
    """A capacitor-based integrate-and-fire neuron.

    Attributes
    ----------
    capacitance_ff:
        Membrane capacitor in femtofarads.
    threshold_v:
        Firing threshold voltage.
    area_um2:
        Cell footprint from the technology model.
    voltage:
        Current membrane voltage (state).
    """

    capacitance_ff: float = 50.0
    threshold_v: float = 0.5
    area_um2: float = 16.0
    voltage: float = field(default=0.0)

    def __post_init__(self) -> None:
        check_positive("capacitance_ff", self.capacitance_ff)
        check_positive("threshold_v", self.threshold_v)
        check_positive("area_um2", self.area_um2)

    @property
    def side_um(self) -> float:
        """Side of the (square) cell footprint."""
        return math.sqrt(self.area_um2)

    @classmethod
    def from_technology(cls, technology: Technology) -> "IntegrateFireNeuron":
        """Build the neuron cell spec under ``technology``."""
        return cls(area_um2=technology.neuron_area_um2)

    # ------------------------------------------------------------------
    # Behaviour
    # ------------------------------------------------------------------
    def integrate(self, current_na: float, dt_ns: float) -> bool:
        """Integrate ``current_na`` for ``dt_ns``; return True on a spike.

        ``ΔV = I·Δt / C``; on crossing :attr:`threshold_v` the neuron fires
        and resets to zero.
        """
        if dt_ns <= 0:
            raise ValueError(f"dt_ns must be > 0, got {dt_ns}")
        delta_v = (current_na * 1e-9) * (dt_ns * 1e-9) / (self.capacitance_ff * 1e-15)
        self.voltage += delta_v
        if self.voltage >= self.threshold_v:
            self.voltage = 0.0
            return True
        return False

    def reset(self) -> None:
        """Clear the membrane voltage."""
        self.voltage = 0.0
