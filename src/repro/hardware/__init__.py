"""Hardware substrate: device, cell, and technology models.

The paper extracts crossbar/synapse/neuron areas and delays from its
references [2][15] and scales them to a 45 nm node; those tables are not
public, so :class:`~repro.hardware.technology.Technology` exposes the same
quantities as calibrated parameters (see DESIGN.md, substitutions).  The
:mod:`~repro.hardware.simulation` module adds the analog behaviour the paper
describes in Sec. 2.1/2.2: crossbar dot-products with programming variation
and a first-order IR-drop model motivating the 64×64 size limit [6].
"""

from repro.hardware.crossbar import CrossbarSpec
from repro.hardware.energy import EnergyParameters, EnergyReport, evaluate_energy
from repro.hardware.library import CrossbarLibrary
from repro.hardware.memristor import Memristor
from repro.hardware.neuron import IntegrateFireNeuron
from repro.hardware.simulation import (
    IDEAL,
    CrossbarSimulator,
    HybridNcsSimulator,
    NonIdealityModel,
)
from repro.hardware.synapse import DiscreteSynapse
from repro.hardware.technology import Technology

__all__ = [
    "CrossbarLibrary",
    "CrossbarSimulator",
    "CrossbarSpec",
    "DiscreteSynapse",
    "EnergyParameters",
    "EnergyReport",
    "evaluate_energy",
    "HybridNcsSimulator",
    "IDEAL",
    "IntegrateFireNeuron",
    "Memristor",
    "NonIdealityModel",
    "Technology",
]
