"""Energy and programming-cost models (extension).

The paper motivates memristors with their "low programming energy, small
footprint, and non-volatility" (Sec. 1) but evaluates only wirelength /
area / delay.  This module quantifies the energy side so designs can also
be compared on:

* **read (inference) energy** — one evaluation pass: every device on a
  crossbar sees the read voltage whether utilized or not (the crossbar's
  blessing and curse), while a discrete synapse only burns its own device;
* **programming time and energy** — writing the weights: crossbars program
  row-by-row (one row pulse programs the selected cells of that row),
  discrete synapses program individually;
* **wire switching energy** — ``½ C V²`` over the routed interconnect.

AutoNCS's higher utilization means fewer idle devices biased at read
voltage, so it wins on read energy — the energy analogue of the paper's
area argument.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.technology import DEFAULT_TECHNOLOGY, Technology
from repro.mapping.netlist import MappingResult
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class EnergyParameters:
    """Electrical parameters of the energy model.

    Attributes
    ----------
    read_voltage_v / write_voltage_v:
        Bias levels for inference and programming.
    read_pulse_ns / write_pulse_ns:
        Pulse widths per read evaluation / programming pulse.
    on_conductance_s / off_conductance_s:
        Device conductance bounds (defaults match
        :class:`~repro.hardware.memristor.Memristor`).
    utilized_on_fraction:
        Average fraction of utilized devices programmed toward ON — sets
        the mean conductance of active cells.
    """

    read_voltage_v: float = 0.3
    write_voltage_v: float = 1.5
    read_pulse_ns: float = 5.0
    write_pulse_ns: float = 50.0
    on_conductance_s: float = 1e-3
    off_conductance_s: float = 1e-6
    utilized_on_fraction: float = 0.5

    def __post_init__(self) -> None:
        for name in (
            "read_voltage_v",
            "write_voltage_v",
            "read_pulse_ns",
            "write_pulse_ns",
            "on_conductance_s",
            "off_conductance_s",
        ):
            check_positive(name, getattr(self, name))
        if not 0.0 < self.utilized_on_fraction <= 1.0:
            raise ValueError("utilized_on_fraction must lie in (0, 1]")
        if self.off_conductance_s >= self.on_conductance_s:
            raise ValueError("off conductance must be below on conductance")


DEFAULT_ENERGY = EnergyParameters()


@dataclass(frozen=True)
class EnergyReport:
    """Per-design energy/programming summary."""

    read_energy_pj: float
    programming_energy_pj: float
    programming_time_us: float
    wire_energy_pj: float
    utilized_devices: int
    idle_devices: int

    @property
    def total_read_energy_pj(self) -> float:
        """Read plus wire energy of one evaluation pass."""
        return self.read_energy_pj + self.wire_energy_pj


def _device_counts(mapping: MappingResult) -> tuple:
    utilized = sum(inst.utilized_connections for inst in mapping.instances)
    provisioned = sum(inst.size * inst.size for inst in mapping.instances)
    utilized += mapping.num_synapses
    provisioned += mapping.num_synapses
    return utilized, provisioned - utilized


def evaluate_energy(
    mapping: MappingResult,
    routed_wirelength_um: float = 0.0,
    technology: Technology = DEFAULT_TECHNOLOGY,
    parameters: EnergyParameters = DEFAULT_ENERGY,
) -> EnergyReport:
    """Evaluate read/programming energy for a mapped design.

    Parameters
    ----------
    routed_wirelength_um:
        Total routed wirelength (pass the routing result's total to include
        interconnect switching energy; 0 skips the wire term).
    """
    if routed_wirelength_um < 0:
        raise ValueError("routed_wirelength_um must be >= 0")
    utilized, idle = _device_counts(mapping)
    active_conductance = (
        parameters.utilized_on_fraction * parameters.on_conductance_s
        + (1.0 - parameters.utilized_on_fraction) * parameters.off_conductance_s
    )
    v_read_sq = parameters.read_voltage_v**2
    read_seconds = parameters.read_pulse_ns * 1e-9
    # Idle devices still sit on biased lines at G_off.
    read_energy_j = v_read_sq * read_seconds * (
        utilized * active_conductance + idle * parameters.off_conductance_s
    )

    # Programming: each utilized device takes one write pulse at the write
    # voltage through (on average) half-swing conductance.
    v_write_sq = parameters.write_voltage_v**2
    write_seconds = parameters.write_pulse_ns * 1e-9
    programming_energy_j = (
        v_write_sq * write_seconds * utilized * active_conductance
    )
    # Crossbars program row-by-row (selected cells of a row share a pulse);
    # discrete synapses each need their own pulse.
    row_pulses = sum(len(set(i for i, _ in inst.connections)) for inst in mapping.instances)
    pulses = row_pulses + mapping.num_synapses
    programming_time_us = pulses * parameters.write_pulse_ns * 1e-3

    wire_capacitance_f = (
        routed_wirelength_um * technology.wire_capacitance_ff_per_um * 1e-15
    )
    wire_energy_j = 0.5 * wire_capacitance_f * v_read_sq

    return EnergyReport(
        read_energy_pj=read_energy_j * 1e12,
        programming_energy_pj=programming_energy_j * 1e12,
        programming_time_us=programming_time_us,
        wire_energy_pj=wire_energy_j * 1e12,
        utilized_devices=utilized,
        idle_devices=idle,
    )
