"""Technology parameters at the 45 nm node.

Every physical number the flow needs lives here: memristor pitch, crossbar
peripheral margins, cell areas, crossbar delay model, wire RC, and the
routing-resource parameters of the placer/router (ω, θ of Sec. 3.5).

Calibration targets (DESIGN.md, substitutions): the 64×64 crossbar delay is
pinned near the paper's constant FullCro delay of 1.95 ns, and the area
terms put a ~500-neuron FullCro design in the same order of magnitude as
Table 1 (tens of thousands of µm²).  Only relative comparisons matter for
the paper's claims; all parameters are user-overridable.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class Technology:
    """Physical parameter set for a memristor NCS at a given node.

    Attributes
    ----------
    feature_size_nm:
        Lithography node (informational; defaults to the paper's 45 nm).
    memristor_pitch_um:
        Crossbar wire pitch — one memristor cell per pitch² (6F at 45 nm).
    crossbar_margin_um:
        Peripheral margin per crossbar side for drivers/training circuitry.
    neuron_area_um2 / synapse_area_um2:
        Footprints of the integrate-and-fire neuron cell and of a discrete
        memristor synapse cell (memristor + access device).
    crossbar_delay_base_ns / crossbar_delay_quadratic_ns:
        Crossbar read delay model ``t(s) = t0 + k·s²`` — line RC grows with
        both line resistance (∝ s) and line capacitance (∝ s), pinning
        ``t(64) ≈ 1.95 ns`` as Table 1 reports for FullCro.
    synapse_delay_ns:
        Point-to-point discrete-synapse delay.
    wire_resistance_ohm_per_um / wire_capacitance_ff_per_um:
        Unit-length interconnect RC for routed-wire delay (``½ r c L²``).
    routing_space_factor:
        The placer's ω — cells occupy ``ω ×`` their physical width so that
        routing space is reserved (Sec. 3.5).
    routing_bin_um:
        The router's grid bin width θ (Sec. 3.5).
    routing_capacity_per_bin:
        Wires a routing-grid edge accommodates before it is congested
        (the virtual capacity baseline of [17]).
    """

    feature_size_nm: float = 45.0
    memristor_pitch_um: float = 0.27
    crossbar_margin_um: float = 1.5
    neuron_area_um2: float = 16.0
    synapse_area_um2: float = 1.2
    crossbar_delay_base_ns: float = 0.15
    crossbar_delay_quadratic_ns: float = (1.95 - 0.15) / (64.0 * 64.0)
    synapse_delay_ns: float = 0.30
    wire_resistance_ohm_per_um: float = 0.40
    wire_capacitance_ff_per_um: float = 0.20
    routing_space_factor: float = 1.25
    routing_bin_um: float = 4.0
    routing_capacity_per_bin: int = 40
    metadata: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        check_positive("feature_size_nm", self.feature_size_nm)
        check_positive("memristor_pitch_um", self.memristor_pitch_um)
        check_positive("crossbar_margin_um", self.crossbar_margin_um, allow_zero=True)
        check_positive("neuron_area_um2", self.neuron_area_um2)
        check_positive("synapse_area_um2", self.synapse_area_um2)
        check_positive("crossbar_delay_base_ns", self.crossbar_delay_base_ns)
        check_positive("crossbar_delay_quadratic_ns", self.crossbar_delay_quadratic_ns)
        check_positive("synapse_delay_ns", self.synapse_delay_ns)
        check_positive("wire_resistance_ohm_per_um", self.wire_resistance_ohm_per_um)
        check_positive("wire_capacitance_ff_per_um", self.wire_capacitance_ff_per_um)
        if self.routing_space_factor < 1.0:
            raise ValueError(
                f"routing_space_factor must be >= 1, got {self.routing_space_factor}"
            )
        check_positive("routing_bin_um", self.routing_bin_um)
        if self.routing_capacity_per_bin < 1:
            raise ValueError(
                f"routing_capacity_per_bin must be >= 1, got {self.routing_capacity_per_bin}"
            )

    # ------------------------------------------------------------------
    # Crossbar geometry and timing
    # ------------------------------------------------------------------
    def crossbar_side_um(self, size: int) -> float:
        """Physical side length of an ``s × s`` crossbar including margins."""
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        return size * self.memristor_pitch_um + 2.0 * self.crossbar_margin_um

    def crossbar_area_um2(self, size: int) -> float:
        """Footprint of an ``s × s`` crossbar."""
        return self.crossbar_side_um(size) ** 2

    def crossbar_delay_ns(self, size: int) -> float:
        """Read delay of an ``s × s`` crossbar: ``t0 + k·s²``."""
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        return self.crossbar_delay_base_ns + self.crossbar_delay_quadratic_ns * size * size

    # ------------------------------------------------------------------
    # Wires
    # ------------------------------------------------------------------
    def wire_delay_ns(self, length_um: float) -> float:
        """Elmore delay of a routed wire: ``½ r c L²`` (in ns)."""
        if length_um < 0:
            raise ValueError(f"length_um must be >= 0, got {length_um}")
        r = self.wire_resistance_ohm_per_um
        c = self.wire_capacitance_ff_per_um * 1e-15  # fF → F
        return 0.5 * r * c * length_um * length_um * 1e9  # s → ns

    def scaled(self, feature_size_nm: float) -> "Technology":
        """Return a copy scaled to another node (first-order linear shrink).

        Areas scale with the square of the feature ratio, pitches linearly,
        RC per unit length is kept (wire scaling is roughly RC-neutral to
        first order), and delays are kept (device-dominated).
        """
        check_positive("feature_size_nm", feature_size_nm)
        ratio = feature_size_nm / self.feature_size_nm
        return replace(
            self,
            feature_size_nm=feature_size_nm,
            memristor_pitch_um=self.memristor_pitch_um * ratio,
            crossbar_margin_um=self.crossbar_margin_um * ratio,
            neuron_area_um2=self.neuron_area_um2 * ratio * ratio,
            synapse_area_um2=self.synapse_area_um2 * ratio * ratio,
            routing_bin_um=self.routing_bin_um * ratio,
        )


#: The default 45 nm technology used throughout the experiments.
DEFAULT_TECHNOLOGY = Technology()
