"""Crossbar cell specification (paper Sec. 2.1, Fig. 1(b)).

A crossbar of size ``s`` connects ``s`` input neurons to ``s`` output
neurons through ``s²`` memristors at the wire crossings; its physical
footprint and read delay come from the :class:`~repro.hardware.technology.
Technology` model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.technology import Technology


@dataclass(frozen=True)
class CrossbarSpec:
    """Geometry and timing of one library crossbar size.

    Attributes
    ----------
    size:
        Dimension ``s`` — the crossbar offers ``s²`` connections.
    side_um / area_um2 / delay_ns:
        Physical side length, footprint, and read delay.
    """

    size: int
    side_um: float
    area_um2: float
    delay_ns: float

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError(f"size must be >= 1, got {self.size}")
        for name in ("side_um", "area_um2", "delay_ns"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be > 0, got {getattr(self, name)}")

    @property
    def capacity(self) -> int:
        """Total connections offered: ``s²`` (Sec. 3.1)."""
        return self.size * self.size

    @classmethod
    def from_technology(cls, size: int, technology: Technology) -> "CrossbarSpec":
        """Build the spec for ``size`` under ``technology``."""
        return cls(
            size=size,
            side_um=technology.crossbar_side_um(size),
            area_um2=technology.crossbar_area_um2(size),
            delay_ns=technology.crossbar_delay_ns(size),
        )
