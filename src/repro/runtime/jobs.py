"""Job and sweep descriptions for the execution engine.

A :class:`Job` is one self-contained unit of work: a *kind* naming the
registered executor (``"compare"``, ``"autoncs"``, ``"fullcro"``,
``"yield_trial"``, …), a picklable payload of inputs, a seed, and
optional cache-key material.  A :class:`SweepSpec` describes a grid of
(network size × density) AutoNCS runs and expands it into jobs whose
per-cell RNGs are spawned from one ``numpy.random.SeedSequence`` — the
seeding happens at job *construction*, not at execution, so the results
are bitwise-identical no matter how many workers execute them or in
which order.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.config import AutoNcsConfig
from repro.networks.generators import random_sparse_network
from repro.runtime.resilience import JobFailure
from repro.utils.canonical import stable_hash

#: Seeds accepted by a job: a plain int, a SeedSequence, or None (no RNG).
JobSeed = Union[None, int, np.random.SeedSequence]


@dataclass
class Job:
    """One unit of work for :class:`~repro.runtime.runner.Runner`.

    Attributes
    ----------
    kind:
        Name of a registered executor (see
        :func:`repro.runtime.runner.register_executor`).
    label:
        Display name used in events and progress output.
    payload:
        Keyword arguments shipped to the executor.  Must be picklable —
        jobs cross process boundaries.
    seed:
        Seed material for the job's private RNG; the runner expands it
        with ``numpy.random.default_rng`` in the worker.  Fixed here, at
        construction, so scheduling cannot perturb results.
    key:
        Cache-key material (canonicalized and hashed together with the
        kind, the seed and the package version).  ``None`` marks the job
        uncacheable.
    """

    kind: str
    label: str
    payload: Dict[str, Any] = field(default_factory=dict)
    seed: JobSeed = None
    key: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        if not self.kind:
            raise ValueError("job kind must be a non-empty string")

    @property
    def cacheable(self) -> bool:
        """True when the job carries cache-key material."""
        return self.key is not None


@dataclass
class JobResult:
    """Outcome of one executed (or cache-served) job.

    ``failure`` is ``None`` for a successful job; a failed job (only
    possible when the runner carries a
    :class:`~repro.runtime.resilience.ResilienceConfig` that is not
    fail-fast) has ``value=None`` and a structured
    :class:`~repro.runtime.resilience.JobFailure` here instead.
    ``attempts`` counts executions charged to the job (1 for a clean
    first-attempt success; 0 for a cache hit).
    """

    index: int
    label: str
    kind: str
    value: Any
    seconds: float = 0.0
    cache_hit: bool = False
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    attempts: int = 1
    failure: Optional[JobFailure] = None

    @property
    def ok(self) -> bool:
        """True when the job produced a value (executed or cached)."""
        return self.failure is None


@dataclass
class SweepSpec:
    """A (size × density × seed) grid of AutoNCS flow runs.

    Each grid cell generates a random sparse network and runs the flow
    of ``kind`` on it ("compare" for AutoNCS-vs-FullCro, "autoncs" for
    the AutoNCS flow alone).  Cell RNGs derive from
    ``SeedSequence(seed).spawn(...)`` — one child per cell, split again
    into a network-generation stream and a flow stream — so any subset
    of cells reproduces exactly, in any execution order.
    """

    sizes: Tuple[int, ...]
    densities: Tuple[float, ...]
    seed: int = 42
    kind: str = "compare"
    config: AutoNcsConfig = field(default_factory=AutoNcsConfig)
    name: str = "sweep"

    def __post_init__(self) -> None:
        self.sizes = tuple(int(s) for s in self.sizes)
        self.densities = tuple(float(d) for d in self.densities)
        if not self.sizes or min(self.sizes) < 2:
            raise ValueError(f"sizes must be >= 2, got {self.sizes}")
        if not self.densities or not all(0.0 < d <= 1.0 for d in self.densities):
            raise ValueError(f"densities must lie in (0, 1], got {self.densities}")
        if self.kind not in ("compare", "autoncs", "fullcro"):
            raise ValueError(
                f"sweep kind must be 'compare', 'autoncs' or 'fullcro', got {self.kind!r}"
            )

    def cells(self) -> List[Tuple[int, float]]:
        """The (size, density) grid in row-major order."""
        return list(itertools.product(self.sizes, self.densities))

    def sweep_key(self) -> str:
        """A stable content-address of the sweep itself.

        Keys the crash-safe journal (and its default file name), so a
        ``--resume`` against a *different* grid/seed/config is detectable
        rather than silently mixing runs.  The display ``name`` is
        deliberately excluded — renaming a sweep must not orphan its
        journal (cell labels and cache keys key on content, not name).
        """
        return stable_hash(
            {
                "sizes": self.sizes,
                "densities": self.densities,
                "seed": self.seed,
                "kind": self.kind,
                "config": self.config.cache_key(),
            }
        )

    def __len__(self) -> int:
        return len(self.sizes) * len(self.densities)

    def jobs(self) -> List[Job]:
        """Expand the grid into runnable jobs (networks generated here).

        Network generation happens in the driver process — it is cheap
        relative to the flow, and keeps the expensive part (the job) a
        pure function of its payload and seed.
        """
        cells = self.cells()
        children = np.random.SeedSequence(self.seed).spawn(len(cells))
        jobs: List[Job] = []
        for (size, density), child in zip(cells, children):
            network_seq, flow_seq = child.spawn(2)
            network = random_sparse_network(
                size,
                density,
                rng=np.random.default_rng(network_seq),
                name=f"{self.name}-n{size}-d{density:g}",
            )
            jobs.append(
                Job(
                    kind=self.kind,
                    label=f"n={size} d={density:g}",
                    payload={"network": network, "config": self.config},
                    seed=flow_seq,
                    key={
                        "network": network.digest(),
                        "config": self.config.cache_key(),
                        "size": size,
                        "density": density,
                    },
                )
            )
        return jobs
