"""Deterministic fault injection for the runtime engine.

Chaos testing only earns its keep when a failing run can be replayed
bit-for-bit.  A :class:`FaultPlan` therefore decides *deterministically*
— from its own seed, the injection site, the job's label, its seed
material and the attempt number — whether a named fault fires at an
instrumented site.  No mutable cross-process state is involved, so the
same plan makes the same decisions no matter how many workers execute
the sweep or in which order.

Fault taxonomy (``FaultRule.kind``):

``crash``
    Kills the worker process outright (``os._exit``), exercising the
    runner's ``BrokenProcessPool`` respawn and poison-job quarantine.
    Inline (no pool) it degrades to :class:`ChaosWorkerCrash` so the
    driver survives.
``error``
    Raises :class:`ChaosError` — a persistent stage exception.
``transient``
    Raises :class:`ChaosTransientError` on early attempts only
    (``until_attempt``), so bounded retries recover.
``hang``
    Sleeps ``hang_seconds`` (the runner's wall-clock timeout is expected
    to preempt it on the pool path) and then raises :class:`ChaosHang`
    so an inline run does not block forever.
``corrupt``
    A *data* fault: the site (e.g. ``ArtifactCache.store``) receives the
    matched rule back and corrupts its own payload.  Nothing is raised.

Injection sites call :func:`chaos_point`.  With no plan installed this
is one module-global read and a ``None`` check — the same zero-overhead
contract as the observability null recorder — so the instrumentation
stays in the production paths permanently.

Plans are installed with :func:`chaos_scope` (the runner does this in
the driver and re-installs the pickled plan inside each worker), and
described on the command line via :meth:`FaultPlan.parse`::

    --chaos transient                         # preset
    --chaos "crash@job.run:p=0.5;hang@stage.routing:hang=5"
"""

from __future__ import annotations

import fnmatch
import hashlib
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Any, Iterator, Optional, Tuple

from repro.observability import get_recorder

#: The recognised fault kinds, in documentation order.
FAULT_KINDS = ("crash", "error", "transient", "hang", "corrupt")

#: Canonical injection sites (patterns in rules may glob over these).
KNOWN_SITES = (
    "job.run",          # _execute_job, before the executor body
    "stage.isc",        # AutoNCS clustering stage
    "stage.mapping",    # AutoNCS mapping stage
    "cache.store",      # ArtifactCache.store (corrupt target)
    "cache.lookup",     # ArtifactCache.lookup
)


class ChaosError(RuntimeError):
    """A persistent injected stage exception."""


class ChaosTransientError(ChaosError):
    """An injected failure that stops firing after ``until_attempt``."""


class ChaosHang(ChaosError):
    """Raised after an injected hang's sleep, so inline runs terminate."""


class ChaosWorkerCrash(ChaosError):
    """Inline stand-in for a worker-process death (no pool to kill)."""


@dataclass(frozen=True)
class FaultRule:
    """One named fault: where it fires, what it does, how often.

    Attributes
    ----------
    site:
        An ``fnmatch`` pattern over injection-site names (``"job.run"``,
        ``"stage.*"``, ``"cache.store"`` …).
    kind:
        One of :data:`FAULT_KINDS`.
    probability:
        Deterministic firing probability in ``[0, 1]``; the draw is a
        stable hash of (plan seed, site, label, seed token, attempt), so
        it is reproducible across processes and execution orders.
    until_attempt:
        Fire only while ``attempt < until_attempt`` (``None`` = always).
        ``transient`` defaults to 1: the first attempt fails, retries
        succeed.
    hang_seconds:
        Sleep length for ``hang`` faults.
    """

    site: str
    kind: str
    probability: float = 1.0
    until_attempt: Optional[int] = None
    hang_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} (known: {FAULT_KINDS})"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"fault probability must lie in [0, 1], got {self.probability}"
            )
        if self.until_attempt is None and self.kind == "transient":
            object.__setattr__(self, "until_attempt", 1)


def _stable_unit(*parts: Any) -> float:
    """A deterministic draw in ``[0, 1)`` from hashed string parts."""
    text = "\x1f".join(str(part) for part in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, picklable set of fault rules.

    The plan travels to worker processes alongside the job, so both the
    driver-side sites (cache) and the worker-side sites (job body, flow
    stages) see the same deterministic decisions.
    """

    rules: Tuple[FaultRule, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    def __bool__(self) -> bool:
        return bool(self.rules)

    # ------------------------------------------------------------------
    def decide(
        self,
        site: str,
        *,
        label: str = "",
        attempt: int = 0,
        token: Any = None,
    ) -> Optional[FaultRule]:
        """The first rule firing at ``site`` for this context, if any."""
        for rule_index, rule in enumerate(self.rules):
            if not fnmatch.fnmatchcase(site, rule.site):
                continue
            if rule.until_attempt is not None and attempt >= rule.until_attempt:
                continue
            if rule.probability < 1.0:
                draw = _stable_unit(
                    self.seed, rule_index, site, label, token, attempt
                )
                if draw >= rule.probability:
                    continue
            return rule
        return None

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Build a plan from a CLI spec (preset name or rule grammar).

        Presets: ``transient``, ``crash``, ``hang``, ``error``,
        ``corrupt``, ``mixed``.  Grammar: ``;``-separated rules of the
        form ``kind@site[:key=value,...]`` with keys ``p`` (probability),
        ``until`` (attempt bound) and ``hang`` (seconds)::

            transient@job.run:p=0.5
            crash@job.run:p=0.3;corrupt@cache.store
        """
        text = spec.strip()
        preset = _PRESETS.get(text)
        if preset is not None:
            return cls(rules=preset, seed=seed)
        rules = []
        for chunk in text.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            head, _, options = chunk.partition(":")
            kind, _, site = head.partition("@")
            kind = kind.strip()
            site = site.strip() or "job.run"
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r} in chaos spec {spec!r} "
                    f"(known: {FAULT_KINDS}; presets: {sorted(_PRESETS)})"
                )
            rule = FaultRule(site=site, kind=kind)
            for option in filter(None, (o.strip() for o in options.split(","))):
                name, _, value = option.partition("=")
                if name == "p":
                    rule = replace(rule, probability=float(value))
                elif name == "until":
                    rule = replace(rule, until_attempt=int(value))
                elif name == "hang":
                    rule = replace(rule, hang_seconds=float(value))
                else:
                    raise ValueError(
                        f"unknown chaos rule option {name!r} in {chunk!r} "
                        "(known: p, until, hang)"
                    )
            rules.append(rule)
        if not rules:
            raise ValueError(f"empty chaos spec {spec!r}")
        return cls(rules=tuple(rules), seed=seed)


_PRESETS = {
    "transient": (FaultRule(site="job.run", kind="transient", probability=0.5),),
    "crash": (FaultRule(site="job.run", kind="crash", probability=0.3,
                        until_attempt=1),),
    "hang": (FaultRule(site="job.run", kind="hang", probability=0.3,
                       until_attempt=1, hang_seconds=30.0),),
    "error": (FaultRule(site="job.run", kind="error", probability=0.3),),
    "corrupt": (FaultRule(site="cache.store", kind="corrupt", probability=0.5),),
    "mixed": (
        FaultRule(site="job.run", kind="transient", probability=0.3),
        FaultRule(site="job.run", kind="crash", probability=0.15,
                  until_attempt=1),
        FaultRule(site="cache.store", kind="corrupt", probability=0.3),
    ),
}


# ----------------------------------------------------------------------
# The active plan (process-global, mirroring the observability recorder)
# ----------------------------------------------------------------------
@dataclass
class _ChaosContext:
    plan: FaultPlan
    label: str = ""
    attempt: int = 0
    token: Any = None
    in_worker: bool = False
    injected: int = field(default=0)


_ACTIVE: Optional[_ChaosContext] = None


def active_plan() -> Optional[FaultPlan]:
    """The currently installed plan, or ``None`` (chaos off)."""
    return None if _ACTIVE is None else _ACTIVE.plan


@contextmanager
def chaos_scope(
    plan: Optional[FaultPlan],
    *,
    label: str = "",
    attempt: int = 0,
    token: Any = None,
    in_worker: bool = False,
) -> Iterator[None]:
    """Install ``plan`` (with job context) for the duration of the block.

    ``plan=None`` (or an empty plan) is a true no-op — the previous
    context, usually none, stays installed and every
    :func:`chaos_point` remains a single global read.
    """
    global _ACTIVE
    if plan is None or not plan.rules:
        yield
        return
    previous = _ACTIVE
    _ACTIVE = _ChaosContext(
        plan=plan, label=label, attempt=attempt, token=token, in_worker=in_worker
    )
    try:
        yield
    finally:
        _ACTIVE = previous


def chaos_point(
    site: str,
    *,
    label: Optional[str] = None,
    attempt: Optional[int] = None,
) -> Optional[FaultRule]:
    """An injection site: trigger the plan's fault here, if one fires.

    Action faults (``crash``/``error``/``transient``/``hang``) raise or
    exit; data faults (``corrupt``) are returned to the caller, which
    applies the corruption itself.  Returns ``None`` when chaos is off
    or no rule fires — the permanent-instrumentation fast path.
    """
    context = _ACTIVE
    if context is None:
        return None
    rule = context.plan.decide(
        site,
        label=context.label if label is None else label,
        attempt=context.attempt if attempt is None else attempt,
        token=context.token,
    )
    if rule is None:
        return None
    context.injected += 1
    recorder = get_recorder()
    recorder.count("chaos.faults_injected")
    recorder.count(f"chaos.faults.{rule.kind}")
    if rule.kind == "corrupt":
        return rule
    if rule.kind == "crash":
        if context.in_worker:
            os._exit(43)  # hard death: no cleanup, no exception propagation
        raise ChaosWorkerCrash(
            f"injected worker crash at {site} (inline simulation)"
        )
    if rule.kind == "hang":
        time.sleep(rule.hang_seconds)
        raise ChaosHang(
            f"injected hang at {site} exceeded {rule.hang_seconds:g}s"
        )
    if rule.kind == "transient":
        raise ChaosTransientError(f"injected transient fault at {site}")
    raise ChaosError(f"injected fault at {site}")
