"""Content-addressed on-disk artifact cache for flow results.

Results are keyed on *content*: the job kind, its cache-key material
(network digest, config hash, grid coordinates, …), its seed, and the
package version — so editing a config knob, regenerating a network or
upgrading the package all invalidate exactly the affected cells and
nothing else.  Values are pickled under::

    <root>/objects/<key[:2]>/<key>.pkl     # the pickled result
    <root>/objects/<key[:2]>/<key>.json    # human-readable metadata

Writes are atomic (temp file + ``os.replace``), so a crashed or killed
run never leaves a truncated pickle behind; a corrupt entry is treated
as a miss and deleted.  When two runners share one cache root, a
per-key advisory file lock (``fcntl.flock``) makes the object + sidecar
pair a single atomic commit: each file's rename is atomic on its own,
but without the lock two writers could interleave, leaving one writer's
pickle next to the other's metadata.  To invalidate everything, delete
the cache root (or call :meth:`ArtifactCache.clear`).

A cache shared by a long-lived process (the :mod:`repro.service` job
server) must not grow without bound: pass ``max_bytes`` to cap the
store.  Every hit bumps the artifact's mtime, so :meth:`~ArtifactCache.
evict` — called automatically after each :meth:`~ArtifactCache.store`
— drops least-recently-used entries (object + sidecar pair, deleted
under the per-key lock) until the store fits again.

The ``cache.store`` chaos site (:mod:`repro.runtime.chaos`) can corrupt
a freshly written artifact deterministically, exercising the
corrupt-entry recovery path end to end.
"""

from __future__ import annotations

import contextlib
import json
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple

import numpy as np

from repro.observability import get_recorder
from repro.runtime.chaos import chaos_point
from repro.runtime.jobs import Job
from repro.utils.canonical import canonical, stable_hash

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

#: Default cache directory, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"


def _seed_material(seed) -> Any:
    """Canonical cache-key form of a job seed."""
    if seed is None or isinstance(seed, (int, np.integer)):
        return None if seed is None else int(seed)
    if isinstance(seed, np.random.SeedSequence):
        return canonical(seed)
    raise TypeError(f"unsupported job seed type {type(seed).__name__}")


def job_cache_key(job: Job, version: str) -> Optional[str]:
    """The content-address of ``job``'s result, or ``None`` if uncacheable."""
    if job.key is None:
        return None
    return stable_hash(
        {
            "kind": job.kind,
            "key": job.key,
            "seed": _seed_material(job.seed),
            "version": version,
        }
    )


class ArtifactCache:
    """A content-addressed pickle store under one root directory.

    Parameters
    ----------
    root:
        Cache directory (created lazily on first write).
    version:
        Version string folded into every key; defaults to the installed
        ``repro`` package version, so upgrading the code invalidates old
        artifacts wholesale.
    max_bytes:
        Optional size bound on the object store.  When set, every
        :meth:`store` triggers an LRU :meth:`evict` pass; ``None``
        (the default) never evicts.
    """

    def __init__(
        self,
        root: os.PathLike = DEFAULT_CACHE_DIR,
        version: Optional[str] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        self.root = Path(root)
        if version is None:
            from repro import __version__ as version
        self.version = str(version)
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    @property
    def objects_dir(self) -> Path:
        return self.root / "objects"

    def key_for(self, job: Job) -> Optional[str]:
        """Cache key of ``job`` (``None`` for uncacheable jobs)."""
        return job_cache_key(job, self.version)

    def path_for(self, key: str) -> Path:
        """Pickle path of a key (two-level fan-out keeps directories small)."""
        return self.objects_dir / key[:2] / f"{key}.pkl"

    # ------------------------------------------------------------------
    def lookup(self, key: Optional[str]) -> Tuple[bool, Any]:
        """``(hit, value)`` for a key; corrupt entries count as misses."""
        if key is None:
            return False, None
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            get_recorder().count("cache.misses")
            self._record_hit_rate()
            return False, None
        except Exception:
            # Truncated/corrupt artifact (e.g. a killed writer on a
            # non-atomic filesystem): drop it and recompute.
            self.misses += 1
            recorder = get_recorder()
            recorder.count("cache.misses")
            recorder.count("cache.evictions")
            self._remove(key)
            self._record_hit_rate()
            return False, None
        self.hits += 1
        if self.max_bytes is not None:
            # LRU bookkeeping: a hit makes the entry "recently used".
            # mtime (not atime) because atime updates are unreliable
            # under relatime/noatime mounts.
            with contextlib.suppress(OSError):
                os.utime(path)
        get_recorder().count("cache.hits")
        self._record_hit_rate()
        return True, value

    def store(self, key: str, value: Any, meta: Optional[Dict[str, Any]] = None) -> Path:
        """Atomically persist ``value`` (and a JSON metadata sidecar).

        The object and its sidecar commit as one unit under a per-key
        advisory file lock, so concurrent runners sharing the cache root
        never interleave one writer's pickle with another's metadata.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        rule = chaos_point("cache.store", label=key, attempt=0)
        if rule is not None and rule.kind == "corrupt":
            # Injected data fault: commit a truncated artifact, so the
            # next lookup exercises corrupt-entry recovery.
            payload = payload[: max(1, len(payload) // 2)]
        sidecar = {
            "key": key,
            "version": self.version,
            "created": time.time(),
            "bytes": len(payload),
            **(meta or {}),
        }
        sidecar_bytes = (
            json.dumps(canonical(sidecar), sort_keys=True, indent=1) + "\n"
        ).encode("utf-8")
        with self._key_lock(key):
            self._atomic_write(path, payload)
            self._atomic_write(path.with_suffix(".json"), sidecar_bytes)
        get_recorder().count("cache.stores")
        if self.max_bytes is not None:
            self.evict()
        return path

    def contains(self, key: Optional[str]) -> bool:
        """True when a (readable) artifact exists for ``key``."""
        return key is not None and self.path_for(key).exists()

    def clear(self) -> int:
        """Delete every cached artifact; returns how many were removed."""
        removed = 0
        if not self.objects_dir.exists():
            return removed
        for path in sorted(self.objects_dir.rglob("*.pkl")):
            path.unlink(missing_ok=True)
            path.with_suffix(".json").unlink(missing_ok=True)
            path.with_suffix(".lock").unlink(missing_ok=True)
            removed += 1
        return removed

    def total_bytes(self) -> int:
        """Bytes held by the object store (pickles + JSON sidecars)."""
        total = 0
        if not self.objects_dir.exists():
            return total
        for path in self.objects_dir.rglob("*.pkl"):
            for member in (path, path.with_suffix(".json")):
                with contextlib.suppress(OSError):
                    total += member.stat().st_size
        return total

    def evict(self, max_bytes: Optional[int] = None) -> int:
        """Drop least-recently-used entries until the store fits.

        ``max_bytes`` overrides the instance bound for this pass (useful
        for a one-off trim); with neither set this is a no-op.  Entries
        are ordered by artifact mtime — bumped on every hit — and each
        object + sidecar pair is deleted under its per-key lock, so a
        concurrent reader either sees the full pair or neither file.
        The most recent entry always survives, even if oversized.
        Returns the number of entries evicted.
        """
        bound = max_bytes if max_bytes is not None else self.max_bytes
        if bound is None or not self.objects_dir.exists():
            return 0
        entries = []  # (mtime, bytes, key)
        for path in self.objects_dir.rglob("*.pkl"):
            size = 0
            try:
                stat = path.stat()
            except OSError:
                continue  # evicted/removed by a concurrent writer
            size += stat.st_size
            with contextlib.suppress(OSError):
                size += path.with_suffix(".json").stat().st_size
            entries.append((stat.st_mtime, size, path.stem))
        total = sum(size for _mtime, size, _key in entries)
        entries.sort()
        evicted = 0
        recorder = get_recorder()
        while total > bound and len(entries) > 1:
            _mtime, size, key = entries.pop(0)
            self._remove(key)
            total -= size
            evicted += 1
            self.evictions += 1
            recorder.count("cache.evictions")
        return evicted

    def __len__(self) -> int:
        if not self.objects_dir.exists():
            return 0
        return sum(1 for _ in self.objects_dir.rglob("*.pkl"))

    def __repr__(self) -> str:
        return (
            f"ArtifactCache(root={str(self.root)!r}, entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )

    # ------------------------------------------------------------------
    def _record_hit_rate(self) -> None:
        """Publish the running hit rate (last-write-wins gauge)."""
        recorder = get_recorder()
        if not recorder.enabled:
            return
        total = self.hits + self.misses
        recorder.gauge("cache.hit_rate", self.hits / total if total else 0.0)

    def _remove(self, key: str) -> None:
        with self._key_lock(key):
            path = self.path_for(key)
            path.unlink(missing_ok=True)
            path.with_suffix(".json").unlink(missing_ok=True)

    @contextlib.contextmanager
    def _key_lock(self, key: str) -> Iterator[None]:
        """Advisory inter-process lock scoping one key's object+sidecar pair.

        Uses ``fcntl.flock`` on a ``.lock`` sibling; degrades to a no-op
        where ``fcntl`` is unavailable (single-writer platforms keep the
        old atomic-rename guarantees).
        """
        if fcntl is None:
            yield
            return
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        lock_path = path.with_suffix(".lock")
        with open(lock_path, "a+b") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    @staticmethod
    def _atomic_write(path: Path, payload: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), prefix=f".{path.name}.")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
