"""Content-addressed on-disk artifact cache for flow results.

Results are keyed on *content*: the job kind, its cache-key material
(network digest, config hash, grid coordinates, …), its seed, and the
package version — so editing a config knob, regenerating a network or
upgrading the package all invalidate exactly the affected cells and
nothing else.  Values are pickled under::

    <root>/objects/<key[:2]>/<key>.pkl     # the pickled result
    <root>/objects/<key[:2]>/<key>.json    # human-readable metadata

Writes are atomic (temp file + ``os.replace``), so a crashed or killed
run never leaves a truncated pickle behind; a corrupt entry is treated
as a miss and deleted.  When two runners share one cache root, a
per-key advisory file lock (``fcntl.flock``) makes the object + sidecar
pair a single atomic commit: each file's rename is atomic on its own,
but without the lock two writers could interleave, leaving one writer's
pickle next to the other's metadata.  To invalidate everything, delete
the cache root (or call :meth:`ArtifactCache.clear`).

The ``cache.store`` chaos site (:mod:`repro.runtime.chaos`) can corrupt
a freshly written artifact deterministically, exercising the
corrupt-entry recovery path end to end.
"""

from __future__ import annotations

import contextlib
import json
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple

import numpy as np

from repro.observability import get_recorder
from repro.runtime.chaos import chaos_point
from repro.runtime.jobs import Job
from repro.utils.canonical import canonical, stable_hash

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

#: Default cache directory, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"


def _seed_material(seed) -> Any:
    """Canonical cache-key form of a job seed."""
    if seed is None or isinstance(seed, (int, np.integer)):
        return None if seed is None else int(seed)
    if isinstance(seed, np.random.SeedSequence):
        return canonical(seed)
    raise TypeError(f"unsupported job seed type {type(seed).__name__}")


def job_cache_key(job: Job, version: str) -> Optional[str]:
    """The content-address of ``job``'s result, or ``None`` if uncacheable."""
    if job.key is None:
        return None
    return stable_hash(
        {
            "kind": job.kind,
            "key": job.key,
            "seed": _seed_material(job.seed),
            "version": version,
        }
    )


class ArtifactCache:
    """A content-addressed pickle store under one root directory.

    Parameters
    ----------
    root:
        Cache directory (created lazily on first write).
    version:
        Version string folded into every key; defaults to the installed
        ``repro`` package version, so upgrading the code invalidates old
        artifacts wholesale.
    """

    def __init__(self, root: os.PathLike = DEFAULT_CACHE_DIR, version: Optional[str] = None) -> None:
        self.root = Path(root)
        if version is None:
            from repro import __version__ as version
        self.version = str(version)
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    @property
    def objects_dir(self) -> Path:
        return self.root / "objects"

    def key_for(self, job: Job) -> Optional[str]:
        """Cache key of ``job`` (``None`` for uncacheable jobs)."""
        return job_cache_key(job, self.version)

    def path_for(self, key: str) -> Path:
        """Pickle path of a key (two-level fan-out keeps directories small)."""
        return self.objects_dir / key[:2] / f"{key}.pkl"

    # ------------------------------------------------------------------
    def lookup(self, key: Optional[str]) -> Tuple[bool, Any]:
        """``(hit, value)`` for a key; corrupt entries count as misses."""
        if key is None:
            return False, None
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            get_recorder().count("cache.misses")
            self._record_hit_rate()
            return False, None
        except Exception:
            # Truncated/corrupt artifact (e.g. a killed writer on a
            # non-atomic filesystem): drop it and recompute.
            self.misses += 1
            recorder = get_recorder()
            recorder.count("cache.misses")
            recorder.count("cache.evictions")
            self._remove(key)
            self._record_hit_rate()
            return False, None
        self.hits += 1
        get_recorder().count("cache.hits")
        self._record_hit_rate()
        return True, value

    def store(self, key: str, value: Any, meta: Optional[Dict[str, Any]] = None) -> Path:
        """Atomically persist ``value`` (and a JSON metadata sidecar).

        The object and its sidecar commit as one unit under a per-key
        advisory file lock, so concurrent runners sharing the cache root
        never interleave one writer's pickle with another's metadata.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        rule = chaos_point("cache.store", label=key, attempt=0)
        if rule is not None and rule.kind == "corrupt":
            # Injected data fault: commit a truncated artifact, so the
            # next lookup exercises corrupt-entry recovery.
            payload = payload[: max(1, len(payload) // 2)]
        sidecar = {
            "key": key,
            "version": self.version,
            "created": time.time(),
            "bytes": len(payload),
            **(meta or {}),
        }
        sidecar_bytes = (
            json.dumps(canonical(sidecar), sort_keys=True, indent=1) + "\n"
        ).encode("utf-8")
        with self._key_lock(key):
            self._atomic_write(path, payload)
            self._atomic_write(path.with_suffix(".json"), sidecar_bytes)
        get_recorder().count("cache.stores")
        return path

    def contains(self, key: Optional[str]) -> bool:
        """True when a (readable) artifact exists for ``key``."""
        return key is not None and self.path_for(key).exists()

    def clear(self) -> int:
        """Delete every cached artifact; returns how many were removed."""
        removed = 0
        if not self.objects_dir.exists():
            return removed
        for path in sorted(self.objects_dir.rglob("*.pkl")):
            path.unlink(missing_ok=True)
            path.with_suffix(".json").unlink(missing_ok=True)
            path.with_suffix(".lock").unlink(missing_ok=True)
            removed += 1
        return removed

    def __len__(self) -> int:
        if not self.objects_dir.exists():
            return 0
        return sum(1 for _ in self.objects_dir.rglob("*.pkl"))

    def __repr__(self) -> str:
        return (
            f"ArtifactCache(root={str(self.root)!r}, entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )

    # ------------------------------------------------------------------
    def _record_hit_rate(self) -> None:
        """Publish the running hit rate (last-write-wins gauge)."""
        recorder = get_recorder()
        if not recorder.enabled:
            return
        total = self.hits + self.misses
        recorder.gauge("cache.hit_rate", self.hits / total if total else 0.0)

    def _remove(self, key: str) -> None:
        with self._key_lock(key):
            path = self.path_for(key)
            path.unlink(missing_ok=True)
            path.with_suffix(".json").unlink(missing_ok=True)

    @contextlib.contextmanager
    def _key_lock(self, key: str) -> Iterator[None]:
        """Advisory inter-process lock scoping one key's object+sidecar pair.

        Uses ``fcntl.flock`` on a ``.lock`` sibling; degrades to a no-op
        where ``fcntl`` is unavailable (single-writer platforms keep the
        old atomic-rename guarantees).
        """
        if fcntl is None:
            yield
            return
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        lock_path = path.with_suffix(".lock")
        with open(lock_path, "a+b") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    @staticmethod
    def _atomic_write(path: Path, payload: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), prefix=f".{path.name}.")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
