"""repro.runtime — parallel, cache-aware execution engine for sweeps.

The runtime turns independent (network, config, seed) flow runs into
:class:`Job` objects and executes them through a :class:`Runner`:

* jobs fan out over a ``ProcessPoolExecutor`` with spawn-safe per-job
  RNGs (``numpy.random.SeedSequence.spawn``), so ``n_jobs=1`` and
  ``n_jobs=8`` produce bitwise-identical results;
* an :class:`ArtifactCache` content-addresses finished results on
  (network digest, config hash, seed, package version), so re-running a
  sweep only executes changed cells;
* an :class:`EventLog` records a structured JSONL trace (job started /
  finished / cache hits, per-stage wall times) and can drive a terminal
  :class:`ProgressPrinter`;
* a :class:`ResilienceConfig` adds per-job timeouts, deterministic
  retry/backoff, pool respawn with poison-job quarantine and partial
  :class:`SweepResult`\\ s with structured :class:`JobFailure` records,
  while a :class:`SweepJournal` makes sweeps crash-safe and resumable;
* a :class:`FaultPlan` (:mod:`repro.runtime.chaos`) injects
  deterministic faults — worker death, stage errors, hangs, transient
  flakes, cache corruption — to exercise all of the above, at zero cost
  when disabled.

Quickstart
----------
>>> from repro.runtime import Runner, SweepSpec
>>> from repro.core.config import fast_config
>>> spec = SweepSpec(sizes=(40, 60), densities=(0.08,),
...                  config=fast_config(), seed=7)
>>> sweep = Runner(n_jobs=1).run_sweep(spec)  # doctest: +SKIP
>>> sweep.executed  # doctest: +SKIP
2
"""

from repro.runtime.cache import DEFAULT_CACHE_DIR, ArtifactCache, job_cache_key
from repro.runtime.chaos import (
    ChaosError,
    FaultPlan,
    FaultRule,
    chaos_point,
    chaos_scope,
)
from repro.runtime.events import (
    EventLog,
    ProgressPrinter,
    follow_trace,
    tail_trace,
)
from repro.runtime.jobs import Job, JobResult, SweepSpec
from repro.runtime.resilience import (
    JobFailure,
    ResilienceConfig,
    RetryPolicy,
    SweepJournal,
    UnknownJobKindError,
)
from repro.runtime.runner import (
    Runner,
    SweepResult,
    default_n_jobs,
    register_executor,
    registered_kinds,
)

__all__ = [
    "ArtifactCache",
    "ChaosError",
    "DEFAULT_CACHE_DIR",
    "EventLog",
    "FaultPlan",
    "FaultRule",
    "Job",
    "JobFailure",
    "JobResult",
    "ProgressPrinter",
    "ResilienceConfig",
    "RetryPolicy",
    "Runner",
    "SweepJournal",
    "SweepResult",
    "SweepSpec",
    "UnknownJobKindError",
    "chaos_point",
    "chaos_scope",
    "default_n_jobs",
    "follow_trace",
    "job_cache_key",
    "tail_trace",
    "register_executor",
    "registered_kinds",
]
