"""The parallel, cache-aware job runner.

:class:`Runner` fans a list of :class:`~repro.runtime.jobs.Job` out over
a ``concurrent.futures.ProcessPoolExecutor`` (or runs them inline at
``n_jobs=1``).  Three properties make it safe to parallelize the AutoNCS
flows:

* **Determinism** — every job carries its own seed material, fixed at
  job construction (``SeedSequence.spawn`` or an explicit child seed);
  the worker expands it with ``numpy.random.default_rng``.  Scheduling,
  worker count and completion order therefore cannot perturb results:
  ``n_jobs=1`` and ``n_jobs=8`` are bitwise-identical.
* **Caching** — with an :class:`~repro.runtime.cache.ArtifactCache`, the
  runner serves finished cells from disk and only executes changed ones.
  Cache reads and writes happen in the driver process (single writer, no
  cross-process races).
* **Observability** — every job emits ``job_started`` /
  ``job_finished`` events (with per-stage wall times re-exported from
  the flow diagnostics) through an :class:`~repro.runtime.events.EventLog`.

Executors are plain module-level functions registered under a *kind*
string, so jobs pickle as data and the work function resolves inside
the worker process regardless of the start method (fork or spawn).
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.observability import get_recorder, recording
from repro.runtime.cache import ArtifactCache
from repro.runtime.events import EventLog
from repro.runtime.jobs import Job, JobResult, SweepSpec
from repro.utils.timers import Timer

#: kind -> executor(rng=..., **payload).  Module-level so that worker
#: processes rebuild it on import, even under the 'spawn' start method.
_EXECUTORS: Dict[str, Callable[..., Any]] = {}


def register_executor(kind: str, fn: Callable[..., Any]) -> None:
    """Register (or replace) the executor behind a job kind."""
    if not callable(fn):
        raise TypeError(f"executor for {kind!r} must be callable")
    _EXECUTORS[kind] = fn


def registered_kinds() -> List[str]:
    """The currently registered job kinds (sorted)."""
    return sorted(_EXECUTORS)


# ----------------------------------------------------------------------
# Built-in executors
# ----------------------------------------------------------------------
def _run_compare(network, config, rng):
    from repro.core.autoncs import AutoNCS

    return AutoNCS(config).compare(network, rng=rng)


def _run_autoncs(network, config, rng):
    from repro.core.autoncs import AutoNCS

    return AutoNCS(config).run(network, rng=rng)


def _run_fullcro(network, config, rng):
    from repro.core.autoncs import AutoNCS

    return AutoNCS(config).run_baseline(network, rng=rng)


def _run_yield_trial(rng, **payload):
    from repro.reliability.yield_eval import execute_trial

    return execute_trial(**payload)


register_executor("compare", _run_compare)
register_executor("autoncs", _run_autoncs)
register_executor("fullcro", _run_fullcro)
register_executor("yield_trial", _run_yield_trial)


def _job_stage_seconds(value: Any) -> Dict[str, float]:
    """Per-stage wall times of a flow result, when it carries any.

    Understands ``AutoNcsResult`` (run diagnostics), ``PhysicalDesign``
    (implement diagnostics) and ``ComparisonReport`` (both flows,
    prefixed), so events re-export where the time went.
    """
    metadata = getattr(value, "metadata", None)
    if isinstance(metadata, dict):
        times = metadata.get("stage_seconds")
        if isinstance(times, dict):
            return {str(k): float(v) for k, v in times.items()}
        diagnostics = metadata.get("diagnostics", {})
        times = diagnostics.get("stage_seconds") if isinstance(diagnostics, dict) else None
        if isinstance(times, dict):
            return {str(k): float(v) for k, v in times.items()}
    autoncs = getattr(value, "autoncs", None)
    fullcro = getattr(value, "fullcro", None)
    if autoncs is not None and fullcro is not None:
        merged: Dict[str, float] = {}
        for prefix, design in (("autoncs", autoncs), ("fullcro", fullcro)):
            for stage, seconds in _job_stage_seconds(design).items():
                merged[f"{prefix}.{stage}"] = seconds
        return merged
    return {}


def _execute_job(
    index: int, job: Job, record: bool = False
) -> Tuple[int, Any, float, Optional[Dict[str, Any]]]:
    """Worker entry point: run one job and time it.

    Top-level (picklable) on purpose; the executor registry is rebuilt
    by module import inside the worker.

    With ``record=True`` (the pool path when the driver is tracing) the
    job runs under a fresh :class:`~repro.observability.Recorder` and the
    picklable observability state travels back as the fourth element;
    the driver folds it in with :meth:`Recorder.absorb`.  Inline jobs
    pass ``record=False`` — they write directly to the driver's current
    recorder — so the returned state is ``None``.
    """
    try:
        fn = _EXECUTORS[job.kind]
    except KeyError:
        raise ValueError(
            f"no executor registered for job kind {job.kind!r} "
            f"(known: {registered_kinds()})"
        ) from None
    rng = None if job.seed is None else np.random.default_rng(job.seed)
    if record:
        with recording() as recorder:
            with Timer() as timer:
                with recorder.span("runner.job", label=job.label, kind=job.kind, index=index):
                    value = fn(rng=rng, **job.payload)
            state = recorder.export_state()
        return index, value, timer.elapsed, state
    with Timer() as timer:
        with get_recorder().span(
            "runner.job", label=job.label, kind=job.kind, index=index
        ):
            value = fn(rng=rng, **job.payload)
    return index, value, timer.elapsed, None


def default_n_jobs() -> int:
    """A sensible worker count: ``REPRO_N_JOBS`` env or the CPU count."""
    env = os.environ.get("REPRO_N_JOBS", "")
    if env:
        return max(1, int(env))
    return max(1, os.cpu_count() or 1)


class Runner:
    """Executes jobs over a process pool with caching and events.

    Parameters
    ----------
    n_jobs:
        Worker processes; ``1`` (default) runs inline in this process —
        no pool, no pickling, identical results.
    cache:
        Optional :class:`ArtifactCache`; cacheable jobs whose key is
        present are served from disk without executing.
    events:
        Optional :class:`EventLog` receiving the structured event stream.
    """

    def __init__(
        self,
        n_jobs: int = 1,
        cache: Optional[ArtifactCache] = None,
        events: Optional[EventLog] = None,
    ) -> None:
        if n_jobs < 1:
            raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
        self.n_jobs = int(n_jobs)
        self.cache = cache
        self.events = events if events is not None else EventLog()

    # ------------------------------------------------------------------
    def run(self, jobs: Sequence[Job]) -> List[JobResult]:
        """Execute ``jobs``; returns results in job order.

        Cache hits never execute; misses run inline or on the pool and
        are stored back.  Raises the job's error (annotated with its
        label) on failure.
        """
        jobs = list(jobs)
        self.events.emit("sweep_started", jobs=len(jobs), n_jobs=self.n_jobs)
        recorder = get_recorder()
        results: List[Optional[JobResult]] = [None] * len(jobs)
        pending: List[Tuple[int, Optional[str]]] = []
        with recorder.span("runner.sweep", jobs=len(jobs), n_jobs=self.n_jobs) as span:
            with Timer() as wall:
                for index, job in enumerate(jobs):
                    key = self.cache.key_for(job) if self.cache is not None else None
                    hit, value = (self.cache.lookup(key) if key is not None else (False, None))
                    if hit:
                        results[index] = JobResult(
                            index=index,
                            label=job.label,
                            kind=job.kind,
                            value=value,
                            seconds=0.0,
                            cache_hit=True,
                            stage_seconds=_job_stage_seconds(value),
                        )
                        self.events.emit(
                            "job_finished",
                            label=job.label,
                            kind=job.kind,
                            index=index,
                            seconds=0.0,
                            cache_hit=True,
                        )
                    else:
                        pending.append((index, key))
                if self.n_jobs == 1 or len(pending) <= 1:
                    for index, key in pending:
                        self._finish(jobs, results, key, *self._run_inline(index, jobs[index]))
                else:
                    self._run_pool(jobs, results, pending)
            executed = len(pending)
            recorder.count("runner.jobs_cached", len(jobs) - executed)
            span.annotate(executed=executed, cache_hits=len(jobs) - executed)
        self.events.emit(
            "sweep_finished",
            jobs=len(jobs),
            executed=executed,
            cache_hits=len(jobs) - executed,
            seconds=wall.elapsed,
        )
        return [result for result in results if result is not None]

    def run_sweep(self, spec: SweepSpec) -> "SweepResult":
        """Expand a :class:`SweepSpec` and execute it."""
        return SweepResult(spec=spec, results=self.run(spec.jobs()))

    # ------------------------------------------------------------------
    def _run_inline(
        self, index: int, job: Job
    ) -> Tuple[int, Any, float, Optional[Dict[str, Any]]]:
        self.events.emit("job_started", label=job.label, kind=job.kind, index=index)
        try:
            return _execute_job(index, job)
        except Exception as exc:
            raise RuntimeError(
                f"job {job.label!r} (kind={job.kind!r}) failed: {exc}"
            ) from exc

    def _run_pool(
        self,
        jobs: List[Job],
        results: List[Optional[JobResult]],
        pending: List[Tuple[int, Optional[str]]],
    ) -> None:
        keys = dict(pending)
        max_workers = min(self.n_jobs, len(pending))
        # Workers only pay for recording when the driver is actually
        # tracing; each ships its observability state back with the result.
        record = get_recorder().enabled
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = {}
            for index, _key in pending:
                job = jobs[index]
                self.events.emit(
                    "job_started", label=job.label, kind=job.kind, index=index
                )
                futures[pool.submit(_execute_job, index, job, record)] = index
            outstanding = set(futures)
            while outstanding:
                done, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                for future in done:
                    index = futures[future]
                    try:
                        _index, value, seconds, obs_state = future.result()
                    except Exception as exc:
                        job = jobs[index]
                        for leftover in outstanding:
                            leftover.cancel()
                        raise RuntimeError(
                            f"job {job.label!r} (kind={job.kind!r}) failed: {exc}"
                        ) from exc
                    self._finish(
                        jobs, results, keys[index], index, value, seconds, obs_state
                    )

    def _finish(
        self,
        jobs: List[Job],
        results: List[Optional[JobResult]],
        key: Optional[str],
        index: int,
        value: Any,
        seconds: float,
        obs_state: Optional[Dict[str, Any]] = None,
    ) -> None:
        job = jobs[index]
        recorder = get_recorder()
        recorder.absorb(obs_state)
        recorder.count("runner.jobs_executed")
        stage_seconds = _job_stage_seconds(value)
        results[index] = JobResult(
            index=index,
            label=job.label,
            kind=job.kind,
            value=value,
            seconds=seconds,
            cache_hit=False,
            stage_seconds=stage_seconds,
        )
        if self.cache is not None and key is not None:
            self.cache.store(key, value, meta={"label": job.label, "kind": job.kind})
        self.events.emit(
            "job_finished",
            label=job.label,
            kind=job.kind,
            index=index,
            seconds=seconds,
            cache_hit=False,
            stage_seconds=stage_seconds,
        )


@dataclass
class SweepResult:
    """The outcome of one executed sweep grid."""

    spec: SweepSpec
    results: List[JobResult]
    metadata: dict = field(default_factory=dict)

    @property
    def cache_hits(self) -> int:
        """How many cells were served from the artifact cache."""
        return sum(1 for result in self.results if result.cache_hit)

    @property
    def executed(self) -> int:
        """How many cells actually ran the flow."""
        return len(self.results) - self.cache_hits

    def cell_rows(self) -> List[Dict[str, Any]]:
        """One scalar summary row per grid cell (for tables/JSON)."""
        rows = []
        for (size, density), result in zip(self.spec.cells(), self.results):
            row: Dict[str, Any] = {
                "size": size,
                "density": density,
                "label": result.label,
                "seconds": result.seconds,
                "cache_hit": result.cache_hit,
            }
            value = result.value
            if self.spec.kind == "compare":
                row.update(
                    wirelength_reduction=value.wirelength_reduction,
                    area_reduction=value.area_reduction,
                    delay_reduction=value.delay_reduction,
                )
            else:
                design = getattr(value, "design", value)
                row.update(
                    wirelength_um=design.cost.wirelength_um,
                    area_um2=design.cost.area_um2,
                    delay_ns=design.cost.average_delay_ns,
                )
            rows.append(row)
        return rows

    def format_table(self) -> str:
        """A fixed-width text table over the grid cells."""
        rows = self.cell_rows()
        if self.spec.kind == "compare":
            header = (
                f"{'size':>6} {'density':>8} {'wl red':>8} {'area red':>9} "
                f"{'delay red':>10} {'seconds':>8} {'cache':>6}"
            )
            lines = [header, "-" * len(header)]
            for row in rows:
                lines.append(
                    f"{row['size']:>6d} {row['density']:>8.3f} "
                    f"{row['wirelength_reduction']:>7.2f}% "
                    f"{row['area_reduction']:>8.2f}% "
                    f"{row['delay_reduction']:>9.2f}% "
                    f"{row['seconds']:>8.2f} "
                    f"{'hit' if row['cache_hit'] else 'miss':>6}"
                )
        else:
            header = (
                f"{'size':>6} {'density':>8} {'wirelength':>12} {'area':>12} "
                f"{'delay':>8} {'seconds':>8} {'cache':>6}"
            )
            lines = [header, "-" * len(header)]
            for row in rows:
                lines.append(
                    f"{row['size']:>6d} {row['density']:>8.3f} "
                    f"{row['wirelength_um']:>12,.1f} {row['area_um2']:>12,.2f} "
                    f"{row['delay_ns']:>8.2f} {row['seconds']:>8.2f} "
                    f"{'hit' if row['cache_hit'] else 'miss':>6}"
                )
        lines.append(
            f"{len(rows)} cell(s): {self.executed} executed, "
            f"{self.cache_hits} cache hit(s)"
        )
        return "\n".join(lines)
