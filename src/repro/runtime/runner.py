"""The parallel, cache-aware, failure-resilient job runner.

:class:`Runner` fans a list of :class:`~repro.runtime.jobs.Job` out over
a ``concurrent.futures.ProcessPoolExecutor`` (or runs them inline at
``n_jobs=1``).  Four properties make it safe to parallelize the AutoNCS
flows:

* **Determinism** — every job carries its own seed material, fixed at
  job construction (``SeedSequence.spawn`` or an explicit child seed);
  the worker expands it with ``numpy.random.default_rng``.  Scheduling,
  worker count, completion order *and retries* therefore cannot perturb
  results: ``n_jobs=1`` and ``n_jobs=8`` are bitwise-identical, and a
  job that succeeds on its third attempt returns the same artifact it
  would have returned on its first.
* **Caching** — with an :class:`~repro.runtime.cache.ArtifactCache`, the
  runner serves finished cells from disk and only executes changed ones.
* **Resilience** — with a :class:`~repro.runtime.resilience.
  ResilienceConfig`, failing jobs are retried with exponential backoff
  and deterministic jitter, hung jobs are preempted at a wall-clock
  deadline (the pool is killed and respawned), a worker death
  (``BrokenProcessPool``) triggers suspect isolation and poison-job
  quarantine, and exhausted jobs leave structured
  :class:`~repro.runtime.resilience.JobFailure` records so the sweep
  returns *partial* results instead of aborting.  A
  :class:`~repro.runtime.resilience.SweepJournal` makes progress
  crash-safe and sweeps resumable.  Without an explicit config the
  legacy contract holds: one attempt, first failure raises.
* **Observability** — every job emits ``job_started`` /
  ``job_finished`` / ``job_retry`` / ``job_timeout`` / ``worker_crash``
  / ``job_quarantined`` / ``job_failed`` events through an
  :class:`~repro.runtime.events.EventLog`.

Executors are plain module-level functions registered under a *kind*
string, so jobs pickle as data and the work function resolves inside
the worker process regardless of the start method (fork or spawn).
Fault injection (:mod:`repro.runtime.chaos`) threads through the same
boundary: the plan ships with the job and is re-installed inside the
worker, so chaos decisions are identical on every path.
"""

from __future__ import annotations

import heapq
import os
import time as _time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.observability import get_recorder, recording
from repro.runtime.cache import ArtifactCache
from repro.runtime.chaos import (
    ChaosHang,
    ChaosWorkerCrash,
    FaultPlan,
    chaos_point,
    chaos_scope,
)
from repro.runtime.events import EventLog
from repro.runtime.jobs import Job, JobResult, SweepSpec
from repro.runtime.resilience import (
    LEGACY,
    JobFailure,
    ResilienceConfig,
    SweepJournal,
    UnknownJobKindError,
)
from repro.utils.canonical import stable_hash
from repro.utils.timers import Timer

#: kind -> executor(rng=..., **payload).  Module-level so that worker
#: processes rebuild it on import, even under the 'spawn' start method.
_EXECUTORS: Dict[str, Callable[..., Any]] = {}


def register_executor(kind: str, fn: Callable[..., Any]) -> None:
    """Register (or replace) the executor behind a job kind."""
    if not callable(fn):
        raise TypeError(f"executor for {kind!r} must be callable")
    _EXECUTORS[kind] = fn


def registered_kinds() -> List[str]:
    """The currently registered job kinds (sorted)."""
    return sorted(_EXECUTORS)


# ----------------------------------------------------------------------
# Built-in executors
# ----------------------------------------------------------------------
def _run_compare(network, config, rng):
    from repro.core.autoncs import AutoNCS

    return AutoNCS(config).compare(network, rng=rng)


def _run_autoncs(network, config, rng):
    from repro.core.autoncs import AutoNCS

    return AutoNCS(config).run(network, rng=rng)


def _run_fullcro(network, config, rng):
    from repro.core.autoncs import AutoNCS

    return AutoNCS(config).run_baseline(network, rng=rng)


def _run_yield_trial(rng, **payload):
    from repro.reliability.yield_eval import execute_trial

    return execute_trial(**payload)


register_executor("compare", _run_compare)
register_executor("autoncs", _run_autoncs)
register_executor("fullcro", _run_fullcro)
register_executor("yield_trial", _run_yield_trial)


def _job_stage_seconds(value: Any) -> Dict[str, float]:
    """Per-stage wall times of a flow result, when it carries any.

    Understands ``AutoNcsResult`` (run diagnostics), ``PhysicalDesign``
    (implement diagnostics) and ``ComparisonReport`` (both flows,
    prefixed), so events re-export where the time went.
    """
    metadata = getattr(value, "metadata", None)
    if isinstance(metadata, dict):
        times = metadata.get("stage_seconds")
        if isinstance(times, dict):
            return {str(k): float(v) for k, v in times.items()}
        diagnostics = metadata.get("diagnostics", {})
        times = diagnostics.get("stage_seconds") if isinstance(diagnostics, dict) else None
        if isinstance(times, dict):
            return {str(k): float(v) for k, v in times.items()}
    autoncs = getattr(value, "autoncs", None)
    fullcro = getattr(value, "fullcro", None)
    if autoncs is not None and fullcro is not None:
        merged: Dict[str, float] = {}
        for prefix, design in (("autoncs", autoncs), ("fullcro", fullcro)):
            for stage, seconds in _job_stage_seconds(design).items():
                merged[f"{prefix}.{stage}"] = seconds
        return merged
    return {}


def _chaos_token(job: Job) -> Optional[str]:
    """Stable per-job token folded into chaos/backoff decisions."""
    if job.seed is None:
        return None
    return stable_hash({"label": job.label, "seed": job.seed})


def _execute_job(
    index: int,
    job: Job,
    record: bool = False,
    chaos: Optional[FaultPlan] = None,
    attempt: int = 0,
    in_worker: bool = False,
) -> Tuple[int, Any, float, Optional[Dict[str, Any]]]:
    """Worker entry point: run one job (one attempt) and time it.

    Top-level (picklable) on purpose; the executor registry is rebuilt
    by module import inside the worker.  ``chaos`` (the pickled fault
    plan) and ``attempt`` travel with the call so injected faults are a
    deterministic function of the job's identity — see
    :mod:`repro.runtime.chaos`.

    With ``record=True`` (the pool path when the driver is tracing) the
    job runs under a fresh :class:`~repro.observability.Recorder` and the
    picklable observability state travels back as the fourth element;
    the driver folds it in with :meth:`Recorder.absorb`.  Inline jobs
    pass ``record=False`` — they write directly to the driver's current
    recorder — so the returned state is ``None``.

    Raises :class:`UnknownJobKindError` (structured: job label + the
    registered kinds) instead of a bare ``KeyError`` when the job names
    an unregistered executor; the runner records it as a non-retryable
    :class:`JobFailure` rather than crashing the worker.
    """
    try:
        fn = _EXECUTORS[job.kind]
    except KeyError:
        raise UnknownJobKindError(job.label, job.kind, registered_kinds()) from None
    rng = None if job.seed is None else np.random.default_rng(job.seed)
    with chaos_scope(
        chaos,
        label=job.label,
        attempt=attempt,
        token=_chaos_token(job),
        in_worker=in_worker,
    ):
        chaos_point("job.run")
        if record:
            with recording() as recorder:
                with Timer() as timer:
                    with recorder.span(
                        "runner.job", label=job.label, kind=job.kind, index=index
                    ):
                        value = fn(rng=rng, **job.payload)
                state = recorder.export_state()
            return index, value, timer.elapsed, state
        with Timer() as timer:
            with get_recorder().span(
                "runner.job", label=job.label, kind=job.kind, index=index
            ):
                value = fn(rng=rng, **job.payload)
    return index, value, timer.elapsed, None


def default_n_jobs() -> int:
    """A sensible worker count: ``REPRO_N_JOBS`` env or the CPU count."""
    env = os.environ.get("REPRO_N_JOBS", "")
    if env:
        return max(1, int(env))
    return max(1, os.cpu_count() or 1)


@dataclass
class _JobState:
    """Mutable per-pending-job bookkeeping for the resilient paths."""

    index: int
    key: Optional[str]  # artifact-cache key
    jkey: str           # journal key (cache key, or a stable fallback)
    attempts: int = 0   # attempts fully charged (errors/timeouts/solo crashes)
    strikes: int = 0    # definitive worker crashes caused
    suspect: bool = False  # in-flight during a pool break; runs solo next


class Runner:
    """Executes jobs over a process pool with caching, events and retries.

    Parameters
    ----------
    n_jobs:
        Worker processes; ``1`` (default) runs inline in this process —
        no pool, no pickling, identical results.
    cache:
        Optional :class:`ArtifactCache`; cacheable jobs whose key is
        present are served from disk without executing.
    events:
        Optional :class:`EventLog` receiving the structured event stream.
    resilience:
        Optional :class:`ResilienceConfig` enabling retries, timeouts,
        pool respawn/quarantine and partial results.  ``None`` keeps the
        legacy contract (one attempt, first failure raises).
    chaos:
        Optional :class:`~repro.runtime.chaos.FaultPlan`; installed in
        the driver (cache sites) and shipped to every worker (job and
        flow-stage sites).  ``None`` is the zero-overhead default.
    journal:
        Optional :class:`SweepJournal`; every finished/failed cell is
        appended (fsynced) under its cache key, and ``run(...,
        resume=True)`` replays it to skip quarantined cells.
    """

    def __init__(
        self,
        n_jobs: int = 1,
        cache: Optional[ArtifactCache] = None,
        events: Optional[EventLog] = None,
        resilience: Optional[ResilienceConfig] = None,
        chaos: Optional[FaultPlan] = None,
        journal: Optional[SweepJournal] = None,
    ) -> None:
        if n_jobs < 1:
            raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
        self.n_jobs = int(n_jobs)
        self.cache = cache
        self.events = events if events is not None else EventLog()
        self.resilience = resilience
        self.chaos = chaos if (chaos is not None and chaos.rules) else None
        self.journal = journal

    # ------------------------------------------------------------------
    def run(self, jobs: Sequence[Job], resume: bool = False) -> List[JobResult]:
        """Execute ``jobs``; returns results in job order.

        Cache hits never execute; misses run inline or on the pool and
        are stored back.  Without a resilience config, the job's error
        (annotated with its label) is raised on failure.  With one,
        failed jobs come back as :class:`JobResult` entries whose
        ``failure`` field carries the structured :class:`JobFailure`.
        With ``resume=True`` and a journal, cells quarantined by an
        earlier (killed) run are skipped instead of re-poisoning the
        pool.
        """
        jobs = list(jobs)
        policy = self.resilience if self.resilience is not None else LEGACY
        journal_state = None
        if resume and self.journal is not None:
            journal_state = self.journal.load_state()
        self.events.emit("sweep_started", jobs=len(jobs), n_jobs=self.n_jobs)
        if journal_state:
            self.events.emit(
                "sweep_resumed",
                completed=len(journal_state.done),
                failed=len(journal_state.failed),
                quarantined=len(journal_state.quarantined),
                runs=journal_state.runs,
            )
        recorder = get_recorder()
        results: List[Optional[JobResult]] = [None] * len(jobs)
        pending: List[_JobState] = []
        with recorder.span("runner.sweep", jobs=len(jobs), n_jobs=self.n_jobs) as span:
            with Timer() as wall:
                with chaos_scope(self.chaos, label="driver"):
                    for index, job in enumerate(jobs):
                        key = self.cache.key_for(job) if self.cache is not None else None
                        state = _JobState(
                            index=index, key=key, jkey=self._journal_key(job, key, index)
                        )
                        if (
                            journal_state is not None
                            and state.jkey in journal_state.quarantined
                        ):
                            self._quarantined_on_resume(jobs, results, state)
                            continue
                        hit, value = (
                            self.cache.lookup(key) if key is not None else (False, None)
                        )
                        if hit:
                            results[index] = JobResult(
                                index=index,
                                label=job.label,
                                kind=job.kind,
                                value=value,
                                seconds=0.0,
                                cache_hit=True,
                                stage_seconds=_job_stage_seconds(value),
                            )
                            if self.journal is not None:
                                self.journal.job_done(
                                    state.jkey, label=job.label, kind=job.kind,
                                    status="cached", seconds=0.0, attempts=0,
                                )
                            self.events.emit(
                                "job_finished",
                                label=job.label,
                                kind=job.kind,
                                index=index,
                                seconds=0.0,
                                cache_hit=True,
                            )
                        else:
                            pending.append(state)
                    if self.n_jobs == 1 or len(pending) <= 1:
                        self._run_inline(jobs, results, pending, policy)
                    else:
                        self._run_pool(jobs, results, pending, policy)
            executed = len(pending)
            failures = sum(
                1 for result in results if result is not None and result.failure
            )
            recorder.count("runner.jobs_cached", len(jobs) - executed)
            span.annotate(
                executed=executed,
                cache_hits=len(jobs) - executed,
                failures=failures,
            )
        self.events.emit(
            "sweep_finished",
            jobs=len(jobs),
            executed=executed,
            cache_hits=len(jobs) - executed,
            failures=failures,
            seconds=wall.elapsed,
        )
        return [result for result in results if result is not None]

    def run_sweep(self, spec: SweepSpec, resume: bool = False) -> "SweepResult":
        """Expand a :class:`SweepSpec` and execute it (optionally resuming)."""
        jobs = spec.jobs()
        sweep_key = spec.sweep_key()
        if self.journal is not None:
            self.journal.run_started(sweep_key, len(jobs), resumed=resume)
        results = self.run(jobs, resume=resume)
        return SweepResult(
            spec=spec, results=results, metadata={"sweep_key": sweep_key}
        )

    # ------------------------------------------------------------------
    # Shared failure machinery
    # ------------------------------------------------------------------
    @staticmethod
    def _journal_key(job: Job, key: Optional[str], index: int) -> str:
        if key is not None:
            return key
        return stable_hash(
            {"kind": job.kind, "label": job.label, "index": index, "seed": job.seed}
        )

    def _quarantined_on_resume(
        self, jobs: List[Job], results: List[Optional[JobResult]], state: _JobState
    ) -> None:
        job = jobs[state.index]
        failure = JobFailure(
            index=state.index,
            label=job.label,
            kind=job.kind,
            failure="quarantined",
            message="quarantined by an earlier run (resume)",
            attempts=0,
        )
        results[state.index] = JobResult(
            index=state.index, label=job.label, kind=job.kind,
            value=None, failure=failure,
        )
        get_recorder().count("runner.quarantined_skips")
        self.events.emit(
            "job_skipped", label=job.label, kind=job.kind,
            index=state.index, reason="quarantined",
        )

    @staticmethod
    def _classify(exc: BaseException, policy: ResilienceConfig,
                  seconds: float) -> str:
        if isinstance(exc, UnknownJobKindError):
            return "unknown-kind"
        if isinstance(exc, (ChaosHang, TimeoutError)):
            return "timeout"
        if isinstance(exc, (ChaosWorkerCrash, BrokenExecutor)):
            return "crash"
        if (
            policy.timeout_seconds is not None
            and seconds >= policy.timeout_seconds
        ):
            return "timeout"
        return "error"

    def _fail(
        self,
        jobs: List[Job],
        results: List[Optional[JobResult]],
        state: _JobState,
        policy: ResilienceConfig,
        failure_kind: str,
        message: str,
        seconds: float = 0.0,
        quarantined: bool = False,
        cause: Optional[BaseException] = None,
    ) -> None:
        """Record a terminal failure (or raise it, under fail-fast)."""
        job = jobs[state.index]
        failure = JobFailure(
            index=state.index,
            label=job.label,
            kind=job.kind,
            failure="quarantined" if quarantined else failure_kind,
            message=message,
            attempts=max(1, state.attempts),
            seconds=seconds,
        )
        recorder = get_recorder()
        recorder.count("runner.failures")
        recorder.count(f"runner.failures.{failure.failure}")
        if self.journal is not None:
            self.journal.job_failed(state.jkey, failure=failure,
                                    quarantined=quarantined)
        self.events.emit(
            "job_failed",
            label=job.label,
            kind=job.kind,
            index=state.index,
            failure=failure.failure,
            message=message,
            attempts=failure.attempts,
        )
        if policy.fail_fast:
            if isinstance(cause, UnknownJobKindError):
                raise cause
            raise RuntimeError(
                f"job {job.label!r} (kind={job.kind!r}) failed: {message}"
            ) from cause
        results[state.index] = JobResult(
            index=state.index, label=job.label, kind=job.kind,
            value=None, seconds=seconds, failure=failure,
            attempts=failure.attempts,
        )

    def _charge_attempt(
        self,
        jobs: List[Job],
        results: List[Optional[JobResult]],
        state: _JobState,
        policy: ResilienceConfig,
        failure_kind: str,
        message: str,
        seconds: float,
        cause: Optional[BaseException] = None,
    ) -> Optional[float]:
        """One attempt failed; returns the backoff before the next, or
        ``None`` when the failure is terminal (recorded/raised)."""
        job = jobs[state.index]
        state.attempts += 1
        if failure_kind == "crash":
            state.strikes += 1
            if state.strikes >= policy.quarantine_after:
                self.events.emit(
                    "job_quarantined", label=job.label, index=state.index,
                    strikes=state.strikes,
                )
                get_recorder().count("runner.quarantined")
                self._fail(jobs, results, state, policy, "crash", message,
                           seconds, quarantined=True, cause=cause)
                return None
        if failure_kind == "unknown-kind" or (
            state.attempts >= policy.retry.max_attempts
        ):
            self._fail(jobs, results, state, policy, failure_kind, message,
                       seconds, cause=cause)
            return None
        backoff = policy.retry.backoff_seconds(state.attempts - 1, token=state.jkey)
        get_recorder().count("runner.retries")
        self.events.emit(
            "job_retry",
            label=job.label,
            kind=job.kind,
            index=state.index,
            attempt=state.attempts,
            backoff_seconds=backoff,
            reason=failure_kind,
        )
        return backoff

    # ------------------------------------------------------------------
    # Inline execution (n_jobs == 1)
    # ------------------------------------------------------------------
    def _run_inline(
        self,
        jobs: List[Job],
        results: List[Optional[JobResult]],
        pending: List[_JobState],
        policy: ResilienceConfig,
    ) -> None:
        for state in pending:
            job = jobs[state.index]
            while True:
                self.events.emit(
                    "job_started", label=job.label, kind=job.kind,
                    index=state.index, attempt=state.attempts,
                )
                started = _time.monotonic()
                try:
                    _idx, value, seconds, obs_state = _execute_job(
                        state.index, job, record=False, chaos=self.chaos,
                        attempt=state.attempts,
                    )
                except Exception as exc:
                    seconds = _time.monotonic() - started
                    failure_kind = self._classify(exc, policy, seconds)
                    if failure_kind == "timeout":
                        get_recorder().count("runner.timeouts")
                        self.events.emit(
                            "job_timeout", label=job.label, index=state.index,
                            attempt=state.attempts, seconds=seconds,
                        )
                    backoff = self._charge_attempt(
                        jobs, results, state, policy, failure_kind,
                        f"{type(exc).__name__}: {exc}", seconds, cause=exc,
                    )
                    if backoff is None:
                        break
                    _time.sleep(backoff)
                    continue
                self._finish(
                    jobs, results, state, value, seconds, obs_state,
                )
                break

    # ------------------------------------------------------------------
    # Pool execution
    # ------------------------------------------------------------------
    def _run_pool(
        self,
        jobs: List[Job],
        results: List[Optional[JobResult]],
        pending: List[_JobState],
        policy: ResilienceConfig,
    ) -> None:
        states = {state.index: state for state in pending}
        ready: deque = deque(state.index for state in pending)
        waiting: List[Tuple[float, int]] = []  # (due_monotonic, index) heap
        running: Dict[Any, Tuple[int, float]] = {}  # future -> (index, started)
        pool: Optional[ProcessPoolExecutor] = None
        record = get_recorder().enabled
        max_workers = min(self.n_jobs, len(pending))

        def submit(index: int) -> None:
            nonlocal pool
            if pool is None:
                pool = ProcessPoolExecutor(max_workers=max_workers)
            job = jobs[index]
            state = states[index]
            self.events.emit(
                "job_started", label=job.label, kind=job.kind,
                index=index, attempt=state.attempts,
            )
            future = pool.submit(
                _execute_job, index, job, record, self.chaos,
                state.attempts, True,
            )
            running[future] = (index, _time.monotonic())

        def schedule_retry(index: int, backoff: float) -> None:
            heapq.heappush(waiting, (_time.monotonic() + backoff, index))

        def handle_failed_attempt(index: int, failure_kind: str,
                                  message: str, seconds: float,
                                  cause: Optional[BaseException]) -> None:
            backoff = self._charge_attempt(
                jobs, results, states[index], policy, failure_kind,
                message, seconds, cause=cause,
            )
            if backoff is not None:
                schedule_retry(index, backoff)

        try:
            while ready or waiting or running:
                now = _time.monotonic()
                while waiting and waiting[0][0] <= now:
                    _, index = heapq.heappop(waiting)
                    ready.append(index)
                # Submission: when any job is a crash suspect, it must run
                # in isolation — one suspect solo, nothing else — so a
                # repeat crash is attributable and innocents go free.
                suspects = [index for index in ready if states[index].suspect]
                if suspects:
                    if not running:
                        index = suspects[0]
                        ready.remove(index)
                        submit(index)
                else:
                    while ready and len(running) < max_workers:
                        submit(ready.popleft())
                if not running:
                    if waiting:
                        pause = max(0.0, waiting[0][0] - _time.monotonic())
                        if pause:
                            _time.sleep(min(pause, 0.5))
                    continue
                timeout = None
                if waiting:
                    timeout = max(0.0, waiting[0][0] - _time.monotonic())
                if policy.timeout_seconds is not None:
                    deadline = min(started for _i, started in running.values())
                    remaining = deadline + policy.timeout_seconds - _time.monotonic()
                    timeout = (
                        max(0.01, remaining) if timeout is None
                        else min(timeout, max(0.01, remaining))
                    )
                done, _ = wait(set(running), timeout=timeout,
                               return_when=FIRST_COMPLETED)
                crashed = False
                for future in done:
                    index, started = running.pop(future)
                    seconds = _time.monotonic() - started
                    job = jobs[index]
                    state = states[index]
                    try:
                        _idx, value, job_seconds, obs_state = future.result()
                    except BrokenExecutor:
                        crashed = True
                        self._note_crash(
                            jobs, results, state, policy, seconds,
                            solo=len(running) == 0 and len(done) == 1,
                            ready=ready, schedule_retry=schedule_retry,
                        )
                    except Exception as exc:
                        failure_kind = self._classify(exc, policy, seconds)
                        handle_failed_attempt(
                            index, failure_kind,
                            f"{type(exc).__name__}: {exc}", seconds, exc,
                        )
                    else:
                        state.suspect = False
                        self._finish(jobs, results, state, value,
                                     job_seconds, obs_state)
                if crashed:
                    # The pool is broken: every other in-flight job would
                    # raise BrokenProcessPool too.  Requeue them all as
                    # suspects (uncharged — the culprit is ambiguous) and
                    # respawn the pool.
                    self.events.emit(
                        "worker_crash",
                        in_flight=len(running),
                        suspects=[jobs[i].label for i, _s in running.values()],
                    )
                    get_recorder().count("runner.worker_crashes")
                    for future, (index, _started) in list(running.items()):
                        states[index].suspect = True
                        ready.appendleft(index)
                    running.clear()
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = None
                    continue
                # Wall-clock deadline: kill the pool under any expired
                # job, charge the expired ones a timeout, requeue the
                # rest uncharged (the kill, not they, interrupted them).
                if policy.timeout_seconds is not None and running:
                    now = _time.monotonic()
                    expired = [
                        (future, index, started)
                        for future, (index, started) in running.items()
                        if now - started >= policy.timeout_seconds
                    ]
                    if expired:
                        expired_indexes = {index for _f, index, _s in expired}
                        for future, (index, started) in list(running.items()):
                            if index in expired_indexes:
                                seconds = now - started
                                get_recorder().count("runner.timeouts")
                                self.events.emit(
                                    "job_timeout", label=jobs[index].label,
                                    index=index, attempt=states[index].attempts,
                                    seconds=seconds,
                                )
                                handle_failed_attempt(
                                    index, "timeout",
                                    f"exceeded the {policy.timeout_seconds:g}s "
                                    "wall-clock budget", seconds, None,
                                )
                            else:
                                ready.appendleft(index)
                        running.clear()
                        self._kill_pool(pool)
                        pool = None
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)

    def _note_crash(
        self,
        jobs: List[Job],
        results: List[Optional[JobResult]],
        state: _JobState,
        policy: ResilienceConfig,
        seconds: float,
        solo: bool,
        ready: deque,
        schedule_retry,
    ) -> None:
        """A future raised ``BrokenProcessPool``.

        Running solo (suspect isolation, or simply the only in-flight
        job) makes the crash definitively attributable: charge it as a
        crash attempt/strike.  Otherwise mark the job a suspect and
        requeue it uncharged.
        """
        if solo:
            backoff = self._charge_attempt(
                jobs, results, state, policy, "crash",
                "worker process died (BrokenProcessPool)", seconds, cause=None,
            )
            if backoff is not None:
                state.suspect = True
                schedule_retry(state.index, backoff)
        else:
            state.suspect = True
            ready.appendleft(state.index)

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Hard-stop a pool whose worker is hung (deadline expired)."""
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.kill()
            except Exception:
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    def _finish(
        self,
        jobs: List[Job],
        results: List[Optional[JobResult]],
        state: _JobState,
        value: Any,
        seconds: float,
        obs_state: Optional[Dict[str, Any]] = None,
    ) -> None:
        job = jobs[state.index]
        attempts = state.attempts + 1
        recorder = get_recorder()
        recorder.absorb(obs_state)
        recorder.count("runner.jobs_executed")
        stage_seconds = _job_stage_seconds(value)
        results[state.index] = JobResult(
            index=state.index,
            label=job.label,
            kind=job.kind,
            value=value,
            seconds=seconds,
            cache_hit=False,
            stage_seconds=stage_seconds,
            attempts=attempts,
        )
        if self.cache is not None and state.key is not None:
            self.cache.store(
                state.key, value, meta={"label": job.label, "kind": job.kind}
            )
        if self.journal is not None:
            self.journal.job_done(
                state.jkey, label=job.label, kind=job.kind, status="ok",
                seconds=seconds, attempts=attempts,
            )
        self.events.emit(
            "job_finished",
            label=job.label,
            kind=job.kind,
            index=state.index,
            seconds=seconds,
            cache_hit=False,
            stage_seconds=stage_seconds,
            attempts=attempts,
        )


@dataclass
class SweepResult:
    """The outcome of one executed sweep grid (possibly partial)."""

    spec: SweepSpec
    results: List[JobResult]
    metadata: dict = field(default_factory=dict)

    @property
    def cache_hits(self) -> int:
        """How many cells were served from the artifact cache."""
        return sum(1 for result in self.results if result.cache_hit)

    @property
    def executed(self) -> int:
        """How many cells actually ran the flow."""
        return len(self.results) - self.cache_hits

    @property
    def failures(self) -> List[JobFailure]:
        """Structured records of the cells that produced no value."""
        return [result.failure for result in self.results if result.failure]

    @property
    def succeeded(self) -> int:
        """How many cells carry a value (executed or cache-served)."""
        return len(self.results) - len(self.failures)

    def cell_rows(self) -> List[Dict[str, Any]]:
        """One scalar summary row per grid cell (for tables/JSON)."""
        rows = []
        for (size, density), result in zip(self.spec.cells(), self.results):
            row: Dict[str, Any] = {
                "size": size,
                "density": density,
                "label": result.label,
                "seconds": result.seconds,
                "cache_hit": result.cache_hit,
                "status": "failed" if result.failure else "ok",
            }
            if result.failure is not None:
                row["failure"] = result.failure.failure
                row["attempts"] = result.failure.attempts
                rows.append(row)
                continue
            value = result.value
            if self.spec.kind == "compare":
                row.update(
                    wirelength_reduction=value.wirelength_reduction,
                    area_reduction=value.area_reduction,
                    delay_reduction=value.delay_reduction,
                )
            else:
                design = getattr(value, "design", value)
                row.update(
                    wirelength_um=design.cost.wirelength_um,
                    area_um2=design.cost.area_um2,
                    delay_ns=design.cost.average_delay_ns,
                )
            rows.append(row)
        return rows

    def format_table(self) -> str:
        """A fixed-width text table over the grid cells."""
        rows = self.cell_rows()
        if self.spec.kind == "compare":
            header = (
                f"{'size':>6} {'density':>8} {'wl red':>8} {'area red':>9} "
                f"{'delay red':>10} {'seconds':>8} {'cache':>6}"
            )
            lines = [header, "-" * len(header)]
            for row in rows:
                if row["status"] == "failed":
                    lines.append(self._failed_line(row))
                    continue
                lines.append(
                    f"{row['size']:>6d} {row['density']:>8.3f} "
                    f"{row['wirelength_reduction']:>7.2f}% "
                    f"{row['area_reduction']:>8.2f}% "
                    f"{row['delay_reduction']:>9.2f}% "
                    f"{row['seconds']:>8.2f} "
                    f"{'hit' if row['cache_hit'] else 'miss':>6}"
                )
        else:
            header = (
                f"{'size':>6} {'density':>8} {'wirelength':>12} {'area':>12} "
                f"{'delay':>8} {'seconds':>8} {'cache':>6}"
            )
            lines = [header, "-" * len(header)]
            for row in rows:
                if row["status"] == "failed":
                    lines.append(self._failed_line(row))
                    continue
                lines.append(
                    f"{row['size']:>6d} {row['density']:>8.3f} "
                    f"{row['wirelength_um']:>12,.1f} {row['area_um2']:>12,.2f} "
                    f"{row['delay_ns']:>8.2f} {row['seconds']:>8.2f} "
                    f"{'hit' if row['cache_hit'] else 'miss':>6}"
                )
        summary = (
            f"{len(rows)} cell(s): {self.executed} executed, "
            f"{self.cache_hits} cache hit(s)"
        )
        if self.failures:
            summary += f", {len(self.failures)} FAILED"
        lines.append(summary)
        return "\n".join(lines)

    @staticmethod
    def _failed_line(row: Dict[str, Any]) -> str:
        return (
            f"{row['size']:>6d} {row['density']:>8.3f} "
            f"FAILED({row['failure']}, {row['attempts']} attempt(s))"
        )
