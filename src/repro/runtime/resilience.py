"""Failure policy, retry/backoff, and the crash-safe sweep journal.

This module defines *what the runner does when jobs misbehave*:

* :class:`RetryPolicy` — bounded retries with exponential backoff and
  **deterministic** jitter (a stable hash of the job's identity and the
  attempt number, not ``random``), so two runs of the same failing sweep
  sleep the same amounts and chaos runs replay bit-for-bit.
* :class:`ResilienceConfig` — per-job wall-clock timeout, the retry
  policy, poison-job quarantine threshold and the fail-fast switch.
  The module-level :data:`LEGACY` config reproduces the pre-resilience
  behaviour (one attempt, first failure raises) and is what a
  ``Runner`` without an explicit config uses.
* :class:`JobFailure` — the structured record a failed job leaves behind
  instead of aborting the sweep: failure class (``error`` / ``timeout``
  / ``crash`` / ``unknown-kind`` / ``quarantined``), message, attempts.
* :class:`SweepJournal` — an append-only JSONL file recording every
  finished/failed cell under its artifact-cache key.  Appends are
  flushed **and fsynced**, so a SIGKILLed sweep leaves a readable
  prefix; ``python -m repro sweep --resume`` replays it to skip
  quarantined cells and report what was already done (the values
  themselves come back through the content-addressed cache, which is
  what makes the resumed results bitwise-identical).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Set

from repro.runtime.chaos import _stable_unit
from repro.utils.canonical import canonical_json

#: Failure classes carried by :class:`JobFailure`.
FAILURE_KINDS = ("error", "timeout", "crash", "unknown-kind", "quarantined")


class UnknownJobKindError(RuntimeError):
    """A job named an executor kind that is not registered.

    Structured (job label + the registered kinds) and **non-retryable**:
    retrying cannot register the executor, so the runner records the
    failure immediately instead of burning attempts or crashing the
    worker with a bare ``KeyError``.
    """

    def __init__(self, label: str, kind: str, known: List[str]) -> None:
        super().__init__(
            f"job {label!r}: no executor registered for kind {kind!r} "
            f"(known: {known})"
        )
        self.label = label
        self.kind = kind
        self.known = list(known)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    ``backoff_seconds(attempt)`` for attempt *n* (0-based; the sleep
    happens before attempt ``n+1``) is::

        min(backoff_max, backoff_base * backoff_multiplier ** n)
          * (1 + jitter * (2*u - 1))

    where ``u`` is a stable hash of (token, attempt) in ``[0, 1)`` — the
    same job backs off by the same amounts in every run.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must lie in [0, 1], got {self.jitter}")

    def backoff_seconds(self, attempt: int, token: Any = "") -> float:
        base = min(
            self.backoff_max,
            self.backoff_base * self.backoff_multiplier ** attempt,
        )
        if self.jitter == 0.0:
            return base
        unit = _stable_unit("backoff", token, attempt)
        return base * (1.0 + self.jitter * (2.0 * unit - 1.0))


@dataclass(frozen=True)
class ResilienceConfig:
    """How the runner degrades under failures.

    Attributes
    ----------
    retry:
        Retry policy applied to retryable failures (errors, timeouts,
        crashes).  Unknown job kinds never retry.
    timeout_seconds:
        Per-job wall-clock budget.  On the pool path the deadline is
        enforced preemptively (the hung worker is killed and the pool
        respawned); inline (``n_jobs=1``) a *raised* hang is classified
        as a timeout, but a slow successful job is never discarded —
        that would make results machine-dependent.
    quarantine_after:
        Definitive worker crashes (observed in isolation) a job may
        cause before it is quarantined as poison and recorded as a
        :class:`JobFailure` without further retries.
    fail_fast:
        ``True`` restores the legacy contract: the first exhausted
        failure raises instead of being collected.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    timeout_seconds: Optional[float] = None
    quarantine_after: int = 2
    fail_fast: bool = False

    def __post_init__(self) -> None:
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValueError(
                f"timeout_seconds must be positive, got {self.timeout_seconds}"
            )
        if self.quarantine_after < 1:
            raise ValueError(
                f"quarantine_after must be >= 1, got {self.quarantine_after}"
            )


#: The pre-resilience contract: one attempt, first failure raises.
LEGACY = ResilienceConfig(
    retry=RetryPolicy(max_attempts=1), fail_fast=True, quarantine_after=1
)


@dataclass
class JobFailure:
    """A structured record of one job that did not produce a value."""

    index: int
    label: str
    kind: str
    failure: str  # one of FAILURE_KINDS
    message: str
    attempts: int = 1
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.failure not in FAILURE_KINDS:
            raise ValueError(
                f"unknown failure class {self.failure!r} (known: {FAILURE_KINDS})"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "label": self.label,
            "kind": self.kind,
            "failure": self.failure,
            "message": self.message,
            "attempts": self.attempts,
            "seconds": self.seconds,
        }


# ----------------------------------------------------------------------
# Sweep journal
# ----------------------------------------------------------------------
@dataclass
class JournalState:
    """What a loaded journal says about an earlier (killed) run."""

    sweep_key: Optional[str] = None
    done: Set[str] = field(default_factory=set)
    failed: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    quarantined: Set[str] = field(default_factory=set)
    runs: int = 0

    def __bool__(self) -> bool:
        return bool(self.done or self.failed or self.quarantined or self.runs)


class SweepJournal:
    """Append-only JSONL record of sweep progress, keyed by cache key.

    One line per event; every append is flushed and fsynced, so the file
    survives a SIGKILL with at worst the final line truncated (truncated
    tails are skipped on load).  Records:

    * ``run_started`` — sweep key, job count, resume flag;
    * ``job_done`` — cache key, label, status (``ok``/``cached``),
      seconds, attempts;
    * ``job_failed`` — cache key, failure class, message, attempts,
      quarantine flag.
    """

    def __init__(self, path: os.PathLike) -> None:
        self.path = Path(path)
        self._handle = None

    # ------------------------------------------------------------------
    def _append(self, record: Dict[str, Any]) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(canonical_json(record) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def run_started(self, sweep_key: Optional[str], jobs: int,
                    resumed: bool = False) -> None:
        self._append({
            "event": "run_started", "sweep": sweep_key,
            "jobs": jobs, "resumed": resumed,
        })

    def job_done(self, key: str, *, label: str, kind: str, status: str,
                 seconds: float, attempts: int) -> None:
        self._append({
            "event": "job_done", "key": key, "label": label, "kind": kind,
            "status": status, "seconds": seconds, "attempts": attempts,
        })

    def job_failed(self, key: str, *, failure: JobFailure,
                   quarantined: bool) -> None:
        self._append({
            "event": "job_failed", "key": key, "quarantined": quarantined,
            **failure.to_dict(),
        })

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def load_state(self) -> JournalState:
        """Replay the journal into a :class:`JournalState` (missing → empty)."""
        state = JournalState()
        if not self.path.exists():
            return state
        for record in self._iter_records():
            event = record.get("event")
            if event == "run_started":
                state.runs += 1
                if state.sweep_key is None:
                    state.sweep_key = record.get("sweep")
            elif event == "job_done":
                key = record.get("key")
                if key:
                    state.done.add(key)
                    state.failed.pop(key, None)
                    state.quarantined.discard(key)
            elif event == "job_failed":
                key = record.get("key")
                if key:
                    state.failed[key] = record
                    state.done.discard(key)
                    if record.get("quarantined"):
                        state.quarantined.add(key)
        return state

    def _iter_records(self) -> Iterable[Dict[str, Any]]:
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # A SIGKILL mid-append leaves at most one truncated
                    # tail line; everything before it is intact.
                    continue
                if isinstance(record, dict):
                    yield record
