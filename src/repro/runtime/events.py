"""Structured event stream for sweep executions.

Every run emits a flat sequence of events — ``sweep_started``,
``job_started``, ``job_finished`` (with ``cache_hit`` and per-stage wall
times), ``sweep_finished`` — that an :class:`EventLog` fans out to any
combination of sinks:

* an in-memory list (always; inspectable by tests and callers),
* a JSONL trace file (one canonical-JSON object per line), and
* a terminal progress printer (:class:`ProgressPrinter`).

The trace file doubles as the *progress stream* of the job service
(:mod:`repro.service`): :func:`tail_trace` reads new records from a
byte offset while a writer is still appending — a torn final line
(flushed mid-write, or caught between two ``write`` calls) is left
unconsumed instead of raising, so a follower simply picks it up whole
on the next poll.  :func:`follow_trace` wraps that into a polling
generator.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, TextIO, Tuple

from repro.observability import get_recorder
from repro.utils.canonical import canonical_json


def tail_trace(path, offset: int = 0) -> Tuple[List[Dict[str, Any]], int]:
    """Read complete JSONL records from ``path`` starting at byte ``offset``.

    Returns ``(records, new_offset)``.  Safe against a concurrent
    writer: only byte runs terminated by a newline are consumed, so a
    partial last line (torn write) stays in the file for the next call
    instead of raising ``JSONDecodeError``.  A *complete* but
    unparseable line (e.g. the truncated tail of a crashed writer that
    a later writer wrote past) is skipped.  A missing file reads as
    empty — the writer may simply not have produced it yet.
    """
    try:
        with open(path, "rb") as handle:
            handle.seek(offset)
            chunk = handle.read()
    except FileNotFoundError:
        return [], offset
    if not chunk:
        return [], offset
    consumed = chunk.rfind(b"\n") + 1
    if consumed == 0:  # only a partial line so far
        return [], offset
    records: List[Dict[str, Any]] = []
    for line in chunk[:consumed].splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            continue
        if isinstance(record, dict):
            records.append(record)
    return records, offset + consumed


def follow_trace(
    path,
    offset: int = 0,
    poll_seconds: float = 0.05,
    stop: Optional[Callable[[], bool]] = None,
) -> Iterator[Dict[str, Any]]:
    """Yield trace records as they are appended (a polling ``tail -f``).

    ``stop`` is consulted between polls; when it returns true, one final
    drain runs (so records emitted just before the stop condition are
    not lost) and the generator ends.  With no ``stop`` the generator
    follows forever — callers should close it.
    """
    while True:
        records, offset = tail_trace(path, offset)
        yield from records
        if stop is not None and stop():
            records, offset = tail_trace(path, offset)
            yield from records
            return
        if not records:
            time.sleep(poll_seconds)


class EventLog:
    """Collects, traces and displays runtime events.

    Parameters
    ----------
    trace_path:
        Optional JSONL file; each event is appended as one line, so a
        crashed run still leaves a readable prefix.
    printer:
        Optional callable invoked with every event record (see
        :class:`ProgressPrinter`).
    """

    def __init__(self, trace_path=None, printer=None) -> None:
        self.events: List[Dict[str, Any]] = []
        self.printer = printer
        self._trace: Optional[TextIO] = None
        self.trace_path: Optional[Path] = None
        if trace_path is not None:
            self.trace_path = Path(trace_path)
            self.trace_path.parent.mkdir(parents=True, exist_ok=True)
            self._trace = open(self.trace_path, "a", encoding="utf-8")

    def emit(self, event: str, **fields: Any) -> Dict[str, Any]:
        """Record one event; returns the full record.

        When a tracing recorder is active, the event is mirrored into the
        trace as an instantaneous ``runtime.<event>`` mark (scalar fields
        only), so sweeps and flow spans share one timeline.
        """
        record = {"ts": time.time(), "event": event, **fields}
        self.events.append(record)
        if self._trace is not None:
            self._trace.write(canonical_json(record) + "\n")
            self._trace.flush()
        if self.printer is not None:
            self.printer(record)
        recorder = get_recorder()
        if recorder.enabled:
            scalars = {
                key: value
                for key, value in fields.items()
                if isinstance(value, (str, int, float, bool))
            }
            recorder.event(f"runtime.{event}", **scalars)
        return record

    def of_kind(self, event: str) -> List[Dict[str, Any]]:
        """All recorded events of one kind, in emission order."""
        return [record for record in self.events if record["event"] == event]

    def tail(self, offset: int = 0) -> Tuple[List[Dict[str, Any]], int]:
        """Complete trace records from byte ``offset`` (see :func:`tail_trace`).

        Requires a ``trace_path``; tolerates a concurrent writer — this
        log itself, or another process appending to the same file.
        """
        if self.trace_path is None:
            raise ValueError("EventLog.tail() needs a trace_path")
        return tail_trace(self.trace_path, offset)

    def close(self) -> None:
        """Close the trace file (the in-memory log stays readable)."""
        if self._trace is not None:
            self._trace.close()
            self._trace = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class ProgressPrinter:
    """Terminal progress lines for job events.

    Prints one line per finished job::

        [3/9] done   n=100 d=0.08   12.41s
        [4/9] cached n=100 d=0.05    0.00s

    plus retry/timeout/failure annotations from the resilient runner::

        retry  n=100 d=0.08 (attempt 2, error, backoff 0.11s)
        [5/9] FAILED n=100 d=0.08 (timeout after 3 attempt(s))

    and a closing summary on ``sweep_finished``.
    """

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream if stream is not None else sys.stdout
        self._total = 0
        self._done = 0

    def __call__(self, record: Dict[str, Any]) -> None:
        event = record.get("event")
        if event == "sweep_started":
            self._total = int(record.get("jobs", 0))
            self._done = 0
            print(f"running {self._total} job(s), n_jobs={record.get('n_jobs', 1)}",
                  file=self.stream)
        elif event == "job_finished":
            self._done += 1
            status = "cached" if record.get("cache_hit") else "done  "
            label = record.get("label", "?")
            seconds = float(record.get("seconds", 0.0))
            total = self._total if self._total else "?"
            print(f"[{self._done}/{total}] {status} {label:<24} {seconds:8.2f}s",
                  file=self.stream)
        elif event == "job_retry":
            print(
                f"retry  {record.get('label', '?')} "
                f"(attempt {record.get('attempt', '?')}, "
                f"{record.get('reason', 'error')}, "
                f"backoff {float(record.get('backoff_seconds', 0.0)):.2f}s)",
                file=self.stream,
            )
        elif event == "job_failed":
            self._done += 1
            total = self._total if self._total else "?"
            print(
                f"[{self._done}/{total}] FAILED {record.get('label', '?')} "
                f"({record.get('failure', 'error')} after "
                f"{record.get('attempts', '?')} attempt(s))",
                file=self.stream,
            )
        elif event == "job_skipped":
            self._done += 1
            total = self._total if self._total else "?"
            print(
                f"[{self._done}/{total}] skipped {record.get('label', '?')} "
                f"({record.get('reason', '?')})",
                file=self.stream,
            )
        elif event == "worker_crash":
            print(
                f"worker crashed; respawning pool "
                f"({record.get('in_flight', 0)} job(s) requeued as suspects)",
                file=self.stream,
            )
        elif event == "sweep_resumed":
            print(
                f"resuming: {record.get('completed', 0)} cell(s) already done, "
                f"{record.get('quarantined', 0)} quarantined",
                file=self.stream,
            )
        elif event == "sweep_finished":
            summary = (
                f"finished: {record.get('executed', 0)} executed, "
                f"{record.get('cache_hits', 0)} cache hit(s), "
                f"{float(record.get('seconds', 0.0)):.2f}s wall"
            )
            failures = int(record.get("failures", 0) or 0)
            if failures:
                summary += f", {failures} FAILED"
            print(summary, file=self.stream)
