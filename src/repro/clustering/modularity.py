"""Modularity-based clustering baseline (extension).

Spectral clustering is the paper's choice, but community detection is the
other obvious family for grouping connections.  This baseline runs greedy
modularity maximization (Clauset–Newman–Moore, via networkx) and then
splits oversized communities with the same 2-means machinery GCP uses, so
it can slot into ISC as a drop-in alternative for ablation studies.
"""

from __future__ import annotations

from typing import Union

import networkx as nx
import numpy as np
from scipy import sparse

from repro.clustering.result import ClusteringResult, clusters_from_labels
from repro.networks.connection_matrix import ConnectionMatrix
from repro.utils.rng import RngLike, ensure_rng


def modularity_clustering(
    network: Union[ConnectionMatrix, np.ndarray],
    max_size: int,
    rng: RngLike = None,
) -> ClusteringResult:
    """Cluster by greedy modularity, size-capped by recursive bisection.

    Returns a partition equivalent in contract to GCP's: every neuron in
    exactly one cluster, no cluster above ``max_size``.
    """
    rng = ensure_rng(rng)
    if isinstance(network, ConnectionMatrix):
        similarity = network.similarity()  # backend-native: ndarray or csr
    elif sparse.issparse(network):
        similarity = sparse.csr_array(network).astype(np.float64)
        similarity = sparse.csr_array(similarity.maximum(similarity.T))
    else:
        similarity = np.asarray(network, dtype=float)
        similarity = np.maximum(similarity, similarity.T)
    n = similarity.shape[0]
    if max_size < 1:
        raise ValueError(f"max_size must be >= 1, got {max_size}")
    if n == 0:
        raise ValueError("cannot cluster an empty network")
    if sparse.issparse(similarity):
        graph = nx.from_scipy_sparse_array(sparse.csr_matrix(similarity))
    else:
        graph = nx.from_numpy_array(similarity)
    if graph.number_of_edges() == 0:
        # no structure at all: contiguous chunks of max_size
        labels = np.arange(n) // max_size
        return ClusteringResult(
            clusters=clusters_from_labels(labels), n=n, method="modularity",
            metadata={"max_size": max_size, "communities": int(labels.max()) + 1},
        )
    communities = nx.algorithms.community.greedy_modularity_communities(
        graph, weight="weight"
    )
    labels = np.full(n, -1, dtype=int)
    for index, community in enumerate(communities):
        labels[list(community)] = index
    # Degree-ordered bisection of oversized communities.
    next_label = labels.max() + 1
    stack = list(np.unique(labels))
    degrees = np.asarray(similarity.sum(axis=1)).ravel()
    while stack:
        value = stack.pop()
        members = np.nonzero(labels == value)[0]
        if members.size <= max_size:
            continue
        # Split along the community's internal structure: order members by
        # degree inside the community and cut in half — cheap and stable.
        internal = np.asarray(
            similarity[members][:, members].sum(axis=1)
        ).ravel()
        order = members[np.argsort(internal + 1e-9 * degrees[members])]
        half = order[: members.size // 2]
        labels[half] = next_label
        stack.append(value)
        stack.append(next_label)
        next_label += 1
    clusters = clusters_from_labels(labels)
    return ClusteringResult(
        clusters=clusters,
        n=n,
        method="modularity",
        metadata={"max_size": max_size, "communities": len(communities)},
    )
