"""The traversing baseline for cluster-size limiting (paper Sec. 3.3).

"The limit of crossbar size can be passively imposed by exhaustively
increasing the value of k in MSC until the size of the largest crossbar is
below the size limit." — the paper uses this as the runtime baseline that
GCP beats by roughly 2× (Fig. 4: 190 ms vs 106 ms on the 400×400 net).
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

from repro.clustering.kmeans import kmeans
from repro.clustering.result import ClusteringResult, clusters_from_labels
from repro.clustering.spectral import modified_spectral_clustering, spectral_embedding
from repro.networks.connection_matrix import ConnectionMatrix
from repro.utils.rng import RngLike, ensure_rng


def traversing_clustering(
    network: Union[ConnectionMatrix, np.ndarray],
    max_size: int,
    rng: RngLike = None,
    reuse_embedding: bool = False,
) -> ClusteringResult:
    """Scan ``k`` upward until the largest MSC cluster fits ``max_size``.

    Parameters
    ----------
    reuse_embedding:
        The paper's traversing baseline "exhaustively increas[es] the value
        of k in MSC", and each MSC run includes its own eigendecomposition
        — the default (False) follows that literally.  Set True to share
        one full eigenbasis across the scan, a cheaper variant.

    Returns
    -------
    ClusteringResult
        Partition with ``max(cluster sizes) <= max_size``,
        ``method == "traversing"``.
    """
    rng = ensure_rng(rng)
    if isinstance(network, ConnectionMatrix):
        n = network.size
    else:
        n = np.asarray(network).shape[0]
    if max_size < 1:
        raise ValueError(f"max_size must be >= 1, got {max_size}")
    start_k = max(1, min(n, math.ceil(n / max_size)))
    if reuse_embedding:
        basis, _ = spectral_embedding(network, k=None)
    labels = None
    attempts = 0
    for k in range(start_k, n + 1):
        attempts += 1
        if reuse_embedding:
            km = kmeans(basis[:, :k], k, max_iterations=40, rng=rng, repair_empty=False)
            labels = km.labels
        else:
            result = modified_spectral_clustering(network, k, rng=rng)
            labels = result.labels()
        sizes = np.bincount(labels, minlength=k)
        if sizes.max() <= max_size:
            clusters = clusters_from_labels(labels)
            return ClusteringResult(
                clusters=clusters,
                n=n,
                method="traversing",
                metadata={"max_size": max_size, "attempts": attempts, "final_k": k},
            )
    # k == n always satisfies any max_size >= 1, so we cannot get here.
    raise RuntimeError("traversing failed to satisfy the size limit")  # pragma: no cover
