"""Cluster containers shared by MSC / GCP / traversing / ISC."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Cluster:
    """An immutable set of neuron indices grouped by a clustering algorithm."""

    members: Tuple[int, ...]

    def __post_init__(self) -> None:
        members = tuple(int(m) for m in self.members)
        if len(set(members)) != len(members):
            raise ValueError("cluster members must be unique")
        object.__setattr__(self, "members", tuple(sorted(members)))

    @property
    def size(self) -> int:
        """Number of neurons in the cluster."""
        return len(self.members)

    def __iter__(self):
        return iter(self.members)

    def __len__(self) -> int:
        return len(self.members)

    def __contains__(self, item: int) -> bool:
        return int(item) in self.members


@dataclass
class ClusteringResult:
    """Output of a clustering run: a partition of ``range(n)`` into clusters.

    Attributes
    ----------
    clusters:
        Non-empty clusters; together they cover every neuron exactly once.
    n:
        Number of neurons that were clustered.
    method:
        Human-readable algorithm name ("msc", "gcp", "traversing").
    """

    clusters: List[Cluster]
    n: int
    method: str = "msc"
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        covered: set = set()
        for cluster in self.clusters:
            overlap = covered.intersection(cluster.members)
            if overlap:
                raise ValueError(f"clusters overlap on neurons {sorted(overlap)[:5]}")
            covered.update(cluster.members)
        if covered and (min(covered) < 0 or max(covered) >= self.n):
            raise ValueError("cluster members out of range")
        if len(covered) != self.n:
            missing = sorted(set(range(self.n)) - covered)
            raise ValueError(f"clusters must cover all {self.n} neurons; missing {missing[:5]}")

    @property
    def k(self) -> int:
        """Number of clusters."""
        return len(self.clusters)

    def sizes(self) -> List[int]:
        """Cluster sizes in cluster order."""
        return [c.size for c in self.clusters]

    def max_size(self) -> int:
        """Size of the largest cluster (0 for an empty result)."""
        return max(self.sizes(), default=0)

    def labels(self) -> np.ndarray:
        """Per-neuron cluster index array of shape ``(n,)``."""
        labels = np.full(self.n, -1, dtype=int)
        for idx, cluster in enumerate(self.clusters):
            labels[list(cluster.members)] = idx
        return labels

    def permutation(self) -> np.ndarray:
        """Neuron order grouping clusters contiguously (for matrix plots)."""
        order: List[int] = []
        for cluster in self.clusters:
            order.extend(cluster.members)
        return np.asarray(order, dtype=int)


def clusters_from_labels(labels: Sequence[int]) -> List[Cluster]:
    """Build :class:`Cluster` objects from a per-point label vector.

    Empty labels are skipped; cluster order follows ascending label value.
    """
    labels = np.asarray(list(labels), dtype=int)
    clusters = []
    for value in np.unique(labels):
        members = np.nonzero(labels == value)[0]
        if members.size:
            clusters.append(Cluster(tuple(int(m) for m in members)))
    return clusters
