"""Greedy cluster size prediction, GCP (paper Algorithm 2).

Classic spectral clustering has no notion of a maximum cluster size, but a
cluster mapped to a memristor crossbar must fit the largest crossbar in the
library (64×64 under current technology, Sec. 2.1 [6]).  GCP enforces the
limit greedily: starting from ``k = n / s`` clusters, any cluster that
exceeds the limit is split in two by a nested 2-means, its centroid is
replaced by the two sub-centroids, and ``k`` grows by one.  The outer loop
re-extracts the embedding with the enlarged ``k`` (the first ``k`` columns
of the full eigenbasis) until no split happens.

Deviation from the paper (documented in DESIGN.md): the pseudo-code
initializes centroids "as zeros", which makes the first k-means assignment
fully degenerate (every distance ties).  We seed with k-means++ on the first
pass and carry assignment-derived centroids across embedding changes, then
follow the split logic verbatim.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np
from scipy import sparse

from repro.clustering.kmeans import kmeans, kmeans_plus_plus_centroids
from repro.clustering.result import ClusteringResult, clusters_from_labels
from repro.clustering.spectral import spectral_embedding
from repro.networks.connection_matrix import ConnectionMatrix
from repro.utils.rng import RngLike, ensure_rng


def _centroids_from_labels(points: np.ndarray, labels: np.ndarray, k: int) -> np.ndarray:
    """Mean of each cluster's points; empty clusters fall back to the origin."""
    centroids = np.zeros((k, points.shape[1]), dtype=float)
    counts = np.bincount(labels, minlength=k).astype(float)
    np.add.at(centroids, labels, points)
    nonempty = counts > 0
    centroids[nonempty] /= counts[nonempty, None]
    return centroids


def _split_oversized(
    points: np.ndarray,
    labels: np.ndarray,
    centroids: np.ndarray,
    max_size: int,
    rng: np.random.Generator,
) -> tuple:
    """One sweep of Algorithm 2 lines 8–14: 2-means-split every oversized cluster.

    Returns the updated ``(labels, centroids, changed)``.
    """
    changed = False
    k = centroids.shape[0]
    for j in range(k):
        members = np.nonzero(labels == j)[0]
        if members.size <= max_size:
            continue
        sub = kmeans(points[members], 2, rng=rng)
        # Guard against a degenerate split (all points identical): force an
        # arbitrary balanced cut so progress is guaranteed.
        if len(np.unique(sub.labels)) < 2:
            forced = np.zeros(members.size, dtype=int)
            forced[members.size // 2 :] = 1
            sub_labels = forced
            sub_centroids = np.stack(
                [points[members[forced == 0]].mean(axis=0), points[members[forced == 1]].mean(axis=0)]
            )
        else:
            sub_labels = sub.labels
            sub_centroids = sub.centroids
        new_label = centroids.shape[0]
        labels = labels.copy()
        labels[members[sub_labels == 1]] = new_label
        centroids = np.vstack([centroids, sub_centroids[1][None, :]])
        centroids[j] = sub_centroids[0]
        changed = True
    return labels, centroids, changed


def greedy_cluster_size_prediction(
    network: Union[ConnectionMatrix, np.ndarray],
    max_size: int,
    rng: RngLike = None,
    max_outer_iterations: int = 50,
    balance: bool = True,
    split_mode: str = "lloyd",
) -> ClusteringResult:
    """Run GCP (Algorithm 2): size-capped spectral clustering.

    Parameters
    ----------
    network:
        Network (or raw similarity) to cluster.
    max_size:
        Upper bound ``s`` on every cluster size — the largest crossbar
        dimension available (64 in the paper's experiments).
    balance:
        Merge undersized clusters (nearest spectral centroids, combined
        size ≤ ``max_size``) after the split loop.  Algorithm 2 *predicts*
        ``k = n / s`` clusters of size ≈ ``s`` (the paper's Fig. 4(a)
        shows exactly such balanced blocks); binary splitting alone can
        fragment weakly-structured networks far below that, which starves
        the ISC iterations.  The merge pass restores the predicted regime
        without ever violating the size cap.
    split_mode:
        ``"lloyd"`` (default) is Algorithm 2 verbatim: after every split
        sweep the full k-means re-converges before the next sweep.  On
        hub-dominated topologies (scale-free tiers) that loop can run
        hundreds of sweeps, each re-running Lloyd's from scratch.
        ``"bisect"`` runs one k-means and then caps sizes by deterministic
        recursive 2-means bisection — the same machinery the safety net
        uses — trading a little cluster quality for orders of magnitude in
        speed.  The tiered large-network pass uses ``"bisect"``; the
        paper-scale flows keep ``"lloyd"``, so existing results are
        untouched.

    Returns
    -------
    ClusteringResult
        A partition of all neurons with ``max(cluster sizes) <= max_size``,
        ``method == "gcp"``.
    """
    rng = ensure_rng(rng)
    if isinstance(network, ConnectionMatrix):
        n = network.size
    else:
        n = np.asarray(network).shape[0]
    if max_size < 1:
        raise ValueError(f"max_size must be >= 1, got {max_size}")
    if n == 0:
        raise ValueError("cannot cluster an empty network")
    if split_mode not in ("lloyd", "bisect"):
        raise ValueError(f"split_mode must be 'lloyd' or 'bisect', got {split_mode!r}")
    # Algorithm 2 line 1 asks for the full generalized eigenbasis; only the
    # first k columns are ever read and k stays near n/s, so we compute the
    # basis lazily (a bounded prefix, extended on demand) — semantically
    # identical and several times faster on large networks.
    k = max(1, min(n, math.ceil(n / max_size)))
    basis_cap = min(n, max(4 * k, 32))
    basis, _ = spectral_embedding(network, k=basis_cap)
    if split_mode == "bisect":
        points = basis[:, :k]
        km = kmeans(points, k, max_iterations=40, rng=rng, repair_empty=False)
        labels = _enforce_size_limit(points, km.labels, max_size, rng)
        if balance:
            if isinstance(network, ConnectionMatrix):
                similarity = network.adjacency(np.float64)
            elif sparse.issparse(network):
                similarity = sparse.csr_array(network).astype(np.float64)
            else:
                similarity = np.asarray(network, dtype=float)
            labels = _merge_undersized(points, labels, max_size, similarity)
        clusters = clusters_from_labels(labels)
        return ClusteringResult(
            clusters=clusters,
            n=n,
            method="gcp",
            metadata={
                "max_size": max_size,
                "final_k": len(clusters),
                "outer_iterations": 1,
                "split_mode": "bisect",
            },
        )
    labels = None
    outer_iterations = 0
    while outer_iterations < max_outer_iterations:
        outer_iterations += 1
        if k > basis_cap:
            basis_cap = min(n, max(2 * basis_cap, k))
            basis, _ = spectral_embedding(network, k=basis_cap)
        points = basis[:, :k]
        if labels is None:
            centroids = kmeans_plus_plus_centroids(points, k, rng=rng)
        else:
            centroids = _centroids_from_labels(points, labels, k)
        outer_changed = False
        while True:
            km = kmeans(
                points,
                k,
                initial_centroids=centroids,
                max_iterations=40,
                rng=rng,
                repair_empty=False,
            )
            labels, centroids = km.labels, km.centroids
            labels, centroids, inner_changed = _split_oversized(
                points, labels, centroids, max_size, rng
            )
            k = centroids.shape[0]
            if not inner_changed:
                break
            outer_changed = True
            if k >= n:
                break
        if not outer_changed or k >= n:
            break
    # Safety net: guarantee the postcondition even if the loop budget ran
    # out while k-means kept re-merging (rare oscillation on symmetric data).
    points = basis[:, : min(k, basis.shape[1])]
    labels = _enforce_size_limit(points, labels, max_size, rng)
    if balance:
        if isinstance(network, ConnectionMatrix):
            similarity = network.adjacency(np.float64)
        elif sparse.issparse(network):
            similarity = sparse.csr_array(network).astype(np.float64)
        else:
            similarity = np.asarray(network, dtype=float)
        labels = _merge_undersized(points, labels, max_size, similarity)
    clusters = clusters_from_labels(labels)
    return ClusteringResult(
        clusters=clusters,
        n=n,
        method="gcp",
        metadata={
            "max_size": max_size,
            "final_k": len(clusters),
            "outer_iterations": outer_iterations,
        },
    )


def _merge_undersized(
    points: np.ndarray,
    labels: np.ndarray,
    max_size: int,
    similarity,
    tolerance: float = 0.6,
) -> np.ndarray:
    """Greedily merge small clusters with their nearest-centroid neighbour.

    A merge must not *hurt*: two clusters combine only when the merged
    cluster's crossbar preference (``m²/s³``) stays above ``tolerance``
    times the better of the two, or when neither cluster holds any
    connection (dead fragments merge freely by spectral proximity).  The
    tolerance trades crossbar granularity against outlier count: 1.0
    (strictly improving merges) keeps many small dense crossbars but
    leaves more between-cluster connections to discrete synapses, while
    the calibrated default (0.6) consolidates toward the 32–64 sizes the
    paper's final implementations show (Fig. 9(c)) and drives the ISC
    outlier ratio to the paper's few-percent range.
    """
    labels = labels.copy()
    unique = list(np.unique(labels))
    members = {value: np.nonzero(labels == value)[0] for value in unique}
    centroids = {value: points[idx].mean(axis=0) for value, idx in members.items()}
    # Cluster-pair connection counts via one indicator-matrix product:
    # pair_connections[a, b] = connections from cluster a's rows to b's cols.
    index_of = {value: pos for pos, value in enumerate(unique)}
    n = labels.shape[0]
    indicator = np.zeros((n, len(unique)))
    for value, idx in members.items():
        indicator[idx, index_of[value]] = 1.0
    # Right-to-left keeps the product sparse-compatible (csr @ dense → dense);
    # all entries are 0/1 sums, exact in float64 on either path.
    pair_connections = indicator.T @ (similarity @ indicator)

    def preference(value) -> float:
        pos = index_of[value]
        m = pair_connections[pos, pos]
        s = max(members[value].size, 1)
        return float(m * m) / float(s**3)

    def merged_preference(a, b) -> float:
        pa, pb = index_of[a], index_of[b]
        m = (
            pair_connections[pa, pa]
            + pair_connections[pb, pb]
            + pair_connections[pa, pb]
            + pair_connections[pb, pa]
        )
        s = members[a].size + members[b].size
        return float(m * m) / float(s**3)

    while len(members) > 1:
        order = sorted(members, key=lambda v: members[v].size)
        merged = False
        for value in order:
            size = members[value].size
            partners = [
                other
                for other in members
                if other != value and members[other].size + size <= max_size
            ]
            if not partners:
                continue
            centroid = centroids[value]
            partners.sort(
                key=lambda other: float(np.sum((centroids[other] - centroid) ** 2))
            )
            own_cp = preference(value)
            for other in partners:
                other_cp = preference(other)
                both_dead = own_cp == 0.0 and other_cp == 0.0
                if not both_dead and merged_preference(value, other) <= tolerance * max(
                    own_cp, other_cp
                ):
                    continue
                combined = np.concatenate([members[value], members[other]])
                labels[combined] = other
                members[other] = combined
                centroids[other] = points[combined].mean(axis=0)
                # Fold value's pair counts into other's row/column.
                pv, po = index_of[value], index_of[other]
                pair_connections[po, :] += pair_connections[pv, :]
                pair_connections[:, po] += pair_connections[:, pv]
                del members[value]
                del centroids[value]
                del index_of[value]
                merged = True
                break
            if merged:
                break
        if not merged:
            break
    return labels


def _enforce_size_limit(
    points: np.ndarray, labels: np.ndarray, max_size: int, rng: np.random.Generator
) -> np.ndarray:
    """Deterministically split any remaining oversized cluster (no re-k-means)."""
    labels = labels.copy()
    next_label = labels.max() + 1
    stack = [value for value in np.unique(labels)]
    while stack:
        value = stack.pop()
        members = np.nonzero(labels == value)[0]
        if members.size <= max_size:
            continue
        sub = kmeans(points[members], 2, rng=rng)
        half = sub.labels == 1
        if not half.any() or half.all():
            half = np.zeros(members.size, dtype=bool)
            half[members.size // 2 :] = True
        labels[members[half]] = next_label
        stack.append(value)
        stack.append(next_label)
        next_label += 1
    return labels
