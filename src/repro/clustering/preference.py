"""Crossbar preference, CP (paper Sec. 3.1).

CP estimates the circuit-cost reduction obtained by replacing discrete
synapses with a crossbar.  For a crossbar of size ``s`` carrying ``m``
utilized connections (utilization ``u = m / s²``) the paper requires:

(a) fixed ``s``: CP grows with ``m`` (more synapses absorbed → less routing);
(b) fixed ``m``: CP shrinks with ``s`` (bigger crossbar → more area).

and proposes ``CP = (m / s) · u = m² / s³``.
"""

from __future__ import annotations

from typing import Optional, Sequence


def crossbar_preference(utilized_connections: int, size: int) -> float:
    """Compute ``CP = m·u/s = m²/s³`` for ``m`` connections on an ``s×s`` crossbar."""
    m = int(utilized_connections)
    s = int(size)
    if s < 1:
        raise ValueError(f"size must be >= 1, got {size}")
    if m < 0:
        raise ValueError(f"utilized_connections must be >= 0, got {m}")
    if m > s * s:
        raise ValueError(
            f"utilized_connections ({m}) cannot exceed crossbar capacity ({s * s})"
        )
    return (m * m) / float(s**3)


def crossbar_utilization(utilized_connections: int, size: int) -> float:
    """``u = m / s²`` — the crossbar utilization of Sec. 3.1."""
    m = int(utilized_connections)
    s = int(size)
    if s < 1:
        raise ValueError(f"size must be >= 1, got {size}")
    if m < 0 or m > s * s:
        raise ValueError(f"utilized_connections must lie in [0, {s * s}], got {m}")
    return m / float(s * s)


def minimum_satisfiable_size(cluster_size: int, sizes: Sequence[int]) -> Optional[int]:
    """Smallest library crossbar that fits a cluster (Algorithm 3 line 11).

    Returns ``None`` when no crossbar in ``sizes`` is large enough.
    """
    if cluster_size < 0:
        raise ValueError(f"cluster_size must be >= 0, got {cluster_size}")
    candidates = sorted(int(s) for s in sizes)
    if not candidates:
        raise ValueError("sizes must be non-empty")
    for s in candidates:
        if s >= cluster_size:
            return s
    return None
