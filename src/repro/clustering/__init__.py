"""Connection clustering — the algorithmic core of AutoNCS (paper Sec. 3).

* :mod:`~repro.clustering.kmeans` — Lloyd's k-means with explicit centroid
  control (Algorithm 2 manipulates centroids directly).
* :mod:`~repro.clustering.spectral` — modified spectral clustering, MSC
  (Algorithm 1).
* :mod:`~repro.clustering.gcp` — greedy cluster size prediction, GCP
  (Algorithm 2).
* :mod:`~repro.clustering.traversing` — the traversing baseline of Sec. 3.3.
* :mod:`~repro.clustering.preference` — crossbar preference CP (Sec. 3.1).
* :mod:`~repro.clustering.isc` — iterative spectral clustering, ISC
  (Algorithm 3).
* :mod:`~repro.clustering.hierarchical` — tiered (Group-Scissor-style)
  clustering for 50k+ neuron networks.
"""

from repro.clustering.gcp import greedy_cluster_size_prediction
from repro.clustering.hierarchical import (
    DEFAULT_TIER_SIZE,
    cluster_hierarchical,
    coarse_partition,
)
from repro.clustering.isc import (
    CrossbarAssignment,
    IscIterationRecord,
    IscResult,
    iterative_spectral_clustering,
)
from repro.clustering.kmeans import KMeansResult, kmeans, kmeans_plus_plus_centroids
from repro.clustering.modularity import modularity_clustering
from repro.clustering.preference import crossbar_preference, minimum_satisfiable_size
from repro.clustering.result import Cluster, ClusteringResult
from repro.clustering.spectral import (
    modified_spectral_clustering,
    spectral_embedding,
)
from repro.clustering.traversing import traversing_clustering

__all__ = [
    "Cluster",
    "ClusteringResult",
    "CrossbarAssignment",
    "DEFAULT_TIER_SIZE",
    "IscIterationRecord",
    "IscResult",
    "KMeansResult",
    "cluster_hierarchical",
    "coarse_partition",
    "crossbar_preference",
    "greedy_cluster_size_prediction",
    "iterative_spectral_clustering",
    "kmeans",
    "kmeans_plus_plus_centroids",
    "minimum_satisfiable_size",
    "modified_spectral_clustering",
    "modularity_clustering",
    "spectral_embedding",
    "traversing_clustering",
]
