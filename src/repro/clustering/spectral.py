"""Modified spectral clustering, MSC (paper Algorithm 1).

The paper redefines the similarity of classic spectral clustering as the
*number of connections* between neurons: the goal becomes minimizing the
between-cluster connections (the outliers that fall back to discrete
synapses) and maximizing the within-cluster connections (the ones a crossbar
absorbs).

Algorithm 1, verbatim:

1. degree matrix ``D`` with ``d_ii = Σ_j w_ij``;
2. unnormalized Laplacian ``L = D - W``;
3. the ``k`` generalized eigenvectors of ``L u = λ D u`` with the smallest
   eigenvalues (this is the Shi–Malik normalized-cut relaxation [11]);
4. rows of the ``n × k`` eigenvector matrix become points ``y_i``;
5. k-means on the ``y_i``.

Eigensolvers
------------
Two interchangeable solvers compute step 3:

* **dense** — ``scipy.linalg.eigh`` on the full generalized problem.  Exact
  and used whenever ``n <= DENSE_EIGENSOLVER_CUTOFF`` or the *full* basis is
  requested, so the paper-scale testbenches (tb1–tb3, N = 300–500) produce
  bit-identical results to the historical implementation.
* **sparse** — ``scipy.sparse.linalg.eigsh`` on the equivalent normalized
  Laplacian ``L_sym = I − D^{−1/2} W D^{−1/2}``: its spectrum lies in
  ``[0, 2]``, so the *k smallest* eigenpairs are the *k largest* of
  ``2I − L_sym`` — a well-conditioned ``which="LA"`` Lanczos run that never
  builds an ``n × n`` dense array.  Generalized eigenvectors are recovered
  as ``u = D^{−1/2} v`` (automatically ``D``-orthonormal, matching the
  dense convention).  LOBPCG is the fallback when ARPACK fails to converge.

Both solvers span the same eigenspaces; per-vector sign and (for repeated
eigenvalues) basis rotation are not pinned down by either, which is
irrelevant to the k-means step.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg
from scipy import sparse as sp
from scipy.sparse import linalg as spla
from typing import Optional, Tuple, Union

from repro.clustering.kmeans import kmeans
from repro.clustering.result import ClusteringResult, clusters_from_labels
from repro.networks.connection_matrix import ConnectionMatrix
from repro.utils.rng import RngLike, ensure_rng

#: Degree floor inserted for isolated neurons so that D stays positive
#: definite in the generalized eigenproblem.  Isolated neurons carry no
#: connections, so their cluster membership cannot change any outlier count.
_DEGREE_FLOOR = 1e-9

#: Below (or at) this size the dense generalized ``eigh`` solver is always
#: used — it is exact, fast at this scale, and keeps the tb1–tb3 golden
#: fixtures bit-identical.  Above it, truncated requests go to ARPACK.
DENSE_EIGENSOLVER_CUTOFF = 1024

#: Fixed seed for the LOBPCG fallback's initial block.  Internal so the
#: caller's RNG stream is identical whether or not the fallback triggers.
_LOBPCG_SEED = 0x5CA1AB1E


def _similarity(network) -> Union[np.ndarray, sp.csr_array]:
    """Extract the symmetric similarity the Laplacian is built from.

    Returns the backend-native form: dense ndarray for dense-backed
    networks and raw arrays (bit-identical to the historical behaviour),
    ``csr_array`` for sparse-backed networks and sparse input.
    """
    if isinstance(network, ConnectionMatrix):
        return network.similarity()
    if sp.issparse(network):
        matrix = sp.csr_array(network).astype(np.float64)
        if matrix.shape[0] != matrix.shape[1]:
            raise ValueError(f"similarity must be square, got shape {matrix.shape}")
        return sp.csr_array(matrix.maximum(matrix.T))
    matrix = np.asarray(network, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"similarity must be square, got shape {matrix.shape}")
    return np.maximum(matrix, matrix.T)


def _dense_embedding(
    w: np.ndarray, k: int
) -> Tuple[np.ndarray, np.ndarray]:
    degrees = w.sum(axis=1)
    degrees = np.maximum(degrees, _DEGREE_FLOOR)
    laplacian = np.diag(degrees) - w
    # Generalized symmetric-definite problem; scipy returns ascending order.
    eigenvalues, eigenvectors = scipy.linalg.eigh(
        laplacian, np.diag(degrees), subset_by_index=(0, k - 1)
    )
    return eigenvectors, eigenvalues


def _sparse_embedding(
    w: sp.csr_array, k: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Truncated solve of ``L u = λ D u`` via the normalized Laplacian."""
    n = w.shape[0]
    degrees = np.maximum(np.asarray(w.sum(axis=1)).ravel(), _DEGREE_FLOOR)
    d_inv_sqrt = 1.0 / np.sqrt(degrees)
    scaling = sp.dia_array((d_inv_sqrt[None, :], [0]), shape=(n, n))
    normalized = sp.csr_array(scaling @ w @ scaling)
    # shifted = 2I − L_sym = I + D^{−1/2} W D^{−1/2}; its k LARGEST
    # eigenpairs are L_sym's k smallest, and "LA" is the mode Lanczos
    # converges fastest on.
    shifted = sp.csr_array(sp.eye_array(n, format="csr") + normalized)
    v0 = np.full(n, 1.0 / np.sqrt(n))
    try:
        shifted_values, vectors = spla.eigsh(shifted, k=k, which="LA", v0=v0)
    except (spla.ArpackError, RuntimeError):
        lobpcg_rng = np.random.default_rng(_LOBPCG_SEED)
        block = lobpcg_rng.standard_normal((n, k))
        block[:, 0] = v0
        shifted_values, vectors = spla.lobpcg(
            shifted, block, largest=True, maxiter=200, tol=1e-8
        )
    eigenvalues = 2.0 - shifted_values
    order = np.argsort(eigenvalues, kind="stable")
    eigenvalues = eigenvalues[order]
    vectors = vectors[:, order]
    # u = D^{−1/2} v maps L_sym eigenvectors to generalized ones and is
    # automatically D-orthonormal (uᵀ D u = vᵀ v = 1), matching eigh.
    eigenvectors = vectors * d_inv_sqrt[:, None]
    return eigenvectors, eigenvalues


def spectral_embedding(
    network,
    k: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Solve ``L u = λ D u`` and return eigenvectors sorted ascending.

    Parameters
    ----------
    network:
        A :class:`ConnectionMatrix` (either backend), a raw similarity
        matrix, or a scipy sparse similarity.
    k:
        Number of smallest eigenpairs wanted; ``None`` returns the full
        basis (GCP needs all ``n`` eigenvectors, Algorithm 2 line 1).

    Returns
    -------
    (eigenvectors, eigenvalues):
        ``eigenvectors`` has shape ``(n, k)`` with columns in ascending
        eigenvalue order; ``eigenvalues`` has shape ``(k,)``.

    Notes
    -----
    Small problems (``n <= DENSE_EIGENSOLVER_CUTOFF``) and full-basis
    requests always use the exact dense solver; larger truncated requests
    use ARPACK/LOBPCG on the sparse normalized Laplacian and never
    materialize an ``n × n`` dense array when the input is sparse.
    """
    w = _similarity(network)
    n = w.shape[0]
    if k is None:
        k = n
    if not 1 <= k <= n:
        raise ValueError(f"k must lie in [1, {n}], got {k}")
    # ARPACK needs k < n; full-basis and near-full requests are dense anyway.
    if n <= DENSE_EIGENSOLVER_CUTOFF or k >= n - 1:
        if sp.issparse(w):
            w = w.toarray()
        return _dense_embedding(w, k)
    if not sp.issparse(w):
        w = sp.csr_array(w)
    return _sparse_embedding(w, k)


def modified_spectral_clustering(
    network,
    k: int,
    rng: RngLike = None,
    max_kmeans_iterations: int = 100,
) -> ClusteringResult:
    """Run MSC (Algorithm 1): spectral embedding + k-means into ``k`` clusters."""
    rng = ensure_rng(rng)
    w = _similarity(network)
    n = w.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must lie in [1, {n}], got {k}")
    embedding, _ = spectral_embedding(w, k)
    km = kmeans(embedding, k, max_iterations=max_kmeans_iterations, rng=rng)
    clusters = clusters_from_labels(km.labels)
    return ClusteringResult(
        clusters=clusters,
        n=n,
        method="msc",
        metadata={"requested_k": k, "kmeans_iterations": km.n_iterations},
    )
