"""Modified spectral clustering, MSC (paper Algorithm 1).

The paper redefines the similarity of classic spectral clustering as the
*number of connections* between neurons: the goal becomes minimizing the
between-cluster connections (the outliers that fall back to discrete
synapses) and maximizing the within-cluster connections (the ones a crossbar
absorbs).

Algorithm 1, verbatim:

1. degree matrix ``D`` with ``d_ii = Σ_j w_ij``;
2. unnormalized Laplacian ``L = D - W``;
3. the ``k`` generalized eigenvectors of ``L u = λ D u`` with the smallest
   eigenvalues (this is the Shi–Malik normalized-cut relaxation [11]);
4. rows of the ``n × k`` eigenvector matrix become points ``y_i``;
5. k-means on the ``y_i``.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np
import scipy.linalg

from repro.clustering.kmeans import kmeans
from repro.clustering.result import ClusteringResult, clusters_from_labels
from repro.networks.connection_matrix import ConnectionMatrix
from repro.utils.rng import RngLike, ensure_rng

#: Degree floor inserted for isolated neurons so that D stays positive
#: definite in the generalized eigenproblem.  Isolated neurons carry no
#: connections, so their cluster membership cannot change any outlier count.
_DEGREE_FLOOR = 1e-9


def _similarity(network: Union[ConnectionMatrix, np.ndarray]) -> np.ndarray:
    """Extract the symmetric similarity matrix the Laplacian is built from."""
    if isinstance(network, ConnectionMatrix):
        return network.symmetrized()
    matrix = np.asarray(network, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"similarity must be square, got shape {matrix.shape}")
    return np.maximum(matrix, matrix.T)


def spectral_embedding(
    network: Union[ConnectionMatrix, np.ndarray],
    k: int = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Solve ``L u = λ D u`` and return eigenvectors sorted ascending.

    Parameters
    ----------
    network:
        A :class:`ConnectionMatrix` or raw similarity matrix.
    k:
        Number of smallest eigenpairs wanted; ``None`` returns the full
        basis (GCP needs all ``n`` eigenvectors, Algorithm 2 line 1).

    Returns
    -------
    (eigenvectors, eigenvalues):
        ``eigenvectors`` has shape ``(n, k)`` with columns in ascending
        eigenvalue order; ``eigenvalues`` has shape ``(k,)``.
    """
    w = _similarity(network)
    n = w.shape[0]
    if k is None:
        k = n
    if not 1 <= k <= n:
        raise ValueError(f"k must lie in [1, {n}], got {k}")
    degrees = w.sum(axis=1)
    degrees = np.maximum(degrees, _DEGREE_FLOOR)
    laplacian = np.diag(degrees) - w
    # Generalized symmetric-definite problem; scipy returns ascending order.
    eigenvalues, eigenvectors = scipy.linalg.eigh(
        laplacian, np.diag(degrees), subset_by_index=(0, k - 1)
    )
    return eigenvectors, eigenvalues


def modified_spectral_clustering(
    network: Union[ConnectionMatrix, np.ndarray],
    k: int,
    rng: RngLike = None,
    max_kmeans_iterations: int = 100,
) -> ClusteringResult:
    """Run MSC (Algorithm 1): spectral embedding + k-means into ``k`` clusters."""
    rng = ensure_rng(rng)
    w = _similarity(network)
    n = w.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must lie in [1, {n}], got {k}")
    embedding, _ = spectral_embedding(w, k)
    km = kmeans(embedding, k, max_iterations=max_kmeans_iterations, rng=rng)
    clusters = clusters_from_labels(km.labels)
    return ClusteringResult(
        clusters=clusters,
        n=n,
        method="msc",
        metadata={"requested_k": k, "kmeans_iterations": km.n_iterations},
    )
