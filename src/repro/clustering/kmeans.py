"""Lloyd's k-means with k-means++ seeding and explicit centroid control.

Algorithm 2 of the paper (GCP) drives k-means from the *outside*: it hands
the routine a centroid set, reads back updated centroids, splits oversized
clusters into two by a nested 2-means call, and appends the new centroids.
A library implementation that hides its centroids cannot express this, so we
implement k-means ourselves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.rng import RngLike, ensure_rng


@dataclass
class KMeansResult:
    """Result of one k-means run."""

    labels: np.ndarray
    centroids: np.ndarray
    inertia: float
    n_iterations: int

    @property
    def k(self) -> int:
        """Number of clusters."""
        return self.centroids.shape[0]


def kmeans_plus_plus_centroids(
    points: np.ndarray, k: int, rng: RngLike = None
) -> np.ndarray:
    """k-means++ seeding: spread initial centroids by D² sampling."""
    points = np.asarray(points, dtype=float)
    rng = ensure_rng(rng)
    n = points.shape[0]
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if k > n:
        raise ValueError(f"k ({k}) cannot exceed the number of points ({n})")
    centroids = np.empty((k, points.shape[1]), dtype=float)
    first = int(rng.integers(0, n))
    centroids[0] = points[first]
    closest_sq = np.sum((points - centroids[0]) ** 2, axis=1)
    for idx in range(1, k):
        total = closest_sq.sum()
        if total <= 0.0:
            # All remaining points coincide with a centroid; pick uniformly.
            choice = int(rng.integers(0, n))
        else:
            probabilities = closest_sq / total
            choice = int(rng.choice(n, p=probabilities))
        centroids[idx] = points[choice]
        distance_sq = np.sum((points - centroids[idx]) ** 2, axis=1)
        closest_sq = np.minimum(closest_sq, distance_sq)
    return centroids


def _assign(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Label each point with its nearest centroid (squared Euclidean)."""
    # ||p - c||² = ||p||² - 2 p·c + ||c||²; the ||p||² term is constant per point.
    cross = points @ centroids.T
    c_norm = np.sum(centroids**2, axis=1)
    return np.argmin(c_norm[None, :] - 2.0 * cross, axis=1)


def _update_centroids(
    points: np.ndarray,
    labels: np.ndarray,
    k: int,
    rng: np.random.Generator,
    repair_empty: bool,
    previous_centroids: np.ndarray,
) -> np.ndarray:
    """Recompute centroids; optionally reseed empty clusters on far points.

    With ``repair_empty=False`` an empty cluster keeps its previous
    centroid (it simply attracts no points) — much more stable when ``k``
    intentionally exceeds the number of natural clusters, as in GCP.
    """
    centroids = previous_centroids.copy()
    counts = np.bincount(labels, minlength=k)
    sums = np.zeros((k, points.shape[1]), dtype=float)
    np.add.at(sums, labels, points)
    nonempty = counts > 0
    centroids[nonempty] = sums[nonempty] / counts[nonempty, None]
    if repair_empty and not np.all(nonempty):
        # Repair empty clusters: move them onto the points currently worst
        # served (largest distance to their assigned centroid).
        distances = np.sum((points - centroids[labels]) ** 2, axis=1)
        order = np.argsort(distances)[::-1]
        cursor = 0
        for j in np.nonzero(~nonempty)[0]:
            centroids[j] = points[order[cursor % points.shape[0]]]
            cursor += 1
    return centroids


def kmeans(
    points: np.ndarray,
    k: int,
    initial_centroids: Optional[np.ndarray] = None,
    max_iterations: int = 100,
    tolerance: float = 1e-8,
    rng: RngLike = None,
    repair_empty: bool = True,
) -> KMeansResult:
    """Run Lloyd's algorithm on ``points`` (shape ``(n, d)``).

    Parameters
    ----------
    initial_centroids:
        Optional ``(k, d)`` starting centroids; defaults to k-means++
        seeding.  GCP passes centroids explicitly to continue a previous
        clustering after a split.
    repair_empty:
        Reseed empty clusters on the worst-served points (default).  GCP
        and traversing disable this: they deliberately run with more
        centroids than natural clusters, and constant repair prevents
        Lloyd's from ever converging.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2:
        raise ValueError(f"points must be 2-D (n, d), got shape {points.shape}")
    n = points.shape[0]
    if k < 1 or k > n:
        raise ValueError(f"k must lie in [1, {n}], got {k}")
    rng = ensure_rng(rng)
    if initial_centroids is None:
        centroids = kmeans_plus_plus_centroids(points, k, rng=rng)
    else:
        centroids = np.asarray(initial_centroids, dtype=float).copy()
        if centroids.shape != (k, points.shape[1]):
            raise ValueError(
                f"initial_centroids must have shape ({k}, {points.shape[1]}), "
                f"got {centroids.shape}"
            )
    labels = _assign(points, centroids)
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        centroids = _update_centroids(points, labels, k, rng, repair_empty, centroids)
        new_labels = _assign(points, centroids)
        converged = np.array_equal(new_labels, labels)
        labels = new_labels
        if converged:
            break
    inertia = float(np.sum((points - centroids[labels]) ** 2))
    _ = tolerance  # assignment-stability convergence; kept for API stability
    return KMeansResult(
        labels=labels.astype(int),
        centroids=centroids,
        inertia=inertia,
        n_iterations=iteration,
    )
