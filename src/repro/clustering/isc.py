"""Iterative spectral clustering, ISC (paper Algorithm 3, Sec. 3.4).

One pass of MSC+GCP leaves most connections as outliers (57 % on the paper's
400×400 example) and re-clustering the *whole* network would break the
clusters already formed ("cluster concealing").  ISC instead removes the
realized clusters from the network and re-clusters the *remaining* network
of outliers, repeatedly.

The **partial selection strategy** keeps low-value clusters in the remaining
network: per iteration only the clusters in the top quartile of crossbar
preference (CP) are realized on crossbars ("we empirically remove only the
top 25 % clusters with the high CPs").  Iteration stops when the average
utilization of the crossbars placed in an iteration drops below the
threshold ``t`` (the paper uses the FullCro baseline utilization), or when
the quartile-boundary cluster no longer justifies even the smallest library
crossbar.  Whatever remains is realized with discrete synapses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.clustering.gcp import greedy_cluster_size_prediction
from repro.clustering.preference import (
    crossbar_preference,
    crossbar_utilization,
    minimum_satisfiable_size,
)
from repro.clustering.result import Cluster
from repro.networks.connection_matrix import ConnectionMatrix
from repro.observability import get_recorder
from repro.utils.rng import RngLike, ensure_rng

#: The paper's crossbar library: sizes 16..64 at a step of 4 (Sec. 4.2).
DEFAULT_CROSSBAR_SIZES: Tuple[int, ...] = tuple(range(16, 65, 4))

#: "we empirically remove only the top 25% clusters with the high CPs".
DEFAULT_SELECTION_QUANTILE = 0.75


@dataclass(frozen=True)
class CrossbarAssignment:
    """A cluster realized on a physical crossbar.

    Attributes
    ----------
    members:
        Neuron indices whose mutual connections the crossbar implements
        (rows = these neurons as inputs, columns = same neurons as outputs).
    size:
        Library crossbar dimension ``s`` (the minimum satisfiable size).
    connections:
        The global ``(i, j)`` connection pairs the crossbar absorbs.
    iteration:
        1-based ISC iteration in which the crossbar was placed.
    """

    members: Tuple[int, ...]
    size: int
    connections: Tuple[Tuple[int, int], ...]
    iteration: int

    def __post_init__(self) -> None:
        if len(self.members) > self.size:
            raise ValueError(
                f"cluster of {len(self.members)} neurons cannot fit a "
                f"{self.size}x{self.size} crossbar"
            )
        member_set = set(self.members)
        for i, j in self.connections:
            if i not in member_set or j not in member_set:
                raise ValueError(f"connection ({i}, {j}) has an endpoint outside the cluster")

    @property
    def utilized_connections(self) -> int:
        """The paper's ``m`` — connections implemented by this crossbar."""
        return len(self.connections)

    @property
    def utilization(self) -> float:
        """``u = m / s²`` (Sec. 3.1)."""
        return crossbar_utilization(self.utilized_connections, self.size)

    @property
    def preference(self) -> float:
        """``CP = m²/s³`` (Sec. 3.1)."""
        return crossbar_preference(self.utilized_connections, self.size)


@dataclass
class IscIterationRecord:
    """Per-iteration statistics driving the Fig. 7–9 analysis panels."""

    iteration: int
    clusters_formed: int
    crossbars_placed: int
    connections_clustered: int
    average_utilization: float
    average_preference: float
    outlier_ratio_after: float
    quartile_preference: float


@dataclass
class IscResult:
    """Full output of an ISC run: the hybrid implementation topology."""

    network: ConnectionMatrix
    crossbars: List[CrossbarAssignment]
    outliers: List[Tuple[int, int]]
    records: List[IscIterationRecord]
    utilization_threshold: float
    sizes: Tuple[int, ...] = DEFAULT_CROSSBAR_SIZES
    metadata: dict = field(default_factory=dict)

    @property
    def iterations(self) -> int:
        """Number of completed ISC iterations."""
        return len(self.records)

    @property
    def clustered_connections(self) -> int:
        """Connections absorbed into crossbars."""
        return sum(x.utilized_connections for x in self.crossbars)

    @property
    def outlier_ratio(self) -> float:
        """Fraction of network connections left to discrete synapses."""
        total = self.network.num_connections
        if total == 0:
            return 0.0
        return len(self.outliers) / total

    @property
    def average_utilization(self) -> float:
        """Mean utilization over all placed crossbars (0 when none)."""
        if not self.crossbars:
            return 0.0
        return float(np.mean([x.utilization for x in self.crossbars]))

    def crossbar_size_histogram(self) -> dict:
        """Size → count over placed crossbars (the Fig. 7–9(c) panel)."""
        histogram: dict = {}
        for assignment in self.crossbars:
            histogram[assignment.size] = histogram.get(assignment.size, 0) + 1
        return dict(sorted(histogram.items()))

    def validate(self) -> None:
        """Check the invariant: crossbars + outliers = exactly the network.

        Raises ``AssertionError`` when any connection is dropped, duplicated
        or invented — the core correctness property of the flow.
        """
        implemented: set = set()
        for assignment in self.crossbars:
            for pair in assignment.connections:
                assert pair not in implemented, f"connection {pair} implemented twice"
                implemented.add(pair)
        for pair in self.outliers:
            assert pair not in implemented, f"outlier {pair} also on a crossbar"
            implemented.add(pair)
        expected = set(self.network.connection_list())
        assert implemented == expected, (
            f"implementation covers {len(implemented)} connections, "
            f"network has {len(expected)}"
        )


def _cluster_connections(
    remaining: ConnectionMatrix, members: Sequence[int]
) -> Tuple[Tuple[int, int], ...]:
    """Global ``(i, j)`` pairs of the remaining network inside ``members``."""
    return _clusters_connections([members], remaining)[0]


def _clusters_connections(
    member_lists: Sequence[Sequence[int]], remaining: ConnectionMatrix
) -> List[Tuple[Tuple[int, int], ...]]:
    """Per-cluster within-cluster connection pairs for **disjoint** clusters.

    One O(connections) sweep over the edge arrays instead of one submatrix
    extraction per cluster.  Pairs come out in global row-major order,
    which — because cluster members are sorted ascending — is exactly the
    order the historical per-block ``np.nonzero`` extraction produced.
    """
    label = np.full(remaining.size, -1, dtype=np.int64)
    for position, members in enumerate(member_lists):
        label[np.asarray(list(members), dtype=int)] = position
    rows, cols = remaining.connection_arrays()
    within = (label[rows] >= 0) & (label[rows] == label[cols])
    rows, cols = rows[within], cols[within]
    groups = label[rows]
    order = np.argsort(groups, kind="stable")  # keeps row-major order per group
    rows, cols, groups = rows[order], cols[order], groups[order]
    counts = np.bincount(groups, minlength=len(member_lists))
    results: List[Tuple[Tuple[int, int], ...]] = []
    start = 0
    for count in counts:
        stop = start + int(count)
        results.append(
            tuple(zip(rows[start:stop].tolist(), cols[start:stop].tolist()))
        )
        start = stop
    return results


def iterative_spectral_clustering(
    network: ConnectionMatrix,
    sizes: Sequence[int] = DEFAULT_CROSSBAR_SIZES,
    utilization_threshold: float = 0.05,
    selection_quantile: float = DEFAULT_SELECTION_QUANTILE,
    max_iterations: int = 50,
    rng: RngLike = None,
    preference: Callable[[int, int], float] = crossbar_preference,
    clusterer: Callable[..., "object"] = greedy_cluster_size_prediction,
) -> IscResult:
    """Run ISC (Algorithm 3) and return the hybrid implementation topology.

    Parameters
    ----------
    network:
        The binary connection matrix to implement.
    sizes:
        Crossbar library dimensions ``S`` (paper: 16..64 step 4).
    utilization_threshold:
        Stop iterating once the average utilization of the crossbars placed
        in an iteration falls below this ``t``.  The paper sets ``t`` to the
        FullCro baseline utilization (see
        :func:`repro.mapping.fullcro.fullcro_utilization`).
    selection_quantile:
        Quantile of the per-iteration CP distribution above which clusters
        are realized (0.75 → top 25 %, the paper's empirical choice).
    max_iterations:
        Hard safety cap on iterations.
    preference:
        Scoring function ``(m, s) → CP`` for a cluster with ``m``
        connections on an ``s × s`` crossbar.  Defaults to the paper's
        ``m²/s³``; the ablation benches swap in alternatives.
    clusterer:
        Size-capped clustering routine ``(network, max_size, rng=...) →
        ClusteringResult`` used each iteration.  Defaults to GCP
        (Algorithm 2); :func:`repro.clustering.modularity.
        modularity_clustering` is a drop-in alternative for ablations.

    Returns
    -------
    IscResult
        Crossbar assignments, residual outlier connections, and the
        per-iteration records used by the Fig. 7–9 analyses.
    """
    if not isinstance(network, ConnectionMatrix):
        raise TypeError("network must be a ConnectionMatrix")
    size_list = tuple(sorted(int(s) for s in sizes))
    if not size_list or size_list[0] < 1:
        raise ValueError(f"sizes must be positive, got {sizes}")
    if not 0.0 < selection_quantile < 1.0:
        raise ValueError(f"selection_quantile must lie in (0, 1), got {selection_quantile}")
    if max_iterations < 1:
        raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
    rng = ensure_rng(rng)
    max_s = size_list[-1]
    total_connections = network.num_connections

    remaining = network.copy(name=f"{network.name}-remaining")
    crossbars: List[CrossbarAssignment] = []
    records: List[IscIterationRecord] = []

    iteration = 0
    while iteration < max_iterations and remaining.num_connections > 0:
        iteration += 1
        # Algorithm 3 line 3: cluster the remaining network, size-capped.
        clustering = clusterer(remaining, max_s, rng=rng)
        # Lines 4-5: score clusters by CP at their minimum satisfiable size.
        # The clusters partition the network, so all within-counts come from
        # a single O(connections) pass.
        within_counts = remaining.connections_within_many(
            [cluster.members for cluster in clustering.clusters]
        )
        scored = []
        for cluster, m in zip(clustering.clusters, within_counts.tolist()):
            if m == 0:
                continue  # a cluster with no connections never earns a crossbar
            s = minimum_satisfiable_size(cluster.size, size_list)
            if s is None:  # pragma: no cover - GCP caps sizes at max(S)
                continue
            scored.append((cluster, m, s, float(preference(m, s))))
        if not scored:
            break
        cps = np.array([item[3] for item in scored])
        q = float(np.quantile(cps, selection_quantile))
        selected = [item for item in scored if item[3] >= q]
        # Algorithm 3 line 6: stop when the quartile-boundary cluster cannot
        # be served by the library.  With the minimum-satisfiable policy a
        # GCP cluster always fits some crossbar, so in practice the
        # utilization rule (line 17, and the one Sec. 4.2 describes as the
        # experiment's stop condition) governs termination; this break is a
        # safety check for mis-matched library/GCP size limits.
        boundary = min(selected, key=lambda item: item[3])
        if minimum_satisfiable_size(boundary[0].size, size_list) is None:
            break
        # Lines 9-14: realize the selected clusters, delete their
        # connections from the remaining network.  Selected clusters are
        # disjoint, so extracting all connection groups up front and
        # removing them in one batch is identical to the sequential
        # extract-then-remove loop — at a single edge sweep instead of
        # one matrix rebuild per cluster.
        connection_groups = _clusters_connections(
            [cluster.members for cluster, _, _, _ in selected], remaining
        )
        placed: List[CrossbarAssignment] = []
        for (cluster, m, s, cp), connections in zip(selected, connection_groups):
            placed.append(
                CrossbarAssignment(
                    members=cluster.members,
                    size=s,
                    connections=connections,
                    iteration=iteration,
                )
            )
        remaining = remaining.remove_clusters(
            [cluster.members for cluster, _, _, _ in selected]
        )
        crossbars.extend(placed)
        # Line 15: average utilization of the crossbars placed this round.
        avg_u = float(np.mean([x.utilization for x in placed]))
        avg_cp = float(np.mean([x.preference for x in placed]))
        records.append(
            IscIterationRecord(
                iteration=iteration,
                clusters_formed=len(clustering.clusters),
                crossbars_placed=len(placed),
                connections_clustered=sum(x.utilized_connections for x in placed),
                average_utilization=avg_u,
                average_preference=avg_cp,
                outlier_ratio_after=(
                    remaining.num_connections / total_connections
                    if total_connections
                    else 0.0
                ),
                quartile_preference=q,
            )
        )
        # Line 17: continue while u >= t.
        if avg_u < utilization_threshold:
            break

    # Line 18: whatever is left becomes discrete memristor synapses.
    outliers = remaining.connection_list()
    result = IscResult(
        network=network,
        crossbars=crossbars,
        outliers=outliers,
        records=records,
        utilization_threshold=utilization_threshold,
        sizes=size_list,
        metadata={"max_iterations": max_iterations, "selection_quantile": selection_quantile},
    )
    result.validate()

    # One observability flush per ISC run (null-recorder overhead contract).
    recorder = get_recorder()
    recorder.count("isc.runs")
    recorder.count("isc.iterations", result.iterations)
    recorder.count("isc.crossbars_placed", len(crossbars))
    recorder.count("isc.clustered_connections", result.clustered_connections)
    recorder.count("isc.outlier_connections", len(outliers))
    if recorder.enabled:
        recorder.gauge("isc.outlier_ratio", result.outlier_ratio)
        recorder.gauge("isc.average_utilization", result.average_utilization)
        recorder.observe_many(
            "isc.crossbar_size", [float(x.size) for x in crossbars]
        )
    return result


def single_pass_clusters(
    network: ConnectionMatrix,
    max_size: int,
    rng: RngLike = None,
) -> List[Cluster]:
    """Convenience: one MSC+GCP pass, returning clusters with ≥1 connection.

    This is what Fig. 3/4 visualize before ISC enters the picture.
    """
    clustering = greedy_cluster_size_prediction(network, max_size, rng=rng)
    return [
        cluster
        for cluster in clustering.clusters
        if network.connections_within(cluster.members) > 0
    ]
