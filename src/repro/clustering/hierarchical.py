"""Tiered (hierarchical) clustering for very large networks.

ISC re-clusters the *whole* remaining network every iteration, which is
wasteful above a few thousand neurons: each GCP pass costs a truncated
eigensolve over all ``n`` neurons, repeated for every ISC iteration.  The
tiered pass borrows the decompose-then-map structure of *Group Scissor*
(PAPERS.md): first a single coarse spectral partition cuts the network into
**tiers** of at most ``tier_size`` neurons, then full ISC runs independently
inside each tier (a dense problem of bounded size), and finally the per-tier
results are stitched back together — cross-tier connections join the
per-tier leftovers as discrete-synapse outliers.

The result is a regular :class:`~repro.clustering.isc.IscResult` over the
original network, so mapping, verification and reporting downstream are
unchanged.  The trade-off is explicit: connections cut by the coarse
partition can never be absorbed by a crossbar, so the outlier ratio is
bounded below by the coarse cut ratio; in exchange the cost drops from
"many eigensolves over ``n``" to "one truncated eigensolve over ``n`` plus
many dense solves over ``tier_size``", which is what makes 50k+ neurons
tractable end-to-end (see DESIGN.md and BENCH_clustering.json).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.clustering.gcp import _enforce_size_limit, greedy_cluster_size_prediction
from repro.clustering.isc import (
    DEFAULT_CROSSBAR_SIZES,
    DEFAULT_SELECTION_QUANTILE,
    CrossbarAssignment,
    IscIterationRecord,
    IscResult,
    iterative_spectral_clustering,
)
from repro.clustering.kmeans import kmeans
from repro.clustering.preference import crossbar_preference
from repro.clustering.result import ClusteringResult, clusters_from_labels
from repro.clustering.spectral import spectral_embedding
from repro.networks.connection_matrix import ConnectionMatrix
from repro.observability import get_recorder
from repro.utils.rng import RngLike, ensure_rng, spawn_rng

#: Default tier capacity: large enough that tiers retain real cluster
#: structure, small enough that the per-tier dense eigensolves stay cheap
#: (matches DENSE_EIGENSOLVER_CUTOFF, so every tier runs the exact solver).
DEFAULT_TIER_SIZE = 1024


def _fast_gcp(network, max_size: int, rng: RngLike = None):
    """GCP with the fast bisection split — the tiered pass's clusterer.

    Scale-free tiers make Algorithm 2's re-Lloyd split loop pathological
    (hundreds of sweeps); the bisect mode caps sizes deterministically
    after a single k-means.  See ``split_mode`` in
    :func:`~repro.clustering.gcp.greedy_cluster_size_prediction`.
    """
    return greedy_cluster_size_prediction(
        network, max_size, rng=rng, split_mode="bisect"
    )


def coarse_partition(
    network: ConnectionMatrix,
    tier_size: int = DEFAULT_TIER_SIZE,
    rng: RngLike = None,
) -> ClusteringResult:
    """One spectral cut of the whole network into tiers of ≤ ``tier_size``.

    A single truncated embedding with ``k = ceil(n / tier_size)`` followed
    by k-means, then deterministic bisection of any oversized tier.  This
    is MSC at tier granularity — the "scissor" step.
    """
    if tier_size < 1:
        raise ValueError(f"tier_size must be >= 1, got {tier_size}")
    rng = ensure_rng(rng)
    n = network.size
    k = max(1, -(-n // tier_size))
    if k == 1:
        labels = np.zeros(n, dtype=int)
    else:
        embedding, _ = spectral_embedding(network, k=min(k, n))
        km = kmeans(embedding, k, rng=rng)
        labels = _enforce_size_limit(embedding, km.labels, tier_size, rng)
    return ClusteringResult(
        clusters=clusters_from_labels(labels),
        n=n,
        method="coarse",
        metadata={"tier_size": tier_size, "tiers": int(len(set(labels.tolist())))},
    )


def _remap_assignment(
    assignment: CrossbarAssignment,
    members: np.ndarray,
    iteration_offset: int,
) -> CrossbarAssignment:
    """Translate a tier-local crossbar assignment to global neuron indices."""
    return CrossbarAssignment(
        members=tuple(int(members[local]) for local in assignment.members),
        size=assignment.size,
        connections=tuple(
            (int(members[i]), int(members[j])) for i, j in assignment.connections
        ),
        iteration=assignment.iteration + iteration_offset,
    )


def cluster_hierarchical(
    network: ConnectionMatrix,
    sizes: Sequence[int] = DEFAULT_CROSSBAR_SIZES,
    utilization_threshold: float = 0.05,
    selection_quantile: float = DEFAULT_SELECTION_QUANTILE,
    max_iterations: int = 50,
    tier_size: int = DEFAULT_TIER_SIZE,
    rng: RngLike = None,
    preference: Callable[[int, int], float] = crossbar_preference,
    clusterer: Optional[Callable[..., "object"]] = None,
) -> IscResult:
    """Tiered ISC: coarse partition → per-tier ISC → stitch.

    Parameters mirror :func:`~repro.clustering.isc.
    iterative_spectral_clustering`, plus ``tier_size`` — the maximum number
    of neurons a tier may hold.  Networks no larger than ``tier_size``
    simply run plain ISC (one tier), so the function is a safe default for
    any scale.

    Returns an :class:`IscResult` over the **original** network whose
    crossbars are the union of the per-tier crossbars (re-indexed to global
    neuron ids) and whose outliers are the per-tier leftovers plus every
    cross-tier connection.  ``result.validate()`` holds by construction and
    is re-checked before returning.

    ``clusterer=None`` (default) resolves per path: the small-network
    delegation to flat ISC uses the verbatim Algorithm 2 GCP, while the
    tiered path uses the fast bisect-split GCP.
    """
    if not isinstance(network, ConnectionMatrix):
        raise TypeError("network must be a ConnectionMatrix")
    rng = ensure_rng(rng)
    recorder = get_recorder()

    if network.size <= tier_size:
        return iterative_spectral_clustering(
            network,
            sizes=sizes,
            utilization_threshold=utilization_threshold,
            selection_quantile=selection_quantile,
            max_iterations=max_iterations,
            rng=rng,
            preference=preference,
            clusterer=clusterer if clusterer is not None else greedy_cluster_size_prediction,
        )
    if clusterer is None:
        clusterer = _fast_gcp

    with recorder.span("hierarchical.partition", neurons=network.size):
        partition_rng, tier_parent_rng = spawn_rng(rng, 2)
        partition = coarse_partition(network, tier_size=tier_size, rng=partition_rng)
    tiers = partition.clusters
    tier_rngs = spawn_rng(tier_parent_rng, len(tiers))

    crossbars: List[CrossbarAssignment] = []
    records: List[IscIterationRecord] = []
    outlier_parts: List[Tuple[np.ndarray, np.ndarray]] = []
    iteration_offset = 0
    tier_summaries = []
    cut_connections = network.num_connections
    for tier, tier_rng in zip(tiers, tier_rngs):
        members = np.asarray(tier.members, dtype=np.int64)
        block = network.submatrix(members)  # dense, ≤ tier_size × tier_size
        sub_network = ConnectionMatrix.from_dense(
            block, name=f"{network.name}-tier", backend="dense"
        )
        if sub_network.num_connections == 0:
            tier_summaries.append({"neurons": int(members.size), "crossbars": 0})
            continue
        cut_connections -= sub_network.num_connections
        with recorder.span("hierarchical.tier", neurons=int(members.size)):
            tier_result = iterative_spectral_clustering(
                sub_network,
                sizes=sizes,
                utilization_threshold=utilization_threshold,
                selection_quantile=selection_quantile,
                max_iterations=max_iterations,
                rng=tier_rng,
                preference=preference,
                clusterer=clusterer,
            )
        for assignment in tier_result.crossbars:
            crossbars.append(_remap_assignment(assignment, members, iteration_offset))
        for record in tier_result.records:
            records.append(
                IscIterationRecord(
                    iteration=record.iteration + iteration_offset,
                    clusters_formed=record.clusters_formed,
                    crossbars_placed=record.crossbars_placed,
                    connections_clustered=record.connections_clustered,
                    average_utilization=record.average_utilization,
                    average_preference=record.average_preference,
                    outlier_ratio_after=record.outlier_ratio_after,
                    quartile_preference=record.quartile_preference,
                )
            )
        iteration_offset += tier_result.iterations
        if tier_result.outliers:
            local = np.asarray(tier_result.outliers, dtype=np.int64)
            outlier_parts.append((members[local[:, 0]], members[local[:, 1]]))
        tier_summaries.append(
            {"neurons": int(members.size), "crossbars": len(tier_result.crossbars)}
        )

    # Cross-tier connections: everything the coarse cut severed.
    tier_label = np.full(network.size, -1, dtype=np.int64)
    for position, tier in enumerate(tiers):
        tier_label[np.asarray(tier.members, dtype=np.int64)] = position
    rows, cols = network.connection_arrays()
    crossing = tier_label[rows] != tier_label[cols]
    outlier_parts.append((rows[crossing], cols[crossing]))

    out_rows = np.concatenate([part[0] for part in outlier_parts])
    out_cols = np.concatenate([part[1] for part in outlier_parts])
    order = np.lexsort((out_cols, out_rows))  # global row-major, deterministic
    outliers = list(zip(out_rows[order].tolist(), out_cols[order].tolist()))

    total = network.num_connections
    result = IscResult(
        network=network,
        crossbars=crossbars,
        outliers=outliers,
        records=records,
        utilization_threshold=utilization_threshold,
        sizes=tuple(sorted(int(s) for s in sizes)),
        metadata={
            "method": "hierarchical",
            "tier_size": tier_size,
            "tiers": len(tiers),
            "tier_summaries": tier_summaries,
            "cut_ratio": (cut_connections / total) if total else 0.0,
            "max_iterations": max_iterations,
            "selection_quantile": selection_quantile,
        },
    )
    result.validate()
    recorder.count("hierarchical.runs")
    recorder.count("hierarchical.tiers", len(tiers))
    if recorder.enabled:
        recorder.gauge("hierarchical.cut_ratio", result.metadata["cut_ratio"])
    return result
