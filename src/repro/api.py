"""The stable public API of :mod:`repro`.

Four functions cover the common uses of the framework, re-exported at
the package top level::

    import repro
    from repro import FlowOptions

    network = repro.load_network("net.npz")
    result = repro.map_network(network, options=FlowOptions(seed=42))
    report = repro.compare(network, options=FlowOptions(seed=42))
    check  = repro.verify(result)

All flow settings live in one documented :class:`FlowOptions` dataclass,
so every entry point shares a single configuration surface and the
runtime cache can key on ``options.cache_key()`` together with
``network.digest()``.  The pre-1.7 per-call keyword arguments
(``seed=``, ``config=``, ``verify=``, …) are still accepted through
deprecation shims, so existing callers keep working unchanged.

Return types are the documented result dataclasses
(:class:`~repro.core.autoncs.AutoNcsResult`,
:class:`~repro.core.report.ComparisonReport`,
:class:`~repro.verify.report.VerificationReport`) — each carries
``.to_dict()`` for machine consumption and ``.format_table()`` for
terminal output.

Observability composes orthogonally: install a recorder around any call
to collect a trace and metrics::

    from repro import Recorder, recording, write_chrome_trace

    rec = Recorder()
    with recording(rec):
        repro.compare(network, options=FlowOptions(seed=42))
    write_chrome_trace(rec.tracer.spans, "trace.jsonl")

Deep imports (``from repro.core import AutoNCS``) remain supported for
advanced use; the facade is the stable subset covered by the public-API
snapshot test (``tests/test_public_api.py``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Optional, Tuple, Union

from repro.core.autoncs import AutoNCS, AutoNcsResult
from repro.core.config import AutoNcsConfig
from repro.core.report import ComparisonReport
from repro.mapping.netlist import MappingResult
from repro.networks.connection_matrix import ConnectionMatrix
from repro.physical.layout import PhysicalDesign
from repro.utils.deprecation import warn_deprecated
from repro.utils.rng import RngLike
from repro.verify.report import VerificationReport

__all__ = ["FlowOptions", "compare", "load_network", "map_network", "verify"]


@dataclass
class FlowOptions:
    """Every per-call knob of the public API in one place.

    One options object serves all entry points; each function reads the
    fields relevant to it and ignores the rest, so a single
    ``FlowOptions`` can drive ``map_network`` → ``verify`` → ``compare``
    on the same network.

    Attributes
    ----------
    config:
        Flow configuration; ``None`` means the paper defaults
        (:class:`~repro.core.config.AutoNcsConfig`; see also
        :func:`~repro.core.config.fast_config`).  Clustering scale-up,
        routing algorithm and kernel (``config.routing.kernel``:
        compiled Numba maze search vs the bit-identical python
        reference), technology — everything pipeline-level — lives
        here.
    seed:
        RNG seed material (int, :class:`numpy.random.Generator` or
        ``None`` for nondeterministic).
    verify:
        ``map_network`` only: run the independent end-to-end verifier on
        the finished design and raise
        :class:`~repro.verify.VerificationError` on violation.
    baseline:
        ``verify`` only: when the target is a network, run the FullCro
        baseline flow instead of AutoNCS before checking.
    checks:
        ``verify`` only: subset of check names to run (``"coverage"``,
        ``"hardware"``, ``"physical"``, ``"functional"``); ``None`` runs
        all.  Large-network flows typically restrict to
        ``("coverage", "hardware")`` — the functional check simulates a
        dense ``n × n`` weight matrix.
    hopfield:
        ``verify`` only: optional :class:`~repro.networks.hopfield.
        HopfieldNetwork` enabling the Hopfield-recall functional check.
    n_jobs:
        ``compare`` only: ``> 1`` runs the two flows on worker processes
        through the runtime engine.  Results are identical for any
        value (child seeds are replayed).
    label:
        ``compare`` only: report label (defaults to the network name).
    resilience:
        ``compare`` only: optional :class:`~repro.runtime.resilience.
        ResilienceConfig` adding per-flow retries and timeouts.
    """

    config: Optional[AutoNcsConfig] = None
    seed: RngLike = None
    verify: bool = False
    baseline: bool = False
    checks: Optional[Tuple[str, ...]] = None
    hopfield: Optional[object] = None
    n_jobs: int = 1
    label: Optional[str] = None
    resilience: Optional[object] = None

    def __post_init__(self) -> None:
        if self.n_jobs < 1:
            raise ValueError(f"n_jobs must be >= 1, got {self.n_jobs}")
        if self.checks is not None:
            self.checks = tuple(str(c) for c in self.checks)

    def resolved_config(self) -> AutoNcsConfig:
        """The effective :class:`AutoNcsConfig` (defaults when unset)."""
        return self.config if self.config is not None else AutoNcsConfig()

    def cache_key(self) -> str:
        """A stable content hash over the **result-determining** fields.

        Covers ``config`` (via its own :meth:`~repro.core.config.
        AutoNcsConfig.cache_key`), ``seed``, ``verify``, ``baseline`` and
        ``checks``.  Excluded by design: ``n_jobs`` and ``resilience``
        (execution strategy — results are seed-reproducible regardless),
        ``label`` (cosmetic) and ``hopfield`` (an in-memory object whose
        influence is already captured by the functional-check flag in
        ``checks``).  Combine with :meth:`~repro.networks.
        connection_matrix.ConnectionMatrix.digest` to address cached flow
        results.
        """
        from repro.utils.canonical import stable_hash

        seed = self.seed
        if seed is not None and not isinstance(seed, int):
            # A live Generator has no stable content identity; callers
            # wanting cache hits should pass int seeds.
            seed = f"generator:{id(seed)}"
        return stable_hash(
            {
                "config": self.resolved_config().cache_key(),
                "seed": seed,
                "verify": self.verify,
                "baseline": self.baseline,
                "checks": self.checks,
            }
        )


def _resolve_options(
    function: str,
    options: Optional[FlowOptions],
    legacy: dict,
    allowed: Tuple[str, ...],
) -> FlowOptions:
    """Merge deprecated per-call kwargs into a :class:`FlowOptions`.

    Legacy keywords override fields of ``options`` (matching the pre-1.7
    behaviour where they were the only configuration channel) and emit
    one deprecation warning per call.
    """
    unknown = sorted(set(legacy) - set(allowed))
    if unknown:
        raise TypeError(
            f"{function}() got unexpected keyword argument(s): {', '.join(unknown)}"
        )
    provided = {key: value for key, value in legacy.items() if value is not _UNSET}
    if not provided:
        return options if options is not None else FlowOptions()
    warn_deprecated(
        f"repro.{function}({', '.join(sorted(provided))}=...) keyword arguments",
        "FlowOptions via the options= parameter",
        stacklevel=4,
    )
    base = options if options is not None else FlowOptions()
    return replace(base, **provided)


#: Sentinel distinguishing "legacy kwarg not passed" from explicit None.
_UNSET = object()


def load_network(
    path: Union[str, "os.PathLike[str]"],
    name: Optional[str] = None,
) -> ConnectionMatrix:
    """Load a :class:`ConnectionMatrix` from disk.

    ``.npz`` archives (dense or sparse layout, see
    :mod:`repro.networks.io`) load by extension; anything else is parsed
    as an edge-list text file.  ``name`` overrides the stored network
    name when given.
    """
    from repro.networks.io import load_network_edgelist, load_network_npz

    if str(path).endswith(".npz"):
        network = load_network_npz(path)
    else:
        network = load_network_edgelist(path)
    if name is not None:
        network = network.copy(name=name)
    return network


def map_network(
    network: ConnectionMatrix,
    *,
    options: Optional[FlowOptions] = None,
    config=_UNSET,
    seed=_UNSET,
    verify=_UNSET,
) -> AutoNcsResult:
    """Run the full AutoNCS flow (ISC → mapping → placement → routing).

    Parameters
    ----------
    network:
        The connection matrix to implement.
    options:
        All flow settings (see :class:`FlowOptions`); relevant fields are
        ``config``, ``seed`` and ``verify``.
    config / seed / verify:
        Deprecated per-call equivalents of the same-named
        :class:`FlowOptions` fields.

    Returns
    -------
    AutoNcsResult
        ISC result, hybrid mapping and physical design, with per-stage
        diagnostics in ``metadata`` and the ``.to_dict()`` /
        ``.format_table()`` result surface.
    """
    opts = _resolve_options(
        "map_network",
        options,
        {"config": config, "seed": seed, "verify": verify},
        ("config", "seed", "verify"),
    )
    return AutoNCS(opts.config).run(network, rng=opts.seed, verify=opts.verify)


def compare(
    network: ConnectionMatrix,
    *,
    options: Optional[FlowOptions] = None,
    config=_UNSET,
    seed=_UNSET,
    n_jobs=_UNSET,
    label=_UNSET,
    resilience=_UNSET,
) -> ComparisonReport:
    """Run AutoNCS and the FullCro baseline; report the Table 1 comparison.

    Parameters
    ----------
    network:
        The connection matrix to implement with both flows.
    options:
        All flow settings (see :class:`FlowOptions`); relevant fields are
        ``config``, ``seed``, ``n_jobs``, ``label`` and ``resilience``.
        Each flow draws from its own child stream spawned from ``seed``,
        so either side is reproducible in isolation, for any ``n_jobs``.
    config / seed / n_jobs / label / resilience:
        Deprecated per-call equivalents of the same-named
        :class:`FlowOptions` fields.

    Returns
    -------
    ComparisonReport
        Wirelength/area/delay of both designs plus reduction
        percentages, with ``.to_dict()`` / ``.format_table()``.
    """
    opts = _resolve_options(
        "compare",
        options,
        {
            "config": config,
            "seed": seed,
            "n_jobs": n_jobs,
            "label": label,
            "resilience": resilience,
        },
        ("config", "seed", "n_jobs", "label", "resilience"),
    )
    if opts.n_jobs <= 1 and opts.resilience is None:
        return AutoNCS(opts.config).compare(network, label=opts.label, rng=opts.seed)
    from repro.runtime import Job, Runner
    from repro.utils.rng import ensure_rng, spawn_seeds

    autoncs_seed, fullcro_seed = spawn_seeds(ensure_rng(opts.seed), 2)
    flow_config = opts.resolved_config()
    payload = {"network": network, "config": flow_config}
    jobs = [
        Job(kind="autoncs", label=f"{network.name} autoncs",
            payload=payload, seed=autoncs_seed),
        Job(kind="fullcro", label=f"{network.name} fullcro",
            payload=payload, seed=fullcro_seed),
    ]
    results = Runner(n_jobs=opts.n_jobs, resilience=opts.resilience).run(jobs)
    failed = [r for r in results if r.failure is not None]
    if failed:
        # The comparison needs both designs; a collected (non-fail-fast)
        # failure still has to surface here.
        first = failed[0].failure
        raise RuntimeError(
            f"compare flow {first.label!r} failed ({first.failure} after "
            f"{first.attempts} attempt(s)): {first.message}"
        )
    result = results[0].value
    return ComparisonReport(
        label=opts.label if opts.label is not None else network.name,
        autoncs=result.design,
        fullcro=results[1].value,
        metadata={"isc_iterations": result.isc.iterations,
                  "outlier_ratio": result.isc.outlier_ratio},
    )


def verify(
    target: Union[ConnectionMatrix, AutoNcsResult, PhysicalDesign, MappingResult],
    *,
    options: Optional[FlowOptions] = None,
    config=_UNSET,
    seed=_UNSET,
    baseline=_UNSET,
    checks=_UNSET,
    hopfield=_UNSET,
) -> VerificationReport:
    """Independently verify a flow artifact (or run the flow, then verify).

    Parameters
    ----------
    target:
        What to verify.  A finished :class:`AutoNcsResult`,
        :class:`~repro.physical.layout.PhysicalDesign` or
        :class:`~repro.mapping.netlist.MappingResult` is checked
        directly; a :class:`~repro.networks.connection_matrix.
        ConnectionMatrix` first runs the flow (AutoNCS by default,
        FullCro with ``baseline=True``) and verifies the result.
    options:
        All flow settings (see :class:`FlowOptions`); relevant fields are
        ``config``, ``seed``, ``baseline``, ``checks`` and ``hopfield``.
    config / seed / baseline / checks / hopfield:
        Deprecated per-call equivalents of the same-named
        :class:`FlowOptions` fields.

    Returns
    -------
    VerificationReport
        Per-check outcomes and violations; ``.passed`` summarizes, and
        ``.raise_if_failed()`` escalates to
        :class:`~repro.verify.VerificationError`.
    """
    from repro.verify.verifier import verify_flow, verify_mapping

    opts = _resolve_options(
        "verify",
        options,
        {
            "config": config,
            "seed": seed,
            "baseline": baseline,
            "checks": checks,
            "hopfield": hopfield,
        },
        ("config", "seed", "baseline", "checks", "hopfield"),
    )
    if isinstance(target, ConnectionMatrix):
        flow = AutoNCS(opts.config)
        if opts.baseline:
            target = flow.run_baseline(target, rng=opts.seed)
        else:
            target = flow.run(target, rng=opts.seed)
    if isinstance(target, AutoNcsResult):
        target = target.design
    if isinstance(target, PhysicalDesign):
        return verify_flow(target, hopfield=opts.hopfield, checks=opts.checks)
    if isinstance(target, MappingResult):
        return verify_mapping(target, hopfield=opts.hopfield, checks=opts.checks)
    raise TypeError(
        "verify() accepts a ConnectionMatrix, AutoNcsResult, PhysicalDesign "
        f"or MappingResult, got {type(target).__name__}"
    )
