"""The stable public API of :mod:`repro`.

Three functions cover the common uses of the framework, re-exported at
the package top level::

    import repro

    result = repro.map_network(network, seed=42)        # AutoNcsResult
    report = repro.compare(network, seed=42)            # ComparisonReport
    check  = repro.verify(result, seed=42)              # VerificationReport

All configuration is keyword-only, so calls read unambiguously and the
signatures can grow without breaking positional callers.  Return types
are the documented result dataclasses (:class:`~repro.core.autoncs.
AutoNcsResult`, :class:`~repro.core.report.ComparisonReport`,
:class:`~repro.verify.report.VerificationReport`) — each carries
``.to_dict()`` for machine consumption and ``.format_table()`` for
terminal output.

Observability composes orthogonally: install a recorder around any call
to collect a trace and metrics::

    from repro import Recorder, recording, write_chrome_trace

    rec = Recorder()
    with recording(rec):
        repro.compare(network, seed=42)
    write_chrome_trace(rec.tracer.spans, "trace.jsonl")

Deep imports (``from repro.core import AutoNCS``) remain supported for
advanced use; the facade is the stable subset covered by the public-API
snapshot test (``tests/test_public_api.py``).
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.core.autoncs import AutoNCS, AutoNcsResult
from repro.core.config import AutoNcsConfig
from repro.core.report import ComparisonReport
from repro.mapping.netlist import MappingResult
from repro.networks.connection_matrix import ConnectionMatrix
from repro.physical.layout import PhysicalDesign
from repro.utils.rng import RngLike
from repro.verify.report import VerificationReport

__all__ = ["compare", "map_network", "verify"]


def map_network(
    network: ConnectionMatrix,
    *,
    config: Optional[AutoNcsConfig] = None,
    seed: RngLike = None,
    verify: bool = False,
) -> AutoNcsResult:
    """Run the full AutoNCS flow (ISC → mapping → placement → routing).

    Parameters
    ----------
    network:
        The connection matrix to implement.
    config:
        Flow configuration; defaults to the paper settings
        (:class:`~repro.core.config.AutoNcsConfig`; see also
        :func:`~repro.core.config.fast_config` for quick previews).
        The routing algorithm is selected here: pass
        ``AutoNcsConfig(routing=RoutingConfig(algorithm="negotiated"))``
        for PathFinder-style negotiated congestion instead of the
        paper's ordered route with capacity relaxation.
    seed:
        RNG seed material (int, :class:`numpy.random.Generator` or
        ``None`` for nondeterministic).
    verify:
        Run the independent end-to-end verifier on the finished design
        and raise :class:`~repro.verify.VerificationError` on violation.

    Returns
    -------
    AutoNcsResult
        ISC result, hybrid mapping and physical design, with per-stage
        diagnostics in ``metadata`` and the ``.to_dict()`` /
        ``.format_table()`` result surface.
    """
    return AutoNCS(config).run(network, rng=seed, verify=verify)


def compare(
    network: ConnectionMatrix,
    *,
    config: Optional[AutoNcsConfig] = None,
    seed: RngLike = None,
    n_jobs: int = 1,
    label: Optional[str] = None,
    resilience=None,
) -> ComparisonReport:
    """Run AutoNCS and the FullCro baseline; report the Table 1 comparison.

    Parameters
    ----------
    network:
        The connection matrix to implement with both flows.
    config:
        Flow configuration shared by both flows.
    seed:
        Parent seed; each flow draws from its own spawned child stream,
        so either side is reproducible in isolation.
    n_jobs:
        ``> 1`` runs the two flows on worker processes through the
        runtime engine.  The parallel path replays the exact child seeds
        the serial path would spawn, so the report is identical for any
        value.
    label:
        Report label (defaults to the network name).
    resilience:
        Optional :class:`~repro.runtime.resilience.ResilienceConfig`
        adding per-flow retries and wall-clock timeouts; the flows then
        run through the runtime engine even at ``n_jobs=1``.  The
        retried flow replays its own seed, so the report is unchanged.

    Returns
    -------
    ComparisonReport
        Wirelength/area/delay of both designs plus reduction
        percentages, with ``.to_dict()`` / ``.format_table()``.
    """
    if n_jobs <= 1 and resilience is None:
        return AutoNCS(config).compare(network, label=label, rng=seed)
    from repro.runtime import Job, Runner
    from repro.utils.rng import ensure_rng, spawn_seeds

    autoncs_seed, fullcro_seed = spawn_seeds(ensure_rng(seed), 2)
    flow_config = config if config is not None else AutoNcsConfig()
    payload = {"network": network, "config": flow_config}
    jobs = [
        Job(kind="autoncs", label=f"{network.name} autoncs",
            payload=payload, seed=autoncs_seed),
        Job(kind="fullcro", label=f"{network.name} fullcro",
            payload=payload, seed=fullcro_seed),
    ]
    results = Runner(n_jobs=n_jobs, resilience=resilience).run(jobs)
    failed = [r for r in results if r.failure is not None]
    if failed:
        # The comparison needs both designs; a collected (non-fail-fast)
        # failure still has to surface here.
        first = failed[0].failure
        raise RuntimeError(
            f"compare flow {first.label!r} failed ({first.failure} after "
            f"{first.attempts} attempt(s)): {first.message}"
        )
    result = results[0].value
    return ComparisonReport(
        label=label if label is not None else network.name,
        autoncs=result.design,
        fullcro=results[1].value,
        metadata={"isc_iterations": result.isc.iterations,
                  "outlier_ratio": result.isc.outlier_ratio},
    )


def verify(
    target: Union[ConnectionMatrix, AutoNcsResult, PhysicalDesign, MappingResult],
    *,
    config: Optional[AutoNcsConfig] = None,
    seed: RngLike = None,
    baseline: bool = False,
    checks: Optional[Sequence[str]] = None,
    hopfield=None,
) -> VerificationReport:
    """Independently verify a flow artifact (or run the flow, then verify).

    Parameters
    ----------
    target:
        What to verify.  A finished :class:`AutoNcsResult`,
        :class:`~repro.physical.layout.PhysicalDesign` or
        :class:`~repro.mapping.netlist.MappingResult` is checked
        directly; a :class:`~repro.networks.connection_matrix.
        ConnectionMatrix` first runs the flow (AutoNCS by default,
        FullCro with ``baseline=True``) and verifies the result.
    config / seed / baseline:
        Flow settings, used only when ``target`` is a network.
    checks:
        Subset of check names to run (``"coverage"``, ``"hardware"``,
        ``"physical"``, ``"functional"``); default all.
    hopfield:
        Optional :class:`~repro.networks.hopfield.HopfieldNetwork`
        enabling the Hopfield-recall part of the functional check.

    Returns
    -------
    VerificationReport
        Per-check outcomes and violations; ``.passed`` summarizes, and
        ``.raise_if_failed()`` escalates to
        :class:`~repro.verify.VerificationError`.
    """
    from repro.verify.verifier import verify_flow, verify_mapping

    if isinstance(target, ConnectionMatrix):
        flow = AutoNCS(config)
        if baseline:
            target = flow.run_baseline(target, rng=seed)
        else:
            target = flow.run(target, rng=seed)
    if isinstance(target, AutoNcsResult):
        target = target.design
    if isinstance(target, PhysicalDesign):
        return verify_flow(target, hopfield=hopfield, checks=checks)
    if isinstance(target, MappingResult):
        return verify_mapping(target, hopfield=hopfield, checks=checks)
    raise TypeError(
        "verify() accepts a ConnectionMatrix, AutoNcsResult, PhysicalDesign "
        f"or MappingResult, got {type(target).__name__}"
    )
