"""One configuration object for the complete AutoNCS flow."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.clustering.isc import DEFAULT_CROSSBAR_SIZES, DEFAULT_SELECTION_QUANTILE
from repro.hardware.technology import DEFAULT_TECHNOLOGY, Technology
from repro.physical.cost import CostWeights
from repro.physical.placement.placer import PlacementConfig
from repro.physical.routing.router import RoutingConfig


@dataclass
class AutoNcsConfig:
    """Every knob of the AutoNCS pipeline in one place.

    Attributes
    ----------
    crossbar_sizes:
        The crossbar library ``S`` (paper: 16..64 step 4).
    utilization_threshold:
        ISC stop threshold ``t``; ``None`` (default) uses the FullCro
        baseline utilization of the input network, as the paper's
        experiments do (Sec. 4.2).
    selection_quantile:
        Partial-selection quantile (0.75 → realize the top 25 % CP).
    max_isc_iterations:
        Safety cap on ISC iterations.
    clustering:
        Which clustering driver runs: ``"isc"`` (flat, the paper's
        Algorithm 3), ``"hierarchical"`` (tiered Group-Scissor-style pass
        for very large networks), or ``"auto"`` (default) — flat ISC up to
        ``hierarchical_threshold`` neurons, tiered above it.
    tier_size:
        Maximum neurons per tier of the hierarchical pass.
    hierarchical_threshold:
        Network size above which ``clustering="auto"`` switches to the
        tiered pass.
    technology:
        Physical technology model (45 nm default).
    placement / routing:
        Physical-design configurations; ``None`` uses defaults.
    cost_weights:
        The α/β/δ of eq. (3); the paper sets all to 1.
    """

    crossbar_sizes: Tuple[int, ...] = DEFAULT_CROSSBAR_SIZES
    utilization_threshold: Optional[float] = None
    selection_quantile: float = DEFAULT_SELECTION_QUANTILE
    max_isc_iterations: int = 50
    clustering: str = "auto"
    tier_size: int = 1024
    hierarchical_threshold: int = 4096
    technology: Technology = field(default_factory=lambda: DEFAULT_TECHNOLOGY)
    placement: Optional[PlacementConfig] = None
    routing: Optional[RoutingConfig] = None
    cost_weights: CostWeights = field(default_factory=CostWeights)

    def __post_init__(self) -> None:
        sizes = tuple(sorted(int(s) for s in self.crossbar_sizes))
        if not sizes or sizes[0] < 1:
            raise ValueError(f"crossbar_sizes must be positive, got {self.crossbar_sizes}")
        self.crossbar_sizes = sizes
        if self.utilization_threshold is not None and self.utilization_threshold < 0:
            raise ValueError("utilization_threshold must be >= 0 or None")
        if not 0.0 < self.selection_quantile < 1.0:
            raise ValueError("selection_quantile must lie in (0, 1)")
        if self.max_isc_iterations < 1:
            raise ValueError("max_isc_iterations must be >= 1")
        if self.clustering not in ("auto", "isc", "hierarchical"):
            raise ValueError(
                "clustering must be 'auto', 'isc' or 'hierarchical', "
                f"got {self.clustering!r}"
            )
        if self.tier_size < 1:
            raise ValueError(f"tier_size must be >= 1, got {self.tier_size}")
        if self.hierarchical_threshold < 1:
            raise ValueError(
                f"hierarchical_threshold must be >= 1, got {self.hierarchical_threshold}"
            )

    def clustering_for(self, n: int) -> str:
        """Resolve the clustering driver for a network of ``n`` neurons."""
        if self.clustering != "auto":
            return self.clustering
        return "hierarchical" if n > self.hierarchical_threshold else "isc"

    def cache_key(self) -> str:
        """A stable content hash over every knob of this configuration.

        Two configs with equal fields (including nested technology,
        placement, routing and cost-weight dataclasses) share a key; any
        differing knob changes it.  Used with
        :meth:`~repro.networks.connection_matrix.ConnectionMatrix.digest`
        to address cached flow results in :mod:`repro.runtime.cache`.
        """
        from repro.utils.canonical import stable_hash

        return stable_hash(self)


def fast_config() -> AutoNcsConfig:
    """A reduced-effort configuration for tests and quick demos."""
    return AutoNcsConfig(
        max_isc_iterations=10,
        placement=PlacementConfig(max_lambda_stages=5, cg_iterations_per_stage=15),
        routing=RoutingConfig(max_relax_rounds=3),
    )
