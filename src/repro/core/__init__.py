"""The AutoNCS pipeline (paper Fig. 2): ISC → mapping → placement → routing.

* :mod:`~repro.core.config` — one configuration object for the whole flow.
* :mod:`~repro.core.autoncs` — the :class:`AutoNCS` driver plus the FullCro
  baseline flow.
* :mod:`~repro.core.report` — design-vs-baseline comparison reports
  (Table 1 rows).
"""

from repro.core.autoncs import AutoNCS, AutoNcsResult, StageError, implement_mapping
from repro.core.config import AutoNcsConfig
from repro.core.report import ComparisonReport, reduction_percent
from repro.core.summary import DesignSummary, summarize_design
from repro.utils.deprecation import warn_deprecated

__all__ = [
    "AutoNCS",
    "AutoNcsConfig",
    "AutoNcsResult",
    "ComparisonReport",
    "DesignSummary",
    "StageError",
    "compare",
    "implement_mapping",
    "map_network",
    "reduction_percent",
    "summarize_design",
    "verify",
]


def _deprecated_facade(name):
    """A shim that warns and delegates to the top-level facade.

    ``repro.core.map_network`` & friends predate the stable public API;
    new code should call ``repro.map_network`` / ``repro.compare`` /
    ``repro.verify`` (see :mod:`repro.api`).
    """

    def shim(*args, **kwargs):
        warn_deprecated(
            f"repro.core.{name}",
            f"repro.{name} (the stable public API, see repro.api)",
            stacklevel=2,
        )
        import repro.api

        return getattr(repro.api, name)(*args, **kwargs)

    shim.__name__ = name
    shim.__qualname__ = name
    shim.__doc__ = f"Deprecated alias of :func:`repro.api.{name}`."
    return shim


map_network = _deprecated_facade("map_network")
compare = _deprecated_facade("compare")
verify = _deprecated_facade("verify")
