"""The AutoNCS pipeline (paper Fig. 2): ISC → mapping → placement → routing.

* :mod:`~repro.core.config` — one configuration object for the whole flow.
* :mod:`~repro.core.autoncs` — the :class:`AutoNCS` driver plus the FullCro
  baseline flow.
* :mod:`~repro.core.report` — design-vs-baseline comparison reports
  (Table 1 rows).
"""

from repro.core.autoncs import AutoNCS, AutoNcsResult, StageError, implement_mapping
from repro.core.config import AutoNcsConfig
from repro.core.report import ComparisonReport, reduction_percent
from repro.core.summary import DesignSummary, summarize_design

__all__ = [
    "AutoNCS",
    "AutoNcsConfig",
    "AutoNcsResult",
    "ComparisonReport",
    "DesignSummary",
    "StageError",
    "implement_mapping",
    "reduction_percent",
    "summarize_design",
]
