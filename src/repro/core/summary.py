"""Full-design text reports: everything about one implemented design.

Aggregates the mapping statistics, the physical metrics (eq. 3), the delay
distribution, and the energy model into a single readable block — the
"datasheet" of an implemented NCS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.hardware.energy import EnergyParameters, EnergyReport, evaluate_energy
from repro.hardware.technology import DEFAULT_TECHNOLOGY, Technology
from repro.physical.cost import DelayStatistics, delay_statistics
from repro.physical.layout import PhysicalDesign


@dataclass
class DesignSummary:
    """All evaluated facets of one physical design."""

    design: PhysicalDesign
    delays: DelayStatistics
    energy: EnergyReport

    def format(self) -> str:
        """Render the summary as an aligned text block."""
        mapping = self.design.mapping
        cost = self.design.cost
        placement = self.design.placement
        routing = self.design.routing
        histogram = ", ".join(
            f"{s}x{s}:{c}" for s, c in mapping.crossbar_size_histogram().items()
        )
        lines = [
            f"design            : {self.design.name}",
            f"network           : {mapping.network.size} neurons, "
            f"{mapping.network.num_connections} connections "
            f"(sparsity {mapping.network.sparsity:.2%})",
            "-- mapping --",
            f"crossbars         : {mapping.num_crossbars} [{histogram}]",
            f"discrete synapses : {mapping.num_synapses}",
            f"avg utilization   : {mapping.average_utilization:.3f}",
            f"clustered ratio   : {mapping.clustered_connection_ratio:.1%}",
            f"avg fanin+fanout  : {mapping.fanin_fanout().average_total:.2f} wires/neuron",
            "-- physical (eq. 3) --",
            f"wirelength L      : {cost.wirelength_um:,.1f} um",
            f"area A            : {cost.area_um2:,.1f} um^2 "
            f"(bbox of {placement.num_cells} cells)",
            f"avg wire delay T  : {cost.average_delay_ns:.3f} ns",
            f"composite cost    : {cost.total:,.1f}",
            f"delay distribution: median {self.delays.median_ns:.3f}, "
            f"p95 {self.delays.p95_ns:.3f}, max {self.delays.max_ns:.3f} ns",
            f"routing           : {len(routing.wires)} wires, "
            f"{routing.relax_rounds} relax rounds, "
            f"{routing.overflow_wires} overflowed, "
            f"peak congestion {routing.grid.max_congestion():.2f}",
            "-- energy --",
            f"read energy       : {self.energy.read_energy_pj:,.2f} pJ/pass "
            f"(+ {self.energy.wire_energy_pj:.3f} pJ interconnect)",
            f"programming       : {self.energy.programming_energy_pj:,.1f} pJ "
            f"in {self.energy.programming_time_us:,.1f} us",
            f"devices           : {self.energy.utilized_devices} utilized, "
            f"{self.energy.idle_devices} idle",
        ]
        return "\n".join(lines)


def summarize_design(
    design: PhysicalDesign,
    technology: Technology = DEFAULT_TECHNOLOGY,
    energy_parameters: Optional[EnergyParameters] = None,
) -> DesignSummary:
    """Evaluate the delay distribution and energy model for a design."""
    netlist = design.mapping.netlist
    delays = delay_statistics(netlist, design.routing, technology)
    energy = evaluate_energy(
        design.mapping,
        routed_wirelength_um=design.cost.wirelength_um,
        technology=technology,
        parameters=energy_parameters if energy_parameters is not None else EnergyParameters(),
    )
    return DesignSummary(design=design, delays=delays, energy=energy)
