"""The AutoNCS driver (paper Fig. 2).

``AutoNCS.run`` executes the complete flow on a network:

1. ISC (MSC + GCP + partial selection) clusters the connections;
2. the clusters map to library crossbars, outliers to discrete synapses;
3. the customized analytical placement and maze routing implement the
   netlist;
4. eq. (3) evaluates the physical cost.

``AutoNCS.run_baseline`` runs the same physical flow on the brute-force
FullCro mapping, and ``AutoNCS.compare`` produces the Table 1 comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.clustering.isc import IscResult, iterative_spectral_clustering
from repro.core.config import AutoNcsConfig
from repro.core.report import ComparisonReport
from repro.hardware.library import CrossbarLibrary
from repro.mapping.autoncs_mapping import autoncs_mapping
from repro.mapping.fullcro import fullcro_mapping, fullcro_utilization
from repro.mapping.netlist import MappingResult
from repro.networks.connection_matrix import ConnectionMatrix
from repro.physical.cost import evaluate_cost
from repro.physical.layout import PhysicalDesign
from repro.physical.placement.placer import place
from repro.physical.routing.router import route
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class AutoNcsResult:
    """Everything the AutoNCS flow produced for one network."""

    isc: IscResult
    mapping: MappingResult
    design: PhysicalDesign
    metadata: dict = field(default_factory=dict)

    def summary(self) -> dict:
        """Scalar summary: mapping stats plus physical cost."""
        summary = self.mapping.summary()
        summary.update(self.design.summary())
        summary["isc_iterations"] = self.isc.iterations
        summary["outlier_ratio"] = self.isc.outlier_ratio
        return summary


def implement_mapping(
    mapping: MappingResult,
    config: AutoNcsConfig,
    rng: RngLike = None,
) -> PhysicalDesign:
    """Run placement, routing and cost evaluation on a mapped design."""
    rng = ensure_rng(rng)
    placement = place(
        mapping.netlist, technology=config.technology, config=config.placement, rng=rng
    )
    routing = route(
        mapping.netlist, placement, technology=config.technology, config=config.routing
    )
    cost = evaluate_cost(
        mapping.netlist,
        placement,
        routing,
        technology=config.technology,
        weights=config.cost_weights,
    )
    return PhysicalDesign(mapping=mapping, placement=placement, routing=routing, cost=cost)


class AutoNCS:
    """The end-to-end EDA flow for hybrid memristor NCS designs.

    Example
    -------
    >>> from repro.networks import random_sparse_network
    >>> from repro.core import AutoNCS
    >>> net = random_sparse_network(80, 0.06, rng=7)
    >>> result = AutoNCS().run(net, rng=7)
    >>> result.isc.outlier_ratio <= 1.0
    True
    """

    def __init__(self, config: Optional[AutoNcsConfig] = None) -> None:
        self.config = config if config is not None else AutoNcsConfig()
        self.library = CrossbarLibrary(
            sizes=self.config.crossbar_sizes, technology=self.config.technology
        )

    # ------------------------------------------------------------------
    def cluster(self, network: ConnectionMatrix, rng: RngLike = None) -> IscResult:
        """Run ISC with the configured library and threshold."""
        threshold = self.config.utilization_threshold
        if threshold is None:
            threshold = fullcro_utilization(network, self.library.max_size)
        return iterative_spectral_clustering(
            network,
            sizes=self.config.crossbar_sizes,
            utilization_threshold=threshold,
            selection_quantile=self.config.selection_quantile,
            max_iterations=self.config.max_isc_iterations,
            rng=rng,
        )

    def run(self, network: ConnectionMatrix, rng: RngLike = None) -> AutoNcsResult:
        """Execute the full AutoNCS flow on ``network``."""
        rng = ensure_rng(rng)
        isc = self.cluster(network, rng=rng)
        mapping = autoncs_mapping(isc, library=self.library)
        design = implement_mapping(mapping, self.config, rng=rng)
        return AutoNcsResult(isc=isc, mapping=mapping, design=design)

    def run_baseline(self, network: ConnectionMatrix, rng: RngLike = None) -> PhysicalDesign:
        """Execute the physical flow on the FullCro brute-force mapping."""
        rng = ensure_rng(rng)
        mapping = fullcro_mapping(network, library=self.library)
        return implement_mapping(mapping, self.config, rng=rng)

    def compare(
        self,
        network: ConnectionMatrix,
        label: Optional[str] = None,
        rng: RngLike = None,
    ) -> ComparisonReport:
        """Run both flows and report the Table 1 comparison."""
        rng = ensure_rng(rng)
        result = self.run(network, rng=rng)
        baseline = self.run_baseline(network, rng=rng)
        return ComparisonReport(
            label=label if label is not None else network.name,
            autoncs=result.design,
            fullcro=baseline,
            metadata={"isc_iterations": result.isc.iterations,
                      "outlier_ratio": result.isc.outlier_ratio},
        )
