"""The AutoNCS driver (paper Fig. 2), hardened for production use.

``AutoNCS.run`` executes the complete flow on a network:

1. ISC (MSC + GCP + partial selection) clusters the connections;
2. the clusters map to library crossbars, outliers to discrete synapses;
3. the customized analytical placement and maze routing implement the
   netlist;
4. eq. (3) evaluates the physical cost.

Every stage is wrapped: an unexpected failure surfaces as a
:class:`StageError` carrying the stage name and whatever partial results
exist, the analytical placer falls back to the annealing placer when it
diverges (non-finite objective or coordinates), routing retries once with
relaxed capacity, and per-stage wall times plus any fallbacks that fired
are recorded in ``AutoNcsResult.metadata``.

``AutoNCS.run_baseline`` runs the same physical flow on the brute-force
FullCro mapping, and ``AutoNCS.compare`` produces the Table 1 comparison;
the two flows draw from independent child generators so each is
reproducible in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.clustering.hierarchical import cluster_hierarchical
from repro.clustering.isc import IscResult, iterative_spectral_clustering
from repro.core.config import AutoNcsConfig
from repro.core.report import ComparisonReport
from repro.hardware.library import CrossbarLibrary
from repro.mapping.autoncs_mapping import autoncs_mapping
from repro.mapping.fullcro import fullcro_mapping, fullcro_utilization
from repro.mapping.netlist import MappingResult
from repro.networks.connection_matrix import ConnectionMatrix
from repro.observability import get_recorder
from repro.physical.cost import evaluate_cost
from repro.physical.layout import PhysicalDesign, Placement
from repro.physical.placement.annealing import AnnealingConfig, anneal_place
from repro.physical.placement.placer import place
from repro.physical.routing.router import RoutingConfig, route
from repro.runtime.chaos import chaos_point
from repro.utils.rng import RngLike, ensure_rng, spawn_rng
from repro.utils.timers import Timer


class StageError(RuntimeError):
    """A pipeline stage failed.

    Attributes
    ----------
    stage:
        The stage name: ``"isc"``, ``"mapping"``, ``"placement"``,
        ``"routing"`` or ``"cost"``.
    partial:
        Whatever upstream results were already computed when the stage
        failed (e.g. the ISC result when mapping blows up) — enough to
        debug the failure without re-running the flow.
    """

    def __init__(self, stage: str, message: str, partial: Optional[dict] = None) -> None:
        super().__init__(f"AutoNCS stage '{stage}' failed: {message}")
        self.stage = stage
        self.partial = dict(partial) if partial else {}


#: Reduced-effort annealing schedule for the placement fallback path: the
#: fallback must terminate quickly even on designs that broke the
#: analytical placer.
FALLBACK_ANNEALING = AnnealingConfig(moves_per_temperature=150, temperatures=25)


def _require_connections(network: ConnectionMatrix, stage: str) -> None:
    """Fail fast on empty/all-zero inputs instead of deep inside scipy."""
    if not isinstance(network, ConnectionMatrix):
        raise TypeError(
            f"stage '{stage}': network must be a ConnectionMatrix, "
            f"got {type(network).__name__}"
        )
    if network.num_connections == 0:
        raise ValueError(
            f"stage '{stage}': network {network.name!r} is empty (all-zero "
            "connection matrix) — there is nothing to cluster or map"
        )


def _fresh_diagnostics() -> dict:
    return {"stage_seconds": {}, "fallbacks": []}


def _placement_divergence(placement: Placement) -> Optional[str]:
    """Reason string when a placement is unusable, else ``None``."""
    if not (np.all(np.isfinite(placement.x)) and np.all(np.isfinite(placement.y))):
        return "non-finite cell coordinates"
    for stage in placement.metadata.get("stages", []):
        objective = stage.get("objective", 0.0)
        if not np.isfinite(objective):
            return f"non-finite objective at lambda stage {stage.get('stage')}"
    return None


def _place_with_fallback(
    mapping: MappingResult,
    config: AutoNcsConfig,
    rng: np.random.Generator,
    diagnostics: dict,
) -> Placement:
    """Analytical placement, falling back to annealing on divergence."""
    placement: Optional[Placement] = None
    reason: Optional[str] = None
    with Timer() as timer:
        try:
            chaos_point("stage.placement")
            placement = place(
                mapping.netlist,
                technology=config.technology,
                config=config.placement,
                rng=rng,
            )
            reason = _placement_divergence(placement)
        except Exception as exc:  # noqa: BLE001 - the fallback handles anything
            reason = f"analytical placer raised {type(exc).__name__}: {exc}"
    diagnostics["stage_seconds"]["placement"] = timer.elapsed
    if reason is None:
        return placement
    diagnostics["fallbacks"].append(
        {"stage": "placement", "action": "annealing_placer", "reason": reason}
    )
    with Timer() as timer:
        try:
            placement = anneal_place(
                mapping.netlist,
                technology=config.technology,
                config=FALLBACK_ANNEALING,
                rng=rng,
            )
        except Exception as exc:
            raise StageError(
                "placement",
                f"analytical placer diverged ({reason}) and the annealing "
                f"fallback raised {type(exc).__name__}: {exc}",
                partial={"mapping": mapping},
            ) from exc
    diagnostics["stage_seconds"]["placement_fallback"] = timer.elapsed
    fallback_reason = _placement_divergence(placement)
    if fallback_reason is not None:
        raise StageError(
            "placement",
            f"annealing fallback also diverged: {fallback_reason}",
            partial={"mapping": mapping, "placement": placement},
        )
    return placement


def _relaxed_routing_config(base: RoutingConfig, config: AutoNcsConfig) -> RoutingConfig:
    """A more permissive routing configuration for the retry pass."""
    capacity = (
        base.capacity_per_bin
        if base.capacity_per_bin is not None
        else config.technology.routing_capacity_per_bin
    )
    return RoutingConfig(
        bin_um=base.bin_um,
        capacity_per_bin=max(1, capacity) * 2,
        window_margin_bins=base.window_margin_bins + 8,
        congestion_weight=base.congestion_weight,
        max_relax_rounds=base.max_relax_rounds + 4,
        relax_increment=base.relax_increment,
        overflow_penalty=base.overflow_penalty,
        region_margin_bins=base.region_margin_bins,
        max_grid_bins=base.max_grid_bins,
        algorithm=base.algorithm,
        max_ripup_iterations=base.max_ripup_iterations + 8,
        present_weight=base.present_weight,
        present_growth=base.present_growth,
        history_increment=base.history_increment,
    )


def _route_with_retry(
    mapping: MappingResult,
    placement: Placement,
    config: AutoNcsConfig,
    diagnostics: dict,
):
    """Global routing, retried once with relaxed capacity on failure."""
    base = config.routing if config.routing is not None else RoutingConfig()
    with Timer() as timer:
        try:
            chaos_point("stage.routing")
            routing = route(
                mapping.netlist, placement, technology=config.technology, config=base
            )
        except Exception as exc:
            routing = None
            reason = f"router raised {type(exc).__name__}: {exc}"
    diagnostics["stage_seconds"]["routing"] = timer.elapsed
    if routing is not None:
        return routing
    diagnostics["fallbacks"].append(
        {"stage": "routing", "action": "relaxed_capacity_retry", "reason": reason}
    )
    relaxed = _relaxed_routing_config(base, config)
    with Timer() as timer:
        try:
            routing = route(
                mapping.netlist, placement, technology=config.technology, config=relaxed
            )
        except Exception as exc:
            raise StageError(
                "routing",
                f"routing failed even with relaxed capacity ({reason}; retry "
                f"raised {type(exc).__name__}: {exc})",
                partial={"mapping": mapping, "placement": placement},
            ) from exc
    diagnostics["stage_seconds"]["routing_retry"] = timer.elapsed
    return routing


def _verify_design(design: PhysicalDesign, diagnostics: dict) -> None:
    """Run the independent verifier on a finished design (``verify=True``).

    Records the report summary and wall time in ``diagnostics`` before
    raising on failure, so a caught :class:`~repro.verify.VerificationError`
    still leaves the diagnostics trail complete.
    """
    # Imported here: repro.verify is the *consumer* of the flow's artifacts
    # and should stay importable without pulling the whole flow in reverse.
    from repro.verify import verify_flow

    with Timer() as timer:
        report = verify_flow(design)
    diagnostics.setdefault("stage_seconds", {})["verify"] = timer.elapsed
    diagnostics["verification"] = report.summary()
    report.raise_if_failed()


@dataclass
class AutoNcsResult:
    """Everything the AutoNCS flow produced for one network.

    ``metadata`` carries the hardening diagnostics: ``stage_seconds`` maps
    each executed stage to its wall time and ``fallbacks`` lists every
    fallback that fired (placement annealing, routing relaxation).
    """

    isc: IscResult
    mapping: MappingResult
    design: PhysicalDesign
    metadata: dict = field(default_factory=dict)

    @property
    def stage_seconds(self) -> dict:
        """Wall time per executed stage (isc, mapping, placement, …)."""
        return dict(self.metadata.get("stage_seconds", {}))

    def summary(self) -> dict:
        """Scalar summary: mapping stats plus physical cost."""
        summary = self.mapping.summary()
        summary.update(self.design.summary())
        summary["isc_iterations"] = self.isc.iterations
        summary["outlier_ratio"] = self.isc.outlier_ratio
        return summary

    def to_dict(self) -> dict:
        """JSON-compatible dict (the repo-wide result-object surface)."""
        return {
            **self.summary(),
            "stage_seconds": self.stage_seconds,
            "fallbacks": list(self.metadata.get("fallbacks", [])),
        }

    def format_table(self) -> str:
        """Aligned plain-text summary (the repo-wide result-object surface)."""
        data = self.to_dict()
        label = data.pop("design", "design")
        fallbacks = data.pop("fallbacks")
        stage_seconds = data.pop("stage_seconds")
        width = max(len(key) for key in data)
        lines = [f"AutoNCS result — {label}"]
        for key, value in data.items():
            if isinstance(value, float):
                rendered = f"{value:.4f}"
            else:
                rendered = str(value)
            lines.append(f"  {key:<{width}}  {rendered}")
        if stage_seconds:
            lines.append("  stage seconds:")
            for stage, seconds in stage_seconds.items():
                lines.append(f"    {stage:<{width}}  {seconds:.3f}")
        if fallbacks:
            lines.append(f"  fallbacks fired: {len(fallbacks)}")
        return "\n".join(lines)


def implement_mapping(
    mapping: MappingResult,
    config: AutoNcsConfig,
    rng: RngLike = None,
    diagnostics: Optional[dict] = None,
) -> PhysicalDesign:
    """Run placement, routing and cost evaluation on a mapped design.

    ``diagnostics`` (optional) is filled with per-stage wall times and any
    fallbacks that fired; the same information lands in the returned
    design's ``metadata["diagnostics"]``.
    """
    rng = ensure_rng(rng)
    if diagnostics is None:
        diagnostics = _fresh_diagnostics()
    diagnostics.setdefault("stage_seconds", {})
    diagnostics.setdefault("fallbacks", [])
    recorder = get_recorder()
    with recorder.span("flow.place", cells=mapping.netlist.num_cells):
        placement = _place_with_fallback(mapping, config, rng, diagnostics)
    with recorder.span("flow.route", wires=len(mapping.netlist.wires)):
        routing = _route_with_retry(mapping, placement, config, diagnostics)
    with recorder.span("flow.evaluate"):
        with Timer() as timer:
            try:
                cost = evaluate_cost(
                    mapping.netlist,
                    placement,
                    routing,
                    technology=config.technology,
                    weights=config.cost_weights,
                )
            except Exception as exc:
                raise StageError(
                    "cost",
                    f"{type(exc).__name__}: {exc}",
                    partial={
                        "mapping": mapping,
                        "placement": placement,
                        "routing": routing,
                    },
                ) from exc
        diagnostics["stage_seconds"]["cost"] = timer.elapsed
    return PhysicalDesign(
        mapping=mapping,
        placement=placement,
        routing=routing,
        cost=cost,
        metadata={"diagnostics": diagnostics},
    )


class AutoNCS:
    """The end-to-end EDA flow for hybrid memristor NCS designs.

    Example
    -------
    >>> from repro.networks import random_sparse_network
    >>> from repro.core import AutoNCS
    >>> net = random_sparse_network(80, 0.06, rng=7)
    >>> result = AutoNCS().run(net, rng=7)
    >>> result.isc.outlier_ratio <= 1.0
    True
    """

    def __init__(self, config: Optional[AutoNcsConfig] = None) -> None:
        self.config = config if config is not None else AutoNcsConfig()
        self.library = CrossbarLibrary(
            sizes=self.config.crossbar_sizes, technology=self.config.technology
        )

    # ------------------------------------------------------------------
    def cluster(self, network: ConnectionMatrix, rng: RngLike = None) -> IscResult:
        """Run the configured clustering driver (flat ISC or tiered).

        ``config.clustering`` picks the driver; the default (``"auto"``)
        runs the paper's flat ISC up to ``config.hierarchical_threshold``
        neurons — so all paper-scale results are untouched — and the tiered
        :func:`~repro.clustering.hierarchical.cluster_hierarchical` pass
        above it.
        """
        _require_connections(network, stage="isc")
        threshold = self.config.utilization_threshold
        if threshold is None:
            threshold = fullcro_utilization(network, self.library.max_size)
        if self.config.clustering_for(network.size) == "hierarchical":
            return cluster_hierarchical(
                network,
                sizes=self.config.crossbar_sizes,
                utilization_threshold=threshold,
                selection_quantile=self.config.selection_quantile,
                max_iterations=self.config.max_isc_iterations,
                tier_size=self.config.tier_size,
                rng=rng,
            )
        return iterative_spectral_clustering(
            network,
            sizes=self.config.crossbar_sizes,
            utilization_threshold=threshold,
            selection_quantile=self.config.selection_quantile,
            max_iterations=self.config.max_isc_iterations,
            rng=rng,
        )

    def run(
        self,
        network: ConnectionMatrix,
        rng: RngLike = None,
        verify: bool = False,
    ) -> AutoNcsResult:
        """Execute the full AutoNCS flow on ``network``.

        With ``verify=True`` the independent checker of :mod:`repro.verify`
        re-derives every flow invariant (coverage, hardware legality,
        physical legality, functional equivalence) from the artifacts; the
        report summary lands in ``result.metadata["verification"]`` and a
        failing report raises :class:`~repro.verify.VerificationError`.

        Raises
        ------
        ValueError
            When the network is empty/all-zero (fails fast, naming the
            stage, instead of crashing inside the spectral solver).
        StageError
            When a stage fails after its fallbacks are exhausted.
        repro.verify.VerificationError
            When ``verify=True`` and any check finds a violation.
        """
        rng = ensure_rng(rng)
        _require_connections(network, stage="isc")
        diagnostics = _fresh_diagnostics()
        recorder = get_recorder()
        with recorder.span(
            "flow.run", network=network.name, neurons=network.size
        ) as flow_span:
            with recorder.span("flow.cluster"):
                with Timer() as timer:
                    try:
                        chaos_point("stage.isc")
                        isc = self.cluster(network, rng=rng)
                    except Exception as exc:
                        raise StageError("isc", f"{type(exc).__name__}: {exc}") from exc
                diagnostics["stage_seconds"]["isc"] = timer.elapsed
            with recorder.span("flow.map"):
                with Timer() as timer:
                    try:
                        chaos_point("stage.mapping")
                        mapping = autoncs_mapping(isc, library=self.library)
                    except Exception as exc:
                        raise StageError(
                            "mapping", f"{type(exc).__name__}: {exc}", partial={"isc": isc}
                        ) from exc
                diagnostics["stage_seconds"]["mapping"] = timer.elapsed
            design = implement_mapping(
                mapping, self.config, rng=rng, diagnostics=diagnostics
            )
            result = AutoNcsResult(
                isc=isc, mapping=mapping, design=design, metadata=diagnostics
            )
            if verify:
                with recorder.span("flow.verify"):
                    _verify_design(design, diagnostics)
            flow_span.annotate(
                isc_iterations=isc.iterations,
                outlier_ratio=isc.outlier_ratio,
                fallbacks=len(diagnostics.get("fallbacks", [])),
            )
        recorder.count("flow.runs")
        return result

    def run_baseline(
        self,
        network: ConnectionMatrix,
        rng: RngLike = None,
        verify: bool = False,
    ) -> PhysicalDesign:
        """Execute the physical flow on the FullCro brute-force mapping.

        ``verify=True`` behaves as in :meth:`run`; the report summary lands
        in ``design.metadata["diagnostics"]["verification"]``.
        """
        rng = ensure_rng(rng)
        recorder = get_recorder()
        with recorder.span("flow.run_baseline", network=network.name):
            with recorder.span("flow.map"):
                try:
                    mapping = fullcro_mapping(network, library=self.library)
                except Exception as exc:
                    raise StageError("mapping", f"{type(exc).__name__}: {exc}") from exc
            design = implement_mapping(mapping, self.config, rng=rng)
            if verify:
                with recorder.span("flow.verify"):
                    _verify_design(design, design.metadata.get("diagnostics", {}))
        recorder.count("flow.baseline_runs")
        return design

    def compare(
        self,
        network: ConnectionMatrix,
        label: Optional[str] = None,
        rng: RngLike = None,
    ) -> ComparisonReport:
        """Run both flows and report the Table 1 comparison.

        Each flow draws from its own child generator (spawned from ``rng``),
        so the FullCro baseline's placement no longer depends on how many
        draws the AutoNCS flow happened to consume — either side can be
        reproduced in isolation from the same parent seed.
        """
        autoncs_rng, fullcro_rng = spawn_rng(rng, 2)
        with get_recorder().span("flow.compare", network=network.name):
            result = self.run(network, rng=autoncs_rng)
            baseline = self.run_baseline(network, rng=fullcro_rng)
        return ComparisonReport(
            label=label if label is not None else network.name,
            autoncs=result.design,
            fullcro=baseline,
            metadata={"isc_iterations": result.isc.iterations,
                      "outlier_ratio": result.isc.outlier_ratio},
        )
