"""Comparison reports: AutoNCS vs FullCro (the Table 1 presentation)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.physical.layout import PhysicalDesign
from repro.utils.timers import format_stage_seconds


def reduction_percent(ours: float, baseline: float) -> float:
    """Paper-style reduction: ``(baseline - ours) / baseline · 100`` (%).

    Returns 0 when the baseline is zero (no meaningful reduction).
    """
    if baseline == 0.0:
        return 0.0
    return (baseline - ours) / baseline * 100.0


@dataclass
class ComparisonReport:
    """One testbench's AutoNCS-vs-FullCro physical comparison."""

    label: str
    autoncs: PhysicalDesign
    fullcro: PhysicalDesign
    metadata: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def wirelength_reduction(self) -> float:
        """Total-wirelength reduction (%)."""
        return reduction_percent(
            self.autoncs.cost.wirelength_um, self.fullcro.cost.wirelength_um
        )

    @property
    def area_reduction(self) -> float:
        """Placement-area reduction (%)."""
        return reduction_percent(self.autoncs.cost.area_um2, self.fullcro.cost.area_um2)

    @property
    def delay_reduction(self) -> float:
        """Average-wire-delay reduction (%)."""
        return reduction_percent(
            self.autoncs.cost.average_delay_ns, self.fullcro.cost.average_delay_ns
        )

    def rows(self) -> List[Dict[str, object]]:
        """Table 1 rows: AutoNCS, FullCro, and the reduction line."""
        return [
            {
                "testbench": self.label,
                "design": "AutoNCS",
                "wirelength_um": self.autoncs.cost.wirelength_um,
                "area_um2": self.autoncs.cost.area_um2,
                "delay_ns": self.autoncs.cost.average_delay_ns,
            },
            {
                "testbench": self.label,
                "design": "FullCro",
                "wirelength_um": self.fullcro.cost.wirelength_um,
                "area_um2": self.fullcro.cost.area_um2,
                "delay_ns": self.fullcro.cost.average_delay_ns,
            },
            {
                "testbench": self.label,
                "design": "Reduc. (%)",
                "wirelength_um": self.wirelength_reduction,
                "area_um2": self.area_reduction,
                "delay_ns": self.delay_reduction,
            },
        ]

    def stage_seconds(self) -> Dict[str, Dict[str, float]]:
        """Per-flow stage wall times, as recorded by the flow diagnostics.

        Keys are the design names ("AutoNCS", "FullCro"); values map stage
        names to seconds.  Empty for designs that carry no diagnostics
        (e.g. hand-built reports in unit tests).
        """
        times: Dict[str, Dict[str, float]] = {}
        for name, design in (("AutoNCS", self.autoncs), ("FullCro", self.fullcro)):
            diagnostics = design.metadata.get("diagnostics", {})
            stage_seconds = diagnostics.get("stage_seconds", {})
            if stage_seconds:
                times[name] = dict(stage_seconds)
        return times

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible dict (the repo-wide result-object surface)."""
        return {
            "label": self.label,
            "rows": self.rows(),
            "wirelength_reduction": self.wirelength_reduction,
            "area_reduction": self.area_reduction,
            "delay_reduction": self.delay_reduction,
            "stage_seconds": self.stage_seconds(),
            "metadata": dict(self.metadata),
        }

    def format_table(self, show_timings: bool = True) -> str:
        """Human-readable Table 1 block for this testbench.

        With ``show_timings`` (the default), per-stage wall times from
        the flow diagnostics are appended, so the comparison also shows
        *where the time went* (ISC, mapping, placement, routing, cost).
        """
        lines = [
            f"Testbench {self.label}",
            f"{'design':<12}{'wirelength (um)':>18}{'area (um2)':>16}{'delay (ns)':>12}",
        ]
        for row in self.rows():
            if row["design"] == "Reduc. (%)":
                lines.append(
                    f"{row['design']:<12}{row['wirelength_um']:>17.2f}%"
                    f"{row['area_um2']:>15.2f}%{row['delay_ns']:>11.2f}%"
                )
            else:
                lines.append(
                    f"{row['design']:<12}{row['wirelength_um']:>18,.1f}"
                    f"{row['area_um2']:>16,.2f}{row['delay_ns']:>12.2f}"
                )
        if show_timings:
            for name, stage_seconds in self.stage_seconds().items():
                lines.append(f"stage seconds — {name}:")
                lines.append(format_stage_seconds(stage_seconds))
        return "\n".join(lines)


def average_reductions(reports: List[ComparisonReport]) -> Dict[str, float]:
    """Mean reductions over several testbenches (the paper's headline)."""
    if not reports:
        return {"wirelength": 0.0, "area": 0.0, "delay": 0.0}
    return {
        "wirelength": sum(r.wirelength_reduction for r in reports) / len(reports),
        "area": sum(r.area_reduction for r in reports) / len(reports),
        "delay": sum(r.delay_reduction for r in reports) / len(reports),
    }
