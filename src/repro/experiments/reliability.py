"""The reliability experiment: yield vs defect rate on a paper testbench.

This is the Monte-Carlo counterpart of the Table 1 cost evaluation: instead
of asking "how cheap is the mapped design?", it asks "how many manufactured
chips of it still work, and how much does the fault-aware repair pass
recover?".  The experiment maps a (scaled) testbench with ISC, sweeps
defect rates, and evaluates functional yield before and after repair
through :func:`repro.reliability.evaluate_yield`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.clustering.isc import iterative_spectral_clustering
from repro.experiments.testbenches import build_testbench, scaled_testbench
from repro.mapping.autoncs_mapping import autoncs_mapping
from repro.mapping.fullcro import fullcro_utilization
from repro.reliability.yield_eval import YieldCurve, evaluate_yield
from repro.utils.rng import RngLike, spawn_rng

#: Default stuck-off cell-defect sweep (fractions of cells lost per chip).
#: Sparse Hopfield nets degrade gracefully, so the sweep reaches deep into
#: the defect range before raw (unrepaired) chips start failing.
DEFAULT_DEFECT_RATES: Tuple[float, ...] = (0.0, 0.2, 0.4)


@dataclass
class ReliabilityResult:
    """Outcome of one reliability experiment run."""

    label: str
    dimension: int
    num_crossbars: int
    num_synapses: int
    curve: YieldCurve
    metadata: dict = field(default_factory=dict)

    def format(self) -> str:
        """Printable experiment report."""
        lines = [
            f"reliability experiment — {self.label} "
            f"({self.num_crossbars} crossbars, {self.num_synapses} synapses)",
            self.curve.format_table(),
        ]
        return "\n".join(lines)


def run_reliability_experiment(
    testbench: int = 1,
    dimension: Optional[int] = None,
    defect_rates: Sequence[float] = DEFAULT_DEFECT_RATES,
    samples: int = 6,
    spare_instances: int = 2,
    recognition_threshold: float = 0.9,
    rng: RngLike = None,
    n_jobs: int = 1,
    events=None,
    resilience=None,
) -> ReliabilityResult:
    """Map a (scaled) testbench and Monte-Carlo its yield across defect rates.

    The defect-independent part — building the testbench, clustering it
    and mapping it onto the crossbar library — runs exactly once; only
    the Monte-Carlo trials (defect sampling + recall replay) repeat, and
    with ``n_jobs > 1`` they fan out over worker processes as
    :mod:`repro.runtime` jobs with bitwise-identical results.

    Parameters
    ----------
    testbench:
        Paper testbench index (1–3).
    dimension:
        Optional smaller network size N (the paper sparsity is kept); the
        full-size testbenches make the Monte-Carlo loop expensive.
    samples:
        Sampled chips (defect maps) per defect rate.
    spare_instances:
        Spare physical crossbars available to the repair pass.
    n_jobs:
        Worker processes for the Monte-Carlo trials.
    events:
        Optional :class:`repro.runtime.EventLog` for per-trial events.
    resilience:
        Optional :class:`~repro.runtime.resilience.ResilienceConfig`
        adding per-trial retries/timeouts (forwarded to
        :func:`~repro.reliability.evaluate_yield`).
    """
    build_rng, yield_rng = spawn_rng(rng, 2)
    bench = scaled_testbench(testbench, dimension)
    instance = build_testbench(bench, rng=build_rng)
    network = instance.network
    threshold = fullcro_utilization(network, 64)
    isc = iterative_spectral_clustering(
        network, utilization_threshold=threshold, rng=build_rng
    )
    mapping = autoncs_mapping(isc)
    curve = evaluate_yield(
        instance.hopfield,
        mapping,
        defect_rates=defect_rates,
        samples=samples,
        recognition_threshold=recognition_threshold,
        spare_instances=spare_instances,
        rng=yield_rng,
        n_jobs=n_jobs,
        events=events,
        resilience=resilience,
    )
    return ReliabilityResult(
        label=bench.label,
        dimension=bench.dimension,
        num_crossbars=mapping.num_crossbars,
        num_synapses=mapping.num_synapses,
        curve=curve,
        metadata={
            "outlier_ratio": isc.outlier_ratio,
            "utilization_threshold": threshold,
            "samples": samples,
            "spare_instances": spare_instances,
            "n_jobs": n_jobs,
        },
    )
