"""The paper's three testbenches (Sec. 4.1).

"Three testbenches of random quick response code patterns are used in our
experiments. ... The patterns in each testbench are stored in a sparse
Hopfield network with a size of N.  The (M, N) factors of the three
testbenches 1-3 are (15, 300), (20, 400) and (30, 500) ... corresponding
sparsities ... 94.47 %, 93.59 % and 94.39 % ... All testbenches offer a
recognition rate above 90 %."

We regenerate the same (M, N) pairs with QR-like synthetic patterns,
prune the Hebbian weights to the *exact* target sparsities, and expose the
binary connection topology that AutoNCS consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.networks.connection_matrix import ConnectionMatrix
from repro.networks.hopfield import HopfieldNetwork, recognition_rate
from repro.networks.patterns import qr_like_patterns
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class Testbench:
    """Static description of one paper testbench."""

    __test__ = False  # not a pytest test class despite the name

    index: int
    num_patterns: int  # M
    dimension: int  # N
    target_sparsity: float

    @property
    def label(self) -> str:
        """Short display label, e.g. ``"TB1 (M=15, N=300)"``."""
        return f"TB{self.index} (M={self.num_patterns}, N={self.dimension})"


#: The paper's (M, N, sparsity) triplets (Sec. 4.1).
TESTBENCHES: Tuple[Testbench, ...] = (
    Testbench(index=1, num_patterns=15, dimension=300, target_sparsity=0.9447),
    Testbench(index=2, num_patterns=20, dimension=400, target_sparsity=0.9359),
    Testbench(index=3, num_patterns=30, dimension=500, target_sparsity=0.9439),
)

_BY_INDEX: Dict[int, Testbench] = {tb.index: tb for tb in TESTBENCHES}


@dataclass
class TestbenchInstance:
    """A concretely generated testbench: patterns, Hopfield net, topology."""

    testbench: Testbench
    hopfield: HopfieldNetwork
    network: ConnectionMatrix

    def recognition_rate(self, rng: RngLike = None, trials_per_pattern: int = 3) -> float:
        """Recall quality of the sparse network (paper requires > 90 %).

        Probes corrupt 5 % of the pixels; a recall that matches the stored
        pattern on ≥ 90 % of the pixels counts as recognized.
        """
        return recognition_rate(
            self.hopfield,
            flip_fraction=0.05,
            trials_per_pattern=trials_per_pattern,
            match_threshold=0.9,
            rng=rng,
        )


def get_testbench(index: int) -> Testbench:
    """Look up a testbench description by paper index (1, 2 or 3)."""
    try:
        return _BY_INDEX[int(index)]
    except KeyError:
        raise ValueError(f"testbench index must be one of {sorted(_BY_INDEX)}, got {index}") from None


def scaled_testbench(index: int, dimension: Optional[int] = None) -> Testbench:
    """A testbench with the paper's sparsity but a different dimension ``N``.

    The pattern count scales proportionally (at least 2), keeping the
    storage load per neuron comparable.  Small-N variants keep reliability
    Monte-Carlo runs and fidelity tests fast while exercising the same
    topology family as the full-size testbenches.
    """
    base = get_testbench(index)
    if dimension is None or int(dimension) == base.dimension:
        return base
    dimension = int(dimension)
    if dimension < 8:
        raise ValueError(f"dimension must be >= 8, got {dimension}")
    patterns = max(2, round(base.num_patterns * dimension / base.dimension))
    return Testbench(
        index=base.index,
        num_patterns=patterns,
        dimension=dimension,
        target_sparsity=base.target_sparsity,
    )


def build_testbench(testbench, rng: RngLike = None) -> TestbenchInstance:
    """Generate a testbench instance (patterns → Hebbian → exact sparsify).

    ``testbench`` may be a :class:`Testbench` or a paper index (1–3).

    The neuron order is randomly permuted: hardware neuron indices carry no
    meaning, and the paper's Fig. 3(a) shows exactly such a scattered
    connection matrix.  The permutation keeps the brute-force FullCro
    baseline honest — its consecutive-index crossbar groups must not get
    free alignment with the pattern's raster order.
    """
    if not isinstance(testbench, Testbench):
        testbench = get_testbench(testbench)
    rng = ensure_rng(rng)
    patterns = qr_like_patterns(testbench.num_patterns, testbench.dimension, rng=rng)
    permutation = rng.permutation(testbench.dimension)
    patterns = patterns[:, permutation]
    dense = HopfieldNetwork.train(patterns)
    # Sparsify to the paper's exact sparsity, then retrain the surviving
    # weights so the patterns stay stable (the topology is unchanged; see
    # HopfieldNetwork.stabilize) — this is what keeps the recognition rate
    # above the paper's 90 % bar at ~94 % sparsity.
    sparse = dense.sparsify(testbench.target_sparsity).stabilize()
    network = sparse.connection_matrix(name=f"tb{testbench.index}")
    return TestbenchInstance(testbench=testbench, hopfield=sparse, network=network)


def build_testbench_network(testbench, rng: RngLike = None) -> ConnectionMatrix:
    """Convenience: only the binary connection topology of a testbench."""
    return build_testbench(testbench, rng=rng).network
