"""Ablation studies on AutoNCS design choices (extension beyond the paper).

The paper motivates three design decisions that we ablate here:

1. **Partial selection** (Sec. 3.4): realize only the top-25 %-CP clusters
   per iteration vs. realizing every cluster each iteration.
2. **Crossbar preference definition** (Sec. 3.1): the paper's
   ``CP = m²/s³`` vs. utilization-only (``m/s²``) and count-only (``m``).
3. **Crossbar library range** (Sec. 4.2): 16..64 step 4 vs. a single
   max-size entry vs. a finer/wider library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.clustering.isc import DEFAULT_CROSSBAR_SIZES, iterative_spectral_clustering
from repro.clustering.preference import crossbar_preference
from repro.mapping.autoncs_mapping import autoncs_mapping
from repro.mapping.fullcro import fullcro_utilization
from repro.networks.connection_matrix import ConnectionMatrix
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class AblationPoint:
    """One ablation configuration's clustering outcome."""

    label: str
    iterations: int
    crossbars: int
    synapses: int
    outlier_ratio: float
    average_utilization: float
    average_fanin_fanout: float


def _evaluate(
    network: ConnectionMatrix,
    label: str,
    sizes: Sequence[int],
    selection_quantile: float,
    preference: Callable[[int, int], float],
    rng: RngLike,
) -> AblationPoint:
    threshold = fullcro_utilization(network, max(sizes))
    isc = iterative_spectral_clustering(
        network,
        sizes=sizes,
        utilization_threshold=threshold,
        selection_quantile=selection_quantile,
        preference=preference,
        rng=rng,
    )
    mapping = autoncs_mapping(isc)
    return AblationPoint(
        label=label,
        iterations=isc.iterations,
        crossbars=len(isc.crossbars),
        synapses=len(isc.outliers),
        outlier_ratio=isc.outlier_ratio,
        average_utilization=mapping.average_utilization,
        average_fanin_fanout=mapping.fanin_fanout().average_total,
    )


def ablate_partial_selection(
    network: ConnectionMatrix, rng: RngLike = None
) -> List[AblationPoint]:
    """Partial selection on (top 25 %) vs effectively off (keep ~all)."""
    rng = ensure_rng(rng)
    seeds = rng.integers(0, 2**31 - 1, size=3)
    return [
        _evaluate(
            network, "top-25% CP (paper)", DEFAULT_CROSSBAR_SIZES, 0.75,
            crossbar_preference, int(seeds[0]),
        ),
        _evaluate(
            network, "top-50% CP", DEFAULT_CROSSBAR_SIZES, 0.50,
            crossbar_preference, int(seeds[1]),
        ),
        _evaluate(
            network, "all clusters (no partial selection)", DEFAULT_CROSSBAR_SIZES, 1e-9,
            crossbar_preference, int(seeds[2]),
        ),
    ]


def _cp_paper(m: int, s: int) -> float:
    return crossbar_preference(m, s)


def _cp_utilization(m: int, s: int) -> float:
    return m / float(s * s)


def _cp_count(m: int, s: int) -> float:
    return float(m)


def ablate_preference_definition(
    network: ConnectionMatrix, rng: RngLike = None
) -> List[AblationPoint]:
    """Compare CP = m²/s³ (paper) vs u-only and m-only scoring."""
    rng = ensure_rng(rng)
    seeds = rng.integers(0, 2**31 - 1, size=3)
    variants: List[Tuple[str, Callable[[int, int], float]]] = [
        ("CP = m^2/s^3 (paper)", _cp_paper),
        ("CP = u = m/s^2", _cp_utilization),
        ("CP = m", _cp_count),
    ]
    return [
        _evaluate(network, label, DEFAULT_CROSSBAR_SIZES, 0.75, fn, int(seed))
        for (label, fn), seed in zip(variants, seeds)
    ]


def ablate_library_range(
    network: ConnectionMatrix, rng: RngLike = None
) -> List[AblationPoint]:
    """Compare crossbar libraries: paper's 16..64/4, only-64, and 8..64/8."""
    rng = ensure_rng(rng)
    seeds = rng.integers(0, 2**31 - 1, size=3)
    libraries: Dict[str, Tuple[int, ...]] = {
        "16..64 step 4 (paper)": DEFAULT_CROSSBAR_SIZES,
        "only 64": (64,),
        "8..64 step 8": tuple(range(8, 65, 8)),
    }
    return [
        _evaluate(network, label, sizes, 0.75, crossbar_preference, int(seed))
        for (label, sizes), seed in zip(libraries.items(), seeds)
    ]


def format_ablation(points: List[AblationPoint]) -> str:
    """Readable ablation table."""
    header = (
        f"{'configuration':<40}{'iters':>6}{'xbars':>7}{'synapses':>9}"
        f"{'outliers':>10}{'avg util':>10}{'avg f+f':>9}"
    )
    lines = [header]
    for p in points:
        lines.append(
            f"{p.label:<40}{p.iterations:>6}{p.crossbars:>7}{p.synapses:>9}"
            f"{p.outlier_ratio:>9.1%}{p.average_utilization:>10.3f}"
            f"{p.average_fanin_fanout:>9.2f}"
        )
    return "\n".join(lines)
