"""Paper experiments: the three testbenches and every table/figure.

Each ``figure*``/``table1`` function returns plain dataclasses of series
and rows so the benchmark harness can print (and persist) exactly what the
paper plots, without any plotting dependency.
"""

from repro.experiments.ablations import (
    AblationPoint,
    ablate_library_range,
    ablate_partial_selection,
    ablate_preference_definition,
    format_ablation,
)
from repro.experiments.figures import (
    Figure3Result,
    Figure4Result,
    Figure5Result,
    Figure6Result,
    Figure10Result,
    IscAnalysisResult,
    figure3,
    figure4,
    figure5,
    figure6,
    figure10,
    figure789,
    isc_analysis,
)
from repro.experiments.reliability import (
    DEFAULT_DEFECT_RATES,
    ReliabilityResult,
    run_reliability_experiment,
)
from repro.experiments.table1 import (
    PAPER_AVERAGE_REDUCTIONS,
    PAPER_TABLE1,
    Table1Result,
    run_table1,
)
from repro.experiments.testbenches import (
    TESTBENCHES,
    Testbench,
    TestbenchInstance,
    build_testbench,
    build_testbench_network,
    get_testbench,
    scaled_testbench,
)

__all__ = [
    "AblationPoint",
    "DEFAULT_DEFECT_RATES",
    "Figure10Result",
    "Figure3Result",
    "Figure4Result",
    "Figure5Result",
    "Figure6Result",
    "IscAnalysisResult",
    "PAPER_AVERAGE_REDUCTIONS",
    "PAPER_TABLE1",
    "ReliabilityResult",
    "TESTBENCHES",
    "Table1Result",
    "Testbench",
    "TestbenchInstance",
    "ablate_library_range",
    "ablate_partial_selection",
    "ablate_preference_definition",
    "build_testbench",
    "build_testbench_network",
    "figure10",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure789",
    "format_ablation",
    "get_testbench",
    "isc_analysis",
    "run_reliability_experiment",
    "run_table1",
    "scaled_testbench",
]
