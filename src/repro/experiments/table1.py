"""Table 1 reproduction: physical cost of AutoNCS vs FullCro, 3 testbenches.

Paper reference values (45 nm, α = β = δ = 1):

====  ========  ================  ===========  =========
TB    design    wirelength (µm)   area (µm²)   delay (ns)
====  ========  ================  ===========  =========
1     AutoNCS   131,934.3         7,608.80     1.05
1     FullCro   233,080.0         9,667.20     1.95
2     AutoNCS   380,549.6         14,211.54    1.05
2     FullCro   676,416.0         20,168.60    1.95
3     AutoNCS   575,760.9         20,943.93    0.99
3     FullCro   1,316,590.0       38,136.23    1.95
====  ========  ================  ===========  =========

Average reductions: 47.80 % wirelength, 31.97 % area, 47.18 % delay.
Our substrate is a Python re-implementation with calibrated technology
numbers, so only the *shape* is expected to match: AutoNCS wins on every
metric, wirelength/area reductions grow with N, FullCro delay is constant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.config import AutoNcsConfig
from repro.core.report import ComparisonReport, average_reductions
from repro.experiments.testbenches import TESTBENCHES, Testbench, build_testbench
from repro.utils.rng import RngLike, ensure_rng, spawn_seeds

#: The paper's Table 1, for side-by-side printing.
PAPER_TABLE1: Dict[int, Dict[str, Dict[str, float]]] = {
    1: {
        "AutoNCS": {"wirelength_um": 131934.3, "area_um2": 7608.80, "delay_ns": 1.05},
        "FullCro": {"wirelength_um": 233080.0, "area_um2": 9667.20, "delay_ns": 1.95},
        "reduction": {"wirelength_um": 43.40, "area_um2": 21.29, "delay_ns": 46.15},
    },
    2: {
        "AutoNCS": {"wirelength_um": 380549.6, "area_um2": 14211.54, "delay_ns": 1.05},
        "FullCro": {"wirelength_um": 676416.0, "area_um2": 20168.60, "delay_ns": 1.95},
        "reduction": {"wirelength_um": 43.74, "area_um2": 29.54, "delay_ns": 46.15},
    },
    3: {
        "AutoNCS": {"wirelength_um": 575760.9, "area_um2": 20943.93, "delay_ns": 0.99},
        "FullCro": {"wirelength_um": 1316590.0, "area_um2": 38136.23, "delay_ns": 1.95},
        "reduction": {"wirelength_um": 56.27, "area_um2": 45.08, "delay_ns": 49.23},
    },
}

#: Paper average reductions over the three testbenches.
PAPER_AVERAGE_REDUCTIONS = {"wirelength": 47.80, "area": 31.97, "delay": 47.18}


@dataclass
class Table1Result:
    """Measured Table 1: one comparison report per testbench."""

    reports: List[ComparisonReport]
    metadata: dict = field(default_factory=dict)

    @property
    def averages(self) -> Dict[str, float]:
        """Mean reductions over the run testbenches."""
        return average_reductions(self.reports)

    def format_table(self) -> str:
        """Full Table 1 as text, with paper references appended."""
        blocks = [report.format_table() for report in self.reports]
        avg = self.averages
        blocks.append(
            "Average reductions (measured): "
            f"wirelength {avg['wirelength']:.2f}%, area {avg['area']:.2f}%, "
            f"delay {avg['delay']:.2f}%"
        )
        blocks.append(
            "Average reductions (paper):    "
            f"wirelength {PAPER_AVERAGE_REDUCTIONS['wirelength']:.2f}%, "
            f"area {PAPER_AVERAGE_REDUCTIONS['area']:.2f}%, "
            f"delay {PAPER_AVERAGE_REDUCTIONS['delay']:.2f}%"
        )
        return "\n\n".join(blocks)


def run_table1(
    testbenches: Optional[Sequence[Testbench]] = None,
    config: Optional[AutoNcsConfig] = None,
    rng: RngLike = None,
    n_jobs: int = 1,
    cache=None,
    events=None,
) -> Table1Result:
    """Regenerate Table 1 over the given testbenches (default: all three).

    The six flow executions (AutoNCS + FullCro per testbench) run as
    :mod:`repro.runtime` jobs: testbench networks are built serially in
    this process (they share the driver RNG stream), then each flow gets
    its own child seed — drawn in exactly the order the historical serial
    loop consumed them — so the reported numbers are bitwise-identical
    for every ``n_jobs``, and unchanged from the pre-runtime serial code.

    Parameters
    ----------
    n_jobs:
        Worker processes for the flow executions.
    cache:
        Optional :class:`repro.runtime.ArtifactCache`; finished flows are
        served from disk keyed on (network digest, config, seed, version).
    events:
        Optional :class:`repro.runtime.EventLog` for job/trace events.
    """
    from repro.runtime import Job, Runner

    rng = ensure_rng(rng)
    if testbenches is None:
        testbenches = TESTBENCHES
    config = config if config is not None else AutoNcsConfig()
    config_key = config.cache_key()
    jobs: List[Job] = []
    labels: List[str] = []
    for testbench in testbenches:
        instance = build_testbench(testbench, rng=rng)
        # Matches AutoNCS.compare: one child generator per flow, spawned
        # from the shared driver stream in (autoncs, fullcro) order.
        autoncs_seed, fullcro_seed = spawn_seeds(rng, 2)
        network = instance.network
        common_key = {"network": network.digest(), "config": config_key}
        labels.append(testbench.label)
        jobs.append(
            Job(
                kind="autoncs",
                label=f"{testbench.label} autoncs",
                payload={"network": network, "config": config},
                seed=autoncs_seed,
                key=common_key,
            )
        )
        jobs.append(
            Job(
                kind="fullcro",
                label=f"{testbench.label} fullcro",
                payload={"network": network, "config": config},
                seed=fullcro_seed,
                key=common_key,
            )
        )
    runner = Runner(n_jobs=n_jobs, cache=cache, events=events)
    results = runner.run(jobs)
    reports = []
    for index, label in enumerate(labels):
        autoncs_result = results[2 * index].value
        fullcro_design = results[2 * index + 1].value
        reports.append(
            ComparisonReport(
                label=label,
                autoncs=autoncs_result.design,
                fullcro=fullcro_design,
                metadata={
                    "isc_iterations": autoncs_result.isc.iterations,
                    "outlier_ratio": autoncs_result.isc.outlier_ratio,
                },
            )
        )
    cache_hits = sum(1 for result in results if result.cache_hit)
    return Table1Result(
        reports=reports,
        metadata={"n_jobs": n_jobs, "cache_hits": cache_hits},
    )
