"""Per-figure experiment drivers (paper Figs. 3–10).

Each function regenerates the data behind one figure as a dataclass of
plain numbers/series; the benchmark harness prints them next to the
paper's reference values.  No plotting dependency is required — the series
are the figure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.clustering.gcp import greedy_cluster_size_prediction
from repro.clustering.isc import (
    DEFAULT_CROSSBAR_SIZES,
    iterative_spectral_clustering,
)
from repro.clustering.spectral import modified_spectral_clustering
from repro.clustering.traversing import traversing_clustering
from repro.core.autoncs import AutoNCS
from repro.core.config import AutoNcsConfig
from repro.experiments.testbenches import build_testbench
from repro.mapping.fullcro import fullcro_mapping, fullcro_utilization
from repro.networks.connection_matrix import ConnectionMatrix
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.timers import Timer


# ----------------------------------------------------------------------
# Figure 3 — MSC on a 400×400 network
# ----------------------------------------------------------------------
@dataclass
class Figure3Result:
    """MSC before/after statistics (paper: 57 % outliers remain after MSC)."""

    n: int
    connections: int
    k: int
    cluster_sizes: List[int]
    outlier_ratio: float
    permutation: np.ndarray = field(repr=False, default=None)


def figure3(network: ConnectionMatrix, rng: RngLike = None, max_size: int = 64) -> Figure3Result:
    """One MSC pass with ``k = ceil(n / max_size)`` (the Fig. 3 setting)."""
    rng = ensure_rng(rng)
    k = max(1, math.ceil(network.size / max_size))
    clustering = modified_spectral_clustering(network, k, rng=rng)
    clusters = [c.members for c in clustering.clusters]
    return Figure3Result(
        n=network.size,
        connections=network.num_connections,
        k=k,
        cluster_sizes=clustering.sizes(),
        outlier_ratio=network.outlier_ratio(clusters),
        permutation=clustering.permutation(),
    )


# ----------------------------------------------------------------------
# Figure 4 — GCP vs traversing
# ----------------------------------------------------------------------
@dataclass
class Figure4Result:
    """Size-cap compliance and runtimes (paper: 106 ms GCP vs 190 ms traversing)."""

    max_size: int
    gcp_max_cluster: int
    traversing_max_cluster: int
    gcp_clusters: int
    traversing_clusters: int
    gcp_runtime_ms: float
    traversing_runtime_ms: float
    gcp_outlier_ratio: float
    traversing_outlier_ratio: float

    @property
    def speedup(self) -> float:
        """Traversing runtime over GCP runtime (paper ≈ 1.8×)."""
        if self.gcp_runtime_ms == 0.0:
            return float("inf")
        return self.traversing_runtime_ms / self.gcp_runtime_ms


def figure4(
    network: ConnectionMatrix, max_size: int = 64, rng: RngLike = None
) -> Figure4Result:
    """Run GCP and the traversing baseline on the same network."""
    rng = ensure_rng(rng)
    seed = int(rng.integers(0, 2**31 - 1))
    with Timer() as gcp_timer:
        gcp = greedy_cluster_size_prediction(network, max_size, rng=seed)
    with Timer() as trav_timer:
        traversing = traversing_clustering(network, max_size, rng=seed)
    gcp_clusters = [c.members for c in gcp.clusters]
    trav_clusters = [c.members for c in traversing.clusters]
    return Figure4Result(
        max_size=max_size,
        gcp_max_cluster=gcp.max_size(),
        traversing_max_cluster=traversing.max_size(),
        gcp_clusters=gcp.k,
        traversing_clusters=traversing.k,
        gcp_runtime_ms=gcp_timer.elapsed_ms,
        traversing_runtime_ms=trav_timer.elapsed_ms,
        gcp_outlier_ratio=network.outlier_ratio(gcp_clusters),
        traversing_outlier_ratio=network.outlier_ratio(trav_clusters),
    )


# ----------------------------------------------------------------------
# Figure 5 — clustering the remaining network
# ----------------------------------------------------------------------
@dataclass
class Figure5Result:
    """Two MSC+GCP rounds with cluster removal in between (Fig. 5(a)/(b))."""

    initial_connections: int
    round1_outliers: int
    round1_outlier_ratio: float
    round2_outliers: int
    round2_outlier_ratio: float


def figure5(
    network: ConnectionMatrix, max_size: int = 64, rng: RngLike = None
) -> Figure5Result:
    """Cluster, strip the clusters out, re-cluster the remaining network."""
    rng = ensure_rng(rng)
    total = network.num_connections
    round1 = greedy_cluster_size_prediction(network, max_size, rng=rng)
    remaining = network.remove_clusters([c.members for c in round1.clusters])
    round2 = greedy_cluster_size_prediction(remaining, max_size, rng=rng)
    remaining2 = remaining.remove_clusters([c.members for c in round2.clusters])
    return Figure5Result(
        initial_connections=total,
        round1_outliers=remaining.num_connections,
        round1_outlier_ratio=remaining.num_connections / total if total else 0.0,
        round2_outliers=remaining2.num_connections,
        round2_outlier_ratio=remaining2.num_connections / total if total else 0.0,
    )


# ----------------------------------------------------------------------
# Figure 6 — ISC iterations (paper: < 5 % outliers after 11 iterations)
# ----------------------------------------------------------------------
@dataclass
class Figure6Result:
    """Outlier ratio after each ISC iteration."""

    iterations: int
    outlier_ratio_series: List[float]
    final_outlier_ratio: float
    crossbars: int


def figure6(
    network: ConnectionMatrix,
    sizes: Tuple[int, ...] = DEFAULT_CROSSBAR_SIZES,
    utilization_threshold: Optional[float] = None,
    rng: RngLike = None,
) -> Figure6Result:
    """Full ISC with per-iteration outlier tracking."""
    if utilization_threshold is None:
        utilization_threshold = fullcro_utilization(network, max(sizes))
    isc = iterative_spectral_clustering(
        network, sizes=sizes, utilization_threshold=utilization_threshold, rng=rng
    )
    series = [record.outlier_ratio_after for record in isc.records]
    return Figure6Result(
        iterations=isc.iterations,
        outlier_ratio_series=series,
        final_outlier_ratio=isc.outlier_ratio,
        crossbars=len(isc.crossbars),
    )


# ----------------------------------------------------------------------
# Figures 7–9 — per-testbench ISC analysis panels
# ----------------------------------------------------------------------
@dataclass
class IscAnalysisResult:
    """The four panels of Figs. 7–9 for one testbench.

    (a) outlier ratio per iteration; (b) normalized utilization and average
    CP per iteration; (c) crossbar size histogram; (d) per-neuron
    fanin+fanout distributions (crossbar / synapse / sum), all normalized
    to the FullCro baseline.
    """

    testbench_label: str
    baseline_utilization: float
    outlier_ratio_series: List[float]
    normalized_utilization_series: List[float]
    average_preference_series: List[float]
    crossbar_size_histogram: Dict[int, int]
    fanin_fanout_crossbar: np.ndarray = field(repr=False, default=None)
    fanin_fanout_synapse: np.ndarray = field(repr=False, default=None)
    fanin_fanout_sum: np.ndarray = field(repr=False, default=None)
    baseline_fanin_fanout_sum: np.ndarray = field(repr=False, default=None)
    average_sum_vs_baseline: float = 0.0
    iterations: int = 0
    final_outlier_ratio: float = 0.0

    @property
    def clustered_ratio(self) -> float:
        """Fraction of connections absorbed into crossbars at the end."""
        return 1.0 - self.final_outlier_ratio


def isc_analysis(
    network: ConnectionMatrix,
    label: str = "",
    sizes: Tuple[int, ...] = DEFAULT_CROSSBAR_SIZES,
    rng: RngLike = None,
) -> IscAnalysisResult:
    """Produce the Fig. 7–9 panels for one network."""
    from repro.mapping.autoncs_mapping import autoncs_mapping  # local: avoid cycle

    rng = ensure_rng(rng)
    baseline_utilization = fullcro_utilization(network, max(sizes))
    isc = iterative_spectral_clustering(
        network, sizes=sizes, utilization_threshold=baseline_utilization, rng=rng
    )
    mapping = autoncs_mapping(isc)
    baseline = fullcro_mapping(network)
    breakdown = mapping.fanin_fanout()
    baseline_breakdown = baseline.fanin_fanout()
    # Panel (d) is normalized to the baseline design.
    baseline_mean = baseline_breakdown.average_total
    order = np.argsort(breakdown.total)
    norm = baseline_mean if baseline_mean > 0 else 1.0
    return IscAnalysisResult(
        testbench_label=label or network.name,
        baseline_utilization=baseline_utilization,
        outlier_ratio_series=[r.outlier_ratio_after for r in isc.records],
        normalized_utilization_series=[
            r.average_utilization / baseline_utilization if baseline_utilization else 0.0
            for r in isc.records
        ],
        average_preference_series=[r.average_preference for r in isc.records],
        crossbar_size_histogram=mapping.crossbar_size_histogram(),
        fanin_fanout_crossbar=breakdown.crossbar[order] / norm,
        fanin_fanout_synapse=breakdown.synapse[order] / norm,
        fanin_fanout_sum=breakdown.total[order] / norm,
        baseline_fanin_fanout_sum=np.sort(baseline_breakdown.total) / norm,
        average_sum_vs_baseline=(
            breakdown.average_total / baseline_mean if baseline_mean else 0.0
        ),
        iterations=isc.iterations,
        final_outlier_ratio=isc.outlier_ratio,
    )


def figure789(testbench_index: int, rng: RngLike = None) -> IscAnalysisResult:
    """Fig. 7 (TB1), Fig. 8 (TB2) or Fig. 9 (TB3) from the paper testbenches."""
    rng = ensure_rng(rng)
    instance = build_testbench(testbench_index, rng=rng)
    return isc_analysis(
        instance.network, label=instance.testbench.label, rng=rng
    )


# ----------------------------------------------------------------------
# Figure 10 — placement & routing layouts and congestion maps
# ----------------------------------------------------------------------
@dataclass
class LayoutSnapshot:
    """One design's physical layout data for the Fig. 10 panels."""

    design: str
    cell_x: np.ndarray
    cell_y: np.ndarray
    cell_w: np.ndarray
    cell_h: np.ndarray
    cell_kinds: List[str]
    congestion: np.ndarray
    wirelength_um: float
    area_um2: float
    delay_ns: float

    @property
    def peak_congestion(self) -> float:
        """Maximum per-bin wire count."""
        return float(self.congestion.max()) if self.congestion.size else 0.0

    def center_congestion_ratio(self) -> float:
        """Mean congestion of the central ninth over the whole map.

        The paper's FullCro shows "heavy wire congestion in the center"
        (Fig. 10(b)); this ratio quantifies it.
        """
        c = self.congestion
        if c.size == 0:
            return 0.0
        nx, ny = c.shape
        cx0, cx1 = nx // 3, max(nx // 3 * 2, nx // 3 + 1)
        cy0, cy1 = ny // 3, max(ny // 3 * 2, ny // 3 + 1)
        center = c[cx0:cx1, cy0:cy1]
        overall = float(c.mean())
        if overall == 0.0:
            return 0.0
        return float(center.mean()) / overall


@dataclass
class Figure10Result:
    """Layouts + congestion maps for FullCro and AutoNCS (testbench 3)."""

    fullcro: LayoutSnapshot
    autoncs: LayoutSnapshot


def _snapshot(design, name: str) -> LayoutSnapshot:
    placement = design.placement
    kinds = [cell.kind.value for cell in design.mapping.netlist.cells]
    return LayoutSnapshot(
        design=name,
        cell_x=placement.x,
        cell_y=placement.y,
        cell_w=placement.widths,
        cell_h=placement.heights,
        cell_kinds=kinds,
        congestion=design.routing.congestion_map(),
        wirelength_um=design.cost.wirelength_um,
        area_um2=design.cost.area_um2,
        delay_ns=design.cost.average_delay_ns,
    )


def figure10(
    testbench_index: int = 3,
    config: Optional[AutoNcsConfig] = None,
    rng: RngLike = None,
) -> Figure10Result:
    """Full physical implementation of a testbench in both designs."""
    rng = ensure_rng(rng)
    instance = build_testbench(testbench_index, rng=rng)
    flow = AutoNCS(config)
    result = flow.run(instance.network, rng=rng)
    baseline = flow.run_baseline(instance.network, rng=rng)
    return Figure10Result(
        fullcro=_snapshot(baseline, "FullCro"),
        autoncs=_snapshot(result.design, "AutoNCS"),
    )
