"""Dependency-free visualization: SVG and ASCII renderings of the figures.

The paper's figures are images — connection-matrix scatter plots
(Figs. 3–6), layout plots and congestion heat maps (Fig. 10).  This
package renders the same artefacts as standalone SVG files (and quick
ASCII previews) without any plotting dependency, so the benchmark harness
can emit figure files next to its numeric series.
"""

from repro.viz.ascii_art import ascii_heatmap, ascii_layout, ascii_matrix
from repro.viz.svg import (
    congestion_to_svg,
    layout_to_svg,
    matrix_to_svg,
    save_svg,
)

__all__ = [
    "ascii_heatmap",
    "ascii_layout",
    "ascii_matrix",
    "congestion_to_svg",
    "layout_to_svg",
    "matrix_to_svg",
    "save_svg",
]
