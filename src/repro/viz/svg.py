"""Minimal SVG writers for connection matrices, layouts and congestion maps.

Pure string generation — no third-party dependency.  The coordinate system
follows the paper's figures: matrix plots put entry (0, 0) in the top-left
corner; layout plots put the origin at the bottom-left with y pointing up.
"""

from __future__ import annotations

import os
from typing import Iterable, Optional, Sequence, Union

import numpy as np

from repro.networks.connection_matrix import ConnectionMatrix

PathLike = Union[str, "os.PathLike[str]"]

_KIND_COLORS = {
    "crossbar": "#1f77b4",
    "neuron": "#2ca02c",
    "synapse": "#d62728",
}


def _header(width: float, height: float) -> str:
    return (
        '<?xml version="1.0" encoding="UTF-8"?>\n'
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" '
        f'height="{height:.0f}" viewBox="0 0 {width:.0f} {height:.0f}">\n'
        f'<rect width="{width:.0f}" height="{height:.0f}" fill="white"/>\n'
    )


def matrix_to_svg(
    network: Union[ConnectionMatrix, np.ndarray],
    size_px: int = 480,
    clusters: Optional[Iterable[Sequence[int]]] = None,
    title: str = "",
) -> str:
    """Render a connection matrix as an SVG scatter (the Fig. 3–6 style).

    Each connection becomes a dot; optional ``clusters`` draw red squares
    over the (sorted-member) diagonal blocks like the paper's cluster
    overlays.
    """
    if isinstance(network, ConnectionMatrix):
        matrix = network.matrix
    else:
        matrix = np.asarray(network)
    n = matrix.shape[0]
    if n == 0:
        return _header(size_px, size_px) + "</svg>\n"
    scale = size_px / n
    parts = [_header(size_px, size_px + (18 if title else 0))]
    if title:
        parts.append(
            f'<text x="4" y="{size_px + 14}" font-size="12" '
            f'font-family="monospace">{title}</text>\n'
        )
    rows, cols = np.nonzero(matrix)
    dot = max(scale * 0.8, 0.75)
    for i, j in zip(rows.tolist(), cols.tolist()):
        parts.append(
            f'<rect x="{j * scale:.2f}" y="{i * scale:.2f}" '
            f'width="{dot:.2f}" height="{dot:.2f}" fill="#303030"/>\n'
        )
    if clusters is not None:
        for cluster in clusters:
            members = sorted(int(m) for m in cluster)
            if not members:
                continue
            lo, hi = members[0], members[-1]
            side = (hi - lo + 1) * scale
            parts.append(
                f'<rect x="{lo * scale:.2f}" y="{lo * scale:.2f}" '
                f'width="{side:.2f}" height="{side:.2f}" fill="none" '
                f'stroke="#d62728" stroke-width="1.5"/>\n'
            )
    parts.append("</svg>\n")
    return "".join(parts)


def layout_to_svg(
    placement,
    kinds: Sequence[str],
    size_px: int = 480,
    title: str = "",
) -> str:
    """Render a placed design (the Fig. 10(a)/(c) style).

    Crossbars draw blue, neurons green, discrete synapses red; cell
    rectangles are to scale.
    """
    if len(kinds) != placement.num_cells:
        raise ValueError(
            f"kinds has {len(kinds)} entries for {placement.num_cells} cells"
        )
    xmin, ymin, xmax, ymax = placement.bounding_box()
    span = max(xmax - xmin, ymax - ymin, 1e-9)
    scale = size_px / span
    parts = [_header(size_px, size_px + (18 if title else 0))]
    if title:
        parts.append(
            f'<text x="4" y="{size_px + 14}" font-size="12" '
            f'font-family="monospace">{title}</text>\n'
        )
    order = np.argsort(-(placement.widths * placement.heights))
    for i in order:
        w = placement.widths[i] * scale
        h = placement.heights[i] * scale
        x = (placement.x[i] - placement.widths[i] / 2 - xmin) * scale
        # SVG y grows downward; flip so the layout matches the paper's view.
        y = size_px - (placement.y[i] + placement.heights[i] / 2 - ymin) * scale
        color = _KIND_COLORS.get(str(kinds[i]), "#888888")
        parts.append(
            f'<rect x="{x:.2f}" y="{y:.2f}" width="{max(w, 0.5):.2f}" '
            f'height="{max(h, 0.5):.2f}" fill="{color}" fill-opacity="0.75" '
            f'stroke="#202020" stroke-width="0.3"/>\n'
        )
    parts.append("</svg>\n")
    return "".join(parts)


def congestion_to_svg(
    congestion: np.ndarray,
    size_px: int = 480,
    title: str = "",
) -> str:
    """Render a congestion map as a heat map (the Fig. 10(b)/(d) style)."""
    congestion = np.asarray(congestion, dtype=float)
    if congestion.ndim != 2:
        raise ValueError(f"congestion must be 2-D, got shape {congestion.shape}")
    nx, ny = congestion.shape
    peak = float(congestion.max()) if congestion.size else 0.0
    cell_w = size_px / max(nx, 1)
    cell_h = size_px / max(ny, 1)
    parts = [_header(size_px, size_px + (18 if title else 0))]
    if title:
        parts.append(
            f'<text x="4" y="{size_px + 14}" font-size="12" '
            f'font-family="monospace">{title} (peak {peak:.0f} wires/bin)</text>\n'
        )
    for bx in range(nx):
        for by in range(ny):
            value = congestion[bx, by] / peak if peak > 0 else 0.0
            # blue (cold) -> red (hot)
            red = int(255 * value)
            blue = int(255 * (1.0 - value))
            y = size_px - (by + 1) * cell_h
            parts.append(
                f'<rect x="{bx * cell_w:.2f}" y="{y:.2f}" width="{cell_w:.2f}" '
                f'height="{cell_h:.2f}" fill="rgb({red},60,{blue})" '
                f'fill-opacity="{0.15 + 0.85 * value:.2f}"/>\n'
            )
    parts.append("</svg>\n")
    return "".join(parts)


def save_svg(svg: str, path: PathLike) -> None:
    """Write an SVG string to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(svg)
