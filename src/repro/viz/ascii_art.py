"""ASCII previews of matrices, layouts and congestion maps.

Handy in terminals and doctest-able; the SVG writers in
:mod:`repro.viz.svg` produce the publication-style versions.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.networks.connection_matrix import ConnectionMatrix

_SHADES = " .:-=+*#%@"


def ascii_matrix(
    network: Union[ConnectionMatrix, np.ndarray],
    width: int = 64,
) -> str:
    """Downsample a connection matrix to a character raster.

    Each character covers a block of entries; darker characters mean more
    connections in the block.
    """
    if isinstance(network, ConnectionMatrix):
        matrix = network.matrix.astype(float)
    else:
        matrix = np.asarray(network, dtype=float)
    n = matrix.shape[0]
    if n == 0:
        return ""
    width = min(width, n)
    edges = np.linspace(0, n, width + 1).astype(int)
    blocks = np.zeros((width, width))
    for a in range(width):
        for b in range(width):
            sub = matrix[edges[a] : edges[a + 1], edges[b] : edges[b + 1]]
            blocks[a, b] = sub.mean() if sub.size else 0.0
    peak = blocks.max()
    if peak <= 0:
        return "\n".join(" " * width for _ in range(width))
    lines = []
    for a in range(width):
        line = []
        for b in range(width):
            level = blocks[a, b] / peak
            line.append(_SHADES[min(int(level * (len(_SHADES) - 1)), len(_SHADES) - 1)])
        lines.append("".join(line))
    return "\n".join(lines)


def ascii_layout(
    placement,
    kinds: Sequence[str],
    columns: int = 64,
    rows: int = 24,
) -> str:
    """Render cell positions as characters: '#' crossbar, '.' neuron, '+' synapse."""
    if len(kinds) != placement.num_cells:
        raise ValueError(
            f"kinds has {len(kinds)} entries for {placement.num_cells} cells"
        )
    if placement.num_cells == 0:
        return ""
    xmin, ymin, xmax, ymax = placement.bounding_box()
    span_x = max(xmax - xmin, 1e-9)
    span_y = max(ymax - ymin, 1e-9)
    canvas = [[" "] * columns for _ in range(rows)]
    symbol = {"neuron": ".", "crossbar": "#", "synapse": "+"}
    order = np.argsort(-(placement.widths * placement.heights))
    for i in order:
        c = int((placement.x[i] - xmin) / span_x * (columns - 1))
        r = int((placement.y[i] - ymin) / span_y * (rows - 1))
        canvas[rows - 1 - r][c] = symbol.get(str(kinds[i]), "?")
    return "\n".join("".join(line) for line in canvas)


def ascii_heatmap(grid: np.ndarray, columns: int = 64, rows: int = 24) -> str:
    """Render a 2-D array as a character heat map."""
    grid = np.asarray(grid, dtype=float)
    if grid.ndim != 2 or grid.size == 0:
        return ""
    nx, ny = grid.shape
    peak = grid.max()
    lines = []
    for r in range(rows - 1, -1, -1):
        line = []
        for c in range(columns):
            gx = min(int(c / columns * nx), nx - 1)
            gy = min(int(r / rows * ny), ny - 1)
            level = grid[gx, gy] / peak if peak > 0 else 0.0
            line.append(_SHADES[min(int(level * (len(_SHADES) - 1)), len(_SHADES) - 1)])
        lines.append("".join(line))
    return "\n".join(lines)
