"""LDPC-style parity-check networks (paper Sec. 2.2 motivation).

The paper motivates high-sparsity networks with LDPC decoding in IEEE
802.11, where the message-passing network is >99 % sparse.  We build
Gallager-style regular parity-check matrices and turn the variable/check
Tanner graph into a square connection matrix suitable for AutoNCS.
"""

from __future__ import annotations

import numpy as np

from repro.networks.connection_matrix import ConnectionMatrix
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive


def regular_parity_check_matrix(
    n_vars: int, column_weight: int, row_weight: int, rng: RngLike = None
) -> np.ndarray:
    """Construct a Gallager-style regular LDPC parity-check matrix.

    Parameters
    ----------
    n_vars:
        Number of variable nodes (codeword length).
    column_weight:
        Ones per column (each variable participates in this many checks).
    row_weight:
        Ones per row (each check covers this many variables); must divide
        ``n_vars``.

    Returns
    -------
    numpy.ndarray
        Binary matrix of shape ``(n_checks, n_vars)`` with
        ``n_checks = n_vars * column_weight / row_weight``.
    """
    check_positive("n_vars", n_vars)
    check_positive("column_weight", column_weight)
    check_positive("row_weight", row_weight)
    if n_vars % row_weight != 0:
        raise ValueError(f"row_weight={row_weight} must divide n_vars={n_vars}")
    rng = ensure_rng(rng)
    rows_per_band = n_vars // row_weight
    bands = []
    # Gallager construction: one structured band, column-permuted copies after.
    base = np.zeros((rows_per_band, n_vars), dtype=np.uint8)
    for r in range(rows_per_band):
        base[r, r * row_weight : (r + 1) * row_weight] = 1
    bands.append(base)
    for _ in range(column_weight - 1):
        perm = rng.permutation(n_vars)
        bands.append(base[:, perm])
    return np.vstack(bands)


def ldpc_network(
    n_vars: int,
    column_weight: int = 3,
    row_weight: int = 6,
    rng: RngLike = None,
    name: str = "ldpc",
) -> ConnectionMatrix:
    """Build the Tanner-graph connection matrix of a regular LDPC code.

    Variable nodes and check nodes are concatenated into one neuron set of
    size ``n_vars + n_checks``; a connection runs both ways between a
    variable and each check it participates in (message passing is
    bidirectional).  The resulting network is symmetric and extremely sparse
    — >99 % for realistic code sizes, matching the paper's 802.11 example.
    """
    h = regular_parity_check_matrix(n_vars, column_weight, row_weight, rng=rng)
    n_checks = h.shape[0]
    n = n_vars + n_checks
    w = np.zeros((n, n), dtype=np.uint8)
    # variables occupy indices [0, n_vars), checks [n_vars, n)
    w[:n_vars, n_vars:] = h.T
    w[n_vars:, :n_vars] = h
    return ConnectionMatrix.from_dense(w, name=name)
