"""Network metrics: sparsity, degree statistics, fanin+fanout (Sec. 4.2).

The paper defines *fanin+fanout* of a neuron as the total number of its
fanins and fanouts, a rough measure of the wiring congestion around it; the
Fig. 7–9(d) panels plot its distribution split into crossbar-borne and
discrete-synapse-borne parts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.networks.connection_matrix import ConnectionMatrix


def network_sparsity(network: ConnectionMatrix) -> float:
    """Sparsity = 1 - connections / n² (paper Sec. 2.2)."""
    return network.sparsity


def fanin_fanout(network: ConnectionMatrix) -> np.ndarray:
    """Per-neuron fanin+fanout vector.

    ``fanin(i)`` counts incoming connections (column sum), ``fanout(i)``
    outgoing ones (row sum); the paper sums the two.
    """
    return network.out_degrees() + network.in_degrees()


@dataclass
class DegreeStatistics:
    """Summary of a network's degree structure."""

    mean_fanin: float
    mean_fanout: float
    mean_fanin_fanout: float
    max_fanin_fanout: int
    min_fanin_fanout: int
    isolated_neurons: int

    def as_dict(self) -> Dict[str, float]:
        """Dictionary view for report serialization."""
        return {
            "mean_fanin": self.mean_fanin,
            "mean_fanout": self.mean_fanout,
            "mean_fanin_fanout": self.mean_fanin_fanout,
            "max_fanin_fanout": self.max_fanin_fanout,
            "min_fanin_fanout": self.min_fanin_fanout,
            "isolated_neurons": self.isolated_neurons,
        }


def degree_statistics(network: ConnectionMatrix) -> DegreeStatistics:
    """Compute :class:`DegreeStatistics` for a network."""
    fanout = network.out_degrees()
    fanin = network.in_degrees()
    total = fanin + fanout
    return DegreeStatistics(
        mean_fanin=float(fanin.mean()) if fanin.size else 0.0,
        mean_fanout=float(fanout.mean()) if fanout.size else 0.0,
        mean_fanin_fanout=float(total.mean()) if total.size else 0.0,
        max_fanin_fanout=int(total.max()) if total.size else 0,
        min_fanin_fanout=int(total.min()) if total.size else 0,
        isolated_neurons=int(np.count_nonzero(total == 0)),
    )
