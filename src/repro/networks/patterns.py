"""Random quick-response-code-like binary patterns (paper Sec. 4.1).

The paper's testbenches store "random quick response code patterns" in
sparse Hopfield networks.  The original dataset is not published; we
synthesize patterns with the structure of a digitized QR code image:

* three **finder squares** (nested dark/light rings) in the corners,
* a payload of random **modules**, each module covering a
  ``module_size × module_size`` block of pixels — a QR image rasterized at
  a finer resolution than its module grid, exactly what a camera or
  testbench bitmap would contain.

Module structure matters downstream: pixels of one module are perfectly
correlated across patterns, so the Hebbian weights bind them into small
cliques.  That is what gives the paper's testbench networks their
clusterable topology (Fig. 3) *and* what makes recall robust (a module's
pixels error-correct each other).  Downstream only the Hopfield connection
topology matters, so any pattern family with similar module statistics is
an acceptable substitute (see DESIGN.md, substitutions).
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive


def _finder_square(grid: np.ndarray, top: int, left: int, size: int) -> None:
    """Stamp a QR finder pattern (nested squares) into ``grid`` in place."""
    side = grid.shape[0]
    size = min(size, side - top, side - left)
    if size <= 0:
        return
    grid[top : top + size, left : left + size] = 1
    if size > 2:
        grid[top + 1 : top + size - 1, left + 1 : left + size - 1] = 0
    if size > 4:
        grid[top + 2 : top + size - 2, left + 2 : left + size - 2] = 1


def qr_like_pattern(
    dimension: int,
    rng: RngLike = None,
    fill: float = 0.5,
    module_size: int = 3,
    module_noise: float = 0.2,
) -> np.ndarray:
    """Generate one QR-like ±1 pattern of length ``dimension``.

    The pattern is built on the smallest square pixel grid covering
    ``dimension``: a random module raster (each module is a
    ``module_size``-pixel square filled Bernoulli(``fill``)), stamped with
    three corner finder squares, corrupted by per-pixel rasterization
    noise (each pixel flips with probability ``module_noise``, as a real
    digitized QR image would along module edges), then flattened and
    truncated to exactly ``dimension`` entries.

    ``module_noise`` tunes how strongly pixels of one module correlate
    across patterns, which controls the clusterability of the Hopfield
    testbench networks; the default reproduces the paper's single-MSC
    outlier ratio (~57 %, Fig. 3).

    Returns
    -------
    numpy.ndarray
        A vector of ±1 values with shape ``(dimension,)``.
    """
    check_positive("dimension", dimension)
    check_positive("module_size", module_size)
    if fill <= 0.0 or fill >= 1.0:
        raise ValueError(f"fill must lie strictly in (0, 1), got {fill}")
    if not 0.0 <= module_noise < 0.5:
        raise ValueError(f"module_noise must lie in [0, 0.5), got {module_noise}")
    rng = ensure_rng(rng)
    side = int(math.ceil(math.sqrt(dimension)))
    modules = int(math.ceil(side / module_size))
    module_values = (rng.random((modules, modules)) < fill).astype(np.int8)
    grid = np.kron(module_values, np.ones((module_size, module_size), dtype=np.int8))
    grid = grid[:side, :side]
    # Three finder squares in the QR corners, scaled with the grid so the
    # deterministic structure stays a small fraction of the pattern
    # (over-large finders correlate the patterns and collapse recall).
    finder = max(3, side // 6)
    _finder_square(grid, 0, 0, finder)
    _finder_square(grid, 0, max(0, side - finder), finder)
    _finder_square(grid, max(0, side - finder), 0, finder)
    if module_noise > 0.0:
        flip = rng.random((side, side)) < module_noise
        grid = np.where(flip, 1 - grid, grid).astype(np.int8)
    flat = grid.reshape(-1)[:dimension]
    return (flat.astype(np.int8) * 2 - 1).astype(np.int8)


def qr_like_patterns(
    count: int,
    dimension: int,
    rng: RngLike = None,
    fill: float = 0.5,
    module_size: int = 3,
    module_noise: float = 0.2,
) -> np.ndarray:
    """Generate ``count`` independent QR-like ±1 patterns.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(count, dimension)`` with ±1 entries.  Patterns
        are regenerated on (exact) duplication so a training set never
        contains two identical patterns.
    """
    check_positive("count", count)
    check_positive("dimension", dimension)
    rng = ensure_rng(rng)
    patterns: List[np.ndarray] = []
    seen = set()
    attempts = 0
    while len(patterns) < count:
        attempts += 1
        if attempts > 50 * count:
            raise RuntimeError(
                "could not generate enough distinct patterns; "
                "dimension too small for the requested count"
            )
        candidate = qr_like_pattern(
            dimension, rng=rng, fill=fill, module_size=module_size, module_noise=module_noise
        )
        key = candidate.tobytes()
        if key in seen:
            continue
        seen.add(key)
        patterns.append(candidate)
    return np.stack(patterns)


def corrupt_pattern(pattern: np.ndarray, flip_fraction: float, rng: RngLike = None) -> np.ndarray:
    """Return a copy of ``pattern`` with a random fraction of entries flipped.

    Used to probe Hopfield recall: the paper's testbenches must keep a
    recognition rate above 90 % (Sec. 4.1).
    """
    if flip_fraction < 0.0 or flip_fraction > 1.0:
        raise ValueError(f"flip_fraction must lie in [0, 1], got {flip_fraction}")
    rng = ensure_rng(rng)
    pattern = np.asarray(pattern)
    flipped = pattern.copy()
    n_flip = int(round(flip_fraction * pattern.size))
    if n_flip:
        idx = rng.choice(pattern.size, size=n_flip, replace=False)
        flipped[idx] = -flipped[idx]
    return flipped
