"""Sparse Hopfield networks — the paper's testbench substrate (Sec. 4.1).

Each testbench stores ``M`` random QR-like patterns of dimension ``N`` in a
Hopfield network of size ``N``, then prunes the weight matrix to a target
sparsity (94.47 / 93.59 / 94.39 % for testbenches 1–3) while keeping the
recognition rate above 90 %.

We implement the standard Hebbian outer-product rule, magnitude-ranked
symmetric pruning to hit the target sparsity *exactly*, synchronous and
asynchronous recall, and a recognition-rate evaluator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.networks.connection_matrix import ConnectionMatrix
from repro.networks.patterns import corrupt_pattern
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_probability


@dataclass
class HopfieldNetwork:
    """A (possibly sparsified) Hopfield network.

    Attributes
    ----------
    weights:
        Symmetric real weight matrix with zero diagonal.
    patterns:
        The ±1 training patterns, shape ``(M, N)``.
    """

    weights: np.ndarray
    patterns: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        self.weights = np.asarray(self.weights, dtype=float)
        self.patterns = np.asarray(self.patterns)
        if self.weights.ndim != 2 or self.weights.shape[0] != self.weights.shape[1]:
            raise ValueError(f"weights must be square, got shape {self.weights.shape}")
        if self.patterns.ndim != 2 or self.patterns.shape[1] != self.weights.shape[0]:
            raise ValueError(
                "patterns must have shape (M, N) matching the weight matrix, "
                f"got {self.patterns.shape} vs N={self.weights.shape[0]}"
            )
        if np.any(np.diag(self.weights) != 0.0):
            raise ValueError("Hopfield weights must have a zero diagonal")
        if not np.allclose(self.weights, self.weights.T):
            raise ValueError("Hopfield weights must be symmetric")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def train(cls, patterns: np.ndarray) -> "HopfieldNetwork":
        """Train by the Hebbian outer-product rule ``W = Σ x xᵀ / M`` (zero diag)."""
        patterns = np.asarray(patterns, dtype=float)
        if patterns.ndim != 2:
            raise ValueError(f"patterns must be a 2-D (M, N) array, got shape {patterns.shape}")
        if not np.all(np.isin(patterns, (-1.0, 1.0))):
            raise ValueError("patterns must be ±1 valued")
        m = patterns.shape[0]
        weights = patterns.T @ patterns / float(m)
        np.fill_diagonal(weights, 0.0)
        return cls(weights=weights, patterns=patterns.astype(np.int8))

    def sparsify(self, target_sparsity: float) -> "HopfieldNetwork":
        """Prune to the target sparsity by keeping the largest-|w| weights.

        Pruning is symmetric: the upper-triangular entries are ranked by
        magnitude and the top ``(1 - sparsity)·N² / 2`` pairs survive, so the
        pruned network stays a valid (symmetric) Hopfield network.  The
        achieved sparsity matches the request to within one symmetric pair.
        """
        check_probability("target_sparsity", target_sparsity)
        n = self.size
        # Connections allowed: the paper counts sparsity over all n² slots.
        keep_connections = int(round((1.0 - target_sparsity) * n * n))
        keep_pairs = keep_connections // 2
        iu, ju = np.triu_indices(n, k=1)
        magnitudes = np.abs(self.weights[iu, ju])
        if keep_pairs >= magnitudes.size:
            return HopfieldNetwork(self.weights.copy(), self.patterns)
        order = np.argsort(magnitudes)[::-1]
        selected = order[:keep_pairs]
        pruned = np.zeros_like(self.weights)
        pruned[iu[selected], ju[selected]] = self.weights[iu[selected], ju[selected]]
        pruned = pruned + pruned.T
        return HopfieldNetwork(pruned, self.patterns)

    def stabilize(
        self,
        max_epochs: int = 80,
        margin: float = 0.15,
        learning_rate: Optional[float] = None,
    ) -> "HopfieldNetwork":
        """Retrain the pruned weights so the stored patterns become stable.

        Plain Hebbian weights lose stability after aggressive pruning (the
        paper's testbenches run at ~94 % sparsity).  This performs
        mask-constrained symmetric perceptron learning: for every pattern,
        neurons whose *normalized* margin ``p_i·h_i / Σ_j|w_ij|`` falls
        below ``margin`` receive a Hebbian reinforcement on their existing
        connections only — the sparse topology (and therefore the AutoNCS
        input) is unchanged.

        Returns a new network; the original is untouched.
        """
        if max_epochs < 1:
            raise ValueError(f"max_epochs must be >= 1, got {max_epochs}")
        if margin < 0:
            raise ValueError(f"margin must be >= 0, got {margin}")
        n = self.size
        rate = learning_rate if learning_rate is not None else 0.5 / np.sqrt(n)
        weights = self.weights.copy()
        mask = (weights != 0.0).astype(float)
        patterns = self.patterns.astype(float)
        for _ in range(max_epochs):
            unstable_total = 0
            for pattern in patterns:
                field_ = weights @ pattern
                row_scale = np.maximum(np.abs(weights).sum(axis=1), 1e-12)
                normalized_margin = pattern * field_ / row_scale
                unstable = normalized_margin < margin
                count = int(unstable.sum())
                unstable_total += count
                if count == 0:
                    continue
                u = unstable.astype(float)
                outer = np.outer(pattern, pattern)
                weights += rate * outer * np.maximum(u[:, None], u[None, :]) * mask
            weights = (weights + weights.T) / 2.0
            np.fill_diagonal(weights, 0.0)
            if unstable_total == 0:
                break
        return HopfieldNetwork(weights, self.patterns)

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of neurons N."""
        return self.weights.shape[0]

    @property
    def num_patterns(self) -> int:
        """Number of stored patterns M."""
        return self.patterns.shape[0]

    @property
    def sparsity(self) -> float:
        """Sparsity over all ``n²`` slots, matching the paper's definition."""
        n = self.size
        return 1.0 - np.count_nonzero(self.weights) / float(n * n)

    def connection_matrix(self, name: Optional[str] = None) -> ConnectionMatrix:
        """Binarize the nonzero weights into a :class:`ConnectionMatrix`."""
        binary = (self.weights != 0.0).astype(np.uint8)
        return ConnectionMatrix.from_dense(binary, name=name or "hopfield")

    # ------------------------------------------------------------------
    # Recall dynamics
    # ------------------------------------------------------------------
    def recall(
        self,
        probe: np.ndarray,
        max_steps: int = 50,
        mode: str = "synchronous",
        rng: RngLike = None,
    ) -> np.ndarray:
        """Run recall dynamics from ``probe`` until a fixed point or ``max_steps``.

        Parameters
        ----------
        probe:
            ±1 start state of length N.
        mode:
            ``"synchronous"`` updates all neurons at once per step;
            ``"asynchronous"`` sweeps neurons in random order.
        """
        state = np.asarray(probe, dtype=float).copy()
        if state.shape != (self.size,):
            raise ValueError(f"probe must have shape ({self.size},), got {state.shape}")
        if mode not in ("synchronous", "asynchronous"):
            raise ValueError(f"mode must be 'synchronous' or 'asynchronous', got {mode!r}")
        rng = ensure_rng(rng)
        for _ in range(max_steps):
            if mode == "synchronous":
                activation = self.weights @ state
                new_state = np.where(activation >= 0.0, 1.0, -1.0)
                if np.array_equal(new_state, state):
                    break
                state = new_state
            else:
                changed = False
                for i in rng.permutation(self.size):
                    activation = self.weights[i] @ state
                    value = 1.0 if activation >= 0.0 else -1.0
                    if value != state[i]:
                        state[i] = value
                        changed = True
                if not changed:
                    break
        return state.astype(np.int8)

    def energy(self, state: np.ndarray) -> float:
        """Hopfield energy ``-½ sᵀ W s`` of a ±1 state."""
        state = np.asarray(state, dtype=float)
        return float(-0.5 * state @ self.weights @ state)


def recognition_rate(
    network: HopfieldNetwork,
    flip_fraction: float = 0.1,
    trials_per_pattern: int = 5,
    match_threshold: float = 0.95,
    rng: RngLike = None,
) -> float:
    """Fraction of corrupted probes recalled back to their source pattern.

    A trial succeeds when the recalled state matches the original pattern on
    at least ``match_threshold`` of the entries (sign-flipped matches count
    too, since ``-x`` is always a Hopfield attractor alongside ``x``).
    The paper requires testbench recognition rates above 90 % (Sec. 4.1).
    """
    check_probability("flip_fraction", flip_fraction)
    check_probability("match_threshold", match_threshold)
    if trials_per_pattern < 1:
        raise ValueError("trials_per_pattern must be >= 1")
    rng = ensure_rng(rng)
    successes = 0
    total = 0
    for pattern in network.patterns:
        for _ in range(trials_per_pattern):
            probe = corrupt_pattern(pattern, flip_fraction, rng=rng)
            recalled = network.recall(probe)
            agreement = np.mean(recalled == pattern)
            if max(agreement, 1.0 - agreement) >= match_threshold:
                successes += 1
            total += 1
    return successes / float(total)
