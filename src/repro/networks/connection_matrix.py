"""Binary connection matrices — the central data structure of AutoNCS.

The paper (Sec. 2.1) represents a neural network by a connection matrix
``W ∈ R^{n×n}`` whose entry ``w_ij`` is 1 when input neuron *i* connects to
output neuron *j* and 0 otherwise ("connection matrix" and "network" are used
interchangeably).  :class:`ConnectionMatrix` wraps such a matrix with the
operations the clustering flow needs:

* counting connections inside / outside a set of clusters,
* removing within-cluster connections (building the "remaining network" of
  ISC, Sec. 3.4),
* extracting submatrices for crossbar mapping,
* symmetrization for spectral clustering on directed topologies.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.utils.validation import check_binary_matrix, check_square


class ConnectionMatrix:
    """An immutable-by-convention binary ``n × n`` connection matrix.

    Parameters
    ----------
    matrix:
        A square array-like of 0/1 entries.  The input is copied and stored
        as ``uint8``.
    name:
        Optional label carried through reports and figures.
    """

    def __init__(self, matrix: np.ndarray, name: str = "network") -> None:
        matrix = np.asarray(matrix)
        check_square("matrix", matrix)
        check_binary_matrix("matrix", matrix)
        self._matrix = matrix.astype(np.uint8, copy=True)
        self.name = str(name)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def matrix(self) -> np.ndarray:
        """A read-only view of the underlying 0/1 matrix."""
        view = self._matrix.view()
        view.flags.writeable = False
        return view

    @property
    def size(self) -> int:
        """Number of neurons ``n``."""
        return self._matrix.shape[0]

    @property
    def num_connections(self) -> int:
        """Total number of 1-entries (synapses) in the network."""
        return int(self._matrix.sum())

    @property
    def sparsity(self) -> float:
        """``1 - connections / n²`` — the paper's sparsity definition (Sec. 2.2)."""
        n = self.size
        if n == 0:
            return 1.0
        return 1.0 - self.num_connections / float(n * n)

    @property
    def density(self) -> float:
        """``connections / n²`` — the complement of :attr:`sparsity`."""
        return 1.0 - self.sparsity

    def digest(self) -> str:
        """A stable SHA-256 content hash of the topology.

        Two networks with the same connection matrix share a digest
        regardless of their :attr:`name`; the digest is stable across
        processes and sessions, so it can key on-disk caches (see
        :mod:`repro.runtime.cache`).
        """
        h = hashlib.sha256()
        h.update(f"connection-matrix:{self.size}:".encode("ascii"))
        h.update(np.ascontiguousarray(self._matrix).tobytes())
        return h.hexdigest()

    def is_symmetric(self) -> bool:
        """True when the topology is undirected (``W == Wᵀ``)."""
        return bool(np.array_equal(self._matrix, self._matrix.T))

    def copy(self, name: str = None) -> "ConnectionMatrix":
        """Return an independent copy, optionally renamed."""
        return ConnectionMatrix(self._matrix, name=self.name if name is None else name)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConnectionMatrix):
            return NotImplemented
        return np.array_equal(self._matrix, other._matrix)

    def __hash__(self) -> int:  # pragma: no cover - identity hashing only
        return id(self)

    def __repr__(self) -> str:
        return (
            f"ConnectionMatrix(name={self.name!r}, n={self.size}, "
            f"connections={self.num_connections}, sparsity={self.sparsity:.4f})"
        )

    # ------------------------------------------------------------------
    # Cluster-oriented operations
    # ------------------------------------------------------------------
    def symmetrized(self) -> np.ndarray:
        """Return ``max(W, Wᵀ)`` as float — the similarity graph used by MSC.

        Spectral clustering requires an undirected similarity; for directed
        topologies a connection in either direction makes the pair similar.
        """
        m = self._matrix
        return np.maximum(m, m.T).astype(float)

    def submatrix(self, rows: Sequence[int], cols: Sequence[int] = None) -> np.ndarray:
        """Extract the block ``W[rows, cols]`` (``cols`` defaults to ``rows``)."""
        rows = np.asarray(list(rows), dtype=int)
        cols = rows if cols is None else np.asarray(list(cols), dtype=int)
        self._check_indices(rows)
        self._check_indices(cols)
        return self._matrix[np.ix_(rows, cols)].copy()

    def connections_within(self, cluster: Sequence[int]) -> int:
        """Number of connections with both endpoints inside ``cluster``.

        This is the crossbar-utilized-connection count *m* of Sec. 3.1 for a
        cluster mapped to a crossbar.
        """
        idx = np.asarray(list(cluster), dtype=int)
        self._check_indices(idx)
        if idx.size == 0:
            return 0
        return int(self._matrix[np.ix_(idx, idx)].sum())

    def connections_within_clusters(self, clusters: Iterable[Sequence[int]]) -> int:
        """Total within-cluster connections over a disjoint cluster list."""
        return sum(self.connections_within(c) for c in clusters)

    def outlier_count(self, clusters: Iterable[Sequence[int]]) -> int:
        """Connections not covered by any cluster — the paper's *outliers*."""
        return self.num_connections - self.connections_within_clusters(clusters)

    def outlier_ratio(self, clusters: Iterable[Sequence[int]]) -> float:
        """Fraction of connections that are outliers (0 when the net is empty)."""
        total = self.num_connections
        if total == 0:
            return 0.0
        return self.outlier_count(clusters) / total

    def remove_cluster(self, cluster: Sequence[int]) -> "ConnectionMatrix":
        """Return a new network with within-``cluster`` connections deleted.

        Used by ISC (Algorithm 3, line 12) to build the remaining network
        after a cluster has been realized on a crossbar.
        """
        idx = np.asarray(list(cluster), dtype=int)
        self._check_indices(idx)
        result = self._matrix.copy()
        if idx.size:
            result[np.ix_(idx, idx)] = 0
        return ConnectionMatrix(result, name=self.name)

    def remove_clusters(self, clusters: Iterable[Sequence[int]]) -> "ConnectionMatrix":
        """Delete within-cluster connections for every cluster in one pass."""
        result = self._matrix.copy()
        for cluster in clusters:
            idx = np.asarray(list(cluster), dtype=int)
            self._check_indices(idx)
            if idx.size:
                result[np.ix_(idx, idx)] = 0
        return ConnectionMatrix(result, name=self.name)

    def connection_list(self) -> List[Tuple[int, int]]:
        """All ``(i, j)`` pairs with ``w_ij == 1`` in row-major order."""
        rows, cols = np.nonzero(self._matrix)
        return list(zip(rows.tolist(), cols.tolist()))

    def permuted(self, order: Sequence[int]) -> "ConnectionMatrix":
        """Reorder neurons by ``order`` (used to draw clustered matrices)."""
        idx = np.asarray(list(order), dtype=int)
        if sorted(idx.tolist()) != list(range(self.size)):
            raise ValueError("order must be a permutation of range(n)")
        return ConnectionMatrix(self._matrix[np.ix_(idx, idx)], name=self.name)

    # ------------------------------------------------------------------
    def _check_indices(self, idx: np.ndarray) -> None:
        if idx.size and (idx.min() < 0 or idx.max() >= self.size):
            raise IndexError(
                f"neuron indices must lie in [0, {self.size}), got range "
                f"[{idx.min()}, {idx.max()}]"
            )
