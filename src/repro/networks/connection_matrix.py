"""Binary connection matrices — the central data structure of AutoNCS.

The paper (Sec. 2.1) represents a neural network by a connection matrix
``W ∈ R^{n×n}`` whose entry ``w_ij`` is 1 when input neuron *i* connects to
output neuron *j* and 0 otherwise ("connection matrix" and "network" are used
interchangeably).  :class:`ConnectionMatrix` wraps such a matrix with the
operations the clustering flow needs:

* counting connections inside / outside a set of clusters,
* removing within-cluster connections (building the "remaining network" of
  ISC, Sec. 3.4),
* extracting submatrices for crossbar mapping,
* symmetrization for spectral clustering on directed topologies.

Backends
--------
The matrix is stored in one of two interchangeable backends:

``dense``
    A ``uint8`` :class:`numpy.ndarray` — exact, cache-friendly, and the
    representation every small-network code path has always used.
``sparse``
    A canonical ``uint8`` :class:`scipy.sparse.csr_array` (sorted
    indices, no explicit zeros or duplicates) — the only representation
    that scales to the 50k–100k-neuron networks the Group-Scissor-style
    tiered clustering targets, where a dense ``n × n`` array would not
    even fit in memory.

Construction goes through the explicit classmethods
:meth:`~ConnectionMatrix.from_dense`, :meth:`~ConnectionMatrix.from_sparse`
and :meth:`~ConnectionMatrix.from_edges`; each accepts
``backend="auto"|"dense"|"sparse"``.  The ``auto`` rule (documented in
DESIGN.md) keeps small networks dense — so the paper-scale flows and the
tb1–tb3 goldens are bit-identical to the historical dense-only class —
and flips to sparse when the network is large or large-and-sparse:

* ``n >= SPARSE_MIN_SIZE`` (always sparse), or
* ``n >= SPARSE_DENSITY_SIZE`` and density ``<= SPARSE_MAX_DENSITY``.

Every operation is backend-agnostic and returns a result in the same
backend family; :meth:`~ConnectionMatrix.digest` hashes the canonical
edge list, so the two backends of the same topology share a digest (the
runtime cache and the service dedup layer key on it).
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np
from scipy import sparse as sp

from repro.utils.deprecation import warn_deprecated
from repro.utils.validation import check_binary_matrix, check_square

#: Networks at least this large always take the sparse backend.
SPARSE_MIN_SIZE = 4096

#: Networks at least this large take the sparse backend when sparse enough.
SPARSE_DENSITY_SIZE = 1024

#: Density at or below which a ``SPARSE_DENSITY_SIZE``-sized network is sparse.
SPARSE_MAX_DENSITY = 0.05

#: Valid ``backend=`` arguments of the constructors.
BACKENDS = ("auto", "dense", "sparse")


def select_backend(n: int, num_connections: int) -> str:
    """The ``auto`` backend rule: ``"dense"`` or ``"sparse"`` for a topology.

    Small networks stay dense (bit-identical to the historical dense-only
    implementation); large networks — or moderately large ones whose
    density is at most :data:`SPARSE_MAX_DENSITY` — go sparse.
    """
    if n >= SPARSE_MIN_SIZE:
        return "sparse"
    if n >= SPARSE_DENSITY_SIZE and num_connections <= SPARSE_MAX_DENSITY * n * n:
        return "sparse"
    return "dense"


def _check_backend(backend: str) -> str:
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    return backend


def _canonical_csr(matrix: sp.csr_array) -> sp.csr_array:
    """Canonicalize a CSR matrix: uint8, sorted indices, no zeros/dupes."""
    matrix = sp.csr_array(matrix)
    matrix.sum_duplicates()
    matrix.eliminate_zeros()
    matrix.sort_indices()
    # Any duplicate summation or non-binary input must still be 0/1.
    if matrix.nnz and not np.all(matrix.data == 1):
        bad = np.unique(matrix.data[matrix.data != 1])[:8]
        raise ValueError(f"matrix must contain only 0/1 entries, found values {bad}")
    return matrix.astype(np.uint8)


class ConnectionMatrix:
    """An immutable-by-convention binary ``n × n`` connection matrix.

    Use the explicit constructors :meth:`from_dense`, :meth:`from_sparse`
    or :meth:`from_edges`; the legacy raw-``ndarray`` ``__init__`` still
    works but emits a :class:`DeprecationWarning`.
    """

    # Constructed via classmethods; these annotations document the state.
    _dense: Optional[np.ndarray]
    _sparse: Optional[sp.csr_array]
    name: str

    def __init__(self, matrix: np.ndarray, name: str = "network") -> None:
        warn_deprecated(
            "ConnectionMatrix(matrix)",
            "ConnectionMatrix.from_dense / from_sparse / from_edges",
            stacklevel=2,
        )
        built = ConnectionMatrix.from_dense(matrix, name=name)
        self._dense = built._dense
        self._sparse = built._sparse
        self.name = built.name

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def _build(
        cls,
        *,
        dense: Optional[np.ndarray] = None,
        sparse: Optional[sp.csr_array] = None,
        name: str = "network",
    ) -> "ConnectionMatrix":
        """Internal trusted constructor — exactly one backend payload."""
        self = cls.__new__(cls)
        self._dense = dense
        self._sparse = sparse
        self.name = str(name)
        return self

    @classmethod
    def from_dense(
        cls,
        matrix: Union[np.ndarray, Sequence[Sequence[int]]],
        name: str = "network",
        backend: str = "auto",
    ) -> "ConnectionMatrix":
        """Build from a square 0/1 array-like (copied, stored as ``uint8``)."""
        _check_backend(backend)
        matrix = np.asarray(matrix)
        check_square("matrix", matrix)
        check_binary_matrix("matrix", matrix)
        dense = matrix.astype(np.uint8, copy=True)
        if backend == "auto":
            backend = select_backend(dense.shape[0], int(np.count_nonzero(dense)))
        if backend == "dense":
            return cls._build(dense=dense, name=name)
        return cls._build(sparse=_canonical_csr(sp.csr_array(dense)), name=name)

    @classmethod
    def from_sparse(
        cls,
        matrix,
        name: str = "network",
        backend: str = "auto",
    ) -> "ConnectionMatrix":
        """Build from any scipy sparse matrix/array of 0/1 entries."""
        _check_backend(backend)
        if not sp.issparse(matrix):
            raise TypeError(
                f"from_sparse expects a scipy sparse matrix, got "
                f"{type(matrix).__name__} (use from_dense for arrays)"
            )
        if matrix.shape[0] != matrix.shape[1]:
            raise ValueError(
                f"matrix must be a square 2-D matrix, got shape {matrix.shape}"
            )
        canonical = _canonical_csr(sp.csr_array(matrix))
        if backend == "auto":
            backend = select_backend(canonical.shape[0], int(canonical.nnz))
        if backend == "sparse":
            return cls._build(sparse=canonical, name=name)
        return cls._build(dense=canonical.toarray(), name=name)

    @classmethod
    def from_edges(
        cls,
        n: int,
        edges: Union[Iterable[Tuple[int, int]], np.ndarray, Tuple[np.ndarray, np.ndarray]],
        name: str = "network",
        backend: str = "auto",
    ) -> "ConnectionMatrix":
        """Build from ``(i, j)`` connection pairs (duplicates collapse to 1).

        ``edges`` may be an iterable of pairs, an ``(m, 2)`` array, or a
        ``(rows, cols)`` tuple of index arrays.
        """
        _check_backend(backend)
        n = int(n)
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        if isinstance(edges, tuple) and len(edges) == 2 and not np.isscalar(edges[0]):
            rows = np.asarray(edges[0], dtype=np.int64).ravel()
            cols = np.asarray(edges[1], dtype=np.int64).ravel()
        else:
            pairs = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
            if pairs.size == 0:
                pairs = pairs.reshape(0, 2)
            if pairs.ndim != 2 or pairs.shape[1] != 2:
                raise ValueError(
                    f"edges must be (i, j) pairs, got an array of shape {pairs.shape}"
                )
            rows = pairs[:, 0].astype(np.int64)
            cols = pairs[:, 1].astype(np.int64)
        if rows.shape != cols.shape:
            raise ValueError("rows and cols must have the same length")
        if rows.size and (
            rows.min() < 0 or rows.max() >= n or cols.min() < 0 or cols.max() >= n
        ):
            raise IndexError(f"edge endpoints must lie in [0, {n})")
        data = np.ones(rows.size, dtype=np.uint8)
        canonical = _canonical_csr(
            sp.csr_array(sp.coo_array((data, (rows, cols)), shape=(n, n)))
        )
        if backend == "auto":
            backend = select_backend(n, int(canonical.nnz))
        if backend == "sparse":
            return cls._build(sparse=canonical, name=name)
        return cls._build(dense=canonical.toarray(), name=name)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def backend(self) -> str:
        """The storage backend: ``"dense"`` or ``"sparse"``."""
        return "dense" if self._dense is not None else "sparse"

    @property
    def matrix(self) -> np.ndarray:
        """A read-only dense view of the 0/1 matrix.

        On the sparse backend this **materializes** the full ``n × n``
        array — fine for rendering or simulating small networks, ruinous
        at 100k neurons.  Scale-sensitive code should use
        :meth:`connection_arrays`, :meth:`submatrix` or :meth:`adjacency`
        instead.
        """
        if self._dense is not None:
            view = self._dense.view()
        else:
            view = self._sparse.toarray()
        view.flags.writeable = False
        return view

    def to_dense(self) -> np.ndarray:
        """A writable dense ``uint8`` copy of the matrix."""
        if self._dense is not None:
            return self._dense.copy()
        return self._sparse.toarray()

    def to_sparse(self) -> sp.csr_array:
        """A canonical ``csr_array`` copy of the matrix."""
        if self._sparse is not None:
            return self._sparse.copy()
        return _canonical_csr(sp.csr_array(self._dense))

    def adjacency(self, dtype=np.float64):
        """The adjacency in its backend-native form (ndarray or csr_array).

        This is the scale-safe accessor: sparse-backed networks return a
        CSR copy, dense ones an ndarray copy, both cast to ``dtype``.
        Consumers that only need matrix products (Laplacians, indicator
        contractions) stay backend-agnostic by operating on this.
        """
        if self._dense is not None:
            return self._dense.astype(dtype, copy=True)
        return self._sparse.astype(dtype)

    def with_backend(self, backend: str) -> "ConnectionMatrix":
        """This network stored in ``backend`` (same object semantics, copied)."""
        _check_backend(backend)
        if backend == "auto":
            backend = select_backend(self.size, self.num_connections)
        if backend == self.backend:
            return self.copy()
        if backend == "dense":
            return ConnectionMatrix._build(dense=self.to_dense(), name=self.name)
        return ConnectionMatrix._build(sparse=self.to_sparse(), name=self.name)

    @property
    def size(self) -> int:
        """Number of neurons ``n``."""
        store = self._dense if self._dense is not None else self._sparse
        return store.shape[0]

    @property
    def num_connections(self) -> int:
        """Total number of 1-entries (synapses) in the network."""
        if self._dense is not None:
            return int(self._dense.sum())
        return int(self._sparse.nnz)

    @property
    def sparsity(self) -> float:
        """``1 - connections / n²`` — the paper's sparsity definition (Sec. 2.2)."""
        n = self.size
        if n == 0:
            return 1.0
        return 1.0 - self.num_connections / float(n * n)

    @property
    def density(self) -> float:
        """``connections / n²`` — the complement of :attr:`sparsity`."""
        return 1.0 - self.sparsity

    def connection_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(rows, cols)`` index arrays of all connections, row-major order.

        The sparse-first primitive: O(connections) on both backends, never
        materializes the dense matrix.
        """
        if self._dense is not None:
            rows, cols = np.nonzero(self._dense)
            return rows.astype(np.int64), cols.astype(np.int64)
        coo = self._sparse.tocoo()  # canonical CSR → row-major, sorted cols
        return coo.row.astype(np.int64), coo.col.astype(np.int64)

    def out_degrees(self) -> np.ndarray:
        """Per-neuron fanout (row sums) as ``int64``."""
        if self._dense is not None:
            return self._dense.sum(axis=1, dtype=np.int64)
        return np.asarray(self._sparse.sum(axis=1)).ravel().astype(np.int64)

    def in_degrees(self) -> np.ndarray:
        """Per-neuron fanin (column sums) as ``int64``."""
        if self._dense is not None:
            return self._dense.sum(axis=0, dtype=np.int64)
        return np.asarray(self._sparse.sum(axis=0)).ravel().astype(np.int64)

    def digest(self) -> str:
        """A stable SHA-256 content hash of the topology.

        Two networks with the same connection matrix share a digest
        regardless of their :attr:`name` **or storage backend**; the
        digest is stable across processes and sessions, so it can key
        on-disk caches (see :mod:`repro.runtime.cache`).  Computed from
        the canonical edge list — O(connections), never densifies.
        """
        rows, cols = self.connection_arrays()
        h = hashlib.sha256()
        h.update(f"connection-matrix:{self.size}:{rows.size}:".encode("ascii"))
        h.update(np.ascontiguousarray(rows, dtype="<i8").tobytes())
        h.update(np.ascontiguousarray(cols, dtype="<i8").tobytes())
        return h.hexdigest()

    def is_symmetric(self) -> bool:
        """True when the topology is undirected (``W == Wᵀ``)."""
        if self._dense is not None:
            return bool(np.array_equal(self._dense, self._dense.T))
        return (self._sparse != self._sparse.T).nnz == 0

    def copy(self, name: Optional[str] = None) -> "ConnectionMatrix":
        """Return an independent copy, optionally renamed."""
        return ConnectionMatrix._build(
            dense=None if self._dense is None else self._dense.copy(),
            sparse=None if self._sparse is None else self._sparse.copy(),
            name=self.name if name is None else name,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConnectionMatrix):
            return NotImplemented
        if self.size != other.size:
            return False
        if self._dense is not None and other._dense is not None:
            return np.array_equal(self._dense, other._dense)
        mine = self.connection_arrays()
        theirs = other.connection_arrays()
        return np.array_equal(mine[0], theirs[0]) and np.array_equal(mine[1], theirs[1])

    def __hash__(self) -> int:  # pragma: no cover - identity hashing only
        return id(self)

    def __repr__(self) -> str:
        return (
            f"ConnectionMatrix(name={self.name!r}, n={self.size}, "
            f"connections={self.num_connections}, sparsity={self.sparsity:.4f}, "
            f"backend={self.backend!r})"
        )

    # ------------------------------------------------------------------
    # Cluster-oriented operations
    # ------------------------------------------------------------------
    def symmetrized(self) -> np.ndarray:
        """Return ``max(W, Wᵀ)`` as a **dense** float array.

        Spectral clustering requires an undirected similarity; for directed
        topologies a connection in either direction makes the pair similar.
        Kept for the small-network code paths; scale-sensitive consumers
        use :meth:`similarity`, which never densifies a sparse backend.
        """
        if self._dense is not None:
            m = self._dense
            return np.maximum(m, m.T).astype(float)
        return self.similarity().toarray()

    def similarity(self):
        """``max(W, Wᵀ)`` as float in the backend-native form.

        Dense backends return an ndarray (bit-identical to
        :meth:`symmetrized`); sparse backends return a ``csr_array``.
        """
        if self._dense is not None:
            m = self._dense
            return np.maximum(m, m.T).astype(float)
        m = self._sparse.astype(np.float64)
        sym = m.maximum(m.T)
        sym = sp.csr_array(sym)
        sym.sort_indices()
        return sym

    def submatrix(
        self, rows: Sequence[int], cols: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        """Extract the block ``W[rows, cols]`` (``cols`` defaults to ``rows``).

        Returns a dense ``uint8`` block — callers request cluster- or
        crossbar-sized windows, which stay small even on huge networks.
        """
        rows = np.asarray(list(rows), dtype=int)
        cols = rows if cols is None else np.asarray(list(cols), dtype=int)
        self._check_indices(rows)
        self._check_indices(cols)
        if self._dense is not None:
            return self._dense[np.ix_(rows, cols)].copy()
        if rows.size == 0 or cols.size == 0:
            return np.zeros((rows.size, cols.size), dtype=np.uint8)
        return self._sparse[rows][:, cols].toarray()

    def _membership(self, cluster: Sequence[int]) -> np.ndarray:
        idx = np.asarray(list(cluster), dtype=int)
        self._check_indices(idx)
        return idx

    def connections_within(self, cluster: Sequence[int]) -> int:
        """Number of connections with both endpoints inside ``cluster``.

        This is the crossbar-utilized-connection count *m* of Sec. 3.1 for a
        cluster mapped to a crossbar.
        """
        idx = self._membership(cluster)
        if idx.size == 0:
            return 0
        if self._dense is not None:
            return int(self._dense[np.ix_(idx, idx)].sum())
        rows, cols = self.connection_arrays()
        mask = np.zeros(self.size, dtype=bool)
        mask[idx] = True
        return int(np.count_nonzero(mask[rows] & mask[cols]))

    def connections_within_many(
        self, clusters: Sequence[Sequence[int]]
    ) -> np.ndarray:
        """Within-cluster connection counts for many **disjoint** clusters.

        One O(connections) pass instead of one scan per cluster — the
        primitive the ISC scoring loop runs every iteration.  Returns an
        ``int64`` array aligned with ``clusters``.
        """
        label = np.full(self.size, -1, dtype=np.int64)
        for position, cluster in enumerate(clusters):
            idx = self._membership(cluster)
            if np.any(label[idx] != -1):
                raise ValueError("clusters must be disjoint")
            label[idx] = position
        counts = np.zeros(len(clusters), dtype=np.int64)
        if not len(clusters):
            return counts
        rows, cols = self.connection_arrays()
        if rows.size == 0:
            return counts
        within = (label[rows] >= 0) & (label[rows] == label[cols])
        counts += np.bincount(label[rows][within], minlength=len(clusters))
        return counts

    def connections_within_clusters(self, clusters: Iterable[Sequence[int]]) -> int:
        """Total within-cluster connections over a disjoint cluster list."""
        return int(self.connections_within_many(list(clusters)).sum())

    def outlier_count(self, clusters: Iterable[Sequence[int]]) -> int:
        """Connections not covered by any cluster — the paper's *outliers*."""
        return self.num_connections - self.connections_within_clusters(clusters)

    def outlier_ratio(self, clusters: Iterable[Sequence[int]]) -> float:
        """Fraction of connections that are outliers (0 when the net is empty)."""
        total = self.num_connections
        if total == 0:
            return 0.0
        return self.outlier_count(clusters) / total

    def remove_cluster(self, cluster: Sequence[int]) -> "ConnectionMatrix":
        """Return a new network with within-``cluster`` connections deleted.

        Used by ISC (Algorithm 3, line 12) to build the remaining network
        after a cluster has been realized on a crossbar.
        """
        return self.remove_clusters([cluster])

    def remove_clusters(self, clusters: Iterable[Sequence[int]]) -> "ConnectionMatrix":
        """Delete within-cluster connections for every cluster in one pass."""
        clusters = list(clusters)
        if self._dense is not None:
            result = self._dense.copy()
            for cluster in clusters:
                idx = self._membership(cluster)
                if idx.size:
                    result[np.ix_(idx, idx)] = 0
            return ConnectionMatrix._build(dense=result, name=self.name)
        label = np.full(self.size, -1, dtype=np.int64)
        for position, cluster in enumerate(clusters):
            idx = self._membership(cluster)
            label[idx] = position
        rows, cols = self.connection_arrays()
        keep = ~((label[rows] >= 0) & (label[rows] == label[cols]))
        return ConnectionMatrix.from_edges(
            self.size, (rows[keep], cols[keep]), name=self.name, backend="sparse"
        )

    def connection_list(self) -> List[Tuple[int, int]]:
        """All ``(i, j)`` pairs with ``w_ij == 1`` in row-major order."""
        rows, cols = self.connection_arrays()
        return list(zip(rows.tolist(), cols.tolist()))

    def permuted(self, order: Sequence[int]) -> "ConnectionMatrix":
        """Reorder neurons by ``order`` (used to draw clustered matrices)."""
        idx = np.asarray(list(order), dtype=int)
        if sorted(idx.tolist()) != list(range(self.size)):
            raise ValueError("order must be a permutation of range(n)")
        if self._dense is not None:
            return ConnectionMatrix._build(
                dense=self._dense[np.ix_(idx, idx)], name=self.name
            )
        # result[a, b] = W[order[a], order[b]]  ⇒  edge (i, j) lands at
        # (inverse[i], inverse[j]).
        inverse = np.empty(self.size, dtype=np.int64)
        inverse[idx] = np.arange(self.size, dtype=np.int64)
        rows, cols = self.connection_arrays()
        return ConnectionMatrix.from_edges(
            self.size, (inverse[rows], inverse[cols]), name=self.name, backend="sparse"
        )

    # ------------------------------------------------------------------
    def _check_indices(self, idx: np.ndarray) -> None:
        if idx.size and (idx.min() < 0 or idx.max() >= self.size):
            raise IndexError(
                f"neuron indices must lie in [0, {self.size}), got range "
                f"[{idx.min()}, {idx.max()}]"
            )
