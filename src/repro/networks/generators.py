"""Synthetic sparse-network generators.

These provide controlled topologies for unit tests, property tests and
ablations: uniform random sparsity ("randomly distributed connections",
Sec. 3.2), planted block structure (the ideal case for clustering),
distance-decay connectivity (the neocortex locality of Sec. 2.2 [9]), and a
scale-free topology built on networkx.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx
import numpy as np

from repro.networks.connection_matrix import ConnectionMatrix
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive, check_probability


def random_sparse_network(
    n: int,
    density: float,
    symmetric: bool = True,
    rng: RngLike = None,
    name: str = "random",
) -> ConnectionMatrix:
    """Uniform random binary network with expected ``density`` off-diagonal fill."""
    check_positive("n", n)
    check_probability("density", density)
    rng = ensure_rng(rng)
    w = (rng.random((n, n)) < density).astype(np.uint8)
    np.fill_diagonal(w, 0)
    if symmetric:
        w = np.maximum(w, w.T)
    return ConnectionMatrix(w, name=name)


def block_diagonal_network(
    block_sizes: Sequence[int],
    within_density: float = 0.8,
    between_density: float = 0.01,
    rng: RngLike = None,
    name: str = "blocks",
) -> ConnectionMatrix:
    """Planted block-diagonal network — dense blocks, sparse background.

    The ideal clustering benchmark: MSC should recover the planted blocks.
    """
    check_probability("within_density", within_density)
    check_probability("between_density", between_density)
    sizes = [int(s) for s in block_sizes]
    if not sizes or any(s <= 0 for s in sizes):
        raise ValueError(f"block_sizes must be positive integers, got {block_sizes}")
    rng = ensure_rng(rng)
    n = sum(sizes)
    w = (rng.random((n, n)) < between_density).astype(np.uint8)
    start = 0
    for size in sizes:
        block = (rng.random((size, size)) < within_density).astype(np.uint8)
        w[start : start + size, start : start + size] = block
        start += size
    np.fill_diagonal(w, 0)
    w = np.maximum(w, w.T)
    return ConnectionMatrix(w, name=name)


def distance_decay_network(
    n: int,
    scale: float = 10.0,
    base_probability: float = 0.9,
    rng: RngLike = None,
    name: str = "distance-decay",
) -> ConnectionMatrix:
    """Locality-biased network: P(i↔j) = base · exp(-|i-j| / scale).

    Mirrors the biological observation the paper cites (Sec. 2.2 [9]) that
    cortical connectivity is concentrated in a spatial neighbourhood.
    """
    check_positive("n", n)
    check_positive("scale", scale)
    check_probability("base_probability", base_probability)
    rng = ensure_rng(rng)
    idx = np.arange(n)
    distance = np.abs(idx[:, None] - idx[None, :])
    probability = base_probability * np.exp(-distance / scale)
    w = (rng.random((n, n)) < probability).astype(np.uint8)
    np.fill_diagonal(w, 0)
    w = np.maximum(w, w.T)
    return ConnectionMatrix(w, name=name)


def scale_free_network(
    n: int,
    attachment: int = 2,
    rng: RngLike = None,
    name: str = "scale-free",
) -> ConnectionMatrix:
    """Barabási–Albert scale-free network via networkx.

    Produces hub-dominated sparse topologies, a stress case for clustering
    because hubs resist clean partitioning.
    """
    check_positive("n", n)
    check_positive("attachment", attachment)
    if attachment >= n:
        raise ValueError(f"attachment ({attachment}) must be < n ({n})")
    rng = ensure_rng(rng)
    seed = int(rng.integers(0, 2**31 - 1))
    graph = nx.barabasi_albert_graph(n, attachment, seed=seed)
    w = nx.to_numpy_array(graph, dtype=np.uint8)
    np.fill_diagonal(w, 0)
    return ConnectionMatrix(w, name=name)
