"""Synthetic sparse-network generators.

These provide controlled topologies for unit tests, property tests and
ablations: uniform random sparsity ("randomly distributed connections",
Sec. 3.2), planted block structure (the ideal case for clustering),
distance-decay connectivity (the neocortex locality of Sec. 2.2 [9]), and a
scale-free topology built on networkx.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx
import numpy as np

from repro.networks.connection_matrix import SPARSE_MIN_SIZE, ConnectionMatrix
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive, check_probability

#: Row-block size for the chunked large-``n`` sampling paths.
_CHUNK_ROWS = 2048


def random_sparse_network(
    n: int,
    density: float,
    symmetric: bool = True,
    rng: RngLike = None,
    name: str = "random",
) -> ConnectionMatrix:
    """Uniform random binary network with expected ``density`` off-diagonal fill.

    Large networks (``n >= SPARSE_MIN_SIZE``) are sampled in row blocks and
    assembled as edges so no dense ``n × n`` array is ever held.  Because
    ``Generator.random`` fills row-major and successive calls continue the
    same stream, the chunked path draws the identical boolean field as the
    dense path — the topology for a given seed does not depend on which
    path ran.
    """
    check_positive("n", n)
    check_probability("density", density)
    rng = ensure_rng(rng)
    if n < SPARSE_MIN_SIZE:
        w = (rng.random((n, n)) < density).astype(np.uint8)
        np.fill_diagonal(w, 0)
        if symmetric:
            w = np.maximum(w, w.T)
        return ConnectionMatrix.from_dense(w, name=name)
    row_parts = []
    col_parts = []
    for start in range(0, n, _CHUNK_ROWS):
        stop = min(start + _CHUNK_ROWS, n)
        block = rng.random((stop - start, n)) < density
        local_rows, cols = np.nonzero(block)
        rows = local_rows + start
        off_diagonal = rows != cols
        row_parts.append(rows[off_diagonal])
        col_parts.append(cols[off_diagonal])
    rows = np.concatenate(row_parts) if row_parts else np.empty(0, dtype=np.int64)
    cols = np.concatenate(col_parts) if col_parts else np.empty(0, dtype=np.int64)
    if symmetric:
        rows, cols = np.concatenate([rows, cols]), np.concatenate([cols, rows])
    return ConnectionMatrix.from_edges(n, (rows, cols), name=name, backend="sparse")


def block_diagonal_network(
    block_sizes: Sequence[int],
    within_density: float = 0.8,
    between_density: float = 0.01,
    rng: RngLike = None,
    name: str = "blocks",
) -> ConnectionMatrix:
    """Planted block-diagonal network — dense blocks, sparse background.

    The ideal clustering benchmark: MSC should recover the planted blocks.
    """
    check_probability("within_density", within_density)
    check_probability("between_density", between_density)
    sizes = [int(s) for s in block_sizes]
    if not sizes or any(s <= 0 for s in sizes):
        raise ValueError(f"block_sizes must be positive integers, got {block_sizes}")
    rng = ensure_rng(rng)
    n = sum(sizes)
    w = (rng.random((n, n)) < between_density).astype(np.uint8)
    start = 0
    for size in sizes:
        block = (rng.random((size, size)) < within_density).astype(np.uint8)
        w[start : start + size, start : start + size] = block
        start += size
    np.fill_diagonal(w, 0)
    w = np.maximum(w, w.T)
    return ConnectionMatrix.from_dense(w, name=name)


def distance_decay_network(
    n: int,
    scale: float = 10.0,
    base_probability: float = 0.9,
    rng: RngLike = None,
    name: str = "distance-decay",
) -> ConnectionMatrix:
    """Locality-biased network: P(i↔j) = base · exp(-|i-j| / scale).

    Mirrors the biological observation the paper cites (Sec. 2.2 [9]) that
    cortical connectivity is concentrated in a spatial neighbourhood.
    """
    check_positive("n", n)
    check_positive("scale", scale)
    check_probability("base_probability", base_probability)
    rng = ensure_rng(rng)
    idx = np.arange(n)
    distance = np.abs(idx[:, None] - idx[None, :])
    probability = base_probability * np.exp(-distance / scale)
    w = (rng.random((n, n)) < probability).astype(np.uint8)
    np.fill_diagonal(w, 0)
    w = np.maximum(w, w.T)
    return ConnectionMatrix.from_dense(w, name=name)


def scale_free_network(
    n: int,
    attachment: int = 2,
    rng: RngLike = None,
    name: str = "scale-free",
) -> ConnectionMatrix:
    """Barabási–Albert scale-free network via networkx.

    Produces hub-dominated sparse topologies, a stress case for clustering
    because hubs resist clean partitioning.
    """
    check_positive("n", n)
    check_positive("attachment", attachment)
    if attachment >= n:
        raise ValueError(f"attachment ({attachment}) must be < n ({n})")
    rng = ensure_rng(rng)
    seed = int(rng.integers(0, 2**31 - 1))
    graph = nx.barabasi_albert_graph(n, attachment, seed=seed)
    # Build straight from the (undirected) edge set — equivalent to the old
    # nx.to_numpy_array densification but memory-safe at 50k+ neurons.
    pairs = np.array(graph.edges(), dtype=np.int64).reshape(-1, 2)
    pairs = pairs[pairs[:, 0] != pairs[:, 1]]
    rows = np.concatenate([pairs[:, 0], pairs[:, 1]])
    cols = np.concatenate([pairs[:, 1], pairs[:, 0]])
    return ConnectionMatrix.from_edges(n, (rows, cols), name=name)
