"""Save / load connection matrices.

Two formats are supported:

* ``.npz`` — compressed numpy archive (canonical).  Dense-backed networks
  store the full ``matrix`` array (the historical format); sparse-backed
  ones store the edge arrays (``n``, ``rows``, ``cols``) so a 100k-neuron
  network round-trips without densifying.  The loader accepts both.
* edge-list text — one ``i j`` pair per line, human-diffable.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.networks.connection_matrix import ConnectionMatrix

PathLike = Union[str, "os.PathLike[str]"]


def save_network_npz(network: ConnectionMatrix, path: PathLike) -> None:
    """Write ``network`` to a compressed ``.npz`` archive."""
    if network.backend == "dense":
        np.savez_compressed(
            path, matrix=network.matrix, name=np.array(network.name)
        )
    else:
        rows, cols = network.connection_arrays()
        np.savez_compressed(
            path,
            n=np.array(network.size, dtype=np.int64),
            rows=rows,
            cols=cols,
            name=np.array(network.name),
        )


def load_network_npz(path: PathLike) -> ConnectionMatrix:
    """Load a network previously written by :func:`save_network_npz`."""
    with np.load(path, allow_pickle=False) as data:
        name = str(data["name"]) if "name" in data else "network"
        if "matrix" in data:
            return ConnectionMatrix.from_dense(data["matrix"], name=name)
        if "rows" in data and "cols" in data and "n" in data:
            return ConnectionMatrix.from_edges(
                int(data["n"]), (data["rows"], data["cols"]), name=name
            )
    raise ValueError(
        f"{path!s} is not a saved network (no 'matrix' or 'rows'/'cols'/'n' arrays)"
    )


def save_network_edgelist(network: ConnectionMatrix, path: PathLike) -> None:
    """Write the network as a text edge list: header then one ``i j`` per line."""
    rows, cols = network.connection_arrays()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# network {network.name} n={network.size}\n")
        for i, j in zip(rows.tolist(), cols.tolist()):
            handle.write(f"{i} {j}\n")


def load_network_edgelist(path: PathLike) -> ConnectionMatrix:
    """Load a network written by :func:`save_network_edgelist`."""
    n = None
    name = "network"
    edges = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                tokens = line[1:].split()
                for token in tokens:
                    if token.startswith("n="):
                        n = int(token[2:])
                if len(tokens) >= 2 and tokens[0] == "network":
                    name = tokens[1]
                continue
            i_str, j_str = line.split()
            edges.append((int(i_str), int(j_str)))
    if n is None:
        n = 1 + max((max(i, j) for i, j in edges), default=-1)
    return ConnectionMatrix.from_edges(n, edges, name=name)
