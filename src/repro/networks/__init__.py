"""Neural-network substrate: connection matrices and network builders.

This package provides everything AutoNCS consumes as input:

* :class:`~repro.networks.connection_matrix.ConnectionMatrix` — the binary
  connection topology (the "W" of the paper, Sec. 2.1).
* :mod:`~repro.networks.patterns` — random QR-code-like binary patterns used
  by the paper's testbenches (Sec. 4.1).
* :mod:`~repro.networks.hopfield` — sparse Hopfield networks storing those
  patterns, with recall and recognition-rate evaluation.
* :mod:`~repro.networks.ldpc` — LDPC parity-check-style bipartite networks
  (the 802.11 motivation of Sec. 2.2).
* :mod:`~repro.networks.generators` — synthetic sparse-network generators.
* :mod:`~repro.networks.metrics` — sparsity / degree / fanin+fanout metrics.
"""

from repro.networks.connection_matrix import (
    BACKENDS,
    SPARSE_DENSITY_SIZE,
    SPARSE_MAX_DENSITY,
    SPARSE_MIN_SIZE,
    ConnectionMatrix,
    select_backend,
)
from repro.networks.generators import (
    block_diagonal_network,
    distance_decay_network,
    random_sparse_network,
    scale_free_network,
)
from repro.networks.hopfield import HopfieldNetwork, recognition_rate
from repro.networks.ldpc import ldpc_network, regular_parity_check_matrix
from repro.networks.metrics import (
    degree_statistics,
    fanin_fanout,
    network_sparsity,
)
from repro.networks.patterns import qr_like_pattern, qr_like_patterns

__all__ = [
    "BACKENDS",
    "SPARSE_DENSITY_SIZE",
    "SPARSE_MAX_DENSITY",
    "SPARSE_MIN_SIZE",
    "ConnectionMatrix",
    "HopfieldNetwork",
    "block_diagonal_network",
    "degree_statistics",
    "distance_decay_network",
    "fanin_fanout",
    "ldpc_network",
    "network_sparsity",
    "qr_like_pattern",
    "qr_like_patterns",
    "random_sparse_network",
    "recognition_rate",
    "regular_parity_check_matrix",
    "scale_free_network",
    "select_backend",
]
