"""``repro.bench`` — the machine-readable perf-regression harness.

Every future PR must be able to *prove* a speedup and *protect* it
against regression.  This module runs tagged micro/flow benchmarks under
the runtime :class:`~repro.runtime.runner.Runner`, records wall time +
QoR + observability counters for each, and emits schema-versioned JSON
trajectories (``BENCH_routing.json`` / ``BENCH_flow.json`` at the repo
root) that ``--check`` gates future runs against.

Suites
------
``routing``
    Micro-benchmarks of the global router in isolation: each scaled
    paper testbench is clustered, mapped and placed once, then routed
    with both algorithms (``ordered`` and ``negotiated``).  QoR is
    wirelength / overflow / rip-up statistics; counters are the maze
    search totals (heap pushes/pops, visited bins).  When the compiled
    routing kernel is available (``--kernel``, optional Numba
    dependency), each case is additionally run through the kernel as a
    ``tb<i>.<algorithm>.kernel`` record carrying ``speedup_vs_python``
    (same-run wall-time ratio, machine-independent); ``--check`` then
    enforces bit-identical QoR/counters against the python record and
    the ``KERNEL_SPEEDUP_FLOOR`` (≥5×) target.
``flow``
    End-to-end ``AutoNCS.run`` on testbench 1 with both routing
    algorithms — wall time, per-stage seconds and the eq. (3) cost
    metrics — plus the chaos overhead records: ``chaos.null`` (resilient
    runner, no faults; the gate pins retries/faults/failures at zero)
    and ``chaos.transient`` (injected flakes; the gate pins full
    recovery).
``service``
    A load test of the mapping service (:mod:`repro.service`): an
    in-process HTTP server under a seeded ≥90 %-cache-hit request mix
    (:mod:`repro.service.loadtest`).  Records p50/p99 latency and
    throughput (machine-dependent, ungated by default) alongside the
    deterministic serving invariants the gate pins: the miss ratio
    (dedup must execute each unique flow exactly once), errors, and
    the flow/failure counters.  The profile is fixed — independent of
    ``--fast`` — so one committed baseline serves every CI lane
    (``mode="load"`` in the JSON).
``clustering``
    The large-scale clustering pipeline on a 50k-neuron scale-free
    network: sparse generation, the tiered
    :func:`~repro.clustering.hierarchical.cluster_hierarchical` pass,
    AutoNCS mapping, and independent coverage/hardware verification.
    QoR is the clustering quality the sparse redesign must hold
    (outlier ratio, crossbar count, coarse-cut ratio, verification
    failures pinned at zero); wall time is recorded per stage and only
    gated under ``--time-threshold``.  Like ``service`` the profile is
    fixed — ``--fast`` is ignored and one committed baseline
    (``mode="scale"``) serves every lane; ``--dimension`` still
    overrides for local iteration (the gate rejects mismatched runs).

Regression policy
-----------------
All gated metrics are lower-is-better.  A candidate metric regresses
when it exceeds ``baseline · (1 + threshold/100) + atol`` (small
per-metric absolute slack absorbs benign cross-platform drift, see
``_ATOL``).  Wall time is machine-dependent and is only gated when an
explicit ``--time-threshold`` is passed; the same policy covers
latency/seconds-named QoR metrics, and throughput-style metrics
(higher-is-better, machine-dependent) are recorded but never gated —
see :func:`metric_gate`.  QoR and counters outside those classes are
deterministic for a fixed seed and are gated by default.  Refresh the
committed baselines intentionally with ``--update-baseline`` (the
``--update-golden`` of the perf layer) and commit the diff.

Entry points: ``python -m repro bench`` and ``python benchmarks/harness.py``.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Bump when the BENCH_*.json layout changes incompatibly.
SCHEMA_VERSION = 1

#: The known suites, in run order.
SUITES = ("routing", "flow", "service", "clustering")

#: suite -> committed baseline file name (repo root).
BASELINE_FILES = {suite: f"BENCH_{suite}.json" for suite in SUITES}

#: Default regression threshold (percent) for QoR metrics and counters.
DEFAULT_THRESHOLD_PCT = 20.0

#: Minimum compiled-kernel speedup over the python reference that
#: ``--check`` enforces on routing ``.kernel`` records (the ROADMAP
#: "native-speed routing hot path" target).
KERNEL_SPEEDUP_FLOOR = 5.0

#: Routing counters that legitimately differ between the python and
#: kernel engines (batch bookkeeping; the python path memoizes
#: heuristics the kernel computes inline) — excluded from the parity
#: comparison of ``kernel_gate_failures``.
_KERNEL_ONLY_COUNTERS = frozenset((
    "routing.kernel_batches",
    "routing.kernel_wires",
    "routing.heuristic_builds",
    "routing.heuristic_hits",
))

#: Suite-default testbench dimensions: CI smoke vs full trajectory.
FAST_DIMENSION = 64
FULL_DIMENSION = 120

#: Absolute slack per metric name — integer-ish metrics that legitimately
#: wobble by a few units across platforms (eigensolver/BLAS drift moves
#: the placement slightly, which moves routing decisions).
_ATOL = {
    "overflow_wires": 2.0,
    "relax_rounds": 1.0,
    "ripup_iterations": 2.0,
    "ripups": 48.0,
    "routing.maze_searches": 16.0,
}

#: The ``service`` suite's fixed load profile.  Deliberately independent
#: of ``--fast``: latency percentiles need enough samples to be
#: meaningful, and one profile means one committed baseline for every
#: lane (the suite's JSON carries ``mode="load"``).
SERVICE_MODE = "load"
SERVICE_REQUESTS = 1200
SERVICE_CLIENTS = 16
SERVICE_UNIQUE_JOBS = 8
SERVICE_WORKERS = 4

#: Largest network in the service mix (doubles as the suite dimension).
SERVICE_DIMENSION = 16 + 2 * (SERVICE_UNIQUE_JOBS - 1)

#: The ``clustering`` suite's fixed scale profile.  Also independent of
#: ``--fast``: the suite exists to prove the sparse-first network core
#: holds at a scale the dense path cannot reach, and one profile means
#: one committed baseline (``mode="scale"`` in the JSON).
CLUSTERING_MODE = "scale"
CLUSTERING_DIMENSION = 50_000
CLUSTERING_ATTACHMENT = 2  # Barabási–Albert edges-per-new-neuron


def metric_gate(name: str) -> str:
    """Gate class of a QoR/counter metric: ``always``/``time``/``never``.

    ``time`` metrics (wall-clock-like: a name containing ``seconds`` or
    ``latency``) are machine-dependent and only gate under an explicit
    ``--time-threshold``; ``never`` metrics (``throughput``/``rps``/
    ``per_second``) are higher-is-better *and* machine-dependent, so
    they are recorded for trend reading but never gated.  Everything
    else gates at the default threshold.
    """
    lowered = name.lower()
    if any(
        marker in lowered
        for marker in ("throughput", "rps", "per_second", "speedup")
    ):
        return "never"
    if any(marker in lowered for marker in ("seconds", "latency")):
        return "time"
    return "always"


@dataclass
class BenchRecord:
    """One benchmark's measurements: wall time, QoR and counters."""

    name: str
    tags: List[str]
    wall_seconds: float
    qor: Dict[str, float] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass
class SuiteResult:
    """One suite's full run, ready to serialize as ``BENCH_<suite>.json``."""

    suite: str
    mode: str  # "fast" | "full"
    seed: int
    dimension: int
    package_version: str
    benchmarks: List[BenchRecord] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "suite": self.suite,
            "mode": self.mode,
            "seed": self.seed,
            "dimension": self.dimension,
            "package_version": self.package_version,
            "benchmarks": [record.to_dict() for record in self.benchmarks],
        }

    def format_table(self) -> str:
        """Aligned plain-text summary (the repo-wide result-object surface)."""
        lines = [
            f"bench suite {self.suite!r} — mode={self.mode} seed={self.seed} "
            f"dimension={self.dimension}"
        ]
        width = max((len(r.name) for r in self.benchmarks), default=4)
        for record in self.benchmarks:
            qor = "  ".join(
                f"{k}={v:,.1f}" if isinstance(v, float) else f"{k}={v}"
                for k, v in record.qor.items()
            )
            lines.append(
                f"  {record.name:<{width}}  {record.wall_seconds:8.3f}s  {qor}"
            )
        return "\n".join(lines)


def suite_result_from_dict(payload: dict) -> SuiteResult:
    """Rebuild a :class:`SuiteResult` from a ``BENCH_*.json`` payload.

    Raises ``ValueError`` on schema mismatches, so consumers fail loudly
    instead of silently comparing incompatible trajectories.
    """
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported bench schema_version {version!r} "
            f"(this build reads {SCHEMA_VERSION})"
        )
    for key in ("suite", "mode", "seed", "dimension", "benchmarks"):
        if key not in payload:
            raise ValueError(f"bench payload is missing the {key!r} field")
    return SuiteResult(
        suite=str(payload["suite"]),
        mode=str(payload["mode"]),
        seed=int(payload["seed"]),
        dimension=int(payload["dimension"]),
        package_version=str(payload.get("package_version", "")),
        benchmarks=[
            BenchRecord(
                name=str(entry["name"]),
                tags=[str(tag) for tag in entry.get("tags", [])],
                wall_seconds=float(entry["wall_seconds"]),
                qor={k: float(v) for k, v in entry.get("qor", {}).items()},
                counters={k: float(v) for k, v in entry.get("counters", {}).items()},
            )
            for entry in payload["benchmarks"]
        ],
    )


def write_suite_json(result: SuiteResult, path: Path) -> None:
    """Serialize one suite to ``path`` (stable key order, trailing newline)."""
    path.write_text(
        json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def load_suite_json(path: Path) -> SuiteResult:
    """Load and schema-validate one ``BENCH_*.json`` file."""
    return suite_result_from_dict(json.loads(path.read_text(encoding="utf-8")))


# ----------------------------------------------------------------------
# Benchmark executors (module-level: they run as runtime Runner jobs)
# ----------------------------------------------------------------------
def _counters_of(snapshot, prefix: str = "routing.") -> Dict[str, float]:
    return {
        name: float(value)
        for name, value in snapshot.counters.items()
        if name.startswith(prefix)
    }


def _bench_routing_case(rng, *, netlist, placement, technology, algorithm,
                        kernel="python"):
    """Route one placed netlist with ``algorithm``; return measurements."""
    from repro.observability import Recorder, recording
    from repro.physical.routing.router import RoutingConfig, route
    from repro.utils.timers import Timer

    if kernel != "python":
        from repro.physical.routing.kernel import resolve_kernel

        if resolve_kernel(kernel) == "numba":
            _warm_routing_kernel()
    recorder = Recorder()
    with recording(recorder):
        with Timer() as timer:
            result = route(
                netlist,
                placement,
                technology=technology,
                config=RoutingConfig(algorithm=algorithm, kernel=kernel),
            )
    return {
        "wall_seconds": timer.elapsed,
        "qor": {
            "wirelength_um": result.total_wirelength_um,
            "overflow_wires": float(result.overflow_wires),
            "relax_rounds": float(result.relax_rounds),
            "ripup_iterations": float(result.ripup_iterations),
            "ripups": float(result.ripups),
        },
        "counters": _counters_of(recorder.snapshot()),
    }


def _warm_routing_kernel() -> None:
    """Trigger JIT compilation outside the timed region (tiny route)."""
    from repro.physical.routing.grid import RoutingGrid
    from repro.physical.routing.kernel import route_wires_kernel
    from repro.physical.routing.maze import MazeWorkspace

    grid = RoutingGrid(
        origin=(0.0, 0.0), width=30.0, height=30.0, bin_um=10.0, capacity=2
    )
    workspace = MazeWorkspace(grid)
    route_wires_kernel(
        grid, workspace, [((0, 0), (2, 2))],
        window_margin=2, congestion_weight=2.0,
    )
    route_wires_kernel(
        grid, workspace, [((2, 2), (0, 0))],
        window_margin=2, congestion_weight=2.0, present_weight=0.5,
    )


def _bench_flow_case(rng, *, network, config):
    """Run the full AutoNCS flow; return wall time + cost + counters."""
    from repro.core.autoncs import AutoNCS
    from repro.observability import Recorder, recording
    from repro.utils.timers import Timer

    recorder = Recorder()
    with recording(recorder):
        with Timer() as timer:
            result = AutoNCS(config).run(network, rng=rng)
    cost = result.design.cost
    return {
        "wall_seconds": timer.elapsed,
        "qor": {
            "wirelength_um": cost.wirelength_um,
            "area_um2": cost.area_um2,
            "delay_ns": cost.average_delay_ns,
            "overflow_wires": float(result.design.routing.overflow_wires),
        },
        "counters": _counters_of(recorder.snapshot()),
    }


def _bench_chaos_unit(rng, *, n):
    """Cheap deterministic unit job for the chaos benchmarks (O(n) numpy)."""
    values = rng.standard_normal(int(n))
    return float(np.abs(values).sum())


def _bench_chaos_case(rng, *, plan_spec, seed, cells):
    """Run ``cells`` cheap jobs through a resilient inner runner.

    ``plan_spec`` is a :meth:`~repro.runtime.chaos.FaultPlan.parse` spec
    (empty = chaos off).  QoR is the retry/fault/failure accounting — all
    deterministic for a fixed seed, so the regression gate pins them: the
    ``chaos.null`` record must keep zero retries, faults and failures
    (the null-plan zero-overhead contract), and ``chaos.transient`` must
    keep recovering every injected flake.
    """
    from repro.observability import Recorder, recording
    from repro.runtime import FaultPlan, Job, ResilienceConfig, RetryPolicy, Runner
    from repro.utils.timers import Timer

    plan = FaultPlan.parse(plan_spec, seed=seed) if plan_spec else None
    resilience = ResilienceConfig(
        retry=RetryPolicy(max_attempts=3, backoff_base=0.001, backoff_max=0.002),
        timeout_seconds=60.0,
    )
    jobs = [
        Job(kind="bench_chaos_unit", label=f"unit-{index}",
            payload={"n": 4096}, seed=seed * 1000 + index)
        for index in range(cells)
    ]
    recorder = Recorder()
    with recording(recorder):
        with Timer() as timer:
            results = Runner(resilience=resilience, chaos=plan).run(jobs)
    snapshot = recorder.snapshot()
    counters = {
        name: float(value)
        for name, value in snapshot.counters.items()
        if name.startswith(("runner.", "chaos."))
    }
    return {
        "wall_seconds": timer.elapsed,
        "qor": {
            "failures": counters.get("runner.failures", 0.0),
            "retries": counters.get("runner.retries", 0.0),
            "faults_injected": counters.get("chaos.faults_injected", 0.0),
            "checksum": float(
                sum(r.value for r in results if r.value is not None)
            ),
        },
        "counters": counters,
    }


def _run_service_suite(seed: int) -> "SuiteResult":
    """The ``service`` suite: an in-process server under the fixed mix.

    The request mix is ``SERVICE_REQUESTS`` submissions cycling over
    ``SERVICE_UNIQUE_JOBS`` distinct tiny flows from
    ``SERVICE_CLIENTS`` threads — so the dedup/cache layer should
    execute each unique flow exactly once (the gated ``miss_ratio``)
    and serve everything else from the coalescer or the artifact cache.
    Runs against a throwaway cache so results never leak between runs.
    """
    import tempfile

    import repro
    from repro.service import ServiceConfig, ServiceServer
    from repro.service.loadtest import default_payloads, run_load
    from repro.utils.timers import Timer

    result = SuiteResult(
        suite="service",
        mode=SERVICE_MODE,
        seed=seed,
        dimension=SERVICE_DIMENSION,
        package_version=repro.__version__,
    )
    with tempfile.TemporaryDirectory(prefix="repro-bench-service-") as tmp:
        config = ServiceConfig(
            workers=SERVICE_WORKERS,
            max_queue=max(64, SERVICE_UNIQUE_JOBS * 4),
            cache_dir=Path(tmp) / "cache",
        )
        with ServiceServer(config) as server:
            with Timer() as timer:
                report = run_load(
                    server.url,
                    requests=SERVICE_REQUESTS,
                    clients=SERVICE_CLIENTS,
                    payloads=default_payloads(SERVICE_UNIQUE_JOBS, seed=seed),
                )
            metrics = server.service.metrics
            executed = metrics.counter("jobs_executed")
            failed = metrics.counter("failed")
    result.benchmarks.append(
        BenchRecord(
            name="service.load",
            tags=["service", "load", "http"],
            wall_seconds=timer.elapsed,
            qor={
                "requests": float(report.requests),
                "errors": float(report.errors),
                "miss_ratio": executed / max(1, report.requests),
                "p50_latency_seconds": report.p50_seconds,
                "p99_latency_seconds": report.p99_seconds,
                "throughput_rps": report.throughput_rps,
            },
            counters={
                "service.jobs_executed": float(executed),
                "service.failed": float(failed),
                "service.rejected": float(report.rejected),
            },
        )
    )
    return result


def _run_clustering_suite(seed: int, dimension: Optional[int] = None) -> "SuiteResult":
    """The ``clustering`` suite: sparse 50k pipeline, stage by stage.

    Runs in-process (no runtime Runner): the stages feed each other a
    50k-neuron sparse network and its clustering, which have no business
    crossing a process-pool pickle boundary.  Each stage is timed
    separately so the trajectory shows *where* scale regressions land
    (generation vs clustering vs mapping vs verification).
    """
    import repro
    from repro.core.autoncs import AutoNCS
    from repro.mapping.autoncs_mapping import autoncs_mapping
    from repro.networks import scale_free_network
    from repro.observability import Recorder, recording
    from repro.utils.timers import Timer
    from repro.verify.verifier import verify_mapping

    n = dimension or CLUSTERING_DIMENSION
    result = SuiteResult(
        suite="clustering",
        mode=CLUSTERING_MODE,
        seed=seed,
        dimension=n,
        package_version=repro.__version__,
    )
    flow = AutoNCS()
    recorder = Recorder()
    with recording(recorder):
        with Timer() as timer:
            network = scale_free_network(n, CLUSTERING_ATTACHMENT, rng=seed)
        result.benchmarks.append(
            BenchRecord(
                name="scale.generate",
                tags=["clustering", "generate", "scale-free"],
                wall_seconds=timer.elapsed,
                qor={
                    "neurons": float(network.size),
                    "connections": float(network.num_connections),
                    "dense_backend": 0.0 if network.backend == "sparse" else 1.0,
                },
            )
        )
        with Timer() as timer:
            isc = flow.cluster(network, rng=np.random.default_rng(seed))
        result.benchmarks.append(
            BenchRecord(
                name="scale.cluster",
                tags=["clustering", "hierarchical", "isc"],
                wall_seconds=timer.elapsed,
                qor={
                    "crossbars": float(len(isc.crossbars)),
                    "outlier_ratio": isc.outlier_ratio,
                    "cut_ratio": float(isc.metadata.get("cut_ratio", 0.0)),
                    "tiers": float(isc.metadata.get("tiers", 1)),
                },
                counters={
                    name: float(value)
                    for name, value in recorder.snapshot().counters.items()
                    if name.startswith("hierarchical.")
                },
            )
        )
        with Timer() as timer:
            mapping = autoncs_mapping(isc, library=flow.library)
        result.benchmarks.append(
            BenchRecord(
                name="scale.map",
                tags=["clustering", "mapping"],
                wall_seconds=timer.elapsed,
                qor={
                    "crossbar_instances": float(mapping.num_crossbars),
                    "discrete_synapses": float(mapping.num_synapses),
                    "netlist_cells": float(len(mapping.netlist.cells)),
                },
            )
        )
        with Timer() as timer:
            report = verify_mapping(mapping, checks=("coverage", "hardware"))
        result.benchmarks.append(
            BenchRecord(
                name="scale.verify",
                tags=["clustering", "verify"],
                wall_seconds=timer.elapsed,
                qor={
                    # The gate pins these at zero: the 50k design must
                    # keep verifying clean.
                    "failed_checks": float(
                        sum(1 for c in report.checks if c.status == "fail")
                    ),
                    "violations": float(len(report.violations)),
                },
            )
        )
    return result


def _register_executors() -> None:
    from repro.runtime import register_executor

    register_executor("bench_routing", _bench_routing_case)
    register_executor("bench_flow", _bench_flow_case)
    register_executor("bench_chaos", _bench_chaos_case)
    register_executor("bench_chaos_unit", _bench_chaos_unit)


# ----------------------------------------------------------------------
# Suite drivers
# ----------------------------------------------------------------------
def _placed_testbench(index: int, dimension: int, seed: int):
    """Cluster, map and place one scaled testbench (shared across cases)."""
    from repro.core.autoncs import AutoNCS
    from repro.experiments.testbenches import build_testbench, scaled_testbench
    from repro.mapping.autoncs_mapping import autoncs_mapping
    from repro.physical.placement.placer import place

    flow = AutoNCS()
    instance = build_testbench(scaled_testbench(index, dimension), rng=seed)
    isc = flow.cluster(instance.network, rng=np.random.default_rng(seed))
    mapping = autoncs_mapping(isc, library=flow.library)
    placement = place(
        mapping.netlist,
        technology=flow.config.technology,
        rng=np.random.default_rng(seed),
    )
    return instance.network, mapping.netlist, placement, flow.config.technology


def run_suite(
    suite: str,
    *,
    fast: bool = False,
    seed: int = 42,
    jobs: int = 1,
    dimension: Optional[int] = None,
    testbenches: Sequence[int] = (1, 2, 3),
    resilience=None,
    kernel: str = "auto",
) -> SuiteResult:
    """Run one benchmark suite and return its :class:`SuiteResult`.

    ``dimension`` overrides the suite-default scaled-testbench size
    (useful for tests and quick local iteration); ``testbenches``
    narrows the paper testbenches covered.  ``kernel`` controls the
    routing suite's compiled-kernel records: python-reference records
    are always emitted; ``"auto"`` adds ``.kernel`` records when Numba
    is importable, ``"numba"`` requires it, ``"python"`` skips them.
    """
    import repro
    from repro.runtime import Job, Runner

    if suite not in SUITES:
        raise ValueError(f"unknown bench suite {suite!r} (known: {SUITES})")
    if suite == "service":
        # Fixed load profile, deliberately ignoring fast/dimension/
        # testbenches — see the module docs.
        return _run_service_suite(seed)
    if suite == "clustering":
        # Fixed scale profile (ignores --fast); --dimension still
        # overrides for local iteration and the harness tests.
        return _run_clustering_suite(seed, dimension=dimension)
    _register_executors()
    mode = "fast" if fast else "full"
    dim = dimension if dimension else (FAST_DIMENSION if fast else FULL_DIMENSION)
    result = SuiteResult(
        suite=suite,
        mode=mode,
        seed=seed,
        dimension=dim,
        package_version=repro.__version__,
    )
    jobs_list: List[Job] = []
    names: List[Tuple[str, List[str]]] = []
    if suite == "routing":
        from repro.physical.routing.kernel import resolve_kernel

        # Resolving here (not per job) makes an explicit --kernel numba
        # without the dependency fail the whole run loudly up front.
        with_kernel = kernel != "python" and resolve_kernel(kernel) == "numba"
        for index in testbenches:
            network, netlist, placement, technology = _placed_testbench(
                index, dim, seed
            )
            for algorithm in ("ordered", "negotiated"):
                payload = {
                    "netlist": netlist,
                    "placement": placement,
                    "technology": technology,
                    "algorithm": algorithm,
                }
                jobs_list.append(
                    Job(
                        kind="bench_routing",
                        label=f"route tb{index} {algorithm}",
                        payload={**payload, "kernel": "python"},
                        seed=seed,
                    )
                )
                names.append(
                    (f"tb{index}.{algorithm}", ["routing", algorithm, f"tb{index}"])
                )
                if with_kernel:
                    jobs_list.append(
                        Job(
                            kind="bench_routing",
                            label=f"route tb{index} {algorithm} kernel",
                            payload={**payload, "kernel": "numba"},
                            seed=seed,
                        )
                    )
                    names.append(
                        (
                            f"tb{index}.{algorithm}.kernel",
                            ["routing", algorithm, f"tb{index}", "kernel"],
                        )
                    )
    else:  # flow
        from repro.core.config import AutoNcsConfig
        from repro.experiments.testbenches import build_testbench, scaled_testbench
        from repro.physical.routing.router import RoutingConfig

        index = min(testbenches)
        instance = build_testbench(scaled_testbench(index, dim), rng=seed)
        for algorithm in ("ordered", "negotiated"):
            config = AutoNcsConfig(routing=RoutingConfig(algorithm=algorithm))
            jobs_list.append(
                Job(
                    kind="bench_flow",
                    label=f"flow tb{index} {algorithm}",
                    payload={"network": instance.network, "config": config},
                    seed=seed,
                )
            )
            names.append(
                (f"flow.tb{index}.{algorithm}", ["flow", algorithm, f"tb{index}"])
            )
        # The resilience overhead benchmarks: the same cheap job grid
        # with chaos off (pins the null-plan overhead at zero retries/
        # faults) and with transient flakes (pins full recovery).
        for name, plan_spec in (("chaos.null", ""), ("chaos.transient", "transient")):
            jobs_list.append(
                Job(
                    kind="bench_chaos",
                    label=f"bench {name}",
                    payload={"plan_spec": plan_spec, "seed": seed, "cells": 16},
                    seed=seed,
                )
            )
            names.append((name, ["chaos", name.split(".", 1)[1]]))
    outcomes = Runner(n_jobs=jobs, resilience=resilience).run(jobs_list)
    for (name, tags), outcome in zip(names, outcomes):
        if outcome.failure is not None:
            raise RuntimeError(
                f"benchmark {name!r} failed ({outcome.failure.failure}): "
                f"{outcome.failure.message}"
            )
        measurement = outcome.value
        result.benchmarks.append(
            BenchRecord(
                name=name,
                tags=tags,
                wall_seconds=float(measurement["wall_seconds"]),
                qor=measurement["qor"],
                counters=measurement["counters"],
            )
        )
    if suite == "routing":
        # Same-run wall-time ratio: machine-independent (both engines ran
        # on this host seconds apart), so it is meaningful to gate.
        by_name = {record.name: record for record in result.benchmarks}
        for record in result.benchmarks:
            if "kernel" not in record.tags:
                continue
            reference = by_name.get(record.name[: -len(".kernel")])
            if reference is not None:
                record.qor["speedup_vs_python"] = reference.wall_seconds / max(
                    record.wall_seconds, 1e-12
                )
    return result


def kernel_gate_failures(
    result: SuiteResult, floor: float = KERNEL_SPEEDUP_FLOOR
) -> List[str]:
    """Kernel-record gate: bit-identical QoR/counters plus the speed floor.

    Every routing ``.kernel`` record must match its python twin exactly
    on all QoR metrics and all shared counters (the parity contract —
    ``speedup_vs_python`` and the kernel-only bookkeeping counters are
    exempt), and its same-run speedup must reach ``floor``.  Empty when
    the run has no kernel records (Numba absent / ``--kernel python``).
    """
    failures: List[str] = []
    if result.suite != "routing":
        return failures
    by_name = {record.name: record for record in result.benchmarks}
    for record in result.benchmarks:
        if "kernel" not in record.tags:
            continue
        reference = by_name.get(record.name[: -len(".kernel")])
        if reference is None:
            failures.append(f"{record.name}: python reference record is missing")
            continue
        for metric, value in reference.qor.items():
            mine = record.qor.get(metric)
            if mine != value:
                failures.append(
                    f"{record.name}: parity broken — {metric} "
                    f"{value!r} (python) vs {mine!r} (kernel)"
                )
        for metric, value in reference.counters.items():
            if metric in _KERNEL_ONLY_COUNTERS:
                continue
            mine = record.counters.get(metric)
            if mine != value:
                failures.append(
                    f"{record.name}: parity broken — counter {metric} "
                    f"{value!r} (python) vs {mine!r} (kernel)"
                )
        speedup = record.qor.get("speedup_vs_python")
        if speedup is not None and speedup < floor:
            failures.append(
                f"{record.name}: kernel speedup {speedup:.2f}x is below "
                f"the {floor:g}x floor"
            )
    return failures


# ----------------------------------------------------------------------
# Regression gate
# ----------------------------------------------------------------------
def compare_to_baseline(
    candidate: SuiteResult,
    baseline: SuiteResult,
    threshold_pct: float = DEFAULT_THRESHOLD_PCT,
    time_threshold_pct: Optional[float] = None,
    skip_tags: Sequence[str] = (),
) -> List[str]:
    """All regressions of ``candidate`` vs ``baseline`` as human messages.

    An empty list means the gate passes.  Metrics are lower-is-better:
    a regression is ``candidate > baseline · (1 + threshold/100) + atol``.
    New benchmarks in the candidate pass (there is nothing to compare);
    benchmarks missing from the candidate fail (silent coverage loss)
    unless they carry one of ``skip_tags`` — used to skip baseline
    ``kernel`` records on machines where the optional Numba dependency
    is not installed.
    """
    failures: List[str] = []
    if candidate.suite != baseline.suite:
        return [
            f"suite mismatch: candidate {candidate.suite!r} vs "
            f"baseline {baseline.suite!r}"
        ]
    if candidate.mode != baseline.mode or candidate.dimension != baseline.dimension:
        return [
            f"run parameters differ from the baseline (mode/dimension "
            f"{candidate.mode}/{candidate.dimension} vs "
            f"{baseline.mode}/{baseline.dimension}) — rerun with matching "
            "flags or refresh the baseline with --update-baseline"
        ]
    by_name = {record.name: record for record in candidate.benchmarks}
    for base in baseline.benchmarks:
        mine = by_name.get(base.name)
        if mine is None:
            if any(tag in base.tags for tag in skip_tags):
                continue
            failures.append(f"{base.name}: benchmark disappeared from the run")
            continue
        gated = [
            (metric, base.qor.get(metric), mine.qor.get(metric))
            for metric in base.qor
        ] + [
            (metric, base.counters.get(metric), mine.counters.get(metric))
            for metric in base.counters
        ]
        for metric, old, new in gated:
            if new is None:
                failures.append(f"{base.name}: metric {metric!r} disappeared")
                continue
            gate = metric_gate(metric)
            if gate == "never":
                continue
            if gate == "time":
                if time_threshold_pct is None:
                    continue
                pct = time_threshold_pct
            else:
                pct = threshold_pct
            limit = old * (1.0 + pct / 100.0) + _ATOL.get(metric, 0.0)
            if new > limit:
                failures.append(
                    f"{base.name}: {metric} regressed {old:,.2f} → {new:,.2f} "
                    f"(limit {limit:,.2f} at +{pct:g}%)"
                )
        if time_threshold_pct is not None:
            limit = base.wall_seconds * (1.0 + time_threshold_pct / 100.0)
            if mine.wall_seconds > limit:
                failures.append(
                    f"{base.name}: wall_seconds regressed "
                    f"{base.wall_seconds:.3f} → {mine.wall_seconds:.3f} "
                    f"(limit {limit:.3f} at +{time_threshold_pct:g}%)"
                )
    return failures


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    """The ``bench`` argument surface (shared by CLI and harness script)."""
    parser.add_argument("--suites", nargs="+", choices=SUITES, default=list(SUITES),
                        help="benchmark suites to run (default: all)")
    parser.add_argument("--fast", action="store_true",
                        help="reduced-scale CI smoke mode (smaller testbenches)")
    parser.add_argument("--seed", type=int, default=42,
                        help="benchmark seed (default 42)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="runtime worker processes (default 1)")
    parser.add_argument("--dimension", type=int, default=0,
                        help="override the scaled-testbench size "
                             "(0 = suite default)")
    parser.add_argument("--testbenches", type=int, nargs="+", default=[1, 2, 3],
                        choices=(1, 2, 3),
                        help="paper testbenches to cover (default 1 2 3)")
    parser.add_argument("--kernel", choices=("auto", "numba", "python"),
                        default="auto",
                        help="routing-suite compiled-kernel records: python "
                             "reference records are always emitted; 'auto' "
                             "adds .kernel records when Numba is importable, "
                             "'numba' requires it, 'python' skips them")
    parser.add_argument("--retries", type=int, default=1, metavar="N",
                        help="max attempts per benchmark job (default 1)")
    parser.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                        help="per-benchmark wall-clock budget (default: none)")
    parser.add_argument("--check", action="store_true",
                        help="compare against the committed BENCH_*.json "
                             "baselines and exit 1 on regression (read-only)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the BENCH_*.json baselines with this "
                             "run's numbers (the --update-golden of perf)")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD_PCT,
                        help="QoR/counter regression threshold in percent "
                             f"(default {DEFAULT_THRESHOLD_PCT:g})")
    parser.add_argument("--time-threshold", type=float, default=None,
                        help="also gate wall time at this percent threshold "
                             "(default: wall time not gated — machines differ)")
    parser.add_argument("--baseline-dir", default=".",
                        help="directory holding the committed BENCH_*.json "
                             "baselines (default: current directory)")
    parser.add_argument("--output-dir", default=None,
                        help="where to write this run's BENCH_*.json files "
                             "(default: baseline dir; with --check: nowhere)")


def run_bench_command(args: argparse.Namespace) -> int:
    """Execute the ``bench`` command; returns the process exit status."""
    if args.check and args.update_baseline:
        print("error: --check and --update-baseline are mutually exclusive",
              file=sys.stderr)
        return 2
    baseline_dir = Path(args.baseline_dir)
    output_dir = Path(args.output_dir) if args.output_dir else None
    resilience = None
    if max(1, args.retries) > 1 or args.timeout is not None:
        from repro.runtime import ResilienceConfig, RetryPolicy

        resilience = ResilienceConfig(
            retry=RetryPolicy(max_attempts=max(1, args.retries)),
            timeout_seconds=args.timeout,
            fail_fast=True,
        )
    exit_status = 0
    for suite in args.suites:
        result = run_suite(
            suite,
            fast=args.fast,
            seed=args.seed,
            jobs=args.jobs,
            dimension=args.dimension or None,
            testbenches=tuple(args.testbenches),
            resilience=resilience,
            kernel=getattr(args, "kernel", "auto"),
        )
        print(result.format_table())
        baseline_path = baseline_dir / BASELINE_FILES[suite]
        if args.check:
            skip_tags: Tuple[str, ...] = ()
            if suite == "routing":
                from repro.physical.routing.kernel import kernel_available

                if getattr(args, "kernel", "auto") == "python" or not kernel_available():
                    # Baseline kernel records cannot be reproduced here;
                    # skip (not fail) them — the numba CI leg gates them.
                    skip_tags = ("kernel",)
            if not baseline_path.exists():
                print(f"FAIL {suite}: no baseline at {baseline_path} — "
                      "create one with `python -m repro bench --update-baseline`")
                exit_status = 1
            else:
                try:
                    baseline = load_suite_json(baseline_path)
                except ValueError as exc:
                    print(f"FAIL {suite}: unreadable baseline: {exc}")
                    exit_status = 1
                else:
                    failures = compare_to_baseline(
                        result, baseline,
                        threshold_pct=args.threshold,
                        time_threshold_pct=args.time_threshold,
                        skip_tags=skip_tags,
                    )
                    failures.extend(kernel_gate_failures(result))
                    if failures:
                        exit_status = 1
                        print(f"FAIL {suite}: {len(failures)} regression(s) "
                              f"vs {baseline_path}:")
                        for failure in failures:
                            print(f"  - {failure}")
                    else:
                        print(f"OK {suite}: no regression vs {baseline_path}")
            if output_dir is not None:
                output_dir.mkdir(parents=True, exist_ok=True)
                write_suite_json(result, output_dir / BASELINE_FILES[suite])
        else:
            target_dir = output_dir if output_dir is not None else baseline_dir
            target_dir.mkdir(parents=True, exist_ok=True)
            target = target_dir / BASELINE_FILES[suite]
            write_suite_json(result, target)
            print(f"wrote {target}")
    return exit_status


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python benchmarks/harness.py``)."""
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="machine-readable perf harness: run tagged benchmarks, "
                    "emit BENCH_*.json, gate regressions",
    )
    add_bench_arguments(parser)
    return run_bench_command(parser.parse_args(argv))
