"""The recorder: one handle bundling a tracer and a metrics registry.

Everything in the flow records through the *current* recorder
(:func:`get_recorder`), which defaults to the shared :data:`NULL_RECORDER`
— a no-op subclass whose methods return immediately, so instrumentation
left in the hot paths costs a module-global read and an empty call when
observability is off (the repo's null-recorder overhead contract, see
DESIGN.md).

Enable recording for a region with::

    from repro.observability import Recorder, recording

    rec = Recorder()
    with recording(rec):
        AutoNCS().run(network, rng=7)
    rec.snapshot()            # MetricsSnapshot of every counter the flow hit
    rec.tracer.spans          # hierarchical spans for the Chrome trace

Process boundaries: the runtime's worker protocol creates a fresh
recorder inside each worker, pickles :meth:`Recorder.export_state` back
with the job result, and the driver folds it in with
:meth:`Recorder.absorb` — counters add, spans merge (distinguished by
``pid`` in the trace).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

from repro.observability.metrics import MetricsRegistry, MetricsSnapshot, Number
from repro.observability.spans import Span, Tracer


class Recorder:
    """An active tracing + metrics sink."""

    #: False only on the null recorder; hot paths may branch on this to
    #: skip per-item work (e.g. batched histogram observations).
    enabled: bool = True

    def __init__(self) -> None:
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()

    # ------------------------------------------------------------------
    def span(self, name: str, **attributes: Any):
        """Context manager: a named, timed, nested trace region."""
        return self.tracer.span(name, **attributes)

    def event(self, name: str, **attributes: Any) -> Optional[Span]:
        """An instantaneous trace event."""
        return self.tracer.event(name, **attributes)

    def count(self, name: str, n: Number = 1) -> None:
        """Increment the counter ``name`` by ``n``."""
        self.metrics.counter(name).inc(n)

    def gauge(self, name: str, value: Number) -> None:
        """Set the gauge ``name``."""
        self.metrics.gauge(name).set(value)

    def observe(self, name: str, value: Number) -> None:
        """Record one histogram observation."""
        self.metrics.histogram(name).observe(value)

    def observe_many(self, name: str, values) -> None:
        """Record a batch of histogram observations in one call."""
        self.metrics.histogram(name).observe_many(values)

    # ------------------------------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        """Immutable read of every metric."""
        return self.metrics.snapshot()

    def export_state(self) -> Dict[str, Any]:
        """Picklable spans + metrics (the worker → driver payload)."""
        return {"spans": self.tracer.export(), "metrics": self.snapshot()}

    def absorb(self, state: Optional[Dict[str, Any]]) -> None:
        """Fold an :meth:`export_state` payload into this recorder."""
        if not state:
            return
        spans = state.get("spans")
        if spans:
            self.tracer.absorb(spans)
        metrics = state.get("metrics")
        if isinstance(metrics, MetricsSnapshot):
            self.metrics.absorb(metrics)


class _NullSpan:
    """Shared no-op span: context manager + annotate sink."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def annotate(self, **attributes: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class NullRecorder(Recorder):
    """The disabled recorder: every method is a no-op.

    A single shared instance (:data:`NULL_RECORDER`) backs every
    uninstrumented run; it allocates nothing per call and reuses one
    span object, so disabled instrumentation is effectively free.
    """

    enabled = False

    def __init__(self) -> None:  # no tracer/registry allocation
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()

    def span(self, name: str, **attributes: Any):
        return _NULL_SPAN

    def event(self, name: str, **attributes: Any) -> None:
        return None

    def count(self, name: str, n: Number = 1) -> None:
        return None

    def gauge(self, name: str, value: Number) -> None:
        return None

    def observe(self, name: str, value: Number) -> None:
        return None

    def observe_many(self, name: str, values) -> None:
        return None

    def absorb(self, state: Optional[Dict[str, Any]]) -> None:
        return None


#: The process-wide disabled recorder (default current recorder).
NULL_RECORDER = NullRecorder()

_current: Recorder = NULL_RECORDER


def get_recorder() -> Recorder:
    """The recorder instrumentation currently writes to (never ``None``)."""
    return _current


def set_recorder(recorder: Optional[Recorder]) -> Recorder:
    """Install ``recorder`` (``None`` → the null recorder); returns the old one."""
    global _current
    previous = _current
    _current = recorder if recorder is not None else NULL_RECORDER
    return previous


@contextmanager
def recording(recorder: Optional[Recorder] = None) -> Iterator[Recorder]:
    """Scope a recorder: install for the block, restore the previous after.

    ``recording()`` with no argument creates a fresh :class:`Recorder`.
    """
    active = recorder if recorder is not None else Recorder()
    previous = set_recorder(active)
    try:
        yield active
    finally:
        set_recorder(previous)
