"""Exporters: Chrome/Perfetto trace JSONL, metrics dump, QoR summary.

``write_chrome_trace`` emits the Trace Event Format that both
``chrome://tracing`` and Perfetto load: a JSON array of complete ("X")
events with microsecond timestamps, one event per line, so the file is
simultaneously valid JSON and greppable line-by-line (JSONL-style).

``write_metrics_text`` dumps a :class:`MetricsSnapshot` as the aligned
plain-text table of :meth:`MetricsSnapshot.format_table`.

``format_qor_table`` renders the per-stage QoR view: stage wall times
(from flow diagnostics) joined with the counters recorded under each
stage's metric prefix — the instrumented cousin of the paper's Table 1.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.observability.metrics import MetricsSnapshot
from repro.observability.spans import Span

SpanLike = Union[Span, Dict[str, Any]]

#: Flow-stage metric prefixes, in pipeline order, for the QoR table.
QOR_STAGE_PREFIXES = (
    ("isc", "clustering"),
    ("placement", "placement"),
    ("routing", "routing"),
    ("cache", "artifact cache"),
    ("runner", "runtime"),
    ("reliability", "reliability"),
)


def _json_safe(value: Any) -> Any:
    """Clamp span attributes to JSON-compatible scalars/containers."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Mapping):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return repr(value)


def chrome_trace_events(spans: Sequence[SpanLike]) -> List[Dict[str, Any]]:
    """Convert spans to Trace Event Format dicts (``ph: "X"`` complete events)."""
    events: List[Dict[str, Any]] = []
    for span in spans:
        record = span.to_dict() if isinstance(span, Span) else dict(span)
        duration = record.get("duration") or 0.0
        event = {
            "name": record["name"],
            "ph": "X",
            "ts": record["start"] * 1e6,  # microseconds
            "dur": duration * 1e6,
            "pid": record.get("pid") or os.getpid(),
            "tid": record.get("tid") or 0,
            "cat": record["name"].split(".", 1)[0],
            "args": _json_safe(record.get("attributes", {})),
        }
        parent = record.get("parent")
        if parent:
            event["args"] = {**event["args"], "parent": parent}
        events.append(event)
    events.sort(key=lambda e: e["ts"])
    return events


def write_chrome_trace(spans: Sequence[SpanLike], path) -> Path:
    """Write spans as a Perfetto/chrome://tracing loadable JSON trace.

    One event per line inside a JSON array: loadable as a whole, and a
    truncated file still has a readable line-per-event prefix.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    events = chrome_trace_events(spans)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("[\n")
        for index, event in enumerate(events):
            trailer = "," if index < len(events) - 1 else ""
            handle.write(json.dumps(event, sort_keys=True) + trailer + "\n")
        handle.write("]\n")
    return path


def read_chrome_trace(path) -> List[Dict[str, Any]]:
    """Load a trace written by :func:`write_chrome_trace` (round-trip)."""
    with open(path, "r", encoding="utf-8") as handle:
        events = json.load(handle)
    if not isinstance(events, list):
        raise ValueError(f"{path}: expected a JSON array of trace events")
    return events


def write_metrics_text(snapshot: MetricsSnapshot, path, header: Optional[str] = None) -> Path:
    """Write a snapshot as the aligned plain-text dump (``--metrics FILE``)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = []
    if header:
        lines.append(header)
    lines.append(snapshot.format_table())
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


def format_qor_table(
    snapshot: MetricsSnapshot,
    stage_seconds: Optional[Mapping[str, float]] = None,
    indent: str = "  ",
) -> str:
    """Per-stage QoR summary: wall time plus the stage's own counters.

    Groups every metric by its dotted prefix (``routing.ripup_retries``
    → stage ``routing``), joins in the flow's ``stage_seconds``
    diagnostics when given, and renders one block per stage.
    """
    stage_seconds = dict(stage_seconds or {})
    grouped: Dict[str, List[str]] = {}
    merged: Dict[str, Any] = {}
    merged.update(snapshot.counters)
    merged.update(snapshot.gauges)
    for name, summary in snapshot.histograms.items():
        merged[name] = f"n={summary['count']:.0f} mean={summary['mean']:.3f}"
    for name in sorted(merged):
        prefix = name.split(".", 1)[0]
        grouped.setdefault(prefix, []).append(name)
    lines: List[str] = ["QoR summary"]
    known = {prefix for prefix, _label in QOR_STAGE_PREFIXES}
    ordered = [p for p, _ in QOR_STAGE_PREFIXES if p in grouped]
    ordered += [p for p in sorted(grouped) if p not in known]
    for prefix in ordered:
        label = dict(QOR_STAGE_PREFIXES).get(prefix, prefix)
        seconds = [v for k, v in stage_seconds.items() if k.startswith(prefix)]
        timing = f"  ({sum(seconds):.3f} s)" if seconds else ""
        lines.append(f"{indent}{label}{timing}")
        for name in grouped[prefix]:
            value = merged[name]
            if isinstance(value, float):
                rendered = f"{value:,.4f}"
            elif isinstance(value, int):
                rendered = f"{value:,}"
            else:
                rendered = str(value)
            lines.append(f"{indent}{indent}{name:<36} {rendered}")
    if len(lines) == 1:
        lines.append(f"{indent}(no metrics recorded)")
    return "\n".join(lines)
