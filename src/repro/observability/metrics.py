"""Typed, process-local metrics: counters, gauges, histograms.

A :class:`MetricsRegistry` owns every metric of one recorder.  Metrics
are created on first use (``registry.counter("routing.ripup_retries")``)
and are *typed*: asking for an existing name with a different type is an
error, so ``cache.hits`` cannot silently flip between counter and gauge.

Reading a registry produces an immutable :class:`MetricsSnapshot` — the
shape that travels across process boundaries (the runtime's worker
protocol pickles snapshots back to the driver), lands in result
metadata, and feeds the text/JSONL exporters.  Snapshots follow the
repo-wide result-object ergonomics: ``.to_dict()`` and
``.format_table()``.

Thread safety: metric *creation* is lock-protected; value updates are
single bytecode-level read-modify-writes on plain attributes, which the
GIL serializes — good enough for counting, and free of lock overhead on
the hot paths.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Union

Number = Union[int, float]


class Counter:
    """A monotonically increasing count (events, iterations, rip-ups)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def inc(self, n: Number = 1) -> None:
        """Add ``n`` (must be >= 0) to the count."""
        if n < 0:
            raise ValueError(f"counter {self.name!r}: increment must be >= 0, got {n}")
        self.value += n

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A point-in-time value (cache hit rate, overlap ratio)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: Number) -> None:
        """Replace the gauge value."""
        self.value = float(value)

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value})"


class Histogram:
    """A streaming summary of observed values (count/total/min/max/mean).

    Bucket-free on purpose: the flow's distributions (routed path
    lengths, legalization displacements) are consumed as summaries in
    QoR tables, not rendered as true histograms, and a five-number
    summary merges exactly across worker processes.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count: int = 0
        self.total: float = 0.0
        self.min: float = float("inf")
        self.max: float = float("-inf")

    def observe(self, value: Number) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def observe_many(self, values: Iterable[Number]) -> None:
        """Record a batch of observations (one call per hot loop, not per item)."""
        for value in values:
            self.observe(value)

    @property
    def mean(self) -> float:
        """Mean of all observations (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, float]:
        """The five-number summary exported by snapshots."""
        if not self.count:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count}, mean={self.mean:.3g})"


@dataclass(frozen=True)
class MetricsSnapshot:
    """An immutable, picklable read of one registry.

    The common result-object surface: :meth:`to_dict` for JSONL export
    and tests, :meth:`format_table` for CLI output.  Snapshots merge
    (:meth:`merge`), which is how worker-process metrics fold into the
    driver's registry.
    """

    counters: Dict[str, Number] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def get(self, name: str, default: Optional[Number] = None):
        """Look a metric up by name across all three kinds."""
        if name in self.counters:
            return self.counters[name]
        if name in self.gauges:
            return self.gauges[name]
        if name in self.histograms:
            return self.histograms[name]
        return default

    @property
    def empty(self) -> bool:
        """True when no metric holds any data."""
        return not (self.counters or self.gauges or self.histograms)

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Combine two snapshots: counters add, gauges last-write-wins,
        histogram summaries fold exactly."""
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0) + value
        gauges = dict(self.gauges)
        gauges.update(other.gauges)
        histograms = dict(self.histograms)
        for name, summary in other.histograms.items():
            if name not in histograms or not histograms[name]["count"]:
                histograms[name] = dict(summary)
            elif summary["count"]:
                mine = histograms[name]
                count = mine["count"] + summary["count"]
                total = mine["total"] + summary["total"]
                histograms[name] = {
                    "count": count,
                    "total": total,
                    "min": min(mine["min"], summary["min"]),
                    "max": max(mine["max"], summary["max"]),
                    "mean": total / count,
                }
        return MetricsSnapshot(counters=counters, gauges=gauges, histograms=histograms)

    def to_dict(self) -> Dict[str, object]:
        """Plain nested dict (JSON-compatible) of every metric."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {k: dict(v) for k, v in sorted(self.histograms.items())},
        }

    def format_table(self) -> str:
        """Aligned plain-text metrics dump (the ``--metrics FILE`` shape)."""
        lines: List[str] = []
        names = list(self.counters) + list(self.gauges) + list(self.histograms)
        if not names:
            return "(no metrics recorded)"
        width = max(len(name) for name in names)
        if self.counters:
            lines.append("counters:")
            for name, value in sorted(self.counters.items()):
                lines.append(f"  {name:<{width}}  {value:>14,}")
        if self.gauges:
            lines.append("gauges:")
            for name, value in sorted(self.gauges.items()):
                lines.append(f"  {name:<{width}}  {value:>14.4f}")
        if self.histograms:
            lines.append("histograms:")
            for name, s in sorted(self.histograms.items()):
                lines.append(
                    f"  {name:<{width}}  count={s['count']:<8,.0f} "
                    f"mean={s['mean']:<12.3f} min={s['min']:<12.3f} "
                    f"max={s['max']:<12.3f} total={s['total']:,.3f}"
                )
        return "\n".join(lines)


class MetricsRegistry:
    """Create-on-first-use home of every metric in one recorder."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, object] = {}

    def _get_or_create(self, name: str, kind: type):
        metric = self._metrics.get(name)
        if metric is not None:
            if not isinstance(metric, kind):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, requested {kind.__name__}"
                )
            return metric
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = kind(name)
            elif not isinstance(metric, kind):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, requested {kind.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name`` (created on first use)."""
        return self._get_or_create(name, Histogram)

    def names(self) -> List[str]:
        """All registered metric names, sorted."""
        return sorted(self._metrics)

    def clear(self) -> None:
        """Drop every metric (tests and benchmark repetitions)."""
        with self._lock:
            self._metrics.clear()

    def snapshot(self) -> MetricsSnapshot:
        """An immutable read of every metric's current value."""
        counters: Dict[str, Number] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Dict[str, float]] = {}
        for name, metric in list(self._metrics.items()):
            if isinstance(metric, Counter):
                counters[name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[name] = metric.value
            else:
                histograms[name] = metric.summary()  # type: ignore[union-attr]
        return MetricsSnapshot(counters=counters, gauges=gauges, histograms=histograms)

    def absorb(self, snapshot: MetricsSnapshot) -> None:
        """Fold a snapshot (e.g. from a worker process) into this registry."""
        for name, value in snapshot.counters.items():
            self.counter(name).inc(value)
        for name, value in snapshot.gauges.items():
            self.gauge(name).set(value)
        for name, summary in snapshot.histograms.items():
            histogram = self.histogram(name)
            if summary["count"]:
                histogram.count += int(summary["count"])
                histogram.total += summary["total"]
                histogram.min = min(histogram.min, summary["min"])
                histogram.max = max(histogram.max, summary["max"])
