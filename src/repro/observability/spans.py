"""Hierarchical tracing spans.

A :class:`Span` is one named, timed region of the flow — ``flow.run``
contains ``flow.isc`` … ``flow.cost``, which contain the fine-grained
regions of the physical engines.  The :class:`Tracer` keeps a per-thread
open-span stack (so nesting works under the runtime's thread use) and a
lock-protected list of completed spans; worker processes run their own
tracer and ship finished spans back to the driver as plain dicts, where
the differing ``pid`` keeps them distinguishable in the Chrome trace.

Timestamps are wall-clock (``time.time``) so spans from different
processes land on one comparable axis; durations are measured with
``time.perf_counter`` for resolution.
"""

from __future__ import annotations

import functools
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass
class Span:
    """One completed (or still-open) trace region."""

    name: str
    start: float  # wall-clock epoch seconds
    duration: Optional[float] = None  # seconds; None while still open
    attributes: Dict[str, Any] = field(default_factory=dict)
    parent: Optional[str] = None
    depth: int = 0
    pid: int = 0
    tid: int = 0

    def annotate(self, **attributes: Any) -> "Span":
        """Attach attributes mid-span (e.g. counts known only at the end)."""
        self.attributes.update(attributes)
        return self

    def to_dict(self) -> Dict[str, Any]:
        """Picklable plain-dict form (the worker → driver wire format)."""
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attributes": dict(self.attributes),
            "parent": self.parent,
            "depth": self.depth,
            "pid": self.pid,
            "tid": self.tid,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        """Rebuild a span from :meth:`to_dict` output."""
        return cls(
            name=data["name"],
            start=data["start"],
            duration=data.get("duration"),
            attributes=dict(data.get("attributes", {})),
            parent=data.get("parent"),
            depth=int(data.get("depth", 0)),
            pid=int(data.get("pid", 0)),
            tid=int(data.get("tid", 0)),
        )


class Tracer:
    """Collects spans; one per recorder, safe under threads."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self.spans: List[Span] = []

    # ------------------------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Open a named child span for the duration of the ``with`` block."""
        stack = self._stack()
        parent = stack[-1] if stack else None
        record = Span(
            name=name,
            start=time.time(),
            attributes=dict(attributes),
            parent=parent.name if parent is not None else None,
            depth=len(stack),
            pid=os.getpid(),
            tid=threading.get_ident(),
        )
        stack.append(record)
        started = time.perf_counter()
        try:
            yield record
        finally:
            record.duration = time.perf_counter() - started
            stack.pop()
            with self._lock:
                self.spans.append(record)

    def event(self, name: str, **attributes: Any) -> Span:
        """Record an instantaneous (zero-duration) span."""
        stack = self._stack()
        parent = stack[-1] if stack else None
        record = Span(
            name=name,
            start=time.time(),
            duration=0.0,
            attributes=dict(attributes),
            parent=parent.name if parent is not None else None,
            depth=len(stack),
            pid=os.getpid(),
            tid=threading.get_ident(),
        )
        with self._lock:
            self.spans.append(record)
        return record

    # ------------------------------------------------------------------
    def export(self) -> List[Dict[str, Any]]:
        """All completed spans as plain dicts (picklable, mergeable)."""
        with self._lock:
            return [span.to_dict() for span in self.spans]

    def absorb(self, spans: List[Dict[str, Any]]) -> None:
        """Fold exported spans (e.g. from a worker process) into this tracer."""
        rebuilt = [Span.from_dict(item) for item in spans]
        with self._lock:
            self.spans.extend(rebuilt)

    def named(self, name: str) -> List[Span]:
        """All completed spans with this exact name, in completion order."""
        with self._lock:
            return [span for span in self.spans if span.name == name]

    def clear(self) -> None:
        """Drop all completed spans."""
        with self._lock:
            self.spans.clear()


def traced(name: Optional[str] = None) -> Callable:
    """Decorator form: run the function inside a span on the current recorder.

    >>> from repro.observability import traced
    >>> @traced("demo.add")
    ... def add(a, b):
    ...     return a + b
    >>> add(1, 2)
    3
    """

    def decorator(fn: Callable) -> Callable:
        label = name if name is not None else fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            from repro.observability.recorder import get_recorder

            with get_recorder().span(label):
                return fn(*args, **kwargs)

        return wrapper

    return decorator
