"""Flow-wide observability: tracing spans, typed metrics, exporters.

Zero-dependency instrumentation layer for the AutoNCS flow:

* :class:`Span` / :class:`Tracer` — hierarchical, thread-safe timed
  regions (context-manager and :func:`traced` decorator forms);
* :class:`Counter` / :class:`Gauge` / :class:`Histogram` in a
  process-local :class:`MetricsRegistry`, read as immutable
  :class:`MetricsSnapshot` objects;
* :class:`Recorder` — the handle bundling both, installed with
  :func:`recording` / :func:`set_recorder` and read by every
  instrumented hot path through :func:`get_recorder`;
* exporters — :func:`write_chrome_trace` (Perfetto /
  ``chrome://tracing`` loadable), :func:`write_metrics_text` and the
  per-stage :func:`format_qor_table`.

The default recorder is :data:`NULL_RECORDER`, a shared no-op — see
DESIGN.md for the overhead contract that keeps disabled instrumentation
out of the flow's critical path.
"""

from repro.observability.export import (
    chrome_trace_events,
    format_qor_table,
    read_chrome_trace,
    write_chrome_trace,
    write_metrics_text,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.observability.recorder import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    get_recorder,
    recording,
    set_recorder,
)
from repro.observability.spans import Span, Tracer, traced

__all__ = [
    "NULL_RECORDER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NullRecorder",
    "Recorder",
    "Span",
    "Tracer",
    "chrome_trace_events",
    "format_qor_table",
    "get_recorder",
    "read_chrome_trace",
    "recording",
    "set_recorder",
    "traced",
    "write_chrome_trace",
    "write_metrics_text",
]
