"""Physical cost evaluation: ``Cost = α·L + β·A + δ·T`` (paper eq. (3)).

* ``L`` — total routed wirelength (µm);
* ``A`` — chip (placement bounding-box) area (µm²);
* ``T`` — average wire delay (ns): each wire's delay is the intrinsic delay
  of its slower endpoint cell (the crossbar or discrete synapse driving the
  path; neurons contribute none) plus the Elmore RC delay of the routed
  wire.  This reproduces the paper's observation that FullCro's delay is
  pinned by the 64×64 crossbar delay (1.95 ns) across all testbenches while
  AutoNCS's delay tracks its crossbar size distribution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.technology import DEFAULT_TECHNOLOGY, Technology
from repro.mapping.netlist import Netlist
from repro.physical.layout import Placement
from repro.physical.routing.router import RoutingResult


@dataclass(frozen=True)
class CostWeights:
    """The user-defined α, β, δ of eq. (3) (the paper sets all three to 1)."""

    alpha: float = 1.0
    beta: float = 1.0
    delta: float = 1.0

    def __post_init__(self) -> None:
        for name in ("alpha", "beta", "delta"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0, got {getattr(self, name)}")


@dataclass(frozen=True)
class PhysicalCost:
    """Evaluated physical metrics of one design."""

    wirelength_um: float
    area_um2: float
    average_delay_ns: float
    weights: CostWeights = CostWeights()

    @property
    def total(self) -> float:
        """``α·L + β·A + δ·T`` (mixed units, per the paper)."""
        return (
            self.weights.alpha * self.wirelength_um
            + self.weights.beta * self.area_um2
            + self.weights.delta * self.average_delay_ns
        )


def wire_delays_ns(
    netlist: Netlist,
    routing: RoutingResult,
    technology: Technology = DEFAULT_TECHNOLOGY,
) -> np.ndarray:
    """Per-wire delay: slower endpoint's intrinsic delay + routed-wire RC."""
    lengths = routing.lengths
    if lengths.shape[0] != netlist.num_wires:
        raise ValueError(
            f"routing covers {lengths.shape[0]} wires, netlist has {netlist.num_wires}"
        )
    delays = np.empty(netlist.num_wires)
    for index, wire in enumerate(netlist.wires):
        intrinsic = max(
            netlist.cells[wire.source].intrinsic_delay_ns,
            netlist.cells[wire.target].intrinsic_delay_ns,
        )
        delays[index] = intrinsic + technology.wire_delay_ns(float(lengths[index]))
    return delays


@dataclass(frozen=True)
class DelayStatistics:
    """Distributional view of wire delays (extension beyond the paper's T)."""

    mean_ns: float
    median_ns: float
    p95_ns: float
    max_ns: float

    def as_dict(self) -> dict:
        """Dictionary view for reports."""
        return {
            "mean_ns": self.mean_ns,
            "median_ns": self.median_ns,
            "p95_ns": self.p95_ns,
            "max_ns": self.max_ns,
        }


def delay_statistics(
    netlist: Netlist,
    routing: RoutingResult,
    technology: Technology = DEFAULT_TECHNOLOGY,
) -> DelayStatistics:
    """Mean / median / p95 / max wire delay — the critical-path view.

    The paper reports only the average ``T``; the maximum is the design's
    critical wire (the slowest crossbar plus its longest route).
    """
    delays = wire_delays_ns(netlist, routing, technology)
    if delays.size == 0:
        return DelayStatistics(0.0, 0.0, 0.0, 0.0)
    return DelayStatistics(
        mean_ns=float(delays.mean()),
        median_ns=float(np.median(delays)),
        p95_ns=float(np.percentile(delays, 95)),
        max_ns=float(delays.max()),
    )


def evaluate_cost(
    netlist: Netlist,
    placement: Placement,
    routing: RoutingResult,
    technology: Technology = DEFAULT_TECHNOLOGY,
    weights: CostWeights = CostWeights(),
) -> PhysicalCost:
    """Evaluate eq. (3) for a placed-and-routed design."""
    wirelength = routing.total_wirelength_um
    area = placement.area
    delays = wire_delays_ns(netlist, routing, technology)
    average_delay = float(delays.mean()) if delays.size else 0.0
    return PhysicalCost(
        wirelength_um=wirelength,
        area_um2=area,
        average_delay_ns=average_delay,
        weights=weights,
    )
