"""Customized physical design: analytical placement, maze routing, cost.

The paper (Sec. 3.5) cannot reuse standard-cell placers because the NCS
problem has (1) wire weights between memristors and crossbars, (2)
mixed-size cells (neurons, memristors, crossbars), and (3) no row
alignment.  This package implements the paper's analytical formulation:

``min WL(x, y) + λ·D(x, y)`` with the weighted-average (WA) wirelength
model [13], a sigmoid-based pairwise density model [14], a λ-doubling
penalty loop solved by conjugate gradient [15] (Algorithm 4), followed by
grid-graph maze routing [16,18] with virtual capacity [17], and the cost
function ``Cost = α·L + β·A + δ·T`` (eq. 3).
"""

from repro.physical.cost import CostWeights, PhysicalCost, evaluate_cost
from repro.physical.layout import Placement, PhysicalDesign
from repro.physical.placement import PlacementConfig, place
from repro.physical.routing import RoutingConfig, RoutingResult, route

__all__ = [
    "CostWeights",
    "PhysicalCost",
    "PhysicalDesign",
    "Placement",
    "PlacementConfig",
    "RoutingConfig",
    "RoutingResult",
    "evaluate_cost",
    "place",
    "route",
]
