"""Layout containers: placements and complete physical designs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np


@dataclass
class Placement:
    """Cell positions plus physical dimensions.

    ``x``/``y`` are *center* coordinates in µm; ``widths``/``heights`` are
    the physical cell dimensions (the placer's routing-space factor ω is
    applied internally during optimization, not stored here).
    """

    x: np.ndarray
    y: np.ndarray
    widths: np.ndarray
    heights: np.ndarray
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x, dtype=float)
        self.y = np.asarray(self.y, dtype=float)
        self.widths = np.asarray(self.widths, dtype=float)
        self.heights = np.asarray(self.heights, dtype=float)
        n = self.x.shape[0]
        for name, arr in (("y", self.y), ("widths", self.widths), ("heights", self.heights)):
            if arr.shape != (n,):
                raise ValueError(f"{name} must have shape ({n},), got {arr.shape}")
        if np.any(self.widths <= 0) or np.any(self.heights <= 0):
            raise ValueError("cell dimensions must be positive")

    @property
    def num_cells(self) -> int:
        """Number of placed cells."""
        return self.x.shape[0]

    def bounding_box(self) -> Tuple[float, float, float, float]:
        """``(xmin, ymin, xmax, ymax)`` over all cell extents."""
        if self.num_cells == 0:
            return (0.0, 0.0, 0.0, 0.0)
        half_w = self.widths / 2.0
        half_h = self.heights / 2.0
        return (
            float(np.min(self.x - half_w)),
            float(np.min(self.y - half_h)),
            float(np.max(self.x + half_w)),
            float(np.max(self.y + half_h)),
        )

    @property
    def area(self) -> float:
        """Placement (chip) area: the bounding-box area in µm²."""
        xmin, ymin, xmax, ymax = self.bounding_box()
        return (xmax - xmin) * (ymax - ymin)

    def total_overlap_area(self, scale: float = 1.0) -> float:
        """Sum of pairwise rectangle-overlap areas (µm²).

        ``scale`` inflates cell dimensions (pass the routing-space factor ω
        to measure overlap of the virtual footprints the placer legalizes).
        """
        from repro.physical.placement.density import true_overlap

        if self.num_cells < 2:
            return 0.0
        return true_overlap(self.x, self.y, self.widths * scale, self.heights * scale)

    def overlap_ratio(self, scale: float = 1.0) -> float:
        """Total overlap area relative to total cell area."""
        total = float(np.sum(self.widths * self.heights)) * scale * scale
        if total == 0.0:
            return 0.0
        return self.total_overlap_area(scale) / total

    def hpwl(self, sources: np.ndarray, targets: np.ndarray) -> float:
        """Unweighted half-perimeter wirelength over 2-pin wires (µm)."""
        return float(
            np.sum(np.abs(self.x[sources] - self.x[targets]))
            + np.sum(np.abs(self.y[sources] - self.y[targets]))
        )

    def copy(self) -> "Placement":
        """Deep copy of the placement."""
        return Placement(
            x=self.x.copy(),
            y=self.y.copy(),
            widths=self.widths.copy(),
            heights=self.heights.copy(),
            metadata=dict(self.metadata),
        )


@dataclass
class PhysicalDesign:
    """A fully implemented design: mapping + placement + routing + cost."""

    mapping: object  # MappingResult (kept loose to avoid an import cycle)
    placement: Placement
    routing: object  # RoutingResult
    cost: object  # PhysicalCost
    metadata: dict = field(default_factory=dict)

    @property
    def name(self) -> str:
        """Design label (from the mapping)."""
        return getattr(self.mapping, "name", "design")

    def summary(self) -> dict:
        """Scalar summary for reports (Table 1 rows)."""
        return {
            "design": self.name,
            "wirelength_um": self.cost.wirelength_um,
            "area_um2": self.cost.area_um2,
            "delay_ns": self.cost.average_delay_ns,
            "cost": self.cost.total,
        }


def congestion_map(routing: object) -> Optional[np.ndarray]:
    """Per-bin wire count map from a routing result (Fig. 10(b)/(d)).

    Returns ``None`` when the routing result carries no usage data.
    """
    horizontal = getattr(routing, "horizontal_usage", None)
    vertical = getattr(routing, "vertical_usage", None)
    if horizontal is None or vertical is None:
        return None
    nx = max(horizontal.shape[0], vertical.shape[0])
    ny = max(horizontal.shape[1], vertical.shape[1])
    total = np.zeros((nx, ny))
    total[: horizontal.shape[0], : horizontal.shape[1]] += horizontal
    total[: vertical.shape[0], : vertical.shape[1]] += vertical
    return total
