"""Analytical placement (paper Algorithm 4).

``min WL(x, y) + λ·D(x, y)`` — weighted-average wirelength, sigmoid-based
pairwise density, λ-doubling penalty loop, conjugate-gradient inner solver,
push-apart legalization.
"""

from repro.physical.placement.annealing import AnnealingConfig, anneal_place
from repro.physical.placement.density import density_value_and_grad, sigmoid_overlap
from repro.physical.placement.initial import initial_placement
from repro.physical.placement.legalize import compact, grid_snap, legalize
from repro.physical.placement.objective import PlacementObjective
from repro.physical.placement.optimizer import conjugate_gradient
from repro.physical.placement.placer import PlacementConfig, place
from repro.physical.placement.seed import connectivity_seed
from repro.physical.placement.wirelength import (
    hpwl,
    wa_wirelength,
    wa_wirelength_and_grad,
)

__all__ = [
    "AnnealingConfig",
    "PlacementConfig",
    "PlacementObjective",
    "anneal_place",
    "compact",
    "conjugate_gradient",
    "connectivity_seed",
    "density_value_and_grad",
    "grid_snap",
    "hpwl",
    "initial_placement",
    "legalize",
    "place",
    "sigmoid_overlap",
    "wa_wirelength",
    "wa_wirelength_and_grad",
]
