"""Initial placement: regular locations (Algorithm 4 line 1).

Cells are packed area-aware into rows (so mixed-size cells start at most
lightly overlapped — a uniform grid pitched for the *average* cell buries
the big crossbars under dozens of neighbours), then compressed toward the
region center so the penalty loop starts from the moderate-overlap state
the λ-doubling schedule expects.  A small deterministic jitter breaks
symmetry ties.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.utils.rng import RngLike, ensure_rng


def _row_pack_by_size(
    widths: np.ndarray, heights: np.ndarray, row_width: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Pack cells (largest first) into rows of the given width."""
    n = widths.shape[0]
    order = np.argsort(widths * heights)[::-1]
    x = np.zeros(n)
    y = np.zeros(n)
    cursor_x = 0.0
    cursor_y = 0.0
    row_height = 0.0
    for cell in order:
        w = widths[cell]
        h = heights[cell]
        if cursor_x + w > row_width and cursor_x > 0.0:
            cursor_y += row_height
            cursor_x = 0.0
            row_height = 0.0
        x[cell] = cursor_x + w / 2.0
        y[cell] = cursor_y + h / 2.0
        cursor_x += w
        row_height = max(row_height, h)
    return x, y


def initial_placement(
    widths: np.ndarray,
    heights: np.ndarray,
    whitespace_factor: float = 1.8,
    rng: RngLike = None,
    compression: float = 0.75,
) -> Tuple[np.ndarray, np.ndarray]:
    """Area-aware starting coordinates for the analytic placer.

    Parameters
    ----------
    compression:
        Factor < 1 shrinks the packed layout toward its center, producing
        the moderate starting overlap the penalty loop resolves; 1.0
        starts fully packed (near-zero overlap).

    Returns
    -------
    (x, y):
        Center coordinates (µm).
    """
    widths = np.asarray(widths, dtype=float)
    heights = np.asarray(heights, dtype=float)
    if widths.shape != heights.shape or widths.ndim != 1:
        raise ValueError("widths and heights must be equal-length 1-D arrays")
    if whitespace_factor < 1.0:
        raise ValueError(f"whitespace_factor must be >= 1, got {whitespace_factor}")
    if not 0.0 < compression <= 1.0:
        raise ValueError(f"compression must lie in (0, 1], got {compression}")
    rng = ensure_rng(rng)
    n = widths.shape[0]
    if n == 0:
        return np.zeros(0), np.zeros(0)
    total_area = float(np.sum(widths * heights))
    side = math.sqrt(max(total_area, 1e-9) * whitespace_factor)
    side = max(side, float(widths.max()))
    x, y = _row_pack_by_size(widths, heights, side)
    center_x = float(x.mean())
    center_y = float(y.mean())
    x = center_x + (x - center_x) * compression
    y = center_y + (y - center_y) * compression
    jitter_scale = 0.02 * float(np.sqrt(widths * heights).mean())
    x += rng.uniform(-jitter_scale, jitter_scale, size=n)
    y += rng.uniform(-jitter_scale, jitter_scale, size=n)
    return x, y
