"""The placement driver — paper Algorithm 4, with a customized front/back end.

Pipeline:

1. **Seed** (Algorithm 4 line 1, "regular location", customized): a
   connectivity-aware seed places crossbars on a spectral-ordered grid,
   neurons on their crossbars' centroids and synapses between their
   endpoints (:mod:`~repro.physical.placement.seed`); designs without
   crossbar structure fall back to an area-aware packed grid.
2. **Penalty loop** (lines 2–6): minimize ``WL(x,y) + λ·D(x,y)`` by
   conjugate gradient, doubling λ while the overlap exceeds the threshold.
3. **Legalization** (line 7): a structure-preserving grid-snap assigns
   every cell the free site nearest its optimized location; the snap of
   the raw seed is kept as a second candidate and the better (by weighted
   HPWL) wins — the analytic refinement is never allowed to end worse
   than its own starting point.
4. **Compaction**: constraint-graph scanline compaction squeezes out the
   remaining whitespace without reordering cells.

Cells use *virtual* dimensions (physical size × the routing-space factor
ω, Sec. 3.5) through steps 1–4 so that routing space is reserved around
every cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.hardware.technology import DEFAULT_TECHNOLOGY, Technology
from repro.mapping.netlist import CellKind, Netlist
from repro.observability import get_recorder
from repro.physical.layout import Placement
from repro.physical.placement.density import true_overlap
from repro.physical.placement.initial import initial_placement
from repro.physical.placement.legalize import compact, grid_snap
from repro.physical.placement.objective import PlacementObjective
from repro.physical.placement.optimizer import conjugate_gradient
from repro.physical.placement.seed import connectivity_seed
from repro.physical.placement.wirelength import hpwl
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class PlacementConfig:
    """Tuning knobs of the analytical placer.

    ``None`` values are auto-scaled from the design size at run time.

    Attributes
    ----------
    gamma_um / tau_um:
        WA and density smoothing lengths; auto ≈ 1 % / 0.5 % of the
        estimated chip side.
    whitespace_factor:
        Initial-region inflation over total virtual cell area.
    overlap_threshold:
        Stop doubling λ once total (virtual) overlap area over total
        (virtual) cell area falls below this ratio.
    max_lambda_stages / cg_iterations_per_stage:
        Penalty-loop budget (Algorithm 4 lines 2–6).
    use_connectivity_seed:
        Start from the cluster-structure-aware seed (default) instead of
        the area-packed grid.
    snap_fill:
        Target utilization of the grid-snap occupancy map.
    compaction_passes:
        Scanline compaction passes after legalization.
    routing_space_factor:
        Override of the technology's ω; ``None`` uses the technology value.
    """

    gamma_um: Optional[float] = None
    tau_um: Optional[float] = None
    whitespace_factor: float = 1.8
    overlap_threshold: float = 0.02
    max_lambda_stages: int = 8
    cg_iterations_per_stage: int = 30
    use_connectivity_seed: bool = True
    snap_fill: float = 0.72
    compaction_passes: int = 2
    routing_space_factor: Optional[float] = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.whitespace_factor < 1.0:
            raise ValueError(f"whitespace_factor must be >= 1, got {self.whitespace_factor}")
        if not 0.0 < self.overlap_threshold < 1.0:
            raise ValueError(
                f"overlap_threshold must lie in (0, 1), got {self.overlap_threshold}"
            )
        if self.max_lambda_stages < 1 or self.cg_iterations_per_stage < 1:
            raise ValueError("stage/iteration budgets must be >= 1")
        if not 0.0 < self.snap_fill < 1.0:
            raise ValueError(f"snap_fill must lie in (0, 1), got {self.snap_fill}")
        if self.compaction_passes < 0:
            raise ValueError("compaction_passes must be >= 0")


#: A reduced-effort configuration for unit tests and quick examples.
FAST_PLACEMENT = PlacementConfig(max_lambda_stages=4, cg_iterations_per_stage=12)


def place(
    netlist: Netlist,
    technology: Technology = DEFAULT_TECHNOLOGY,
    config: Optional[PlacementConfig] = None,
    rng: RngLike = None,
) -> Placement:
    """Place a netlist and return a legalized, compacted placement.

    The returned :class:`Placement` stores *physical* cell dimensions; its
    metadata records the λ schedule, the winning snapshot, and HPWL at the
    pipeline milestones.
    """
    if config is None:
        config = PlacementConfig()
    rng = ensure_rng(rng)
    widths = netlist.widths()
    heights = netlist.heights()
    omega = (
        config.routing_space_factor
        if config.routing_space_factor is not None
        else technology.routing_space_factor
    )
    virtual_w = widths * omega
    virtual_h = heights * omega
    total_virtual_area = float(np.sum(virtual_w * virtual_h))
    sources, targets, wire_weights = netlist.wire_endpoints()

    has_crossbars = any(cell.kind == CellKind.CROSSBAR for cell in netlist.cells)
    if config.use_connectivity_seed and sources.size and has_crossbars:
        seed_x, seed_y = connectivity_seed(netlist, virtual_w, virtual_h, rng=rng)
        seed_kind = "connectivity"
    else:
        seed_x, seed_y = initial_placement(
            virtual_w, virtual_h, whitespace_factor=config.whitespace_factor, rng=rng
        )
        seed_kind = "area_grid"

    side_estimate = float(np.sqrt(total_virtual_area * config.whitespace_factor))
    gamma = config.gamma_um if config.gamma_um is not None else max(0.01 * side_estimate, 0.5)
    tau = config.tau_um if config.tau_um is not None else max(0.005 * side_estimate, 0.25)

    recorder = get_recorder()
    stage_log = []
    objective = None
    x, y = seed_x, seed_y
    if sources.size:
        objective = PlacementObjective(
            sources=sources,
            targets=targets,
            weights=wire_weights,
            virtual_widths=virtual_w,
            virtual_heights=virtual_h,
            gamma=gamma,
            tau=tau,
        )
        z = objective.pack(seed_x, seed_y)
        lam = objective.initial_lambda(z)  # Algorithm 4 line 1
        with recorder.span(
            "placement.penalty_loop", cells=netlist.num_cells, wires=len(netlist.wires)
        ) as loop_span:
            for stage in range(1, config.max_lambda_stages + 1):
                objective.lam = lam
                result = conjugate_gradient(
                    objective.value_and_grad,
                    z,
                    max_iterations=config.cg_iterations_per_stage,
                )
                z = result.z
                x, y = objective.unpack(z)
                overlap = true_overlap(x, y, virtual_w, virtual_h)
                overlap_ratio = overlap / total_virtual_area if total_virtual_area else 0.0
                stage_log.append(
                    {
                        "stage": stage,
                        "lambda": lam,
                        "objective": result.value,
                        "cg_iterations": result.iterations,
                        "overlap_ratio": overlap_ratio,
                    }
                )
                if overlap_ratio <= config.overlap_threshold:
                    break
                lam *= 2.0  # Algorithm 4 line 5
            loop_span.annotate(
                lambda_stages=len(stage_log),
                final_overlap_ratio=stage_log[-1]["overlap_ratio"] if stage_log else 0.0,
            )

    def weighted_hpwl(px: np.ndarray, py: np.ndarray) -> float:
        if not sources.size:
            return 0.0
        return hpwl(px, py, sources, targets, weights=wire_weights)

    # Two legal candidates: snap of the seed and snap of the refined layout.
    with recorder.span("placement.legalize") as legalize_span:
        candidates = {}
        snap_seed = grid_snap(seed_x, seed_y, virtual_w, virtual_h, fill=config.snap_fill)
        candidates["seed"] = snap_seed
        if stage_log:
            snap_refined = grid_snap(x, y, virtual_w, virtual_h, fill=config.snap_fill)
            candidates["refined"] = snap_refined
        chosen_name, (x, y) = min(
            candidates.items(), key=lambda item: weighted_hpwl(item[1][0], item[1][1])
        )
        hpwl_after_snap = weighted_hpwl(x, y)
        if config.compaction_passes:
            x, y = compact(x, y, virtual_w, virtual_h, passes=config.compaction_passes)
        hpwl_after_compact = weighted_hpwl(x, y)
        legalize_span.annotate(chosen=chosen_name)

    recorder.count("placement.runs")
    recorder.count("placement.lambda_stages", len(stage_log))
    recorder.count(
        "placement.gradient_steps", sum(s["cg_iterations"] for s in stage_log)
    )
    if objective is not None:
        recorder.count("placement.wa_evals", objective.wa_evals)
        recorder.count("placement.density_evals", objective.density_evals)
    if stage_log:
        recorder.gauge("placement.final_overlap_ratio", stage_log[-1]["overlap_ratio"])
    recorder.gauge("placement.hpwl_after_legalization", hpwl_after_compact)

    # Normalize to a (0, 0) origin for readable layouts (physical extents).
    if x.size:
        x = x - np.min(x - widths / 2.0)
        y = y - np.min(y - heights / 2.0)
    return Placement(
        x=x,
        y=y,
        widths=widths,
        heights=heights,
        metadata={
            "seed": seed_kind,
            "stages": stage_log,
            "gamma_um": gamma,
            "tau_um": tau,
            "routing_space_factor": omega,
            "chosen_snapshot": chosen_name,
            "legalization": {"method": "grid_snap+compact", "overlap_ratio": 0.0},
            "hpwl_seed": weighted_hpwl(seed_x, seed_y),
            "hpwl_after_legalization": hpwl_after_snap,
            "hpwl_after_compaction": hpwl_after_compact,
        },
    )
