"""Simulated-annealing placement baseline (extension).

The paper's placer is analytical (Algorithm 4); classic annealing is the
traditional alternative and makes a useful quality/runtime reference for
ablation benches.  Cells start from the same area-aware initial layout,
then random single-cell moves and pair swaps are accepted by the
Metropolis rule on ``HPWL + λ·overlap``; a final push-apart legalization
matches the analytic flow's post-processing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.hardware.technology import DEFAULT_TECHNOLOGY, Technology
from repro.mapping.netlist import Netlist
from repro.observability import get_recorder
from repro.physical.layout import Placement
from repro.physical.placement.initial import initial_placement
from repro.physical.placement.legalize import legalize
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class AnnealingConfig:
    """Annealing schedule and move parameters."""

    moves_per_temperature: int = 400
    temperatures: int = 40
    cooling: float = 0.85
    initial_acceptance: float = 0.8
    overlap_weight: float = 4.0
    move_scale_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.moves_per_temperature < 1 or self.temperatures < 1:
            raise ValueError("move/temperature budgets must be >= 1")
        if not 0.0 < self.cooling < 1.0:
            raise ValueError("cooling must lie in (0, 1)")
        if not 0.0 < self.initial_acceptance < 1.0:
            raise ValueError("initial_acceptance must lie in (0, 1)")


def _wire_cost(
    x: np.ndarray,
    y: np.ndarray,
    sources: np.ndarray,
    targets: np.ndarray,
    weights: np.ndarray,
) -> float:
    return float(
        np.sum(
            weights
            * (np.abs(x[sources] - x[targets]) + np.abs(y[sources] - y[targets]))
        )
    )


def _cell_overlap(
    x: np.ndarray, y: np.ndarray, half_w: np.ndarray, half_h: np.ndarray, i: int
) -> float:
    """Total overlap area between cell ``i`` and all other cells."""
    dx = np.abs(x - x[i])
    dy = np.abs(y - y[i])
    ox = np.maximum(0.0, half_w + half_w[i] - dx)
    oy = np.maximum(0.0, half_h + half_h[i] - dy)
    overlap = ox * oy
    overlap[i] = 0.0
    return float(overlap.sum())


def anneal_place(
    netlist: Netlist,
    technology: Technology = DEFAULT_TECHNOLOGY,
    config: Optional[AnnealingConfig] = None,
    rng: RngLike = None,
) -> Placement:
    """Place a netlist by simulated annealing; returns a legalized placement."""
    if config is None:
        config = AnnealingConfig()
    rng = ensure_rng(rng)
    widths = netlist.widths()
    heights = netlist.heights()
    omega = technology.routing_space_factor
    virtual_w = widths * omega
    virtual_h = heights * omega
    half_w = virtual_w / 2.0
    half_h = virtual_h / 2.0
    n = netlist.num_cells
    x, y = initial_placement(virtual_w, virtual_h, rng=rng)
    sources, targets, wire_weights = netlist.wire_endpoints()

    # Per-cell wire adjacency for incremental cost evaluation.
    incident = [[] for _ in range(n)]
    for w_idx in range(sources.shape[0]):
        incident[sources[w_idx]].append(w_idx)
        incident[targets[w_idx]].append(w_idx)
    incident = [np.asarray(lst, dtype=int) for lst in incident]

    def local_cost(i: int) -> float:
        wires = incident[i]
        wl = 0.0
        if wires.size:
            wl = float(
                np.sum(
                    wire_weights[wires]
                    * (
                        np.abs(x[sources[wires]] - x[targets[wires]])
                        + np.abs(y[sources[wires]] - y[targets[wires]])
                    )
                )
            )
        return wl + config.overlap_weight * _cell_overlap(x, y, half_w, half_h, i)

    span = max(float(np.ptp(x)), float(np.ptp(y)), 1.0)
    move_scale = config.move_scale_fraction * span

    # Calibrate the starting temperature from sampled uphill deltas.
    samples = []
    for _ in range(30):
        i = int(rng.integers(0, n))
        before = local_cost(i)
        old = (x[i], y[i])
        x[i] += rng.normal(0.0, move_scale)
        y[i] += rng.normal(0.0, move_scale)
        delta = local_cost(i) - before
        x[i], y[i] = old
        if delta > 0:
            samples.append(delta)
    mean_uphill = float(np.mean(samples)) if samples else 1.0
    temperature = -mean_uphill / np.log(config.initial_acceptance)

    # Move tallies stay plain local ints inside the Metropolis loop; the
    # recorder sees one flush at the end (null-recorder overhead contract).
    accepted_total = 0
    attempted_total = 0
    for _ in range(config.temperatures):
        for _ in range(config.moves_per_temperature):
            i = int(rng.integers(0, n))
            if rng.random() < 0.8:  # displacement move
                attempted_total += 1
                before = local_cost(i)
                old = (x[i], y[i])
                x[i] += rng.normal(0.0, move_scale)
                y[i] += rng.normal(0.0, move_scale)
                delta = local_cost(i) - before
                if delta > 0 and rng.random() >= np.exp(-delta / max(temperature, 1e-12)):
                    x[i], y[i] = old
                else:
                    accepted_total += 1
            else:  # pair swap
                j = int(rng.integers(0, n))
                if i == j:
                    continue
                attempted_total += 1
                before = local_cost(i) + local_cost(j)
                x[i], x[j] = x[j], x[i]
                y[i], y[j] = y[j], y[i]
                delta = local_cost(i) + local_cost(j) - before
                if delta > 0 and rng.random() >= np.exp(-delta / max(temperature, 1e-12)):
                    x[i], x[j] = x[j], x[i]
                    y[i], y[j] = y[j], y[i]
                else:
                    accepted_total += 1
        temperature *= config.cooling
        move_scale = max(move_scale * 0.95, 0.01 * span)

    recorder = get_recorder()
    recorder.count("placement.anneal_moves", attempted_total)
    recorder.count("placement.anneal_accepted", accepted_total)
    recorder.count("placement.anneal_rejected", attempted_total - accepted_total)

    x, y, legal_info = legalize(x, y, virtual_w, virtual_h, rng=rng)
    if x.size:
        x = x - np.min(x - widths / 2.0)
        y = y - np.min(y - heights / 2.0)
    return Placement(
        x=x,
        y=y,
        widths=widths,
        heights=heights,
        metadata={
            "method": "annealing",
            "accepted_moves": accepted_total,
            "final_temperature": temperature,
            "legalization": legal_info,
            "final_hpwl": _wire_cost(x, y, sources, targets, np.ones_like(wire_weights)),
        },
    )
