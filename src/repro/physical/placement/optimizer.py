"""Nonlinear conjugate gradient (paper [15], used by Algorithm 4 line 3).

Polak–Ribière+ directions with automatic restart and a backtracking Armijo
line search.  The placer's objectives are smooth but mildly nonconvex;
PR+ with restarts is the standard choice in analytical placement
(NTUplace3 uses exactly this family).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

import numpy as np

ValueAndGrad = Callable[[np.ndarray], Tuple[float, np.ndarray]]


@dataclass
class CgResult:
    """Outcome of a conjugate-gradient run."""

    z: np.ndarray
    value: float
    iterations: int
    converged: bool


def _armijo_line_search(
    objective: ValueAndGrad,
    z: np.ndarray,
    value: float,
    grad: np.ndarray,
    direction: np.ndarray,
    initial_step: float,
    c1: float = 1e-4,
    shrink: float = 0.5,
    max_backtracks: int = 30,
) -> Tuple[np.ndarray, float, np.ndarray, float]:
    """Backtracking search satisfying the Armijo sufficient-decrease rule.

    Returns ``(z_new, value_new, grad_new, step)``; a zero step means the
    search failed (direction not a descent direction at machine precision).
    """
    slope = float(grad @ direction)
    if slope >= 0.0:
        return z, value, grad, 0.0
    step = initial_step
    candidate = z + step * direction
    cand_value, cand_grad = objective(candidate)
    if np.isfinite(cand_value) and cand_value <= value + c1 * step * slope:
        # The initial step already works — expand while it keeps helping,
        # which makes the search robust to a too-small step scale (e.g. a
        # degenerate all-zeros start gives no coordinate span to infer one).
        best = (candidate, cand_value, cand_grad, step)
        for _ in range(10):
            step *= 2.0
            candidate = z + step * direction
            cand_value, cand_grad = objective(candidate)
            if np.isfinite(cand_value) and cand_value < best[1] + c1 * (
                step - best[3]
            ) * slope:
                best = (candidate, cand_value, cand_grad, step)
            else:
                break
        return best
    for _ in range(max_backtracks):
        step *= shrink
        candidate = z + step * direction
        cand_value, cand_grad = objective(candidate)
        if np.isfinite(cand_value) and cand_value <= value + c1 * step * slope:
            return candidate, cand_value, cand_grad, step
    return z, value, grad, 0.0


def conjugate_gradient(
    objective: ValueAndGrad,
    z0: np.ndarray,
    max_iterations: int = 100,
    gradient_tolerance: float = 1e-6,
    step_scale: float = 1.0,
) -> CgResult:
    """Minimize ``objective`` from ``z0`` with Polak–Ribière+ CG.

    Parameters
    ----------
    objective:
        Callable returning ``(value, gradient)``.
    step_scale:
        Multiplier on the heuristic initial step of each line search —
        larger values explore faster, smaller values are safer.

    Returns
    -------
    CgResult
        Final point, value, iteration count, and a convergence flag
        (gradient norm below tolerance or line search exhausted).
    """
    if max_iterations < 1:
        raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
    z = np.asarray(z0, dtype=float).copy()
    value, grad = objective(z)
    direction = -grad
    converged = False
    iteration = 0
    # Trust-region-style step scale: the most-moved cell travels ~2 % of
    # the coordinate span per accepted step.  Normalizing by the infinity
    # norm (not the L2 norm, which grows with the variable count) keeps
    # per-cell moves meaningful for designs of any size.
    span = float(np.ptp(z)) if z.size else 1.0
    target_move = max(0.02 * span, 1e-3)
    for iteration in range(1, max_iterations + 1):
        grad_norm = float(np.linalg.norm(grad))
        if grad_norm <= gradient_tolerance:
            converged = True
            break
        direction_norm = float(np.max(np.abs(direction)))
        if direction_norm <= 0.0:
            converged = True
            break
        initial_step = step_scale * target_move / direction_norm
        z_new, value_new, grad_new, step = _armijo_line_search(
            objective, z, value, grad, direction, initial_step
        )
        if step == 0.0:
            # Restart once on steepest descent before giving up.
            if np.allclose(direction, -grad):
                converged = True
                break
            direction = -grad
            continue
        # Polak–Ribière+ beta with automatic restart (beta clipped at 0).
        y_vec = grad_new - grad
        denom = float(grad @ grad)
        beta = max(0.0, float(grad_new @ y_vec) / denom) if denom > 0 else 0.0
        direction = -grad_new + beta * direction
        z, value, grad = z_new, value_new, grad_new
    return CgResult(z=z, value=value, iterations=iteration, converged=converged)
