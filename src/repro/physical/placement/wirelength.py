"""Weighted-average (WA) wirelength model (paper eq. (1), from [13]).

HPWL is nonconvex and non-differentiable, so the placer minimizes the WA
approximation instead.  For a wire ``e`` with pin coordinates ``x_v`` the
smooth max/min estimates are::

    max ≈ Σ x·exp(x/γ) / Σ exp(x/γ)      min ≈ Σ x·exp(-x/γ) / Σ exp(-x/γ)

and ``WL = Σ_e w_e [ (max_x - min_x) + (max_y - min_y) ]`` with user wire
weights ``w_e``.  γ controls smoothness: WA → HPWL as γ → 0.

All wires in the AutoNCS netlist are 2-pin, so the implementation is
vectorized over wire endpoint arrays; exponent stabilization (subtracting
the per-wire max) keeps it finite for any coordinate range.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def hpwl(
    x: np.ndarray,
    y: np.ndarray,
    sources: np.ndarray,
    targets: np.ndarray,
    weights: Optional[np.ndarray] = None,
) -> float:
    """Exact (weighted) half-perimeter wirelength for 2-pin wires."""
    dx = np.abs(x[sources] - x[targets])
    dy = np.abs(y[sources] - y[targets])
    if weights is None:
        return float(np.sum(dx + dy))
    return float(np.sum(weights * (dx + dy)))


def _wa_axis(
    a: np.ndarray, b: np.ndarray, gamma: float
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-wire WA span along one axis plus gradients w.r.t. the two pins.

    Returns ``(span, d_span/da, d_span/db)`` for 2-pin wires with pin
    coordinates ``a`` and ``b``.
    """
    # Smooth-max part: stabilized by the per-wire max.
    m = np.maximum(a, b)
    ea = np.exp((a - m) / gamma)
    eb = np.exp((b - m) / gamma)
    denom_max = ea + eb
    smooth_max = (a * ea + b * eb) / denom_max
    # Smooth-min part: stabilized by the per-wire min.
    mn = np.minimum(a, b)
    fa = np.exp((mn - a) / gamma)
    fb = np.exp((mn - b) / gamma)
    denom_min = fa + fb
    smooth_min = (a * fa + b * fb) / denom_min
    span = smooth_max - smooth_min
    # d smooth_max / d a = (ea/denom)·[1 + (a - smooth_max)/γ]
    dmax_da = (ea / denom_max) * (1.0 + (a - smooth_max) / gamma)
    dmax_db = (eb / denom_max) * (1.0 + (b - smooth_max) / gamma)
    # d smooth_min / d a = (fa/denom)·[1 - (a - smooth_min)/γ]
    dmin_da = (fa / denom_min) * (1.0 - (a - smooth_min) / gamma)
    dmin_db = (fb / denom_min) * (1.0 - (b - smooth_min) / gamma)
    return span, dmax_da - dmin_da, dmax_db - dmin_db


def wa_wirelength(
    x: np.ndarray,
    y: np.ndarray,
    sources: np.ndarray,
    targets: np.ndarray,
    weights: np.ndarray,
    gamma: float,
) -> float:
    """Weighted WA wirelength (eq. 1) over all 2-pin wires."""
    value, _, _ = wa_wirelength_and_grad(x, y, sources, targets, weights, gamma)
    return value


def wa_wirelength_and_grad(
    x: np.ndarray,
    y: np.ndarray,
    sources: np.ndarray,
    targets: np.ndarray,
    weights: np.ndarray,
    gamma: float,
) -> Tuple[float, np.ndarray, np.ndarray]:
    """WA wirelength plus its gradient w.r.t. all cell coordinates.

    Returns ``(value, grad_x, grad_y)`` where the gradients have one entry
    per cell (pin gradients scattered back onto cells).
    """
    if gamma <= 0:
        raise ValueError(f"gamma must be > 0, got {gamma}")
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    sources = np.asarray(sources, dtype=int)
    targets = np.asarray(targets, dtype=int)
    weights = np.asarray(weights, dtype=float)
    grad_x = np.zeros_like(x)
    grad_y = np.zeros_like(y)
    if sources.size == 0:
        return 0.0, grad_x, grad_y
    span_x, dxa, dxb = _wa_axis(x[sources], x[targets], gamma)
    span_y, dya, dyb = _wa_axis(y[sources], y[targets], gamma)
    value = float(np.sum(weights * (span_x + span_y)))
    np.add.at(grad_x, sources, weights * dxa)
    np.add.at(grad_x, targets, weights * dxb)
    np.add.at(grad_y, sources, weights * dya)
    np.add.at(grad_y, targets, weights * dyb)
    return value, grad_x, grad_y
