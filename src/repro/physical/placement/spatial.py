"""Spatial binning for pairwise cell interactions.

Both the sigmoid density model and the push-apart legalizer need "all pairs
of cells that are close enough to interact".  Full pairwise enumeration is
O(n²) and dominates runtime beyond ~1000 cells, so this module buckets
cells into a uniform grid whose pitch is the largest interaction reach;
any interacting pair then lies in the same or an adjacent bucket.

The candidate set is a superset of the interacting pairs (exact for
rectangle overlap when ``reach`` covers the cell half-extents), so callers
lose no correctness — only the sub-cutoff sigmoid tails, which are
numerically negligible.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np


def candidate_pairs(
    x: np.ndarray,
    y: np.ndarray,
    reach: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Indices ``(ii, jj)`` of all pairs with ``|Δx|,|Δy| <= reach_i + reach_j``.

    Parameters
    ----------
    reach:
        Per-cell interaction radius along each axis (e.g. half-extent plus
        a smoothing margin).  The bucket pitch is twice the maximum reach,
        so every returned pair is found in the 3×3 bucket neighbourhood.

    Returns a superset of the interacting pairs with ``ii < jj``.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    reach = np.asarray(reach, dtype=float)
    n = x.shape[0]
    if n < 2:
        empty = np.zeros(0, dtype=int)
        return empty, empty
    pitch = 2.0 * float(reach.max())
    if pitch <= 0.0:
        empty = np.zeros(0, dtype=int)
        return empty, empty
    bx = np.floor(x / pitch).astype(np.int64)
    by = np.floor(y / pitch).astype(np.int64)
    buckets: Dict[Tuple[int, int], np.ndarray] = {}
    order = np.lexsort((by, bx))
    sorted_bx = bx[order]
    sorted_by = by[order]
    boundaries = np.nonzero(
        (np.diff(sorted_bx) != 0) | (np.diff(sorted_by) != 0)
    )[0]
    starts = np.concatenate([[0], boundaries + 1])
    ends = np.concatenate([boundaries + 1, [n]])
    for start, end in zip(starts, ends):
        key = (int(sorted_bx[start]), int(sorted_by[start]))
        buckets[key] = order[start:end]
    chunks_i: List[np.ndarray] = []
    chunks_j: List[np.ndarray] = []
    for (cx, cy), members in buckets.items():
        m = members.shape[0]
        # Within-bucket pairs (vectorized upper triangle).
        if m > 1:
            a_idx, b_idx = np.triu_indices(m, k=1)
            chunks_i.append(members[a_idx])
            chunks_j.append(members[b_idx])
        # Pairs with the four "forward" neighbour buckets (covering each
        # adjacent bucket pair exactly once).
        for dx, dy in ((1, 0), (1, 1), (0, 1), (-1, 1)):
            other = buckets.get((cx + dx, cy + dy))
            if other is None:
                continue
            chunks_i.append(np.repeat(members, other.shape[0]))
            chunks_j.append(np.tile(other, m))
    if not chunks_i:
        empty = np.zeros(0, dtype=int)
        return empty, empty
    ii_arr = np.concatenate(chunks_i)
    jj_arr = np.concatenate(chunks_j)
    swap = ii_arr > jj_arr
    ii_arr[swap], jj_arr[swap] = jj_arr[swap], ii_arr[swap].copy()
    # Exact per-pair cutoff filter.
    keep = (np.abs(x[ii_arr] - x[jj_arr]) <= reach[ii_arr] + reach[jj_arr]) & (
        np.abs(y[ii_arr] - y[jj_arr]) <= reach[ii_arr] + reach[jj_arr]
    )
    return ii_arr[keep], jj_arr[keep]


#: Cell count above which pairwise models switch to spatial binning.
PAIRWISE_LIMIT = 600
