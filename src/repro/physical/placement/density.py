"""Sigmoid-based cell density / overlap model (paper eq. (2), from [14]).

``D(x, y) = Σ_{i<j} O_x(c_i, c_j) · O_y(c_i, c_j)`` where ``O_x`` is a
sigmoid overlap indicator along x.  With half-extent ``h = (w̃_i + w̃_j)/2``
(``w̃`` the *virtual* width — physical width times the routing-space factor
ω of Sec. 3.5) and center distance ``Δ``::

    O_x = σ((h - |Δ|)/τ) = 1 / (1 + exp((|Δ| - h)/τ))

``O_x ≈ 1`` when the intervals overlap and → 0 when they are separated; τ
controls the transition sharpness.  |Δ| is smoothed as ``sqrt(Δ² + ε)`` so
the gradient is defined at coincident centers.

For small designs every pair is evaluated; beyond
:data:`~repro.physical.placement.spatial.PAIRWISE_LIMIT` cells the pair
set is pruned by spatial binning (sigmoid tails beyond the interaction
cutoff are numerically zero, so the pruning is lossless in practice).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.special

from repro.physical.placement.spatial import PAIRWISE_LIMIT, candidate_pairs

_EPSILON = 1e-6

#: Sigmoid cutoff margin in units of τ: σ(-8) ≈ 3e-4.
_CUTOFF_TAUS = 8.0


def sigmoid_overlap(delta: np.ndarray, half_extent: np.ndarray, tau: float) -> np.ndarray:
    """Smooth overlap indicator ``σ((h - |Δ|)/τ)`` (vectorized)."""
    if tau <= 0:
        raise ValueError(f"tau must be > 0, got {tau}")
    soft_abs = np.sqrt(delta * delta + _EPSILON)
    z = (half_extent - soft_abs) / tau
    return scipy.special.expit(z)  # numerically stable logistic


def _interaction_pairs(
    x: np.ndarray,
    y: np.ndarray,
    half_w: np.ndarray,
    half_h: np.ndarray,
    margin: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Pairs to evaluate: full triangle for small n, binned beyond the limit."""
    n = x.shape[0]
    if n <= PAIRWISE_LIMIT:
        return np.triu_indices(n, k=1)
    reach = np.maximum(half_w, half_h) + margin / 2.0
    return candidate_pairs(x, y, reach)


def density_value_and_grad(
    x: np.ndarray,
    y: np.ndarray,
    widths: np.ndarray,
    heights: np.ndarray,
    tau: float,
) -> Tuple[float, np.ndarray, np.ndarray]:
    """Pairwise sigmoid density ``D`` and its gradient.

    Parameters
    ----------
    widths / heights:
        The *virtual* cell dimensions (ω already applied by the caller).
    tau:
        Sigmoid smoothing length in µm.

    Returns
    -------
    (value, grad_x, grad_y)
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    grad_x = np.zeros_like(x)
    grad_y = np.zeros_like(y)
    n = x.shape[0]
    if n < 2:
        return 0.0, grad_x, grad_y
    half_w = np.asarray(widths, dtype=float) / 2.0
    half_h = np.asarray(heights, dtype=float) / 2.0
    ii, jj = _interaction_pairs(x, y, half_w, half_h, margin=_CUTOFF_TAUS * tau)
    if ii.size == 0:
        return 0.0, grad_x, grad_y

    dx = x[ii] - x[jj]
    dy = y[ii] - y[jj]
    hx = half_w[ii] + half_w[jj]
    hy = half_h[ii] + half_h[jj]

    ox = sigmoid_overlap(dx, hx, tau)
    oy = sigmoid_overlap(dy, hy, tau)
    value = float(np.sum(ox * oy))

    # dσ/dΔ = -σ(1-σ)/τ · d|Δ|/dΔ with d|Δ|/dΔ = Δ / sqrt(Δ²+ε).
    soft_abs_x = np.sqrt(dx * dx + _EPSILON)
    soft_abs_y = np.sqrt(dy * dy + _EPSILON)
    dox = -(ox * (1.0 - ox) / tau) * (dx / soft_abs_x)
    doy = -(oy * (1.0 - oy) / tau) * (dy / soft_abs_y)
    gx_pair = dox * oy
    gy_pair = doy * ox
    np.add.at(grad_x, ii, gx_pair)
    np.add.at(grad_x, jj, -gx_pair)
    np.add.at(grad_y, ii, gy_pair)
    np.add.at(grad_y, jj, -gy_pair)
    return value, grad_x, grad_y


def true_overlap(
    x: np.ndarray,
    y: np.ndarray,
    widths: np.ndarray,
    heights: np.ndarray,
) -> float:
    """Exact total pairwise rectangle-overlap area (the loop's stop metric)."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    n = x.shape[0]
    if n < 2:
        return 0.0
    half_w = np.asarray(widths, dtype=float) / 2.0
    half_h = np.asarray(heights, dtype=float) / 2.0
    # margin 0: overlapping rectangles always sit within reach of each other.
    ii, jj = _interaction_pairs(x, y, half_w, half_h, margin=0.0)
    if ii.size == 0:
        return 0.0
    ox = np.maximum(0.0, half_w[ii] + half_w[jj] - np.abs(x[ii] - x[jj]))
    oy = np.maximum(0.0, half_h[ii] + half_h[jj] - np.abs(y[ii] - y[jj]))
    return float(np.sum(ox * oy))
