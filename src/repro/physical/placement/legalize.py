"""Legalization: push cells apart to remove residual overlap (Alg. 4 line 7).

Primary method: iterative pairwise separation.  Each pass finds every
overlapping pair of (virtual-dimension) rectangles and pushes the two cells
apart along the axis of least penetration, with displacement shared in
inverse proportion to cell area so large crossbars barely move.  This
preserves the analytic placement's global structure.

Fallback: if the push-apart loop cannot reach the overlap tolerance (a
pathologically dense start), a deterministic row-packing pass produces a
guaranteed-legal placement ordered by the analytic y-then-x coordinates.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.observability import get_recorder
from repro.physical.placement.spatial import PAIRWISE_LIMIT, candidate_pairs
from repro.utils.rng import RngLike, ensure_rng

_SLACK = 1e-3  # extra separation (µm) so legality survives float noise


def _overlap_pairs(
    x: np.ndarray, y: np.ndarray, half_w: np.ndarray, half_h: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Indices and penetrations of all overlapping pairs (i < j)."""
    n = x.shape[0]
    if n <= PAIRWISE_LIMIT:
        ii, jj = np.triu_indices(n, k=1)
    else:
        ii, jj = candidate_pairs(x, y, np.maximum(half_w, half_h))
    pen_x = half_w[ii] + half_w[jj] - np.abs(x[ii] - x[jj])
    pen_y = half_h[ii] + half_h[jj] - np.abs(y[ii] - y[jj])
    keep = (pen_x > 0.0) & (pen_y > 0.0)
    return ii[keep], jj[keep], pen_x[keep], pen_y[keep]


def push_apart(
    x: np.ndarray,
    y: np.ndarray,
    widths: np.ndarray,
    heights: np.ndarray,
    max_passes: int = 300,
    tolerance_ratio: float = 1e-3,
    rng: RngLike = None,
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Iteratively separate overlapping cells.

    Returns ``(x, y, final_overlap_ratio)`` where the ratio is total
    overlap area over total cell area.
    """
    rng = ensure_rng(rng)
    x = np.asarray(x, dtype=float).copy()
    y = np.asarray(y, dtype=float).copy()
    widths = np.asarray(widths, dtype=float)
    heights = np.asarray(heights, dtype=float)
    half_w = widths / 2.0
    half_h = heights / 2.0
    areas = widths * heights
    total_area = float(areas.sum())
    if total_area <= 0.0 or x.size < 2:
        return x, y, 0.0

    # Pass/move tallies: local ints in the loop, one recorder flush on
    # every exit (null-recorder overhead contract).
    passes_run = 0
    pair_moves = 0

    def _flush() -> None:
        recorder = get_recorder()
        recorder.count("placement.legalize_passes", passes_run)
        recorder.count("placement.legalize_pair_moves", pair_moves)

    ratio = np.inf
    for _ in range(max_passes):
        passes_run += 1
        ii, jj, pen_x, pen_y = _overlap_pairs(x, y, half_w, half_h)
        if ii.size == 0:
            _flush()
            return x, y, 0.0
        overlap_area = float(np.sum(pen_x * pen_y))
        ratio = overlap_area / total_area
        if ratio <= tolerance_ratio:
            _flush()
            return x, y, ratio
        pair_moves += int(ii.size)
        shift_x = np.zeros_like(x)
        shift_y = np.zeros_like(y)
        # Share each pair's separation inversely to cell area.
        share_i = areas[jj] / (areas[ii] + areas[jj])
        share_j = 1.0 - share_i
        dx = x[ii] - x[jj]
        dy = y[ii] - y[jj]
        # Break exact-tie directions deterministically enough via rng.
        zero_dx = dx == 0.0
        zero_dy = dy == 0.0
        if zero_dx.any():
            dx = dx.copy()
            dx[zero_dx] = rng.choice([-1.0, 1.0], size=int(zero_dx.sum())) * 1e-6
        if zero_dy.any():
            dy = dy.copy()
            dy[zero_dy] = rng.choice([-1.0, 1.0], size=int(zero_dy.sum())) * 1e-6
        move_along_x = pen_x <= pen_y
        amount = np.where(move_along_x, pen_x, pen_y) + _SLACK
        sign_x = np.sign(dx)
        sign_y = np.sign(dy)
        axis_x = move_along_x.astype(float)
        axis_y = 1.0 - axis_x
        np.add.at(shift_x, ii, axis_x * sign_x * amount * share_i)
        np.add.at(shift_x, jj, -axis_x * sign_x * amount * share_j)
        np.add.at(shift_y, ii, axis_y * sign_y * amount * share_i)
        np.add.at(shift_y, jj, -axis_y * sign_y * amount * share_j)
        # Damped Jacobi update: full shifts can overshoot when a cell
        # participates in many pairs.
        x += 0.7 * shift_x
        y += 0.7 * shift_y
    ii, jj, pen_x, pen_y = _overlap_pairs(x, y, half_w, half_h)
    ratio = float(np.sum(pen_x * pen_y)) / total_area if ii.size else 0.0
    _flush()
    return x, y, ratio


def row_pack(
    x: np.ndarray,
    y: np.ndarray,
    widths: np.ndarray,
    heights: np.ndarray,
    aspect_target: float = 1.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Deterministic guaranteed-legal fallback: pack into horizontal rows.

    Cells are ordered by their analytic ``(y, x)`` so the packed layout
    still resembles the optimized one.  Row width targets a square chip.
    """
    widths = np.asarray(widths, dtype=float)
    heights = np.asarray(heights, dtype=float)
    n = widths.shape[0]
    if n == 0:
        return np.zeros(0), np.zeros(0)
    if aspect_target <= 0:
        raise ValueError(f"aspect_target must be > 0, got {aspect_target}")
    total_area = float(np.sum(widths * heights))
    row_width = np.sqrt(total_area * 1.1 * aspect_target)
    row_width = max(row_width, float(widths.max()) + _SLACK)
    order = np.lexsort((np.asarray(x, dtype=float), np.asarray(y, dtype=float)))
    out_x = np.zeros(n)
    out_y = np.zeros(n)
    cursor_x = 0.0
    cursor_y = 0.0
    row_height = 0.0
    for cell in order:
        w = widths[cell] + _SLACK
        h = heights[cell] + _SLACK
        if cursor_x + w > row_width and cursor_x > 0.0:
            cursor_y += row_height
            cursor_x = 0.0
            row_height = 0.0
        out_x[cell] = cursor_x + w / 2.0
        out_y[cell] = cursor_y + h / 2.0
        cursor_x += w
        row_height = max(row_height, h)
    return out_x, out_y


def grid_snap(
    x: np.ndarray,
    y: np.ndarray,
    widths: np.ndarray,
    heights: np.ndarray,
    fill: float = 0.72,
) -> Tuple[np.ndarray, np.ndarray]:
    """Structure-preserving legalization: nearest-free-site assignment.

    Cells (largest first) are snapped onto an occupancy grid at the free
    site closest to their current position — a Tetris-style legalizer that
    keeps the global structure of a heavily overlapped seed, where
    iterative push-apart diverges and row packing scrambles the order.

    ``fill`` is the target area utilization of the occupancy map; the map
    grows automatically if quantization overhead exhausts it.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    widths = np.asarray(widths, dtype=float)
    heights = np.asarray(heights, dtype=float)
    n = x.shape[0]
    if n == 0:
        return x.copy(), y.copy()
    if not 0.0 < fill < 1.0:
        raise ValueError(f"fill must lie in (0, 1), got {fill}")
    resolution = max(float(np.median(np.minimum(widths, heights))), 0.25)
    # Size the map from the *quantized* footprints, so ceil() overhead is
    # already budgeted.
    w_bins_all = np.ceil(widths / resolution).astype(int)
    h_bins_all = np.ceil(heights / resolution).astype(int)
    quantized_area = float(np.sum(w_bins_all * h_bins_all)) * resolution * resolution
    side = np.sqrt(quantized_area / fill)
    side = max(side, float(widths.max()) + resolution, float(heights.max()) + resolution)
    while True:
        bins = int(np.ceil(side / resolution)) + 2
        occupied = np.zeros((bins, bins), dtype=bool)
        sx = x - x.min()
        sy = y - y.min()
        if sx.max() > 0:
            sx = sx / sx.max() * (side - resolution)
        if sy.max() > 0:
            sy = sy / sy.max() * (side - resolution)
        offsets = [
            (dx, dy)
            for dx in range(-bins, bins + 1)
            for dy in range(-bins, bins + 1)
        ]
        offsets.sort(key=lambda o: o[0] * o[0] + o[1] * o[1])
        new_x = np.zeros(n)
        new_y = np.zeros(n)
        order = np.argsort(-(widths * heights))
        failed = False
        for i in order:
            wb = int(w_bins_all[i])
            hb = int(h_bins_all[i])
            bx0 = int(sx[i] / resolution)
            by0 = int(sy[i] / resolution)
            for dx, dy in offsets:
                ax = bx0 + dx
                ay = by0 + dy
                if ax < 0 or ay < 0 or ax + wb > bins or ay + hb > bins:
                    continue
                if not occupied[ax : ax + wb, ay : ay + hb].any():
                    occupied[ax : ax + wb, ay : ay + hb] = True
                    new_x[i] = (ax + wb / 2.0) * resolution
                    new_y[i] = (ay + hb / 2.0) * resolution
                    break
            else:
                failed = True
                break
        if not failed:
            return new_x, new_y
        side *= 1.2  # grow the map and retry


def compact(
    x: np.ndarray,
    y: np.ndarray,
    widths: np.ndarray,
    heights: np.ndarray,
    passes: int = 2,
) -> Tuple[np.ndarray, np.ndarray]:
    """Constraint-graph compaction: squeeze out whitespace, keep order.

    Alternating 1-D scanline compactions along x and y: each cell slides
    toward the origin until it abuts a cell it overlaps in the other axis.
    Legal input stays legal; the bounding box only shrinks.
    """
    x = np.asarray(x, dtype=float).copy()
    y = np.asarray(y, dtype=float).copy()
    widths = np.asarray(widths, dtype=float)
    heights = np.asarray(heights, dtype=float)
    n = x.shape[0]
    if n == 0:
        return x, y
    if passes < 1:
        raise ValueError(f"passes must be >= 1, got {passes}")
    for _ in range(passes):
        for axis in (0, 1):
            if axis == 0:
                primary, secondary, p_dim, s_dim = x, y, widths, heights
            else:
                primary, secondary, p_dim, s_dim = y, x, heights, widths
            low = primary - p_dim / 2.0
            order = np.argsort(low)
            new_low = np.zeros(n)
            placed: list = []
            for i in order:
                lo = secondary[i] - s_dim[i] / 2.0
                hi = secondary[i] + s_dim[i] / 2.0
                base = 0.0
                for j in placed:
                    if (secondary[j] - s_dim[j] / 2.0) < hi - 1e-9 and (
                        secondary[j] + s_dim[j] / 2.0
                    ) > lo + 1e-9:
                        base = max(base, new_low[j] + p_dim[j])
                new_low[i] = base
                placed.append(i)
            if axis == 0:
                x = new_low + widths / 2.0
            else:
                y = new_low + heights / 2.0
    return x, y


def legalize(
    x: np.ndarray,
    y: np.ndarray,
    widths: np.ndarray,
    heights: np.ndarray,
    max_passes: int = 300,
    tolerance_ratio: float = 1e-3,
    rng: RngLike = None,
) -> Tuple[np.ndarray, np.ndarray, dict]:
    """Remove overlap; push-apart first, row-pack fallback if needed.

    Returns ``(x, y, info)`` with ``info['method']`` and
    ``info['overlap_ratio']`` describing what happened.
    """
    new_x, new_y, ratio = push_apart(
        x, y, widths, heights, max_passes=max_passes, tolerance_ratio=tolerance_ratio, rng=rng
    )
    if ratio <= max(tolerance_ratio, 5e-3):
        return new_x, new_y, {"method": "push_apart", "overlap_ratio": ratio}
    packed_x, packed_y = row_pack(new_x, new_y, widths, heights)
    return packed_x, packed_y, {"method": "row_pack", "overlap_ratio": 0.0}
