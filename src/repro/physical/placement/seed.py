"""Connectivity-aware initial placement seed.

The AutoNCS physical design is *customized*: the flow already knows which
neurons feed which crossbars, so the placer does not have to rediscover
that structure from scratch.  The seed places:

* **crossbars** on a regular grid ordered by a spectral embedding of the
  crossbar-affinity graph (two crossbars are affine when they share
  neurons), so related arrays start adjacent;
* **neurons** at the centroid of the crossbars they connect to;
* **discrete synapses** at the midpoint of their two endpoint neurons.

The Algorithm 4 penalty loop then refines this seed, and the
structure-preserving grid-snap legalizer makes it disjoint.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.linalg
import scipy.optimize

from repro.mapping.netlist import CellKind, Netlist
from repro.utils.rng import RngLike, ensure_rng


def connectivity_seed(
    netlist: Netlist,
    virtual_widths: np.ndarray,
    virtual_heights: np.ndarray,
    rng: RngLike = None,
    fill_target: float = 1.2,
) -> Tuple[np.ndarray, np.ndarray]:
    """Seed coordinates exploiting the known cluster structure.

    Returns center coordinates ``(x, y)``; heavily overlapped (neurons sit
    on their crossbars' centroids) — a structure-preserving legalizer must
    follow.
    """
    rng = ensure_rng(rng)
    n = netlist.num_cells
    if n == 0:
        return np.zeros(0), np.zeros(0)
    sources, targets, weights = netlist.wire_endpoints()
    kinds = [cell.kind for cell in netlist.cells]
    crossbars = [i for i in range(n) if kinds[i] == CellKind.CROSSBAR]
    total_area = float(np.sum(virtual_widths * virtual_heights))
    side = float(np.sqrt(max(total_area, 1e-9) * fill_target))
    x = np.zeros(n)
    y = np.zeros(n)

    # --- crossbars: spectral ordering of the shared-neuron affinity ------
    k = len(crossbars)
    if k:
        adjacency = np.zeros((n, n))
        adjacency[sources, targets] += weights
        adjacency[targets, sources] += weights
        affinity = adjacency[np.ix_(crossbars, range(n))] @ adjacency[
            np.ix_(range(n), crossbars)
        ]
        np.fill_diagonal(affinity, 0.0)
        if k > 3 and affinity.any():
            degree = np.maximum(affinity.sum(axis=1), 1e-9)
            laplacian = np.diag(degree) - affinity
            _, vectors = scipy.linalg.eigh(
                laplacian, np.diag(degree), subset_by_index=(0, min(2, k - 1))
            )
            v1 = vectors[:, 1] if vectors.shape[1] > 1 else np.arange(k, dtype=float)
            v2 = vectors[:, 2] if vectors.shape[1] > 2 else np.zeros(k)
        else:
            v1 = np.arange(k, dtype=float)
            v2 = np.zeros(k)
        # Snap spectral coordinates onto grid slots by an optimal 2-D
        # assignment (Hungarian): preserves the embedding's structure far
        # better than a 1-D sort.
        columns = max(1, int(np.ceil(np.sqrt(k))))
        pitch = side / columns
        rows = (k + columns - 1) // columns
        slots = np.array(
            [
                ((col + 0.5) * pitch, (row + 0.5) * pitch)
                for row in range(rows)
                for col in range(columns)
            ]
        )

        def rescale(v: np.ndarray) -> np.ndarray:
            v = v - v.min()
            span = v.max()
            return (v / span if span > 0 else v) * side

        e1 = rescale(v1)
        e2 = rescale(v2)
        cost = (e1[:, None] - slots[None, :, 0]) ** 2 + (
            e2[:, None] - slots[None, :, 1]
        ) ** 2
        assigned_rows, assigned_slots = scipy.optimize.linear_sum_assignment(cost)
        for ci, slot in zip(assigned_rows, assigned_slots):
            x[crossbars[ci]] = slots[slot, 0]
            y[crossbars[ci]] = slots[slot, 1]

    # --- neurons: centroid of incident crossbars -------------------------
    neuron_crossbars: dict = {}
    for w_idx in range(sources.shape[0]):
        a, b = int(sources[w_idx]), int(targets[w_idx])
        for u, v in ((a, b), (b, a)):
            if kinds[u] == CellKind.NEURON and kinds[v] == CellKind.CROSSBAR:
                neuron_crossbars.setdefault(u, []).append(v)
    jitter = max(0.01 * side, 0.5)
    for i in range(n):
        if kinds[i] != CellKind.NEURON:
            continue
        incident = neuron_crossbars.get(i)
        if incident:
            x[i] = float(np.mean([x[j] for j in incident])) + rng.uniform(-jitter, jitter)
            y[i] = float(np.mean([y[j] for j in incident])) + rng.uniform(-jitter, jitter)
        else:
            x[i] = rng.uniform(0.0, side)
            y[i] = rng.uniform(0.0, side)

    # --- synapses: midpoint of their two neurons --------------------------
    neighbours: dict = {}
    for w_idx in range(sources.shape[0]):
        a, b = int(sources[w_idx]), int(targets[w_idx])
        neighbours.setdefault(a, []).append(b)
        neighbours.setdefault(b, []).append(a)
    for i in range(n):
        if kinds[i] != CellKind.SYNAPSE:
            continue
        ends = neighbours.get(i, [])
        if ends:
            x[i] = float(np.mean([x[j] for j in ends])) + rng.uniform(-jitter, jitter)
            y[i] = float(np.mean([y[j] for j in ends])) + rng.uniform(-jitter, jitter)
        else:  # pragma: no cover - synapses always have two wires
            x[i] = rng.uniform(0.0, side)
            y[i] = rng.uniform(0.0, side)
    return x, y
