"""The penalty objective ``WL(x, y) + λ·D(x, y)`` of Algorithm 4."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.physical.placement.density import density_value_and_grad
from repro.physical.placement.wirelength import wa_wirelength_and_grad


class PlacementObjective:
    """Callable objective bundling wirelength and density terms.

    Operates on a packed variable vector ``z = [x; y]`` so generic
    optimizers can consume it.

    Parameters
    ----------
    sources, targets, weights:
        2-pin wire endpoint arrays and user wire weights.
    virtual_widths, virtual_heights:
        Cell dimensions with the routing-space factor ω applied.
    gamma:
        WA smoothness (µm).
    tau:
        Density sigmoid smoothing (µm).
    """

    def __init__(
        self,
        sources: np.ndarray,
        targets: np.ndarray,
        weights: np.ndarray,
        virtual_widths: np.ndarray,
        virtual_heights: np.ndarray,
        gamma: float,
        tau: float,
    ) -> None:
        if gamma <= 0 or tau <= 0:
            raise ValueError("gamma and tau must be > 0")
        self.sources = np.asarray(sources, dtype=int)
        self.targets = np.asarray(targets, dtype=int)
        self.weights = np.asarray(weights, dtype=float)
        self.virtual_widths = np.asarray(virtual_widths, dtype=float)
        self.virtual_heights = np.asarray(virtual_heights, dtype=float)
        self.gamma = float(gamma)
        self.tau = float(tau)
        self.lam = 0.0
        self.n = self.virtual_widths.shape[0]
        # Evaluation tallies: plain attribute adds in the optimizer's hot
        # loop; the placer reports them to the observability recorder once
        # per place() call.
        self.wa_evals = 0
        self.density_evals = 0

    # ------------------------------------------------------------------
    def unpack(self, z: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Split a packed variable vector into (x, y)."""
        z = np.asarray(z, dtype=float)
        if z.shape != (2 * self.n,):
            raise ValueError(f"z must have shape ({2 * self.n},), got {z.shape}")
        return z[: self.n], z[self.n :]

    def pack(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Concatenate (x, y) into the packed variable vector."""
        return np.concatenate([np.asarray(x, dtype=float), np.asarray(y, dtype=float)])

    # ------------------------------------------------------------------
    def wirelength_and_grad(self, z: np.ndarray) -> Tuple[float, np.ndarray]:
        """WA wirelength term and its packed gradient."""
        self.wa_evals += 1
        x, y = self.unpack(z)
        value, gx, gy = wa_wirelength_and_grad(
            x, y, self.sources, self.targets, self.weights, self.gamma
        )
        return value, np.concatenate([gx, gy])

    def density_and_grad(self, z: np.ndarray) -> Tuple[float, np.ndarray]:
        """Density term and its packed gradient."""
        self.density_evals += 1
        x, y = self.unpack(z)
        value, gx, gy = density_value_and_grad(
            x, y, self.virtual_widths, self.virtual_heights, self.tau
        )
        return value, np.concatenate([gx, gy])

    def value_and_grad(self, z: np.ndarray) -> Tuple[float, np.ndarray]:
        """``WL + λ·D`` with gradient, at the current λ."""
        wl, wl_grad = self.wirelength_and_grad(z)
        if self.lam == 0.0:
            return wl, wl_grad
        d, d_grad = self.density_and_grad(z)
        return wl + self.lam * d, wl_grad + self.lam * d_grad

    def __call__(self, z: np.ndarray) -> Tuple[float, np.ndarray]:
        return self.value_and_grad(z)

    # ------------------------------------------------------------------
    def initial_lambda(self, z: np.ndarray) -> float:
        """Algorithm 4 line 1: ``λ0 = Σ|∂WL| / Σ|∂D|``."""
        _, wl_grad = self.wirelength_and_grad(z)
        _, d_grad = self.density_and_grad(z)
        denominator = float(np.sum(np.abs(d_grad)))
        numerator = float(np.sum(np.abs(wl_grad)))
        if denominator <= 1e-12:
            return 1.0
        return numerator / denominator
