"""Global routing: grid graph [18] + maze routing [16] + virtual capacity [17].

Two selectable algorithms (``RoutingConfig.algorithm``): the paper's
ordered route with capacity relaxation, and PathFinder-style negotiated
congestion (:mod:`repro.physical.routing.negotiated`).
"""

from repro.physical.routing.grid import RoutingGrid
from repro.physical.routing.maze import MazeWorkspace, maze_route
from repro.physical.routing.negotiated import NegotiationOutcome, negotiate_routes
from repro.physical.routing.router import (
    ROUTING_ALGORITHMS,
    RoutingConfig,
    RoutingResult,
    route,
)

__all__ = [
    "MazeWorkspace",
    "NegotiationOutcome",
    "ROUTING_ALGORITHMS",
    "RoutingConfig",
    "RoutingGrid",
    "RoutingResult",
    "maze_route",
    "negotiate_routes",
    "route",
]
