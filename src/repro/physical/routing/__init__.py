"""Global routing: grid graph [18] + maze routing [16] + virtual capacity [17].

Two selectable algorithms (``RoutingConfig.algorithm``): the paper's
ordered route with capacity relaxation, and PathFinder-style negotiated
congestion (:mod:`repro.physical.routing.negotiated`).  Either runs on
the pure-Python reference search or the bit-identical compiled kernel
(``RoutingConfig.kernel``, :mod:`repro.physical.routing.kernel`).
"""

from repro.physical.routing.grid import RoutingGrid
from repro.physical.routing.kernel import (
    KERNEL_CHOICES,
    KernelUnavailableError,
    NUMBA_AVAILABLE,
    interpreted_kernel,
    kernel_available,
    resolve_kernel,
    route_wires_kernel,
)
from repro.physical.routing.maze import MazeWorkspace, maze_route
from repro.physical.routing.negotiated import NegotiationOutcome, negotiate_routes
from repro.physical.routing.router import (
    ROUTING_ALGORITHMS,
    RoutingConfig,
    RoutingResult,
    route,
)

__all__ = [
    "KERNEL_CHOICES",
    "KernelUnavailableError",
    "MazeWorkspace",
    "NegotiationOutcome",
    "NUMBA_AVAILABLE",
    "ROUTING_ALGORITHMS",
    "RoutingConfig",
    "RoutingGrid",
    "RoutingResult",
    "interpreted_kernel",
    "kernel_available",
    "maze_route",
    "negotiate_routes",
    "resolve_kernel",
    "route",
    "route_wires_kernel",
]
